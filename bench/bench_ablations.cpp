// bench_ablations — design-choice ablations called out in DESIGN.md:
//   1. signed-log pixel compression vs raw difference pixels (flux CNN)
//   2. max pooling vs average pooling (the paper argues max is key)
//   3. highway layers vs plain fully connected layers (classifier)
#include <cstdio>

#include <memory>

#include "common.h"

using namespace sne;

int main() {
  eval::print_banner(
      "Ablations — signed-log, pooling, highway",
      "Each ablation trains the affected model twice at equal budget.\n"
      "Scale with SNE_SAMPLES / SNE_PAIRS / SNE_EPOCHS.");

  const sim::SnDataset data = bench::make_dataset(400);
  const bench::Splits splits = bench::paper_splits(data, 8);
  const eval::Stopwatch timer;

  // --- flux-CNN ablations (input transform, pooling) ---
  bench::FluxRunConfig base;
  base.input_size = 44;
  base.train_pairs = env::int64("PAIRS", 1200);
  base.val_pairs = 300;
  base.test_pairs = 300;
  base.epochs = env::int64("EPOCHS", 4);

  eval::TextTable cnn_table({"flux CNN variant", "test loss", "test MAE"});
  double loss_signed = 0.0;
  double loss_raw = 0.0;
  double loss_max = 0.0;
  double loss_avg = 0.0;
  {
    bench::FluxRunConfig cfg = base;
    const bench::FluxRun run = bench::train_flux_cnn(data, splits, cfg);
    cnn_table.add_row({"signed-log + max-pool (paper)",
                       eval::fmt(run.test_loss, 3),
                       eval::fmt(run.test_mae, 3)});
    loss_signed = run.test_loss;
    loss_max = run.test_loss;
    std::printf("  [baseline %.1fs]\n", timer.seconds());
  }
  {
    bench::FluxRunConfig cfg = base;
    cfg.signed_log = false;
    const bench::FluxRun run = bench::train_flux_cnn(data, splits, cfg);
    cnn_table.add_row({"raw difference pixels", eval::fmt(run.test_loss, 3),
                       eval::fmt(run.test_mae, 3)});
    loss_raw = run.test_loss;
    std::printf("  [raw-pixels %.1fs]\n", timer.seconds());
  }
  {
    bench::FluxRunConfig cfg = base;
    cfg.pool = core::PoolKind::Average;
    const bench::FluxRun run = bench::train_flux_cnn(data, splits, cfg);
    cnn_table.add_row({"average pooling", eval::fmt(run.test_loss, 3),
                       eval::fmt(run.test_mae, 3)});
    loss_avg = run.test_loss;
    std::printf("  [avg-pool %.1fs]\n", timer.seconds());
  }
  std::printf("\n%s\n", cnn_table.to_string().c_str());
  std::printf("signed-log %s raw pixels; max-pool %s avg-pool\n\n",
              loss_signed <= loss_raw ? "beats" : "loses to (at this scale)",
              loss_max <= loss_avg ? "beats" : "loses to (at this scale)");

  // --- shared vs per-band CNN weights ---
  // The paper shares one CNN across all five bands. The alternative —
  // five per-band specialists — sees 1/5 of the data each at the same
  // total budget. Both are evaluated on the same mixed-band test pairs.
  {
    auto train_one = [&](const std::vector<core::FluxPairItem>& items,
                         std::uint64_t seed) {
      Rng rng(seed);
      core::BandCnnConfig mc;
      mc.input_size = base.input_size;
      auto model = std::make_unique<core::BandCnn>(mc, rng);
      const nn::LazyDataset ds =
          core::make_flux_pair_dataset(data, items, base.input_size);
      nn::Adam opt(model->params(), base.learning_rate);
      nn::Trainer trainer(*model, opt, nn::mse_loss);
      nn::TrainConfig tc;
      tc.epochs = base.epochs;
      tc.batch_size = base.batch_size;
      tc.shuffle_seed = seed + 1;
      trainer.fit(ds, nullptr, tc);
      return model;
    };
    auto eval_one = [&](core::BandCnn& model,
                        const std::vector<core::FluxPairItem>& items) {
      const nn::LazyDataset ds =
          core::make_flux_pair_dataset(data, items, base.input_size);
      nn::Adam opt(model.params(), 1e-4f);
      nn::Trainer trainer(model, opt, nn::mse_loss);
      return trainer.evaluate(ds).loss;
    };

    auto train_items =
        core::enumerate_flux_pairs(data, splits.train, base.max_target_mag);
    if (static_cast<std::int64_t>(train_items.size()) > base.train_pairs) {
      train_items.resize(static_cast<std::size_t>(base.train_pairs));
    }
    auto test_items =
        core::enumerate_flux_pairs(data, splits.test, base.max_target_mag);
    if (static_cast<std::int64_t>(test_items.size()) > base.test_pairs) {
      test_items.resize(static_cast<std::size_t>(base.test_pairs));
    }

    const auto shared = train_one(train_items, 950);
    const double shared_loss = eval_one(*shared, test_items);

    double per_band_loss = 0.0;
    double tested = 0.0;
    for (const astro::Band b : astro::kAllBands) {
      std::vector<core::FluxPairItem> band_train;
      std::vector<core::FluxPairItem> band_test;
      for (const auto& item : train_items) {
        if (item.band == b) band_train.push_back(item);
      }
      for (const auto& item : test_items) {
        if (item.band == b) band_test.push_back(item);
      }
      if (band_train.empty() || band_test.empty()) continue;
      const auto specialist =
          train_one(band_train, 960 + astro::band_index(b));
      per_band_loss += eval_one(*specialist, band_test) *
                       static_cast<double>(band_test.size());
      tested += static_cast<double>(band_test.size());
    }
    per_band_loss /= tested;

    eval::TextTable share_table({"weight sharing", "test loss"});
    share_table.add_row({"one CNN shared across bands (paper)",
                         eval::fmt(shared_loss, 3)});
    share_table.add_row({"five per-band specialists",
                         eval::fmt(per_band_loss, 3)});
    std::printf("%s\n", share_table.to_string().c_str());
    std::printf("shared weights %s per-band specialists at equal total "
                "budget\n\n",
                shared_loss <= per_band_loss ? "beat" : "lose to");
    std::printf("  [weight-sharing ablation %.1fs]\n\n", timer.seconds());
  }

  // --- classifier ablation (highway vs plain FC) ---
  eval::TextTable clf_table({"classifier variant", "AUC"});
  core::FeatureConfig features;
  const std::int64_t clf_epochs = env::int64("CLF_EPOCHS", 40);
  const bench::ClassifierRun highway = bench::train_lc_classifier(
      data, splits, features, 100, clf_epochs, 900, /*use_highway=*/true);
  const bench::ClassifierRun plain = bench::train_lc_classifier(
      data, splits, features, 100, clf_epochs, 900, /*use_highway=*/false);
  clf_table.add_row({"2 highway layers (paper)", eval::fmt(highway.auc, 4)});
  clf_table.add_row({"2 plain FC layers", eval::fmt(plain.auc, 4)});
  std::printf("%s\n", clf_table.to_string().c_str());
  return 0;
}
