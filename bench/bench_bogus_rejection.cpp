// bench_bogus_rejection — extension experiment: step (1) of the survey
// pipeline from the paper's related-work section. 99.9 % of raw
// difference detections are bogus (cosmic rays, subtraction residuals,
// detector defects); Bailey/Bloom/Brink report TPR 92.3 % at FPR 1 %
// with random forests, and Morii et al. 2016 reach FPR 0.85 % at
// TPR 90 % with deep networks. This bench trains a small CNN on
// synthesized real/bogus difference stamps and reports the same
// operating points.
#include <cstdio>

#include "common.h"
#include "sim/artifacts.h"

using namespace sne;

namespace {

// Compact real/bogus CNN: 2 conv stages on the signed-log difference.
class BogusCnn final : public nn::Module {
 public:
  BogusCnn(std::int64_t input, Rng& rng) {
    net_.emplace<nn::Conv2d>(1, 8, 5, rng, 1, 0, "bogus.conv1");
    net_.emplace<nn::BatchNorm2d>(8, 0.1f, 1e-5f, "bogus.conv1.bn");
    net_.emplace<nn::PReLU>(8, 0.25f, "bogus.conv1.prelu");
    net_.emplace<nn::MaxPool2d>(2);
    net_.emplace<nn::Conv2d>(8, 16, 5, rng, 1, 0, "bogus.conv2");
    net_.emplace<nn::BatchNorm2d>(16, 0.1f, 1e-5f, "bogus.conv2.bn");
    net_.emplace<nn::PReLU>(16, 0.25f, "bogus.conv2.prelu");
    net_.emplace<nn::MaxPool2d>(2);
    net_.emplace<nn::Flatten>();
    const std::int64_t e1 = (input - 4) / 2;
    const std::int64_t e2 = (e1 - 4) / 2;
    net_.emplace<nn::Linear>(16 * e2 * e2, 32, rng, "bogus.fc1");
    net_.emplace<nn::PReLU>(32, 0.25f, "bogus.fc1.prelu");
    net_.emplace<nn::Linear>(32, 1, rng, "bogus.fc2");
  }
  Tensor forward(const Tensor& x) override { return net_.forward(x); }
  Tensor backward(const Tensor& g) override { return net_.backward(g); }
  std::vector<nn::Param*> params() override { return net_.params(); }
  std::vector<nn::Param*> buffers() override { return net_.buffers(); }
  void set_training(bool t) override {
    Module::set_training(t);
    net_.set_training(t);
  }

 private:
  nn::Sequential net_;
};

}  // namespace

int main() {
  eval::print_banner(
      "Bogus rejection (extension) — real vs artifact difference stamps",
      "Paper context: Brink13 TPR 92.3% @ FPR 1%; Morii16 FPR 0.85% @ TPR "
      "90%.\nScale with SNE_SAMPLES / SNE_EPOCHS.");

  const sim::SnDataset data = bench::make_dataset(500, 424242);
  const bench::Splits splits = bench::paper_splits(data, 11);
  constexpr std::int64_t kCrop = 33;

  const nn::LazyDataset train =
      sim::make_real_bogus_dataset(data, splits.train, kCrop);
  const nn::LazyDataset test =
      sim::make_real_bogus_dataset(data, splits.test, kCrop, 25.0, 777);
  std::printf("train stamps: %lld, test stamps: %lld\n",
              static_cast<long long>(train.size()),
              static_cast<long long>(test.size()));

  Rng rng(12);
  BogusCnn model(kCrop, rng);
  nn::Adam opt(model.params(), 1e-3f);
  nn::Trainer trainer(model, opt, nn::bce_with_logits_loss,
                      nn::binary_accuracy);
  nn::TrainConfig tc;
  tc.epochs = env::int64("EPOCHS", 5);
  tc.batch_size = 32;
  const eval::Stopwatch timer;
  const auto history = trainer.fit(train, nullptr, tc);
  std::printf("trained %lld epochs in %.1fs (final train acc %.3f)\n\n",
              static_cast<long long>(tc.epochs), timer.seconds(),
              history.back().train_metric);

  const Tensor scores = trainer.predict(test);
  std::vector<float> s(scores.data(), scores.data() + scores.size());
  std::vector<float> labels;
  for (std::int64_t k = 0; k < test.size(); ++k) {
    labels.push_back(test.get(k).y[0]);
  }

  const eval::RocCurve curve = eval::compute_roc(s, labels);
  bench::print_roc(s, labels, "real vs bogus");
  std::printf("\nTPR @ FPR 1%%:  %.3f   (Brink13 forest: 0.923)\n",
              eval::tpr_at_fpr(curve, 0.01));
  std::printf("TPR @ FPR 5%%:  %.3f\n", eval::tpr_at_fpr(curve, 0.05));
  std::printf("AUC:           %.4f\n", curve.auc);
  return 0;
}
