// bench_fig10_epochs_roc — reproduces Fig. 10: ROC of the classifier as a
// function of the number of observation epochs (1…4) used as features.
// The paper's headline numbers: AUC 0.958 single-epoch → 0.995 with all
// four epochs — multi-epoch helps, but a single epoch is already good.
#include <cstdio>

#include "common.h"

using namespace sne;

int main() {
  eval::print_banner(
      "Fig. 10 — classifier ROC vs observation epochs",
      "Ground-truth features with k = 1..4 epoch subsets.\n"
      "Scale with SNE_SAMPLES / SNE_EPOCHS.");

  const sim::SnDataset data = bench::make_dataset(4000);
  const bench::Splits splits = bench::paper_splits(data, 4);
  const std::int64_t epochs = env::int64("EPOCHS", 40);

  eval::TextTable table({"obs epochs", "feature dim", "AUC"});
  double auc_first = 0.0;
  double auc_last = 0.0;
  for (std::int64_t k = 1; k <= 4; ++k) {
    core::FeatureConfig features;
    features.epochs = k;
    const bench::ClassifierRun run = bench::train_lc_classifier(
        data, splits, features, 100, epochs, 200 + k);
    table.add_row({std::to_string(k),
                   std::to_string(core::feature_dim(features)),
                   eval::fmt(run.auc, 4)});
    if (k == 1) {
      auc_first = run.auc;
      bench::print_roc(run.scores, run.labels, "1 epoch");
    }
    if (k == 4) {
      auc_last = run.auc;
      bench::print_roc(run.scores, run.labels, "4 epochs");
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("paper: 0.958 (1 epoch) -> 0.995 (4 epochs).\n"
              "ours:  %.4f -> %.4f (%s)\n",
              auc_first, auc_last,
              auc_last >= auc_first
                  ? "reproduced: more epochs help, single epoch strong"
                  : "trend not reproduced at this scale");
  return 0;
}
