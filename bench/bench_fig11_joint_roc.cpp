// bench_fig11_joint_roc — reproduces Fig. 11: ROC of the joint
// image→class model (band-wise CNNs + highway classifier, fine-tuned from
// the pre-trained components). The paper reports AUC ≈ 0.897 — lower than
// the 0.958 reached with ground-truth light-curve features, because the
// CNN's magnitude estimates carry measurement error.
#include <cstdio>

#include "joint_common.h"

using namespace sne;

int main() {
  eval::print_banner(
      "Fig. 11 — joint model ROC (single-epoch, from images)",
      "Pre-train CNN + classifier, transplant, fine-tune jointly.\n"
      "Scale with SNE_SAMPLES / SNE_SIZE / SNE_PAIRS / SNE_EPOCHS.");

  const sim::SnDataset data = bench::make_dataset(400);
  const bench::Splits splits = bench::paper_splits(data, 6);
  const bench::JointBenchConfig cfg = bench::joint_config_from_env();

  const eval::Stopwatch timer;
  const auto cnn = bench::pretrain_cnn(data, splits, cfg);
  std::printf("  [cnn pre-trained %.1fs]\n", timer.seconds());
  const auto clf = bench::pretrain_classifier(data, splits, cfg);
  std::printf("  [classifier pre-trained %.1fs]\n", timer.seconds());

  core::JointModelConfig jc;
  jc.cnn = bench::joint_cnn_config(cfg);
  jc.classifier = clf->config();
  Rng rng(cfg.seed + 10);
  core::JointModel joint(jc, rng);
  core::init_joint_from_pretrained(joint, *cnn, *clf);

  const auto history = bench::train_joint(joint, data, splits, cfg, 1e-3f);
  std::printf("  [joint fine-tuned %.1fs]\n\n", timer.seconds());

  for (const nn::EpochStats& e : history) {
    std::printf("  epoch %lld: train loss %.4f acc %.3f | val loss %.4f acc "
                "%.3f\n",
                static_cast<long long>(e.epoch), e.train_loss, e.train_metric,
                e.val_loss, e.val_metric);
  }

  const bench::ClassifierRun run = bench::score_joint(joint, data, splits,
                                                      cfg);
  std::printf("\n");
  bench::print_roc(run.scores, run.labels, "joint model, single epoch");
  const eval::AucInterval ci =
      eval::bootstrap_auc(run.scores, run.labels);
  std::printf("  AUC 95%% bootstrap CI: [%.3f, %.3f]\n", ci.lo, ci.hi);

  // Extension: image-level multi-epoch ensemble (average the joint logit
  // over all four epoch subsets).
  const bench::ClassifierRun ensemble =
      bench::score_joint_ensemble(joint, data, splits, cfg, 4);
  std::printf("  4-epoch image ensemble AUC: %.3f (extension; paper's\n"
              "  multi-epoch row used features, not images)\n",
              ensemble.auc);

  // Reference: the GT-feature classifier on the same test split.
  core::FeatureConfig features;
  const bench::ClassifierRun gt = bench::train_lc_classifier(
      data, splits, features, 100, cfg.classifier_epochs, cfg.seed + 20);
  std::printf("\npaper: joint 0.897 < GT-feature 0.958.\n"
              "ours:  joint %.3f vs GT-feature %.3f (%s)\n",
              run.auc, gt.auc,
              run.auc <= gt.auc + 0.02
                  ? "reproduced: images cost accuracy vs perfect photometry"
                  : "unexpected ordering at this scale");
  return 0;
}
