// bench_fig12_finetune — reproduces Fig. 12: training the joint model
// initialized from the pre-trained components ("fine tuning", solid lines
// in the paper) against the identical architecture trained from scratch
// (dashed). The paper's finding: fine-tuning converges faster and to a
// better optimum.
#include <cstdio>

#include "joint_common.h"

using namespace sne;

int main() {
  eval::print_banner(
      "Fig. 12 — fine-tuning vs training from scratch",
      "Same joint architecture, two initializations, same budget.\n"
      "Scale with SNE_SAMPLES / SNE_SIZE / SNE_PAIRS / SNE_EPOCHS.");

  const sim::SnDataset data = bench::make_dataset(400);
  const bench::Splits splits = bench::paper_splits(data, 7);
  const bench::JointBenchConfig cfg = bench::joint_config_from_env();

  const eval::Stopwatch timer;

  // Fine-tuned: transplanted components.
  const auto cnn = bench::pretrain_cnn(data, splits, cfg);
  const auto clf = bench::pretrain_classifier(data, splits, cfg);
  core::JointModelConfig jc;
  jc.cnn = bench::joint_cnn_config(cfg);
  jc.classifier = clf->config();

  Rng rng_ft(cfg.seed + 10);
  core::JointModel finetuned(jc, rng_ft);
  core::init_joint_from_pretrained(finetuned, *cnn, *clf);
  const auto ft_history =
      bench::train_joint(finetuned, data, splits, cfg, 1e-3f);
  std::printf("  [fine-tune arm done %.1fs]\n", timer.seconds());

  // Scratch: fresh random weights, same budget, standard learning rate.
  Rng rng_sc(cfg.seed + 11);
  core::JointModel scratch(jc, rng_sc);
  const auto sc_history = bench::train_joint(scratch, data, splits, cfg,
                                             1e-3f);
  std::printf("  [scratch arm done %.1fs]\n\n", timer.seconds());

  eval::TextTable table({"epoch", "ft train loss", "ft val acc",
                         "scratch train loss", "scratch val acc"});
  for (std::size_t e = 0; e < ft_history.size(); ++e) {
    table.add_row({std::to_string(e),
                   eval::fmt(ft_history[e].train_loss, 4),
                   eval::fmt(ft_history[e].val_metric, 3),
                   eval::fmt(sc_history[e].train_loss, 4),
                   eval::fmt(sc_history[e].val_metric, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const bench::ClassifierRun ft_run =
      bench::score_joint(finetuned, data, splits, cfg);
  const bench::ClassifierRun sc_run =
      bench::score_joint(scratch, data, splits, cfg);
  std::printf("test AUC: fine-tuned %.3f vs scratch %.3f\n", ft_run.auc,
              sc_run.auc);
  std::printf("first-epoch: fine-tuned loss %.4f / val acc %.3f vs scratch "
              "loss %.4f / val acc %.3f\n",
              ft_history.front().train_loss, ft_history.front().val_metric,
              sc_history.front().train_loss, sc_history.front().val_metric);
  const bool starts_ahead =
      ft_history.front().val_metric >= sc_history.front().val_metric;
  std::printf("%s\n",
              starts_ahead
                  ? "reproduced: fine-tuning starts ahead (pre-trained "
                    "components transfer)"
                  : "not reproduced at this scale");
  return 0;
}
