// bench_fig3_catalog — reproduces Fig. 3 of the paper: the spatial
// distribution of host galaxies over the COSMOS-like footprint (left) and
// the photometric-redshift distributions of the full catalog vs the
// galaxies actually drawn as dataset hosts (right).
#include <algorithm>
#include <cstdio>
#include <map>

#include "common.h"

using namespace sne;

int main() {
  eval::print_banner(
      "Fig. 3 — catalog vs dataset host distributions",
      "Left: sky coverage histogram. Right: photo-z histograms.\n"
      "Scale with SNE_SAMPLES (dataset) — catalog fixed at 5000 galaxies.");

  const sim::SnDataset data = bench::make_dataset(4000);
  const sim::GalaxyCatalog& catalog = data.catalog();

  // --- sky coverage: 8×8 grid occupancy over the footprint ---
  const auto& cc = catalog.config();
  const double half = 0.5 * cc.field_extent_deg;
  std::array<std::array<int, 8>, 8> catalog_grid{};
  std::array<std::array<int, 8>, 8> dataset_grid{};
  auto cell = [&](double v, double center) {
    const double t = (v - (center - half)) / cc.field_extent_deg;
    return std::clamp(static_cast<int>(t * 8.0), 0, 7);
  };
  for (const sim::Galaxy& g : catalog.galaxies()) {
    ++catalog_grid[static_cast<std::size_t>(cell(g.dec_deg, cc.dec_center_deg))]
                  [static_cast<std::size_t>(cell(g.ra_deg, cc.ra_center_deg))];
  }
  for (std::int64_t i = 0; i < data.size(); ++i) {
    const sim::Galaxy& g = data.host(i);
    ++dataset_grid[static_cast<std::size_t>(cell(g.dec_deg, cc.dec_center_deg))]
                  [static_cast<std::size_t>(cell(g.ra_deg, cc.ra_center_deg))];
  }

  int covered_catalog = 0;
  int covered_dataset = 0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      if (catalog_grid[static_cast<std::size_t>(y)]
                      [static_cast<std::size_t>(x)] > 0) {
        ++covered_catalog;
      }
      if (dataset_grid[static_cast<std::size_t>(y)]
                      [static_cast<std::size_t>(x)] > 0) {
        ++covered_dataset;
      }
    }
  }
  std::printf("sky cells occupied (of 64): catalog %d, dataset hosts %d\n\n",
              covered_catalog, covered_dataset);

  // --- redshift histograms ---
  constexpr int kBins = 19;
  const auto catalog_hist = catalog.redshift_histogram(kBins);
  std::vector<double> dataset_hist(kBins, 0.0);
  for (std::int64_t i = 0; i < data.size(); ++i) {
    const double z = data.host(i).photo_z;
    const int bin = std::clamp(
        static_cast<int>((z - 0.1) / (2.0 - 0.1) * kBins), 0, kBins - 1);
    dataset_hist[static_cast<std::size_t>(bin)] += 1.0;
  }
  for (auto& v : dataset_hist) v /= static_cast<double>(data.size());

  eval::TextTable table({"z", "catalog", "dataset", "bar"});
  for (int b = 0; b < kBins; ++b) {
    const double z_lo = 0.1 + b * (2.0 - 0.1) / kBins;
    std::string bar(
        static_cast<std::size_t>(catalog_hist[static_cast<std::size_t>(b)] *
                                 300.0),
        '#');
    table.add_row({eval::fmt(z_lo, 2),
                   eval::fmt(catalog_hist[static_cast<std::size_t>(b)], 3),
                   eval::fmt(dataset_hist[static_cast<std::size_t>(b)], 3),
                   bar});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Shape check mirrored from the paper: dataset hosts track the catalog.
  double l1 = 0.0;
  for (int b = 0; b < kBins; ++b) {
    l1 += std::abs(catalog_hist[static_cast<std::size_t>(b)] -
                   dataset_hist[static_cast<std::size_t>(b)]);
  }
  std::printf("L1 distance catalog vs dataset n(z): %.3f (small = match)\n",
              l1);
  return 0;
}
