// bench_fig4_positions — reproduces Fig. 4: the distribution of supernova
// positions around their host galaxies, raw (left) and normalized by the
// host size (right).
#include <algorithm>
#include <cstdio>

#include "common.h"

using namespace sne;

int main() {
  eval::print_banner(
      "Fig. 4 — SN positions around hosts",
      "Radial histograms of SN offsets, raw pixels and r/r_e normalized.\n"
      "Scale with SNE_SAMPLES.");

  const sim::SnDataset data = bench::make_dataset(4000);

  constexpr int kBins = 12;
  std::vector<double> raw(kBins, 0.0);
  std::vector<double> normalized(kBins, 0.0);
  const double raw_max = 20.0;   // pixels
  const double norm_max = 3.0;   // units of r_e

  for (std::int64_t i = 0; i < data.size(); ++i) {
    const double r = data.spec(i).offset.radius();
    const double re = data.host(i).morphology.half_light_radius;
    const int rb = std::clamp(static_cast<int>(r / raw_max * kBins), 0,
                              kBins - 1);
    const int nb = std::clamp(static_cast<int>(r / re / norm_max * kBins), 0,
                              kBins - 1);
    raw[static_cast<std::size_t>(rb)] += 1.0;
    normalized[static_cast<std::size_t>(nb)] += 1.0;
  }
  for (auto& v : raw) v /= static_cast<double>(data.size());
  for (auto& v : normalized) v /= static_cast<double>(data.size());

  eval::TextTable table(
      {"bin", "r_px", "frac(raw)", "r/r_e", "frac(normalized)"});
  for (int b = 0; b < kBins; ++b) {
    table.add_row({std::to_string(b),
                   eval::fmt(b * raw_max / kBins, 1),
                   eval::fmt(raw[static_cast<std::size_t>(b)], 3),
                   eval::fmt(b * norm_max / kBins, 2),
                   eval::fmt(normalized[static_cast<std::size_t>(b)], 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Shape checks mirroring the figure: the raw distribution is centrally
  // concentrated, and the normalized one peaks inside one r_e.
  const auto norm_peak = static_cast<std::size_t>(std::distance(
      normalized.begin(),
      std::max_element(normalized.begin(), normalized.end())));
  std::printf("normalized peak bin: %zu (r/r_e = %.2f); inside-1-r_e "
              "fraction: %.3f\n",
              norm_peak, (norm_peak + 0.5) * norm_max / kBins,
              normalized[0] + normalized[1] + normalized[2] + normalized[3]);
  return 0;
}
