// bench_fig8_flux_scatter — reproduces Fig. 8: ground-truth vs estimated
// magnitudes of the flux CNN (60×60 inputs) on the test split. The paper
// reports a mean estimation error of ~0.087 mag for well-measured objects,
// larger scatter for faint ones, and a slight faintward bias for bright
// objects.
#include <algorithm>
#include <cstdio>

#include "common.h"

using namespace sne;

int main() {
  eval::print_banner(
      "Fig. 8 — ground-truth vs estimated magnitudes",
      "Flux CNN at 60x60; scatter summarized per magnitude bin.\n"
      "Scale with SNE_SAMPLES / SNE_PAIRS / SNE_EPOCHS.");

  const sim::SnDataset data = bench::make_dataset(400);
  const bench::Splits splits = bench::paper_splits(data, 2);

  bench::FluxRunConfig cfg;
  cfg.input_size = 60;
  cfg.train_pairs = env::int64("PAIRS", 2000);
  cfg.val_pairs = 400;
  cfg.test_pairs = 600;
  cfg.epochs = env::int64("EPOCHS", 5);
  const bench::FluxRun run = bench::train_flux_cnn(data, splits, cfg);

  // Per-bin scatter: mean |error| and bias in 1.5-mag bins of the truth.
  eval::TextTable table({"truth bin", "n", "MAE", "bias", "note"});
  for (double lo = 20.0; lo < 32.0; lo += 1.5) {
    std::vector<float> p, t;
    for (std::size_t k = 0; k < run.targets.size(); ++k) {
      if (run.targets[k] >= lo && run.targets[k] < lo + 1.5) {
        p.push_back(run.predictions[k]);
        t.push_back(run.targets[k]);
      }
    }
    if (p.size() < 3) continue;
    const double bin_mae = eval::mae(p, t);
    const double bin_bias = eval::bias(p, t);
    table.add_row({eval::fmt(lo, 1) + "-" + eval::fmt(lo + 1.5, 1),
                   std::to_string(p.size()), eval::fmt(bin_mae, 3),
                   eval::fmt(bin_bias, 3),
                   bin_mae > 0.5 ? "high variance (faint)" : ""});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Bright-end statistics (the regime of the paper's 0.087 mag figure).
  std::vector<float> bright_p, bright_t;
  for (std::size_t k = 0; k < run.targets.size(); ++k) {
    if (run.targets[k] < 24.5) {
      bright_p.push_back(run.predictions[k]);
      bright_t.push_back(run.targets[k]);
    }
  }
  if (bright_t.size() >= 5) {
    std::printf("bright (<24.5 mag) MAE: %.3f mag (paper: 0.087 at full "
                "training scale), bias: %+.3f, pearson r: %.3f\n",
                eval::mae(bright_p, bright_t), eval::bias(bright_p, bright_t),
                eval::pearson(bright_p, bright_t));
  }
  std::printf("overall test MSE: %.4f mag^2, MAE: %.3f mag\n", run.test_loss,
              run.test_mae);

  // A 20-row sample of the scatter for eyeballing.
  std::printf("\n  truth   est   (sample)\n");
  const std::size_t step = std::max<std::size_t>(1, run.targets.size() / 20);
  for (std::size_t k = 0; k < run.targets.size(); k += step) {
    std::printf("  %5.2f  %5.2f\n", run.targets[k], run.predictions[k]);
  }
  return 0;
}
