// bench_fig9_units_roc — reproduces Fig. 9: ROC of the light-curve
// classifier on ground-truth single-epoch features for various hidden
// widths. The paper finds 100 units sufficient (AUC ≈ 0.958 on its
// 12000-sample dataset).
#include <cstdio>

#include "common.h"

using namespace sne;

int main() {
  eval::print_banner(
      "Fig. 9 — classifier ROC vs hidden units",
      "Ground-truth single-epoch features; hidden width sweep.\n"
      "Scale with SNE_SAMPLES / SNE_EPOCHS.");

  const sim::SnDataset data = bench::make_dataset(4000);
  const bench::Splits splits = bench::paper_splits(data, 3);
  const std::int64_t epochs = env::int64("EPOCHS", 40);

  core::FeatureConfig features;
  features.epochs = 1;

  eval::TextTable table({"units", "AUC", "best accuracy"});
  double auc_100 = 0.0;
  for (const std::int64_t units : {10, 30, 100, 300}) {
    const bench::ClassifierRun run = bench::train_lc_classifier(
        data, splits, features, units, epochs, 100 + units);
    table.add_row({std::to_string(units), eval::fmt(run.auc, 4),
                   eval::fmt(eval::best_accuracy(run.scores, run.labels), 4)});
    if (units == 100) {
      auc_100 = run.auc;
      bench::print_roc(run.scores, run.labels, "100 units");
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("paper: AUC 0.958 at 100 units, ~flat beyond.  ours @100: "
              "%.4f\n",
              auc_100);
  return 0;
}
