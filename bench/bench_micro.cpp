// bench_micro — google-benchmark microbenchmarks of the substrates: GEMM,
// convolution forward/backward, Sérsic rendering, PSF operations,
// difference imaging, dataset sample materialization, and ROC computation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/band_cnn.h"
#include "core/inference.h"
#include "core/pipeline.h"
#include "data/snapshot.h"
#include "eval/roc.h"
#include "infer/session.h"
#include "nn/nn.h"
#include "obs/obs.h"
#include "sim/dataset_builder.h"
#include "sim/difference.h"
#include "sim/image_ops.h"
#include "sim/psf.h"
#include "sim/sersic.h"
#include "tensor/gemm.h"
#include "tensor/runtime.h"
#include "tensor/thread_pool.h"

namespace sne {
namespace {

// Thread-count sweeps: the second benchmark argument (where present) is
// the pool width, so single- vs multi-thread throughput reads directly
// off the report (e.g. BM_ConvForward/60/1 vs BM_ConvForward/60/4).

void BM_Sgemm(benchmark::State& state) {
  const auto n = state.range(0);
  set_num_threads(static_cast<int>(state.range(1)));
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    sgemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  set_num_threads(1);
}
BENCHMARK(BM_Sgemm)
    ->UseRealTime()
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

// Kernel-tier pairs: the same single-threaded GEMM with dispatch pinned to
// the scalar bit-reference kernel (second arg 0) vs the AVX2+FMA
// register-blocked micro-kernel (second arg 1). The /0 vs /1 ratio at each
// size IS the micro-kernel speedup tracked in BENCH_GEMM.json; the scalar
// rows also pin that the fallback tier's cost is unchanged over time.
void BM_SgemmKernelTier(benchmark::State& state) {
  const auto n = state.range(0);
  const auto tier = static_cast<GemmTier>(state.range(1));
  if (!gemm_tier_supported(tier)) {
    state.SkipWithError("kernel tier not supported on this CPU");
    return;
  }
  const GemmTier prev = gemm_tier();
  set_gemm_tier(tier);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    sgemm_serial(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  set_gemm_tier(prev);
}
BENCHMARK(BM_SgemmKernelTier)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// Int8 kernel-tier pairs: the saturating s8×s8→s32 GEMM with requant
// epilogue, scalar (0) vs AVX2 (1). Integer accumulation is exact, so
// unlike the fp32 pair both tiers produce identical bytes — the pair
// only tracks speed. The int8-vs-fp32 serving ratio lives in
// BENCH_INT8.json via BM_BandCnnInferSessionPrecision below.
void BM_IgemmKernelTier(benchmark::State& state) {
  const auto n = state.range(0);
  const auto tier = static_cast<GemmTier>(state.range(1));
  if (!gemm_tier_supported(tier)) {
    state.SkipWithError("kernel tier not supported on this CPU");
    return;
  }
  const GemmTier prev = gemm_tier();
  set_gemm_tier(tier);
  std::vector<std::int8_t> a(static_cast<std::size_t>(n * n));
  std::vector<std::int8_t> b(static_cast<std::size_t>(n * n));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int8_t>(static_cast<int>(i * 31 + 7) % 255 - 127);
    b[i] = static_cast<std::int8_t>(static_cast<int>(i * 17 + 3) % 255 - 127);
  }
  const std::vector<float> scale(static_cast<std::size_t>(n), 0.01f);
  Tensor c({n, n});
  const IgemmEpilogue ep{scale.data(), nullptr, nullptr};
  for (auto _ : state) {
    igemm_serial(n, n, n, a.data(), b.data(), c.data(), ep);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  set_gemm_tier(prev);
}
BENCHMARK(BM_IgemmKernelTier)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// 1×1 convolution inference: the pointwise fast path feeds the input
// straight to GEMM (no im2col pass, no column buffer), with bias in the
// epilogue. Same tier pairing as BM_SgemmKernelTier.
void BM_Conv1x1Infer(benchmark::State& state) {
  const auto tier = static_cast<GemmTier>(state.range(0));
  if (!gemm_tier_supported(tier)) {
    state.SkipWithError("kernel tier not supported on this CPU");
    return;
  }
  const GemmTier prev = gemm_tier();
  set_gemm_tier(tier);
  Rng rng(2);
  nn::Conv2d conv(30, 30, 1, rng);
  const Tensor x = Tensor::randn({8, 30, 44, 44}, rng);
  Tensor y;
  for (auto _ : state) {
    conv.infer_into(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.extent(0));
  set_gemm_tier(prev);
}
BENCHMARK(BM_Conv1x1Infer)->Arg(0)->Arg(1);

void BM_ConvForward(benchmark::State& state) {
  const auto size = state.range(0);
  set_num_threads(static_cast<int>(state.range(1)));
  Rng rng(2);
  nn::Conv2d conv(1, 10, 5, rng);
  const Tensor x = Tensor::randn({8, 1, size, size}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  set_num_threads(1);
}
BENCHMARK(BM_ConvForward)
    ->UseRealTime()
    ->Args({36, 1})
    ->Args({60, 1})
    ->Args({60, 2})
    ->Args({60, 4});

void BM_ConvBackward(benchmark::State& state) {
  const auto size = state.range(0);
  set_num_threads(static_cast<int>(state.range(1)));
  Rng rng(3);
  nn::Conv2d conv(1, 10, 5, rng);
  const Tensor x = Tensor::randn({8, 1, size, size}, rng);
  const Tensor y = conv.forward(x);
  const Tensor gy = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    Tensor gx = conv.backward(gy);
    benchmark::DoNotOptimize(gx.data());
  }
  set_num_threads(1);
}
BENCHMARK(BM_ConvBackward)
    ->UseRealTime()
    ->Args({36, 1})
    ->Args({60, 1})
    ->Args({60, 2})
    ->Args({60, 4});

void BM_BandCnnForward(benchmark::State& state) {
  Rng rng(4);
  core::BandCnnConfig cfg;
  cfg.input_size = state.range(0);
  core::BandCnn cnn(cfg, rng);
  cnn.set_training(false);
  const Tensor x = Tensor::randn({1, 2, cfg.input_size, cfg.input_size}, rng);
  for (auto _ : state) {
    Tensor y = cnn.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BandCnnForward)->Arg(36)->Arg(60)->Arg(65);

// Train-path vs serve-path scoring of a batch of stamps. The training
// forward caches every activation and allocates its outputs; the
// inference session runs the folded plan cache-free through a reused
// arena. Second argument is the worker count: the session path scales by
// sharding the batch across per-worker sessions over one shared plan.

constexpr std::int64_t kServeBatch = 16;
constexpr std::int64_t kServeStamp = 44;

// Scratch file for the snapshot-replay ingest benchmark.
std::string testing_snapshot_path() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp ? tmp : "/tmp") + "/sne_bench_ingest.snap";
}

void BM_BandCnnTrainingForward(benchmark::State& state) {
  set_num_threads(static_cast<int>(state.range(1)));
  Rng rng(7);
  core::BandCnnConfig cfg;
  cfg.input_size = kServeStamp;
  core::BandCnn cnn(cfg, rng);
  cnn.set_training(false);
  const auto n = state.range(0);
  const Tensor x = Tensor::randn({n, 2, kServeStamp, kServeStamp}, rng);
  for (auto _ : state) {
    Tensor y = cnn.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  set_num_threads(1);
}
BENCHMARK(BM_BandCnnTrainingForward)
    ->UseRealTime()
    ->Args({kServeBatch, 1})
    ->Args({kServeBatch, 4});

void BM_BandCnnInferSession(benchmark::State& state) {
  const auto n = state.range(0);
  const int workers = static_cast<int>(state.range(1));
  set_num_threads(workers);
  Rng rng(7);
  core::BandCnnConfig cfg;
  cfg.input_size = kServeStamp;
  core::BandCnn cnn(cfg, rng);
  cnn.set_training(false);
  const Tensor x = Tensor::randn({n, 2, kServeStamp, kServeStamp}, rng);

  // One immutable plan, one session (and one output/shard buffer) per
  // worker — the documented concurrency pattern.
  const auto plan = core::compile_plan(cnn);
  std::vector<infer::InferenceSession> sessions;
  std::vector<Tensor> shards(static_cast<std::size_t>(workers));
  std::vector<Tensor> outs(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) sessions.emplace_back(plan);
  const std::int64_t per = (n + workers - 1) / workers;
  const std::int64_t sample = 2 * kServeStamp * kServeStamp;

  for (auto _ : state) {
    parallel_for(0, workers, [&](std::int64_t w) {
      const std::int64_t lo = w * per;
      const std::int64_t hi = std::min<std::int64_t>(n, lo + per);
      if (lo >= hi) return;
      Tensor& shard = shards[static_cast<std::size_t>(w)];
      shard.resize({hi - lo, 2, kServeStamp, kServeStamp});
      std::copy(x.data() + lo * sample, x.data() + hi * sample,
                shard.data());
      sessions[static_cast<std::size_t>(w)].run(
          shard, outs[static_cast<std::size_t>(w)]);
    });
    benchmark::DoNotOptimize(outs.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  set_num_threads(1);
}
BENCHMARK(BM_BandCnnInferSession)
    ->UseRealTime()
    ->Args({kServeBatch, 1})
    ->Args({kServeBatch, 4});

// End-to-end tier pair: one serving session scoring a batch through the
// fused Conv+BN+PReLU plan with the GEMM dispatch pinned to scalar (0) vs
// AVX2+FMA (1). The /0 vs /1 ratio is the end-to-end half of the
// BENCH_GEMM.json speedup pair.
void BM_BandCnnInferSessionTier(benchmark::State& state) {
  const auto tier = static_cast<GemmTier>(state.range(0));
  if (!gemm_tier_supported(tier)) {
    state.SkipWithError("kernel tier not supported on this CPU");
    return;
  }
  const GemmTier prev = gemm_tier();
  set_gemm_tier(tier);
  Rng rng(7);
  core::BandCnnConfig cfg;
  cfg.input_size = kServeStamp;
  core::BandCnn cnn(cfg, rng);
  cnn.set_training(false);
  const Tensor x =
      Tensor::randn({kServeBatch, 2, kServeStamp, kServeStamp}, rng);
  infer::InferenceSession session = core::make_session(cnn);
  Tensor out;
  for (auto _ : state) {
    session.run(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kServeBatch);
  set_gemm_tier(prev);
}
BENCHMARK(BM_BandCnnInferSessionTier)->Arg(0)->Arg(1);

// Precision pair: the same serving session at fp32 (0) vs int8 (1), both
// on the default (fastest supported) GEMM tier. The int8 plan is lowered
// against a calibration table recorded from the benchmark batch itself;
// the /1 over /0 throughput ratio is the serving speedup pinned in
// BENCH_INT8.json.
void BM_BandCnnInferSessionPrecision(benchmark::State& state) {
  const bool quantized = state.range(0) != 0;
  Rng rng(7);
  core::BandCnnConfig cfg;
  cfg.input_size = kServeStamp;
  core::BandCnn cnn(cfg, rng);
  cnn.set_training(false);
  const Tensor x =
      Tensor::randn({kServeBatch, 2, kServeStamp, kServeStamp}, rng);
  infer::CalibrationTable table;
  {
    infer::InferenceSession reference = core::make_session(cnn);
    Tensor out;
    reference.calibrate(x, out, table);
  }
  core::SessionOptions options;
  if (quantized) {
    options.precision = Precision::Int8;
    options.calibration = &table;
  }
  infer::InferenceSession session = core::make_session(cnn, options);
  Tensor out;
  for (auto _ : state) {
    session.run(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kServeBatch);
}
BENCHMARK(BM_BandCnnInferSessionPrecision)->Arg(0)->Arg(1);

void BM_SersicRender(benchmark::State& state) {
  sim::SersicProfile p;
  p.sersic_n = 2.0;
  p.half_light_radius = 5.0;
  p.total_flux = 500.0;
  for (auto _ : state) {
    Tensor img = sim::render_sersic(p, 65, 65, 32.0, 32.0);
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_SersicRender);

void BM_GaussianBlur(benchmark::State& state) {
  Rng rng(5);
  const Tensor img = Tensor::randn({65, 65}, rng);
  for (auto _ : state) {
    Tensor out = sim::gaussian_blur(img, 1.5);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GaussianBlur);

void BM_PsfPointSource(benchmark::State& state) {
  const sim::GaussianPsf psf(3.5);
  for (auto _ : state) {
    Tensor stamp = psf.render_point_source(65, 65, 32.2, 31.7, 100.0);
    benchmark::DoNotOptimize(stamp.data());
  }
}
BENCHMARK(BM_PsfPointSource);

class DatasetFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (!data) {
      sim::SnDataset::Config cfg;
      cfg.num_samples = 32;
      cfg.catalog.count = 200;
      data = std::make_unique<sim::SnDataset>(sim::SnDataset::build(cfg));
    }
  }
  static std::unique_ptr<sim::SnDataset> data;
};
std::unique_ptr<sim::SnDataset> DatasetFixture::data;

BENCHMARK_F(DatasetFixture, ObservationStamp)(benchmark::State& state) {
  std::int64_t i = 0;
  for (auto _ : state) {
    Tensor img = data->observation_image(i % 32, astro::Band::i,
                                         (i / 32) % 4);
    benchmark::DoNotOptimize(img.data());
    ++i;
  }
}

BENCHMARK_F(DatasetFixture, DifferenceStamp)(benchmark::State& state) {
  std::int64_t i = 0;
  for (auto _ : state) {
    Tensor img = data->difference_image(i % 32, astro::Band::r, i % 4);
    benchmark::DoNotOptimize(img.data());
    ++i;
  }
}

// Batched parallel rendering: one iteration renders the difference stamp
// of every dataset sample; the argument is the pool width.
BENCHMARK_DEFINE_F(DatasetFixture, BatchedDifferenceRender)
(benchmark::State& state) {
  set_num_threads(static_cast<int>(state.range(0)));
  std::vector<std::int64_t> samples(32);
  for (std::int64_t k = 0; k < 32; ++k) samples[k] = k;
  for (auto _ : state) {
    auto stamps = data->difference_images(samples, astro::Band::r, 0);
    benchmark::DoNotOptimize(stamps.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
  set_num_threads(1);
}
BENCHMARK_REGISTER_F(DatasetFixture, BatchedDifferenceRender)
    ->UseRealTime()
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

// Render-vs-train overlap: one iteration is one flux-CNN training epoch
// (batch 16) over the fixture's flux pairs. First argument selects the
// data path — 0 renders every stamp serially on the training thread
// (prefetch 0 over a Serial-mode dataset, the pre-loader behaviour),
// 1 streams batches through the DataLoader (batch-parallel rendering,
// prefetch 1, so batch k+1 renders while batch k trains). Second
// argument is the pool width. The batches, and therefore the training
// statistics, are bitwise identical on both paths — only the wall clock
// moves.
BENCHMARK_DEFINE_F(DatasetFixture, FluxCnnEpoch)(benchmark::State& state) {
  const bool overlap = state.range(0) != 0;
  // Pool width and prefetch depth are both runtime knobs now; set them
  // together so the loaders built inside fit() latch the right depth.
  RuntimeConfig rc = RuntimeConfig::current();
  rc.threads = static_cast<int>(state.range(1));
  rc.prefetch = overlap ? 1 : 0;
  RuntimeConfig::set_current(rc);
  std::vector<std::int64_t> samples(32);
  for (std::int64_t k = 0; k < 32; ++k) samples[k] = k;
  auto items = core::enumerate_flux_pairs(*data, samples, 27.5);
  if (items.size() > 64) items.resize(64);
  const nn::LazyDataset pairs =
      core::make_flux_pair_dataset(*data, items, kServeStamp);
  // Serial baseline: re-wrap through get() so stamp rendering cannot
  // leave the training thread.
  const nn::LazyDataset serial(
      pairs.size(), [&pairs](std::int64_t i) { return pairs.get(i); });
  const nn::Dataset& train =
      overlap ? static_cast<const nn::Dataset&>(pairs) : serial;

  Rng rng(8);
  core::BandCnnConfig cfg;
  cfg.input_size = kServeStamp;
  core::BandCnn cnn(cfg, rng);
  nn::Adam opt(cnn.params(), 1e-3f);
  nn::Trainer trainer(cnn, opt, nn::mse_loss);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 16;
  tc.shuffle_seed = 9;

  for (auto _ : state) {
    auto history = trainer.fit(train, nullptr, tc);
    benchmark::DoNotOptimize(history.data());
  }
  state.SetItemsProcessed(state.iterations() * train.size());
  rc.threads = 1;
  rc.prefetch = 1;
  RuntimeConfig::set_current(rc);
}
BENCHMARK_REGISTER_F(DatasetFixture, FluxCnnEpoch)
    ->UseRealTime()
    ->Args({0, 1})
    ->Args({0, 4})
    ->Args({1, 1})
    ->Args({1, 4});

// Epoch ingest: one iteration walks every batch of the flux-pair dataset
// through get_batch_into. Argument 0 renders each sample live from the
// simulator (what every epoch costs without a cache); argument 1 replays
// the same samples from an mmap-backed snapshot written once in setup —
// pure pointer arithmetic plus one memcpy per row, zero allocations
// after the first batch. The /1 over /0 ratio is the per-epoch speedup
// a snapshot buys (pinned in BENCH_SNAPSHOT.json); the batches
// themselves are bitwise identical on both paths.
BENCHMARK_DEFINE_F(DatasetFixture, EpochIngest)(benchmark::State& state) {
  const bool replay = state.range(0) != 0;
  std::vector<std::int64_t> samples(32);
  for (std::int64_t k = 0; k < 32; ++k) samples[k] = k;
  auto items = core::enumerate_flux_pairs(*data, samples, 27.5);
  if (items.size() > 64) items.resize(64);
  const nn::LazyDataset pairs =
      core::make_flux_pair_dataset(*data, items, kServeStamp);
  std::unique_ptr<::sne::data::SnapshotDataset> snap;
  if (replay) {
    const std::string path = testing_snapshot_path();
    ::sne::data::write_snapshot(path, pairs, 16);
    snap = std::make_unique<::sne::data::SnapshotDataset>(path);
  }
  const nn::Dataset& src =
      replay ? static_cast<const nn::Dataset&>(*snap) : pairs;

  std::vector<std::int64_t> order(static_cast<std::size_t>(src.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::int64_t>(i);
  }
  nn::Sample batch;
  for (auto _ : state) {
    for (std::size_t first = 0; first < order.size(); first += 16) {
      const std::size_t count = std::min<std::size_t>(16, order.size() - first);
      src.get_batch_into(order, first, count, batch);
      benchmark::DoNotOptimize(batch.x.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * src.size());
}
BENCHMARK_REGISTER_F(DatasetFixture, EpochIngest)
    ->UseRealTime()
    ->Arg(0)
    ->Arg(1);

// Instrumentation overhead: the same flux-CNN epoch with obs tracing
// disabled (argument 0 — every span is a single relaxed atomic load) and
// enabled (argument 1 — spans are recorded into per-thread buffers).
// The /0 and /1 rows should agree to within ~1%; the gap IS the cost of
// shipping the telemetry layer always-on.
BENCHMARK_DEFINE_F(DatasetFixture, FluxCnnEpochObsOverhead)
(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  std::vector<std::int64_t> samples(32);
  for (std::int64_t k = 0; k < 32; ++k) samples[k] = k;
  auto items = core::enumerate_flux_pairs(*data, samples, 27.5);
  if (items.size() > 64) items.resize(64);
  const nn::LazyDataset pairs =
      core::make_flux_pair_dataset(*data, items, kServeStamp);

  Rng rng(8);
  core::BandCnnConfig cfg;
  cfg.input_size = kServeStamp;
  core::BandCnn cnn(cfg, rng);
  nn::Adam opt(cnn.params(), 1e-3f);
  nn::Trainer trainer(cnn, opt, nn::mse_loss);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 16;
  tc.shuffle_seed = 9;

  if (traced) obs::enable();
  for (auto _ : state) {
    auto history = trainer.fit(pairs, nullptr, tc);
    benchmark::DoNotOptimize(history.data());
    // Keep the span buffers from growing across iterations so the traced
    // row measures recording cost, not reallocation of an ever-larger log.
    if (traced) {
      state.PauseTiming();
      obs::reset();
      obs::enable();
      state.ResumeTiming();
    }
  }
  if (traced) {
    obs::disable();
    obs::reset();
  }
  state.SetItemsProcessed(state.iterations() * pairs.size());
}
BENCHMARK_REGISTER_F(DatasetFixture, FluxCnnEpochObsOverhead)
    ->UseRealTime()
    ->Arg(0)
    ->Arg(1);

BENCHMARK_F(DatasetFixture, MeasuredLightCurve)(benchmark::State& state) {
  std::int64_t i = 0;
  for (auto _ : state) {
    auto lc = data->measured_light_curve(i % 32);
    benchmark::DoNotOptimize(lc.data());
    ++i;
  }
}

void BM_RocCurve(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> scores, labels;
  for (int i = 0; i < 10000; ++i) {
    const bool pos = rng.bernoulli(0.5);
    scores.push_back(static_cast<float>(rng.normal(pos ? 1.0 : 0.0, 1.0)));
    labels.push_back(pos ? 1.0f : 0.0f);
  }
  for (auto _ : state) {
    const eval::RocCurve curve = eval::compute_roc(scores, labels);
    benchmark::DoNotOptimize(curve.auc);
  }
}
BENCHMARK(BM_RocCurve);

}  // namespace
}  // namespace sne

BENCHMARK_MAIN();
