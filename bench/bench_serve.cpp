// bench_serve — paired daemon throughput benchmark: BM_ServeSingles
// (one request in flight: every request pays a full socket round trip
// and a batch-of-one inference) vs BM_ServeBatched (a pipelined window
// of requests in flight on the same connection, so the deadline/size
// batcher amortizes per-batch overhead across whole batches). Both run
// the identical model over the identical unix socket server; the
// speedup column is the micro-batching win pinned in BENCH_SERVE.json.
//
// Scale knobs: SNE_SERVE_REQUESTS (round trips per scenario),
// SNE_SERVE_WINDOW (in-flight depth for the batched scenario),
// SNE_SERVE_MAX_BATCH / SNE_SERVE_MAX_DELAY_US (server batcher).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "infer/plan.h"
#include "nn/nn.h"
#include "serve/client.h"
#include "serve/server.h"
#include "tensor/env.h"
#include "tensor/rng.h"

using namespace sne;

namespace {

constexpr std::int64_t kIn = 512;
constexpr std::int64_t kHidden = 256;
constexpr std::int64_t kOut = 2;

double run_scenario(const std::string& unix_path, std::int64_t requests,
                    std::int64_t window, serve::ServerStats* stats_out,
                    const serve::ScoreServer& server) {
  serve::ScoreClient client = serve::ScoreClient::connect_unix(unix_path);
  std::vector<float> x(static_cast<std::size_t>(kIn));
  Rng rng(11);
  for (auto& v : x) v = rng.uniform(-1.0f, 1.0f);

  const auto t0 = std::chrono::steady_clock::now();
  std::int64_t sent = 0;
  std::int64_t received = 0;
  while (received < requests) {
    while (sent < requests && sent - received < window) {
      client.send_request(static_cast<std::uint64_t>(sent), x);
      ++sent;
    }
    (void)client.recv_response();
    ++received;
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  if (stats_out != nullptr) *stats_out = server.stats();
  return static_cast<double>(requests) / dt.count();
}

}  // namespace

int main() {
  const std::int64_t requests = env::int64("SERVE_REQUESTS", 2000);
  const std::int64_t window = env::int64("SERVE_WINDOW", 64);

  Rng rng(3);
  nn::Sequential net;
  net.emplace<nn::Linear>(kIn, kHidden, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(kHidden, kOut, rng);
  net.set_training(false);
  auto plan =
      std::make_shared<const infer::InferencePlan>(net, Shape{kIn});

  serve::ScoreServerConfig cfg;
  cfg.unix_path = "/tmp/sne_bench_serve.sock";
  cfg.batcher.max_batch = env::int64("SERVE_MAX_BATCH", 32);
  cfg.batcher.max_delay_us = env::int64("SERVE_MAX_DELAY_US", 500);
  cfg.batcher.max_queue = 4096;

  std::printf("bench_serve: %lld requests, window %lld, max_batch %lld, "
              "max_delay %lld us, sample %lldf -> %lldf\n\n",
              static_cast<long long>(requests),
              static_cast<long long>(window),
              static_cast<long long>(cfg.batcher.max_batch),
              static_cast<long long>(cfg.batcher.max_delay_us),
              static_cast<long long>(kIn), static_cast<long long>(kOut));

  double singles_rps = 0.0;
  double batched_rps = 0.0;
  {
    serve::ScorerSpec spec;
    spec.plan = plan;
    serve::ScoreServer server(cfg, std::move(spec));
    server.start();
    serve::ServerStats stats;
    singles_rps = run_scenario(cfg.unix_path, requests, 1, &stats, server);
    server.stop();
    std::printf("BM_ServeSingles   %9.0f req/s   mean fill %5.2f   "
                "p50 %.3f ms   p99 %.3f ms\n",
                singles_rps, stats.mean_batch_fill, stats.p50_ms,
                stats.p99_ms);
  }
  {
    serve::ScorerSpec spec;
    spec.plan = plan;
    serve::ScoreServer server(cfg, std::move(spec));
    server.start();
    serve::ServerStats stats;
    batched_rps =
        run_scenario(cfg.unix_path, requests, window, &stats, server);
    server.stop();
    std::printf("BM_ServeBatched   %9.0f req/s   mean fill %5.2f   "
                "p50 %.3f ms   p99 %.3f ms\n",
                batched_rps, stats.mean_batch_fill, stats.p50_ms,
                stats.p99_ms);
  }
  std::printf("\nbatched/singles speedup: %.2fx\n",
              batched_rps / singles_rps);
  return 0;
}
