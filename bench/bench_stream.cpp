// bench_stream — whole-night alert-stream throughput: BM_JointAll
// (no per-alert tiers: every candidate completes the gate and the joint
// image→type model scores the entire night) vs BM_Cascade (the trained
// tier-1 real/bogus CNN rejects the bogus-dominated alert stream first,
// so the joint model only sees the few surviving candidates). Both arms
// pull the identical NightStream — same pool, same arrival schedule,
// same alerts — so the stamps/second ratio is purely the cascade win,
// pinned in BENCH_STREAM.json.
//
// The night is synthesized streaming (pool-cached renders, per-alert
// bogus injection), never materialized: the bench also reports the
// process peak RSS next to what materializing the night up front would
// cost, which grows with SNE_STREAM_CANDIDATES while the RSS does not.
//
// Scale knobs: SNE_STREAM_CANDIDATES (night length), SNE_STREAM_POOL
// (rendered candidate pool), SNE_STREAM_FIELD, SNE_STREAM_BATCH.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/inference.h"
#include "core/joint_model.h"
#include "sim/dataset_builder.h"
#include "stream/cascade.h"
#include "stream/night.h"
#include "stream/tier1.h"
#include "tensor/env.h"
#include "tensor/rng.h"

using namespace sne;

namespace {

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

struct ArmResult {
  double stamps_per_s = 0.0;
  std::int64_t joint_in = 0;      ///< candidates the joint tier scored
  std::int64_t joint_passed = 0;
};

}  // namespace

int main() {
  const std::int64_t candidates = env::int64("STREAM_CANDIDATES", 2048);
  const std::int64_t pool = env::int64("STREAM_POOL", 48);
  const std::int64_t field = env::int64("STREAM_FIELD", 32);
  const std::int64_t batch = env::int64("STREAM_BATCH", 64);
  constexpr std::int64_t kStamp = 36;
  constexpr std::int64_t kCrop = 21;

  sim::SnDataset::Config dcfg;
  dcfg.num_samples = 24;
  dcfg.seed = 9;
  dcfg.catalog.count = 150;
  const sim::SnDataset data = sim::SnDataset::build(dcfg);
  std::vector<std::int64_t> samples(static_cast<std::size_t>(data.size()));
  for (std::int64_t i = 0; i < data.size(); ++i) {
    samples[static_cast<std::size_t>(i)] = i;
  }

  // Tier 1 trained for real (bright-epoch SN) vs bogus (injected
  // artifact); the joint model is seeded untrained — its per-candidate
  // cost, which is what the bench measures, does not depend on weights.
  stream::Tier1Config t1cfg;
  t1cfg.crop = kCrop;
  const auto tier1 = stream::train_tier1(data, samples, t1cfg);
  Rng rng(7);
  core::JointModelConfig jcfg;
  jcfg.cnn.input_size = kStamp;
  const core::JointModel joint(jcfg, rng);

  stream::NightConfig ncfg;
  ncfg.candidates = candidates;
  ncfg.pool = pool;
  ncfg.field = field;
  ncfg.batch = batch;
  ncfg.stamp = kStamp;
  ncfg.crop = kCrop;
  // Survey-realistic alert stream: transients are the rare class; the
  // cascade's whole job is shielding the joint model from the rest.
  ncfg.real_fraction = 0.02;
  ncfg.seed = 2026;
  stream::NightStream night(data, samples, ncfg);

  std::printf("bench_stream: %lld candidates (%lld alerts), pool %lld, "
              "field %lld, batch %lld, stamp %lld, crop %lld\n\n",
              static_cast<long long>(candidates),
              static_cast<long long>(night.total_alerts()),
              static_cast<long long>(pool), static_cast<long long>(field),
              static_cast<long long>(batch), static_cast<long long>(kStamp),
              static_cast<long long>(kCrop));

  // Warm pass (untimed): renders the candidate pool once; reset() keeps
  // it, so both timed arms replay the same cached imagery.
  {
    stream::AlertBatch chunk;
    while (night.next(chunk)) {
    }
  }

  const auto t1plan = stream::compile_tier1_plan(*tier1);
  const auto run_arm = [&](bool with_tier1) {
    night.reset();
    stream::CascadeConfig cfg;
    if (with_tier1) {
      cfg.stages.push_back(stream::CascadeStage{
          "tier1", t1plan, stream::AlertInput::Tier1, 0.0f, false});
    }
    cfg.joint = [&] { return core::make_session(joint); };
    cfg.max_pending = 4 * field;
    const auto t0 = std::chrono::steady_clock::now();
    const stream::FilterCascade cascade = stream::run_night(night, cfg);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    ArmResult result;
    result.stamps_per_s =
        static_cast<double>(night.total_alerts()) / dt.count();
    const eval::CascadeTierCounts& joint_tier = cascade.counts().tiers.back();
    result.joint_in = joint_tier.in;
    result.joint_passed = joint_tier.passed;
    return result;
  };

  const ArmResult baseline = run_arm(false);
  std::printf("BM_JointAll   %9.0f stamps/s   joint scored %lld/%lld "
              "candidates\n",
              baseline.stamps_per_s, static_cast<long long>(baseline.joint_in),
              static_cast<long long>(candidates));
  const ArmResult cascade = run_arm(true);
  std::printf("BM_Cascade    %9.0f stamps/s   joint scored %lld/%lld "
              "candidates\n",
              cascade.stamps_per_s, static_cast<long long>(cascade.joint_in),
              static_cast<long long>(candidates));

  // Memory: what a materialize-then-score night would hold vs what the
  // streaming pipeline actually held (pool + in-flight batches).
  const double night_mb =
      static_cast<double>(night.total_alerts()) *
      static_cast<double>(kCrop * kCrop + 2 * kStamp * kStamp +
                          stream::meta::kColumns) *
      static_cast<double>(sizeof(float)) / (1024.0 * 1024.0);
  std::printf("\ncascade/joint-all speedup: %.2fx\n",
              cascade.stamps_per_s / baseline.stamps_per_s);
  std::printf("peak RSS %.1f MB (materialized night would be %.1f MB of "
              "alerts alone)\n",
              peak_rss_mb(), night_mb);
  return 0;
}
