// bench_table1_image_size — reproduces Table 1: mean flux-estimation loss
// (magnitude², ×10⁻³ in the paper's units) for CNN input sizes
// {36, 44, 52, 60, 65}. The paper's trend: larger inputs perform better,
// because background pixels help calibrate the local noise level.
//
// Absolute losses differ from the paper (different substrate, scaled-down
// training); the reproduced observable is the size→loss ordering.
#include <cstdio>

#include "common.h"

using namespace sne;

int main() {
  eval::print_banner(
      "Table 1 — mean loss for image sizes",
      "Flux CNN trained per input size; losses in mag^2.\n"
      "Scale with SNE_SAMPLES / SNE_PAIRS / SNE_EPOCHS.");

  const sim::SnDataset data = bench::make_dataset(400);
  const bench::Splits splits = bench::paper_splits(data, 1);

  bench::FluxRunConfig base;
  base.train_pairs = env::int64("PAIRS", 1500);
  base.val_pairs = base.train_pairs / 4;
  base.test_pairs = base.train_pairs / 4;
  base.epochs = env::int64("EPOCHS", 4);

  // SNE_SEEDS > 1 averages the whole row over independent inits — the
  // per-size differences are comparable to seed noise (they are in the
  // paper's Table 1 too, where the ± std columns overlap).
  const std::int64_t n_seeds = env::int64("SEEDS", 1);

  eval::TextTable table(
      {"size", "train loss", "val loss", "test loss", "test MAE (mag)"});
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (const std::int64_t size : {36, 44, 52, 60, 65}) {
    const eval::Stopwatch timer;
    double train_m = 0.0, train_s = 0.0, val_m = 0.0, val_s = 0.0;
    double test_loss = 0.0, test_mae = 0.0;
    for (std::int64_t s = 0; s < n_seeds; ++s) {
      bench::FluxRunConfig cfg = base;
      cfg.input_size = size;
      cfg.seed = 5 + static_cast<std::uint64_t>(s) * 101;
      const bench::FluxRun run = bench::train_flux_cnn(data, splits, cfg);
      train_m += run.train_loss_mean / n_seeds;
      train_s += run.train_loss_std / n_seeds;
      val_m += run.val_loss_mean / n_seeds;
      val_s += run.val_loss_std / n_seeds;
      test_loss += run.test_loss / n_seeds;
      test_mae += run.test_mae / n_seeds;
    }
    table.add_row({std::to_string(size) + "x" + std::to_string(size),
                   eval::fmt_pm(train_m, train_s, 3),
                   eval::fmt_pm(val_m, val_s, 3), eval::fmt(test_loss, 3),
                   eval::fmt(test_mae, 3)});
    std::printf("  [size %lld done in %.1fs]\n",
                static_cast<long long>(size), timer.seconds());
    std::fflush(stdout);
    if (size == 36) first_loss = test_loss;
    if (size == 65) last_loss = test_loss;
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("paper: test loss decreases with size "
              "(11.5e-3 @36 -> 7.7e-3 @65, relative drop ~33%%)\n");
  std::printf("ours:  36x36 %.3f -> 65x65 %.3f (%s)\n", first_loss, last_loss,
              last_loss < first_loss ? "reproduced: larger is better"
                                     : "trend not reproduced at this scale");
  return 0;
}
