// bench_table2_comparison — reproduces Table 2: the proposed classifier
// against re-implementations of the literature baselines, all evaluated
// on one common synthetic dataset (the paper compares against numbers the
// baselines reported on their own datasets; running everything on the
// same data makes the regime comparison cleaner, not weaker).
//
// Rows:
//   Poznanski2007  — Bayesian single-epoch template fit, ±redshift
//   Sullivan-style — multi-epoch χ² template fit (the classical pipeline)
//   Lochner2016    — light-curve features + random forest, ±redshift
//   Moller2016     — forest on Ia template-fit parameters (+redshift)
//   Charnock2016   — GRU over the measured flux sequence, ±redshift
//   Proposed       — highway classifier on (mag, date) features, single
//                    and 4-epoch, no redshift; with measured fluxes
//                    (realistic) and ground-truth fluxes (upper bound)
//
// Expected shape (paper): single-epoch-no-z template fitting is poor;
// the proposed single-epoch method is comparable to multi-epoch
// baselines; the proposed 4-epoch variant is best.
#include <cmath>
#include <cstdio>

#include <memory>

#include "baselines/chi2fit.h"
#include "baselines/features.h"
#include "baselines/forest.h"
#include "baselines/poznanski.h"
#include "baselines/rnn.h"
#include "common.h"

using namespace sne;

namespace {

std::vector<float> labels_of(const sim::SnDataset& data,
                             const std::vector<std::int64_t>& idx) {
  std::vector<float> y;
  y.reserve(idx.size());
  for (const std::int64_t i : idx) y.push_back(data.is_ia(i) ? 1.0f : 0.0f);
  return y;
}

std::vector<int> int_labels_of(const sim::SnDataset& data,
                               const std::vector<std::int64_t>& idx) {
  std::vector<int> y;
  y.reserve(idx.size());
  for (const std::int64_t i : idx) y.push_back(data.is_ia(i) ? 1 : 0);
  return y;
}

baselines::TemplateGridConfig bench_grid() {
  baselines::TemplateGridConfig g;
  g.z_step = 0.15;
  g.peak_step = 5.0;
  g.ia_stretches = {0.85, 1.0, 1.15};
  return g;
}

// Moller-style features: parameters of the best-fit Ia template plus fit
// quality, per sample.
std::vector<std::vector<float>> moller_features(
    const sim::SnDataset& data, const std::vector<std::int64_t>& idx,
    const baselines::TemplateGrid& grid) {
  std::vector<std::vector<float>> rows;
  rows.reserve(idx.size());
  for (const std::int64_t i : idx) {
    std::vector<sim::FluxMeasurement> points;
    for (const astro::Band b : astro::kAllBands) {
      for (std::int64_t e = 0; e < 4; ++e) {
        points.push_back(data.measured_point(i, b, e));
      }
    }
    baselines::GridEntry ia_entry;
    const baselines::GridFit ia = grid.best_fit_of_class(true, points,
                                                         &ia_entry);
    const baselines::GridFit cc = grid.best_fit_of_class(false, points);
    rows.push_back({static_cast<float>(ia_entry.redshift),
                    static_cast<float>(ia_entry.stretch),
                    static_cast<float>(ia_entry.peak_mjd / 60.0),
                    static_cast<float>(std::log10(ia.amplitude + 1e-3)),
                    static_cast<float>(ia.chi2 / 20.0),
                    static_cast<float>((cc.chi2 - ia.chi2) / 20.0),
                    static_cast<float>(data.host(i).photo_z)});
  }
  return rows;
}

std::unique_ptr<baselines::CharnockRnn> train_gru(
    const sim::SnDataset& data, const std::vector<std::int64_t>& train_idx,
    bool include_z, std::int64_t epochs, std::uint64_t seed) {
  baselines::CharnockRnnConfig cfg;
  cfg.hidden = 24;
  cfg.include_redshift = include_z;
  cfg.seed = seed;
  Rng rng(seed);
  auto model_ptr = std::make_unique<baselines::CharnockRnn>(cfg, rng);
  baselines::CharnockRnn& model = *model_ptr;
  const nn::VectorDataset train = nn::materialize(
      baselines::make_sequence_dataset(data, train_idx, cfg));
  nn::Adam opt(model.params(), 3e-3f);
  nn::Trainer trainer(model, opt, nn::bce_with_logits_loss);
  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 64;
  tc.grad_clip = 5.0f;
  tc.shuffle_seed = seed;
  trainer.fit(train, nullptr, tc);
  return model_ptr;
}

std::vector<float> gru_scores(baselines::CharnockRnn& model,
                              const sim::SnDataset& data,
                              const std::vector<std::int64_t>& test_idx) {
  baselines::CharnockRnnConfig cfg = model.config();
  const nn::LazyDataset test =
      baselines::make_sequence_dataset(data, test_idx, cfg);
  model.set_training(false);
  std::vector<float> scores;
  for (std::int64_t k = 0; k < test.size(); ++k) {
    const nn::Sample s = test.get(k);
    scores.push_back(
        model.forward(s.x.reshaped({1, s.x.extent(0), s.x.extent(1)}))[0]);
  }
  return scores;
}

}  // namespace

int main() {
  eval::print_banner(
      "Table 2 — comparison with existing methods",
      "All methods on one common synthetic dataset; AUC on the test split\n"
      "(accuracy at the best threshold for the Poznanski rows, matching\n"
      "how that paper reports). Scale with SNE_SAMPLES / SNE_EPOCHS.");

  const sim::SnDataset data = bench::make_dataset(2000);
  const bench::Splits splits = bench::paper_splits(data, 5);
  const auto test_labels = labels_of(data, splits.test);
  const std::int64_t nn_epochs = env::int64("EPOCHS", 30);

  eval::TextTable table({"method", "features", "AUC", "best acc"});
  const eval::Stopwatch total;

  // --- Poznanski 2007 (single-epoch template Bayes) ---
  {
    const baselines::TemplateGridConfig grid = bench_grid();
    for (const bool with_z : {true, false}) {
      baselines::PoznanskiConfig cfg;
      cfg.grid = grid;
      cfg.use_redshift = with_z;
      const baselines::PoznanskiClassifier clf(cfg);
      const auto scores = clf.score(data, splits.test);
      table.add_row({"Poznanski2007 (reimpl)",
                     with_z ? "single-epoch + z" : "single-epoch, no z",
                     eval::fmt(eval::auc(scores, test_labels), 3),
                     eval::fmt(eval::best_accuracy(scores, test_labels), 3)});
    }
    std::printf("  [poznanski done %.1fs]\n", total.seconds());
  }

  // --- Sullivan-style multi-epoch chi^2 template fit ---
  {
    baselines::Chi2FitConfig cfg;
    cfg.grid = bench_grid();
    const baselines::Chi2FitClassifier clf(cfg);
    const auto scores = clf.score(data, splits.test);
    table.add_row({"Template chi2 (Sullivan-style)", "multi-epoch (4), no z",
                   eval::fmt(eval::auc(scores, test_labels), 3),
                   eval::fmt(eval::best_accuracy(scores, test_labels), 3)});
    std::printf("  [chi2 fit done %.1fs]\n", total.seconds());
  }

  // --- Lochner 2016 (features + random forest) ---
  for (const bool with_z : {true, false}) {
    baselines::LcFeatureExtractorConfig fc;
    fc.include_redshift = with_z;
    const baselines::LcFeatureExtractor extractor(fc);
    baselines::ForestConfig forest_cfg;
    forest_cfg.num_trees = 120;
    baselines::RandomForest forest(forest_cfg);
    forest.fit(extractor.extract_all(data, splits.train),
               int_labels_of(data, splits.train));
    const auto scores =
        forest.predict_proba_all(extractor.extract_all(data, splits.test));
    table.add_row({"Lochner2016 (reimpl)",
                   with_z ? "multi-epoch (4) + z" : "multi-epoch (4), no z",
                   eval::fmt(eval::auc(scores, test_labels), 3),
                   eval::fmt(eval::best_accuracy(scores, test_labels), 3)});
  }
  std::printf("  [lochner forest done %.1fs]\n", total.seconds());

  // --- Moller 2016 (forest on template-fit parameters) ---
  {
    const baselines::TemplateGrid grid(bench_grid());
    baselines::ForestConfig forest_cfg;
    forest_cfg.num_trees = 120;
    baselines::RandomForest forest(forest_cfg);
    forest.fit(moller_features(data, splits.train, grid),
               int_labels_of(data, splits.train));
    const auto scores = forest.predict_proba_all(
        moller_features(data, splits.test, grid));
    table.add_row({"Moller2016 (reimpl)", "multi-epoch (4) + z",
                   eval::fmt(eval::auc(scores, test_labels), 3),
                   eval::fmt(eval::best_accuracy(scores, test_labels), 3)});
    std::printf("  [moller forest done %.1fs]\n", total.seconds());
  }

  // --- Charnock 2016 (GRU) ---
  for (const bool with_z : {true, false}) {
    const auto model = train_gru(data, splits.train, with_z, nn_epochs / 2,
                                 with_z ? 41 : 42);
    const auto scores = gru_scores(*model, data, splits.test);
    table.add_row({"Charnock2016 (reimpl)",
                   with_z ? "multi-epoch (4) + z" : "multi-epoch (4), no z",
                   eval::fmt(eval::auc(scores, test_labels), 3),
                   eval::fmt(eval::best_accuracy(scores, test_labels), 3)});
  }
  std::printf("  [charnock gru done %.1fs]\n", total.seconds());

  // --- Proposed (highway classifier on per-band (mag, date) features) ---
  double proposed_1 = 0.0;
  double proposed_4 = 0.0;
  for (const std::int64_t k : {std::int64_t{1}, std::int64_t{4}}) {
    for (const bool noisy : {true, false}) {
      core::FeatureConfig features;
      features.epochs = k;
      features.noisy = noisy;
      const bench::ClassifierRun run = bench::train_lc_classifier(
          data, splits, features, 100, nn_epochs,
          static_cast<std::uint64_t>(300 + k * 2 + (noisy ? 1 : 0)));
      const std::string tag = noisy ? " (measured flux)" : " (true flux)";
      table.add_row({"Proposed" + tag,
                     (k == 1 ? std::string("single-epoch, no z")
                             : std::string("multi-epoch (4), no z")),
                     eval::fmt(run.auc, 3),
                     eval::fmt(eval::best_accuracy(run.scores, run.labels),
                               3)});
      if (noisy && k == 1) proposed_1 = run.auc;
      if (noisy && k == 4) proposed_4 = run.auc;
    }
  }
  std::printf("  [proposed done %.1fs]\n\n", total.seconds());

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "paper shape: Poznanski-no-z << proposed single-epoch ~= multi-epoch\n"
      "baselines < proposed 4-epoch (0.958 vs 0.995 on their dataset).\n"
      "ours: proposed single-epoch %.3f, 4-epoch %.3f\n",
      proposed_1, proposed_4);
  return 0;
}
