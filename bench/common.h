// common.h — shared scaffolding for the experiment benches. Every bench
// reproduces one table or figure of the paper at a default scale sized
// for a single CPU core; environment variables (SNE_SAMPLES, SNE_EPOCHS,
// SNE_PAIRS, …) raise the scale toward the paper's 12000-sample runs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/band_cnn.h"
#include "core/joint_model.h"
#include "core/lc_classifier.h"
#include "core/lc_features.h"
#include "core/pipeline.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/roc.h"
#include "eval/tables.h"
#include "nn/nn.h"
#include "sim/dataset_builder.h"

namespace sne::bench {

/// The paper's split: 80 % train, 10 % validation, 10 % test.
struct Splits {
  std::vector<std::int64_t> train;
  std::vector<std::int64_t> val;
  std::vector<std::int64_t> test;
};

inline Splits paper_splits(const sim::SnDataset& data, std::uint64_t seed) {
  Rng rng(seed);
  const nn::SplitIndices s = nn::split_indices(data.size(), 0.8, 0.1, rng);
  return {s.train, s.val, s.test};
}

/// Builds the shared synthetic dataset at bench scale.
inline sim::SnDataset make_dataset(std::int64_t default_samples,
                                   std::uint64_t seed = 20171130) {
  sim::SnDataset::Config cfg;
  cfg.num_samples = env::int64("SAMPLES", default_samples);
  cfg.seed = seed;
  cfg.catalog.count = std::max<std::int64_t>(1000, cfg.num_samples);
  return sim::SnDataset::build(cfg);
}

/// Trains the light-curve classifier on features and returns test scores.
struct ClassifierRun {
  std::vector<float> scores;  ///< test logits
  std::vector<float> labels;
  double auc = 0.0;
  std::vector<nn::EpochStats> history;
};

inline ClassifierRun train_lc_classifier(
    const sim::SnDataset& data, const Splits& splits,
    const core::FeatureConfig& features, std::int64_t hidden_units,
    std::int64_t epochs, std::uint64_t seed, bool use_highway = true) {
  // Feature vectors are tiny; materialize once instead of re-deriving
  // them from the light-curve model every epoch.
  const nn::VectorDataset train = nn::materialize(
      core::make_lc_feature_dataset(data, splits.train, features));
  const nn::VectorDataset val = nn::materialize(
      core::make_lc_feature_dataset(data, splits.val, features));
  const nn::VectorDataset test = nn::materialize(
      core::make_lc_feature_dataset(data, splits.test, features));

  Rng rng(seed);
  core::LcClassifierConfig cfg;
  cfg.input_dim = core::feature_dim(features);
  cfg.hidden_units = hidden_units;
  cfg.use_highway = use_highway;
  core::LcClassifier model(cfg, rng);
  nn::Adam opt(model.params(), 3e-3f);
  nn::Trainer trainer(model, opt, nn::bce_with_logits_loss,
                      nn::binary_accuracy);

  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 64;
  tc.shuffle_seed = seed + 1;

  ClassifierRun run;
  run.history = trainer.fit(train, &val, tc);

  const Tensor scores = trainer.predict(test);
  run.scores.assign(scores.data(), scores.data() + scores.size());
  for (const std::int64_t i : splits.test) {
    run.labels.push_back(data.is_ia(i) ? 1.0f : 0.0f);
  }
  run.auc = eval::auc(run.scores, run.labels);
  return run;
}

/// One flux-CNN training run (Table 1 rows, Fig. 8, ablations).
struct FluxRun {
  double train_loss_mean = 0.0;  ///< over the last half of the epochs
  double train_loss_std = 0.0;
  double val_loss_mean = 0.0;
  double val_loss_std = 0.0;
  double test_loss = 0.0;
  double test_mae = 0.0;
  std::vector<float> predictions;  ///< test magnitudes
  std::vector<float> targets;
};

struct FluxRunConfig {
  std::int64_t input_size = 60;
  std::int64_t train_pairs = 1200;
  std::int64_t val_pairs = 300;
  std::int64_t test_pairs = 300;
  std::int64_t epochs = 4;
  std::uint64_t seed = 5;
  core::PoolKind pool = core::PoolKind::Max;
  bool signed_log = true;
  /// Pairs fainter than this are excluded (the paper's schedule keeps
  /// its supernovae bright across the season; epochs far below the
  /// detection limit have no signal to regress).
  double max_target_mag = 26.5;
  float learning_rate = 2e-3f;
  std::int64_t batch_size = 16;
};

inline FluxRun train_flux_cnn(const sim::SnDataset& data, const Splits& splits,
                              const FluxRunConfig& cfg) {
  auto subset_items = [&](const std::vector<std::int64_t>& samples,
                          std::int64_t budget) {
    auto items = core::enumerate_flux_pairs(data, samples,
                                            cfg.max_target_mag);
    if (static_cast<std::int64_t>(items.size()) > budget) {
      items.resize(static_cast<std::size_t>(budget));
    }
    return items;
  };
  // Stamps are pre-cropped to the network input size: rendering happens on
  // the full 65×65 grid, so larger inputs genuinely see more background.
  const nn::LazyDataset train = core::make_flux_pair_dataset(
      data, subset_items(splits.train, cfg.train_pairs), cfg.input_size);
  const nn::LazyDataset val = core::make_flux_pair_dataset(
      data, subset_items(splits.val, cfg.val_pairs), cfg.input_size);
  const nn::LazyDataset test = core::make_flux_pair_dataset(
      data, subset_items(splits.test, cfg.test_pairs), cfg.input_size);

  Rng rng(cfg.seed);
  core::BandCnnConfig mc;
  mc.input_size = cfg.input_size;
  mc.pool = cfg.pool;
  mc.signed_log = cfg.signed_log;
  core::BandCnn model(mc, rng);
  nn::Adam opt(model.params(), cfg.learning_rate);
  nn::Trainer trainer(model, opt, nn::mse_loss);

  nn::TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.batch_size = cfg.batch_size;
  tc.shuffle_seed = cfg.seed + 1;
  const auto history = trainer.fit(train, &val, tc);

  FluxRun run;
  {
    std::vector<double> tl, vl;
    for (std::size_t e = history.size() / 2; e < history.size(); ++e) {
      tl.push_back(history[e].train_loss);
      vl.push_back(history[e].val_loss);
    }
    const eval::MeanStd t = eval::mean_std(tl);
    const eval::MeanStd v = eval::mean_std(vl);
    run.train_loss_mean = t.mean;
    run.train_loss_std = t.stddev;
    run.val_loss_mean = v.mean;
    run.val_loss_std = v.stddev;
  }

  const Tensor pred = trainer.predict(test);
  run.predictions.assign(pred.data(), pred.data() + pred.size());
  run.targets.reserve(run.predictions.size());
  for (std::int64_t k = 0; k < test.size(); ++k) {
    run.targets.push_back(test.get(k).y[0]);
  }
  run.test_loss = eval::mse(run.predictions, run.targets);
  run.test_mae = eval::mae(run.predictions, run.targets);
  return run;
}

/// Prints a compact ROC curve (decile FPR grid) for a score set.
inline void print_roc(const std::vector<float>& scores,
                      const std::vector<float>& labels,
                      const std::string& label) {
  const eval::RocCurve curve = eval::compute_roc(scores, labels);
  std::printf("ROC [%s]  AUC = %.4f\n", label.c_str(), curve.auc);
  std::printf("  fpr: ");
  for (const double f : {0.01, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    std::printf("%5.2f ", f);
  }
  std::printf("\n  tpr: ");
  for (const double f : {0.01, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    std::printf("%5.3f ", eval::tpr_at_fpr(curve, f));
  }
  std::printf("\n");
}

}  // namespace sne::bench
