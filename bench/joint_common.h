// joint_common.h — shared machinery for the joint-model benches
// (Figs. 11 and 12): component pre-training, joint assembly, and joint
// training with per-epoch statistics.
#pragma once

#include <memory>
#include <utility>

#include "common.h"
#include "core/inference.h"

namespace sne::bench {

struct JointBenchConfig {
  std::int64_t stamp = 44;        ///< CNN input size (paper used 60)
  std::int64_t pretrain_pairs = 1200;
  std::int64_t pretrain_epochs = 3;
  std::int64_t classifier_epochs = 30;
  std::int64_t joint_epochs = 4;
  std::int64_t epoch_subset = 0;  ///< which single-epoch subset feeds it
  std::uint64_t seed = 600;
};

inline JointBenchConfig joint_config_from_env() {
  JointBenchConfig cfg;
  cfg.stamp = env::int64("SIZE", cfg.stamp);
  cfg.pretrain_pairs = env::int64("PAIRS", cfg.pretrain_pairs);
  cfg.pretrain_epochs = env::int64("PRETRAIN_EPOCHS",
                                        cfg.pretrain_epochs);
  cfg.joint_epochs = env::int64("EPOCHS", cfg.joint_epochs);
  return cfg;
}

inline core::BandCnnConfig joint_cnn_config(const JointBenchConfig& cfg) {
  core::BandCnnConfig mc;
  mc.input_size = cfg.stamp;
  return mc;
}

/// Pre-trains the band CNN on flux pairs from the train split.
inline std::unique_ptr<core::BandCnn> pretrain_cnn(
    const sim::SnDataset& data, const Splits& splits,
    const JointBenchConfig& cfg) {
  Rng rng(cfg.seed);
  auto cnn_ptr = std::make_unique<core::BandCnn>(joint_cnn_config(cfg), rng);
  core::BandCnn& cnn = *cnn_ptr;
  auto items = core::enumerate_flux_pairs(data, splits.train, 26.5);
  if (static_cast<std::int64_t>(items.size()) > cfg.pretrain_pairs) {
    items.resize(static_cast<std::size_t>(cfg.pretrain_pairs));
  }
  const nn::LazyDataset pairs =
      core::make_flux_pair_dataset(data, items, cfg.stamp);
  nn::Adam opt(cnn.params(), 2e-3f);
  nn::Trainer trainer(cnn, opt, nn::mse_loss);
  nn::TrainConfig tc;
  tc.epochs = cfg.pretrain_epochs;
  tc.batch_size = 16;
  tc.shuffle_seed = cfg.seed + 1;
  trainer.fit(pairs, nullptr, tc);
  // Photometric zero-point calibration: a systematic magnitude offset in
  // the pre-trained CNN would shift every feature the transplanted
  // classifier sees and poison the fine-tuning start.
  const double zp = core::calibrate_flux_zero_point(cnn, pairs);
  std::printf("  [flux zero-point correction: %+.3f mag]\n", zp);
  return cnn_ptr;
}

/// Pre-trains the light-curve classifier on ground-truth features.
inline std::unique_ptr<core::LcClassifier> pretrain_classifier(
    const sim::SnDataset& data, const Splits& splits,
    const JointBenchConfig& cfg) {
  Rng rng(cfg.seed + 2);
  core::LcClassifierConfig cc;
  cc.input_dim = 10;
  cc.hidden_units = 100;
  auto clf_ptr = std::make_unique<core::LcClassifier>(cc, rng);
  core::LcClassifier& clf = *clf_ptr;
  // Noisy (measured-flux) features: the classifier must expect the same
  // measurement error the CNN's magnitude estimates will carry, or the
  // transplant starts overconfident.
  core::FeatureConfig features;
  features.noisy = true;
  const nn::VectorDataset train = nn::materialize(
      core::make_lc_feature_dataset(data, splits.train, features));
  nn::Adam opt(clf.params(), 3e-3f);
  nn::Trainer trainer(clf, opt, nn::bce_with_logits_loss);
  nn::TrainConfig tc;
  tc.epochs = cfg.classifier_epochs;
  tc.batch_size = 64;
  tc.shuffle_seed = cfg.seed + 3;
  trainer.fit(train, nullptr, tc);
  return clf_ptr;
}

/// Joint training; returns per-epoch history. The model is trained on the
/// configured single-epoch subset of the train split.
inline std::vector<nn::EpochStats> train_joint(
    core::JointModel& joint, const sim::SnDataset& data, const Splits& splits,
    const JointBenchConfig& cfg, float lr) {
  const nn::LazyDataset train = core::make_joint_dataset(
      data, splits.train, cfg.epoch_subset, cfg.stamp, {});
  const nn::LazyDataset val = core::make_joint_dataset(
      data, splits.val, cfg.epoch_subset, cfg.stamp, {});
  nn::Adam opt(joint.params(), lr);
  nn::Trainer trainer(joint, opt, nn::bce_with_logits_loss,
                      nn::binary_accuracy);
  nn::TrainConfig tc;
  tc.epochs = cfg.joint_epochs;
  tc.batch_size = 16;
  tc.grad_clip = 5.0f;
  tc.shuffle_seed = cfg.seed + 4;
  return trainer.fit(train, &val, tc);
}

/// Multi-epoch ensemble scoring: the joint model is applied to each of
/// the `epochs` single-epoch subsets and the logits averaged — the
/// image-level counterpart of the paper's 4-epoch feature row (its
/// "future work" direction for the joint model).
inline ClassifierRun score_joint_ensemble(core::JointModel& joint,
                                          const sim::SnDataset& data,
                                          const Splits& splits,
                                          const JointBenchConfig& cfg,
                                          std::int64_t epochs) {
  joint.set_training(false);
  infer::JointSession session = core::make_session(joint);
  ClassifierRun run;
  std::vector<double> sums(splits.test.size(), 0.0);
  Tensor logit;
  for (std::int64_t e = 0; e < epochs; ++e) {
    const nn::LazyDataset test =
        core::make_joint_dataset(data, splits.test, e, cfg.stamp, {});
    for (std::int64_t k = 0; k < test.size(); ++k) {
      nn::Sample s = test.get(k);
      const std::int64_t dim = s.x.size();
      session.run(std::move(s.x).reshaped({1, dim}), logit);
      sums[static_cast<std::size_t>(k)] += logit[0];
    }
  }
  for (std::size_t k = 0; k < sums.size(); ++k) {
    run.scores.push_back(
        static_cast<float>(sums[k] / static_cast<double>(epochs)));
    run.labels.push_back(data.is_ia(splits.test[k]) ? 1.0f : 0.0f);
  }
  run.auc = eval::auc(run.scores, run.labels);
  return run;
}

/// Test-split scores of a joint model.
inline ClassifierRun score_joint(core::JointModel& joint,
                                 const sim::SnDataset& data,
                                 const Splits& splits,
                                 const JointBenchConfig& cfg) {
  const nn::LazyDataset test = core::make_joint_dataset(
      data, splits.test, cfg.epoch_subset, cfg.stamp, {});
  joint.set_training(false);
  infer::JointSession session = core::make_session(joint);
  ClassifierRun run;
  Tensor logit;
  for (std::int64_t k = 0; k < test.size(); ++k) {
    nn::Sample s = test.get(k);
    const std::int64_t dim = s.x.size();
    session.run(std::move(s.x).reshaped({1, dim}), logit);
    run.scores.push_back(logit[0]);
    run.labels.push_back(s.y[0]);
  }
  run.auc = eval::auc(run.scores, run.labels);
  return run;
}

}  // namespace sne::bench
