// followup_prioritizer — the paper's motivating use case: only ~100 of
// millions of candidates can get spectroscopic follow-up, so candidates
// must be ranked by P(SNIa) from cheap single-epoch data. This example
// trains the classifier, scores a stream of fresh candidates, and prints
// the follow-up queue with its expected purity.
//
// Run: ./build/examples/followup_prioritizer
#include <algorithm>
#include <cmath>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/inference.h"
#include "core/lc_classifier.h"
#include "core/lc_features.h"
#include "eval/tables.h"
#include "nn/nn.h"
#include "sim/dataset_builder.h"

using namespace sne;

int main() {
  // Historical (labeled) survey data to train on, and tonight's stream.
  sim::SnDataset::Config train_config;
  train_config.num_samples = 800;
  train_config.seed = 101;
  const sim::SnDataset history = sim::SnDataset::build(train_config);

  sim::SnDataset::Config tonight_config;
  tonight_config.num_samples = 60;
  tonight_config.seed = 202;  // different season, different supernovae
  const sim::SnDataset tonight = sim::SnDataset::build(tonight_config);

  // Train on *measured* (noisy) single-epoch photometry — the operational
  // regime: no spectroscopy, no redshift, one visit per band.
  core::FeatureConfig features;
  features.epochs = 1;
  features.noisy = true;

  std::vector<std::int64_t> train_idx(
      static_cast<std::size_t>(history.size()));
  std::iota(train_idx.begin(), train_idx.end(), 0);
  const nn::LazyDataset train =
      core::make_lc_feature_dataset(history, train_idx, features);

  Rng rng(1);
  core::LcClassifierConfig cfg;
  cfg.input_dim = core::feature_dim(features);
  cfg.hidden_units = 100;
  core::LcClassifier model(cfg, rng);
  nn::Adam opt(model.params(), 3e-3f);
  nn::Trainer trainer(model, opt, nn::bce_with_logits_loss);
  nn::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 64;
  std::printf("training on %lld historical candidates...\n",
              static_cast<long long>(history.size()));
  trainer.fit(train, nullptr, tc);

  // Score tonight's candidates through a compiled inference session:
  // the plan is built once, the arena reused for every candidate.
  model.set_training(false);
  infer::InferenceSession scorer = core::make_session(model);
  struct Ranked {
    std::int64_t id;
    double p_ia;
  };
  std::vector<Ranked> queue;
  Tensor logit;
  for (std::int64_t i = 0; i < tonight.size(); ++i) {
    Tensor f = core::lc_features(tonight, i, features);
    const std::int64_t dim = f.size();
    scorer.run(std::move(f).reshaped({1, dim}), logit);
    queue.push_back({i, 1.0 / (1.0 + std::exp(-logit[0]))});
  }
  std::sort(queue.begin(), queue.end(),
            [](const Ranked& a, const Ranked& b) { return a.p_ia > b.p_ia; });

  // Print the top of the follow-up queue (budget: 12 spectra).
  constexpr std::size_t kBudget = 12;
  eval::TextTable table({"rank", "cand", "P(SNIa)", "host z", "true type"});
  int hits = 0;
  for (std::size_t r = 0; r < kBudget && r < queue.size(); ++r) {
    const Ranked& c = queue[r];
    const bool is_ia = tonight.is_ia(c.id);
    if (is_ia) ++hits;
    table.add_row({std::to_string(r + 1), std::to_string(c.id),
                   eval::fmt(c.p_ia, 3),
                   eval::fmt(tonight.host(c.id).photo_z, 2),
                   std::string(astro::sn_type_name(
                       tonight.spec(c.id).sn.type))});
  }
  std::printf("\nfollow-up queue (budget %zu spectra):\n%s\n", kBudget,
              table.to_string().c_str());

  int base_ia = 0;
  for (std::int64_t i = 0; i < tonight.size(); ++i) {
    if (tonight.is_ia(i)) ++base_ia;
  }
  std::printf("queue purity: %d/%zu SNIa (random selection would average "
              "%.0f%%)\n",
              hits, kBudget,
              100.0 * base_ia / static_cast<double>(tonight.size()));
  return 0;
}
