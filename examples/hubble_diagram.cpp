// hubble_diagram — the science the whole pipeline exists for. Take a
// photometric sample, keep the candidates the classifier calls SNIa,
// estimate each one's apparent peak magnitude from its light-curve fit,
// and place them on the Hubble diagram (distance modulus vs redshift).
// Then fit Ω_m by χ² grid scan — with a pure Ia sample the standard-
// candle relation comes out; core-collapse contamination would bias it.
//
// Run: ./build/examples/hubble_diagram
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "astro/cosmology.h"
#include "astro/photometry.h"
#include "baselines/chi2fit.h"
#include "core/inference.h"
#include "core/lc_classifier.h"
#include "core/lc_features.h"
#include "eval/tables.h"
#include "nn/nn.h"
#include "sim/dataset_builder.h"

using namespace sne;

int main() {
  // A photometric survey season.
  sim::SnDataset::Config config;
  config.num_samples = 500;
  config.seed = 314159;
  const sim::SnDataset data = sim::SnDataset::build(config);

  // Train the single-epoch classifier on the first 400 candidates
  // (historical data with spectroscopic labels), apply to the rest.
  Rng rng(1);
  core::FeatureConfig features;
  features.noisy = true;  // operational regime: measured photometry
  std::vector<std::int64_t> train_idx(400);
  std::iota(train_idx.begin(), train_idx.end(), 0);
  std::vector<std::int64_t> survey_idx(100);
  std::iota(survey_idx.begin(), survey_idx.end(), 400);

  core::LcClassifierConfig cc;
  cc.input_dim = core::feature_dim(features);
  cc.hidden_units = 100;
  core::LcClassifier clf(cc, rng);
  nn::Adam opt(clf.params(), 3e-3f);
  nn::Trainer trainer(clf, opt, nn::bce_with_logits_loss);
  const nn::VectorDataset train = nn::materialize(
      core::make_lc_feature_dataset(data, train_idx, features));
  nn::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 64;
  std::printf("training classifier on %zu labeled candidates...\n",
              train_idx.size());
  trainer.fit(train, nullptr, tc);

  // Select photometric SNeIa from the survey set, scored through a
  // compiled inference session.
  clf.set_training(false);
  infer::InferenceSession scorer = core::make_session(clf);
  std::vector<std::int64_t> ia_sample;
  int contaminants = 0;
  Tensor logit;
  for (const std::int64_t i : survey_idx) {
    Tensor f = core::lc_features(data, i, features);
    const std::int64_t dim = f.size();
    scorer.run(std::move(f).reshaped({1, dim}), logit);
    if (logit[0] > 1.5) {  // high-purity cut for cosmology
      ia_sample.push_back(i);
      if (!data.is_ia(i)) ++contaminants;
    }
  }
  std::printf("selected %zu photometric SNeIa (%d contaminants)\n\n",
              ia_sample.size(), contaminants);

  // Distance modulus per SN: fit the multi-epoch light curve with the Ia
  // template grid; the profiled amplitude converts to an apparent peak
  // magnitude, and μ = m_peak − M_fiducial.
  baselines::Chi2FitConfig fit_cfg;
  fit_cfg.grid.z_step = 0.1;
  fit_cfg.grid.peak_step = 4.0;
  const baselines::Chi2FitClassifier fitter(fit_cfg);

  struct Point {
    double z;
    double mu;
  };
  std::vector<Point> diagram;
  for (const std::int64_t i : ia_sample) {
    const baselines::GridEntry fit = fitter.best_ia_entry(data, i);
    // Peak measured flux across bands near the fitted peak:
    double peak_flux = 0.0;
    for (const auto& m : data.measured_light_curve(i)) {
      peak_flux = std::max(peak_flux, m.flux);
    }
    if (peak_flux <= 0.0) continue;
    const double m_peak = astro::mag_from_flux(peak_flux);
    diagram.push_back({fit.redshift, m_peak - (-19.3)});
  }
  std::sort(diagram.begin(), diagram.end(),
            [](const Point& a, const Point& b) { return a.z < b.z; });

  eval::TextTable table({"z (fit)", "mu (est)", "mu (LCDM Om=0.3)"});
  const astro::Cosmology fiducial;
  for (const Point& p : diagram) {
    table.add_row({eval::fmt(p.z, 2), eval::fmt(p.mu, 2),
                   eval::fmt(fiducial.distance_modulus(p.z), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Ω_m grid fit (flat ΛCDM, H0 fixed): the cosmology measurement.
  double best_om = 0.0;
  double best_chi2 = 1e300;
  for (double om = 0.05; om <= 0.95; om += 0.05) {
    const astro::Cosmology cosmo(70.0, om);
    double chi2 = 0.0;
    for (const Point& p : diagram) {
      const double d = p.mu - cosmo.distance_modulus(p.z);
      chi2 += d * d / (0.25 * 0.25);  // ~0.25 mag per-SN scatter
    }
    if (chi2 < best_chi2) {
      best_chi2 = chi2;
      best_om = om;
    }
  }
  std::printf("best-fit Omega_m = %.2f (simulation truth: 0.30)\n", best_om);
  std::printf("\nThe fit is crude (coarse z grid, no K-corrections, peak\n"
              "flux as a proxy for the fitted amplitude) — the point is the\n"
              "workflow: classify cheaply, follow up the pure sample, do\n"
              "cosmology. A contaminated sample would bias Omega_m low,\n"
              "since core-collapse SNe are intrinsically fainter.\n");
  return 0;
}
