// lightcurve_zoo — a tour of the light-curve substrate: ASCII light
// curves of every supernova type in two bands and at two redshifts,
// showing the template physics the classifier exploits (Ia's fast
// decline and NIR bump, IIP's plateau, IIn's slow fade, UV suppression
// at high redshift).
//
// Run: ./build/examples/lightcurve_zoo
#include <cstdio>
#include <string>

#include "astro/cosmology.h"
#include "astro/lightcurve.h"

using namespace sne;
using astro::Band;
using astro::SnType;

namespace {

void plot(const astro::LightCurve& lc, Band band, double peak_mjd) {
  // 60-column strip chart: magnitude 20 (top) to 28 (bottom).
  constexpr int kRows = 9;
  constexpr int kCols = 60;
  std::string grid[kRows];
  for (auto& row : grid) row.assign(kCols, ' ');

  for (int col = 0; col < kCols; ++col) {
    const double mjd = peak_mjd - 20.0 + col * 2.0;  // 120 days
    const double mag = lc.magnitude(band, mjd, 28.5);
    const int row = static_cast<int>((mag - 20.0));
    if (row >= 0 && row < kRows) grid[row][static_cast<std::size_t>(col)] = '*';
  }
  for (int r = 0; r < kRows; ++r) {
    std::printf("  %4.1f |%s\n", 20.0 + r, grid[r].c_str());
  }
  std::printf("       +%s\n", std::string(kCols, '-').c_str());
  std::printf("        -20d%*speak%*s+100d\n", 14, "", 30, "");
}

}  // namespace

int main() {
  const astro::Cosmology cosmo;

  for (const double z : {0.3, 1.2}) {
    std::printf("================ redshift z = %.1f (mu = %.2f) "
                "================\n\n",
                z, cosmo.distance_modulus(z));
    for (const SnType type :
         {SnType::Ia, SnType::IIP, SnType::IIn, SnType::Ib}) {
      astro::SnParams p;
      p.type = type;
      p.redshift = z;
      p.peak_mjd = 0.0;
      p.peak_abs_mag = type == SnType::Ia ? -19.3 : -17.5;
      const astro::LightCurve lc(p, cosmo);

      for (const Band band : {Band::g, Band::z}) {
        std::printf("%s, %s band (rest %.0f nm), apparent magnitude:\n",
                    std::string(astro::sn_type_name(type)).c_str(),
                    std::string(astro::band_name(band)).c_str(),
                    astro::effective_wavelength_nm(band) / (1.0 + z));
        plot(lc, band, 0.0);
        std::printf("\n");
      }
    }
  }
  std::printf(
      "things to notice:\n"
      "  * Ia declines fast; IIP holds a ~100-day plateau; IIn fades "
      "slowly\n"
      "  * at z=1.2 the g band samples rest-frame UV: the Ia curve all but\n"
      "    disappears (UV suppression) while IIn stays visible\n"
      "  * time dilation stretches every curve by (1+z)\n");
  return 0;
}
