// quickstart — the five-minute tour of the library:
//   1. build a synthetic survey dataset (hosts + supernovae + schedule),
//   2. train the paper's light-curve classifier on single-epoch features,
//   3. evaluate with ROC/AUC,
//   4. classify one individual candidate.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "core/inference.h"
#include "core/lc_classifier.h"
#include "core/lc_features.h"
#include "eval/roc.h"
#include "nn/nn.h"
#include "sim/dataset_builder.h"

using namespace sne;

int main() {
  // 1. A small synthetic dataset: 600 supernovae (half Type Ia) embedded
  //    on COSMOS-like host galaxies, observed in g,r,i,z,y with 4 epochs
  //    per band. Everything is seeded — rerunning reproduces this output.
  sim::SnDataset::Config config;
  config.num_samples = 600;
  config.seed = 42;
  const sim::SnDataset data = sim::SnDataset::build(config);
  std::printf("dataset: %lld samples, %lld catalog galaxies\n",
              static_cast<long long>(data.size()),
              static_cast<long long>(data.catalog().size()));

  // 2. Split 80/10/10 as in the paper and train the classifier on
  //    single-epoch (magnitude, date) features.
  Rng split_rng(7);
  const nn::SplitIndices split =
      nn::split_indices(data.size(), 0.8, 0.1, split_rng);

  core::FeatureConfig features;  // single epoch, ground-truth photometry
  const nn::LazyDataset train =
      core::make_lc_feature_dataset(data, split.train, features);
  const nn::LazyDataset test =
      core::make_lc_feature_dataset(data, split.test, features);

  Rng rng(1);
  core::LcClassifierConfig model_config;
  model_config.input_dim = core::feature_dim(features);
  model_config.hidden_units = 100;
  core::LcClassifier model(model_config, rng);

  nn::Adam optimizer(model.params(), 3e-3f);
  nn::Trainer trainer(model, optimizer, nn::bce_with_logits_loss,
                      nn::binary_accuracy);
  nn::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 64;
  std::printf("training %lld-unit highway classifier (%lld params)...\n",
              static_cast<long long>(model_config.hidden_units),
              static_cast<long long>(model.num_params()));
  trainer.fit(train, nullptr, tc);

  // 3. Evaluate.
  const Tensor scores = trainer.predict(test);
  std::vector<float> s(scores.data(), scores.data() + scores.size());
  std::vector<float> labels;
  for (const std::int64_t i : split.test) {
    labels.push_back(data.is_ia(i) ? 1.0f : 0.0f);
  }
  std::printf("test AUC (single epoch, no redshift): %.3f\n",
              eval::auc(s, labels));

  // 4. Classify one candidate — serving goes through a compiled
  // InferenceSession, not the training-path forward.
  const std::int64_t candidate = split.test.front();
  model.set_training(false);
  infer::InferenceSession scorer = core::make_session(model);
  Tensor f = core::lc_features(data, candidate, features);
  const std::int64_t dim = f.size();
  Tensor logit;
  scorer.run(std::move(f).reshaped({1, dim}), logit);
  const double p = 1.0 / (1.0 + std::exp(-logit[0]));
  std::printf(
      "candidate %lld: host z=%.2f, true type %s -> P(SNIa) = %.2f\n",
      static_cast<long long>(candidate), data.host(candidate).photo_z,
      std::string(astro::sn_type_name(data.spec(candidate).sn.type)).c_str(),
      p);
  return 0;
}
