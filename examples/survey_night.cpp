// survey_night — one night at the telescope: render reference and
// observation stamps for a field of candidates, run PSF-matched
// difference imaging, and detect transients by matched-filter S/N. This
// is steps (1)–(2) of the paper's standard supernova pipeline, the part
// that feeds the classifier.
//
// Run: ./build/examples/survey_night
#include <cstdio>

#include "eval/tables.h"
#include "sim/dataset_builder.h"
#include "sim/difference.h"
#include "sim/measurement.h"
#include "sim/pgm.h"
#include "sim/psf.h"

using namespace sne;

int main() {
  sim::SnDataset::Config config;
  config.num_samples = 24;
  config.seed = 20260705;
  config.catalog.count = 500;
  const sim::SnDataset data = sim::SnDataset::build(config);

  std::printf("simulating one r-band visit of %lld candidate hosts...\n\n",
              static_cast<long long>(data.size()));

  eval::TextTable table({"cand", "host z", "type", "true mag", "S/N",
                         "detected", "flux est", "flux true"});
  int detected = 0;
  int detectable = 0;
  constexpr double kSnThreshold = 5.0;
  const astro::Band band = astro::Band::r;
  const std::int64_t epoch = 1;

  for (std::int64_t i = 0; i < data.size(); ++i) {
    const Tensor obs = data.observation_image(i, band, epoch);
    const Tensor ref = data.reference_image(i, band);
    const sim::Observation conditions = data.band_epoch(i, band, epoch);
    const sim::Observation& ref_conditions =
        data.spec(i).schedule.references[astro::band_index(band)];

    const Tensor diff =
        sim::psf_matched_difference(obs, ref, conditions, ref_conditions);

    // Matched-filter photometry at the known SN position (forced
    // photometry; a real pipeline would first run source detection).
    const sim::GaussianPsf psf(conditions.seeing_fwhm_px);
    const double c = 32.0;
    const double flux_est =
        sim::psf_weighted_flux(diff, c + data.spec(i).offset.dy,
                               c + data.spec(i).offset.dx, psf.sigma()) /
        conditions.transparency;
    const double sigma = sim::point_source_flux_sigma(
        data.config().renderer.noise, psf.sigma(), std::max(0.0, flux_est));
    const double snr = flux_est / sigma;

    const double true_flux = data.true_flux(i, band, epoch);
    const double true_sigma = sim::point_source_flux_sigma(
        data.config().renderer.noise, psf.sigma(), true_flux);
    if (true_flux / true_sigma > kSnThreshold) ++detectable;
    const bool is_detected = snr > kSnThreshold;
    if (is_detected) ++detected;

    table.add_row(
        {std::to_string(i), eval::fmt(data.host(i).photo_z, 2),
         std::string(astro::sn_type_name(data.spec(i).sn.type)),
         eval::fmt(data.true_magnitude(i, band, epoch), 2),
         eval::fmt(snr, 1), is_detected ? "yes" : "-",
         eval::fmt(flux_est, 1), eval::fmt(true_flux, 1)});
  }

  std::printf("%s\n", table.to_string().c_str());

  // Export one candidate's stamp trio for visual inspection.
  {
    const std::int64_t i = 0;
    sim::write_pgm("/tmp/sne_reference.pgm",
                   data.reference_image(i, band));
    sim::write_pgm("/tmp/sne_observation.pgm",
                   data.observation_image(i, band, epoch));
    const Tensor diff = sim::psf_matched_difference(
        data.observation_image(i, band, epoch),
        data.reference_image(i, band), data.band_epoch(i, band, epoch),
        data.spec(i).schedule.references[astro::band_index(band)]);
    sim::write_pgm("/tmp/sne_difference.pgm", diff);
    std::printf("wrote /tmp/sne_{reference,observation,difference}.pgm for "
                "candidate 0\n");
  }
  std::printf("detected %d / %lld candidates at S/N > %.0f "
              "(%d truly above threshold)\n",
              detected, static_cast<long long>(data.size()), kSnThreshold,
              detectable);
  std::printf("\nnote: faint high-z events are invisible in single visits — "
              "exactly why\nthe paper pushes classification to single-epoch "
              "images before the SN fades.\n");
  return 0;
}
