// bands.h — the five broad-band survey filters. The paper's survey takes
// g, r, i, z, y images (Subaru/HSC filter set); every dataset sample
// carries one reference + four observation epochs per band.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sne::astro {

enum class Band : std::uint8_t { g = 0, r = 1, i = 2, z = 3, y = 4 };

inline constexpr std::int64_t kNumBands = 5;

inline constexpr std::array<Band, kNumBands> kAllBands = {
    Band::g, Band::r, Band::i, Band::z, Band::y};

/// Effective filter wavelength in nanometres (HSC filter set).
constexpr double effective_wavelength_nm(Band b) noexcept {
  switch (b) {
    case Band::g: return 480.0;
    case Band::r: return 620.0;
    case Band::i: return 770.0;
    case Band::z: return 890.0;
    case Band::y: return 1000.0;
  }
  return 0.0;  // unreachable
}

constexpr std::string_view band_name(Band b) noexcept {
  switch (b) {
    case Band::g: return "g";
    case Band::r: return "r";
    case Band::i: return "i";
    case Band::z: return "z";
    case Band::y: return "y";
  }
  return "?";
}

constexpr std::int64_t band_index(Band b) noexcept {
  return static_cast<std::int64_t>(b);
}

}  // namespace sne::astro
