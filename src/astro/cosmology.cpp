#include "astro/cosmology.h"

#include <cmath>
#include <stdexcept>

namespace sne::astro {

namespace {
constexpr double kSpeedOfLightKms = 299792.458;
constexpr int kSimpsonIntervals = 256;  // even; integrand is very smooth
}  // namespace

Cosmology::Cosmology(double hubble_h0, double omega_m)
    : omega_m_(omega_m),
      omega_lambda_(1.0 - omega_m),
      hubble_distance_(kSpeedOfLightKms / hubble_h0) {
  if (hubble_h0 <= 0.0 || omega_m < 0.0 || omega_m > 1.0) {
    throw std::invalid_argument("Cosmology: invalid parameters");
  }
}

double Cosmology::efunc(double z) const {
  if (z < 0.0) throw std::domain_error("Cosmology: negative redshift");
  const double a = 1.0 + z;
  return std::sqrt(omega_m_ * a * a * a + omega_lambda_);
}

double Cosmology::comoving_distance_mpc(double z) const {
  if (z < 0.0) throw std::domain_error("Cosmology: negative redshift");
  if (z == 0.0) return 0.0;
  const double h = z / kSimpsonIntervals;
  double sum = 1.0 / efunc(0.0) + 1.0 / efunc(z);
  for (int k = 1; k < kSimpsonIntervals; ++k) {
    const double zk = k * h;
    sum += (k % 2 == 1 ? 4.0 : 2.0) / efunc(zk);
  }
  return hubble_distance_ * sum * h / 3.0;
}

double Cosmology::luminosity_distance_mpc(double z) const {
  return (1.0 + z) * comoving_distance_mpc(z);
}

double Cosmology::distance_modulus(double z) const {
  const double dl = luminosity_distance_mpc(z);
  if (dl <= 0.0) {
    throw std::domain_error("Cosmology: distance modulus requires z > 0");
  }
  // D_L in Mpc → μ = 5 log10(D_L) + 25.
  return 5.0 * std::log10(dl) + 25.0;
}

}  // namespace sne::astro
