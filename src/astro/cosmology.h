// cosmology.h — flat ΛCDM distances. The synthetic dataset places
// supernovae on host galaxies with photometric redshifts in [0.1, 2.0];
// the distance modulus converts rest-frame absolute magnitudes of the
// light-curve templates into observed apparent magnitudes.
#pragma once

namespace sne::astro {

/// Flat ΛCDM cosmology (Ω_k = 0, Ω_Λ = 1 − Ω_m). Distances are computed
/// by Simpson integration of 1/E(z); the integrand is smooth so a modest
/// fixed grid reaches far below the photometric errors simulated elsewhere.
class Cosmology {
 public:
  /// Defaults: H0 = 70 km/s/Mpc, Ω_m = 0.3 (the conventional reference
  /// cosmology of SN surveys in the paper's era).
  explicit Cosmology(double hubble_h0 = 70.0, double omega_m = 0.3);

  /// Hubble distance c/H0 in Mpc.
  double hubble_distance_mpc() const noexcept { return hubble_distance_; }

  /// Dimensionless expansion rate E(z) = sqrt(Ω_m(1+z)³ + Ω_Λ).
  double efunc(double z) const;

  /// Line-of-sight comoving distance in Mpc.
  double comoving_distance_mpc(double z) const;

  /// Luminosity distance D_L = (1+z)·D_C (flat universe), Mpc.
  double luminosity_distance_mpc(double z) const;

  /// Distance modulus μ = 5·log10(D_L / 10 pc).
  double distance_modulus(double z) const;

 private:
  double omega_m_;
  double omega_lambda_;
  double hubble_distance_;
};

}  // namespace sne::astro
