#include "astro/lightcurve.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "astro/photometry.h"

namespace sne::astro {

namespace {

double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

/// Bazin et al. (2009) analytic light-curve shape, re-parametrized so the
/// maximum sits at phase 0 with value 1.
///   f(p) = exp(−p/τ_fall) · σ((p − c)/τ_rise) / f(0)
/// with c = −τ_rise·ln(τ_fall/τ_rise − 1) placing the extremum at 0.
double bazin_shape(double phase, double tau_rise, double tau_fall) noexcept {
  const double c = -tau_rise * std::log(tau_fall / tau_rise - 1.0);
  const double f = std::exp(-phase / tau_fall) *
                   sigmoid((phase - c) / tau_rise);
  const double f0 = sigmoid(-c / tau_rise);
  return f / f0;
}

double lerp(double a, double b, double t) noexcept { return a + (b - a) * t; }

/// Smooth wavelength interpolation factor in [0, 1] from blue (400 nm) to
/// red (1000 nm).
double red_fraction(double wavelength_nm) noexcept {
  const double t = (wavelength_nm - 400.0) / 600.0;
  return std::clamp(t, 0.0, 1.0);
}

/// Ia: Bazin core + secondary NIR bump + strong UV suppression.
double ia_relative_flux(double p, double wavelength_nm) {
  // Decline slows toward the red; rise is slightly slower in the red too.
  const double red = red_fraction(wavelength_nm);
  const double tau_rise = lerp(4.5, 6.5, red);
  const double tau_fall = lerp(16.0, 30.0, red);
  if (p < -25.0) return 0.0;  // pre-explosion
  double f = bazin_shape(p, tau_rise, tau_fall);

  // Secondary maximum in i/z/y (rest ≳ 600 nm) near +25 d.
  if (wavelength_nm > 600.0) {
    const double amp = 0.25 * std::min(1.0, (wavelength_nm - 600.0) / 300.0);
    const double dp = (p - 25.0) / 8.0;
    f += amp * std::exp(-0.5 * dp * dp) * bazin_shape(0.0, tau_rise, tau_fall);
  }

  // SNe Ia are UV-poor: strong suppression blueward of ~330 nm rest frame.
  // At z ≳ 1 this extinguishes the observer-frame g band, the feature the
  // classifier keys on for high-z Ia (Fig. 5 bottom row of the paper).
  if (wavelength_nm < 330.0) {
    const double deficit_mag = 2.2 * (330.0 - wavelength_nm) / 40.0;
    f *= std::pow(10.0, -0.4 * deficit_mag);
  }
  return f;
}

/// Stripped-envelope (Ib/Ic): slower, no bump, milder UV deficit.
double ibc_relative_flux(double p, double wavelength_nm) {
  const double red = red_fraction(wavelength_nm);
  const double tau_rise = lerp(7.0, 9.0, red);
  const double tau_fall = lerp(25.0, 38.0, red);
  if (p < -35.0) return 0.0;
  double f = bazin_shape(p, tau_rise, tau_fall);
  if (wavelength_nm < 300.0) {
    const double deficit_mag = 1.2 * (300.0 - wavelength_nm) / 50.0;
    f *= std::pow(10.0, -0.4 * deficit_mag);
  }
  return f;
}

/// Fireball rise used by the Type II templates: flux ∝ ((p+t_r)/t_r)²
/// between explosion (−t_r) and peak.
double fireball_rise(double p, double t_rise) noexcept {
  if (p <= -t_rise) return 0.0;
  const double x = (p + t_rise) / t_rise;
  return std::min(1.0, x * x);
}

/// Type II templates expressed as a post-peak magnitude offset ΔM(p).
double type2_relative_flux(SnType type, double p, double wavelength_nm) {
  double t_rise = 8.0;
  double delta_mag = 0.0;
  switch (type) {
    case SnType::IIP: {
      t_rise = 7.0;
      // ~90-day plateau with a mild slope, then a sharp radioactive drop.
      // Blue bands fade faster across the plateau (recombination cooling).
      const double blue_extra =
          0.012 * std::max(0.0, (550.0 - wavelength_nm) / 150.0);
      if (p <= 90.0) {
        delta_mag = (0.005 + blue_extra) * std::max(0.0, p);
      } else {
        delta_mag = (0.005 + blue_extra) * 90.0 + 0.06 * (p - 90.0);
      }
      break;
    }
    case SnType::IIL:
      t_rise = 8.0;
      delta_mag = 0.045 * std::max(0.0, p);
      break;
    case SnType::IIn:
      t_rise = 15.0;
      delta_mag = 0.018 * std::max(0.0, p);
      break;
    default:
      throw std::logic_error("type2_relative_flux: not a Type II");
  }
  const double peak_flux = std::pow(10.0, -0.4 * delta_mag);
  if (p < 0.0) return fireball_rise(p, t_rise);
  return peak_flux;
}

}  // namespace

double template_relative_flux(SnType type, double phase_days,
                              double wavelength_nm) {
  if (wavelength_nm <= 0.0) {
    throw std::domain_error("template_relative_flux: wavelength must be > 0");
  }
  // No template extends usefully beyond ~1.5 years rest frame.
  if (phase_days > 550.0) return 0.0;
  switch (type) {
    case SnType::Ia: return ia_relative_flux(phase_days, wavelength_nm);
    case SnType::Ib:
    case SnType::Ic: return ibc_relative_flux(phase_days, wavelength_nm);
    case SnType::IIP:
    case SnType::IIL:
    case SnType::IIn:
      return type2_relative_flux(type, phase_days, wavelength_nm);
  }
  throw std::logic_error("template_relative_flux: unknown type");
}

double color_law(double wavelength_nm) noexcept {
  // Normalized to 0 at rest B (440 nm); roughly CCM-slope toward the UV.
  return 2.2 * (440.0 / wavelength_nm - 1.0);
}

namespace {

double validated_modulus(const SnParams& params, const Cosmology& cosmology) {
  if (params.redshift <= 0.0) {
    throw std::invalid_argument("LightCurve: redshift must be positive");
  }
  if (params.stretch <= 0.0) {
    throw std::invalid_argument("LightCurve: stretch must be positive");
  }
  return cosmology.distance_modulus(params.redshift);
}

}  // namespace

LightCurve::LightCurve(const SnParams& params, const Cosmology& cosmology)
    : params_(params), mu_(validated_modulus(params, cosmology)) {}

double LightCurve::flux(Band b, double mjd) const {
  const double one_plus_z = 1.0 + params_.redshift;
  double phase = (mjd - params_.peak_mjd) / one_plus_z;
  if (is_type_ia(params_.type)) phase /= params_.stretch;

  const double rest_nm = effective_wavelength_nm(b) / one_plus_z;
  const double rel = template_relative_flux(params_.type, phase, rest_nm);
  if (rel <= 0.0) return 0.0;

  double peak_mag = params_.peak_abs_mag + mu_;
  if (is_type_ia(params_.type)) {
    peak_mag += params_.color * color_law(rest_nm);
  }
  return flux_from_mag(peak_mag) * rel;
}

double LightCurve::magnitude(Band b, double mjd, double faint_limit) const {
  const double f = flux(b, mjd);
  const double floor_flux = flux_from_mag(faint_limit);
  return mag_from_flux(std::max(f, floor_flux));
}

double LightCurve::peak_mjd_in_band(Band b) const {
  const double one_plus_z = 1.0 + params_.redshift;
  double lo = params_.peak_mjd - 120.0 * one_plus_z;
  double hi = params_.peak_mjd + 120.0 * one_plus_z;
  constexpr double kGolden = 0.618033988749895;
  for (int iter = 0; iter < 80; ++iter) {
    const double a = hi - (hi - lo) * kGolden;
    const double c = lo + (hi - lo) * kGolden;
    if (flux(b, a) < flux(b, c)) {
      lo = a;
    } else {
      hi = c;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace sne::astro
