// lightcurve.h — analytic supernova light-curve templates. Substitutes for
// the SALT2-II model ([12] Mosher et al.) and the core-collapse templates
// the paper uses to generate its synthetic dataset. Each template is a
// rest-frame *relative flux* surface F(phase, wavelength) ∈ [0, ~1] with
// F = 1 at (0, ·); the observer-frame light curve applies redshift time
// dilation, the Ia stretch/color laws, the distance modulus, and the
// per-band rest wavelength.
//
// What matters for the classifier is that the templates reproduce the
// discriminative structure real SNe have:
//   * Ia  — fast rise (~18 d), ~0.06 mag/d early decline, secondary NIR
//           bump at +25 d, strong UV suppression (faint in blue bands at
//           high z), stretch–luminosity and color–luminosity relations;
//   * Ib/c — slower, fainter, no secondary bump;
//   * IIP — week-long rise then a ~90 d plateau before a sharp drop;
//   * IIL — linear (in mag) decline;
//   * IIn — bright, very slow decline.
#pragma once

#include <array>
#include <string_view>

#include "astro/bands.h"
#include "astro/cosmology.h"

namespace sne::astro {

enum class SnType : std::uint8_t { Ia = 0, Ib = 1, Ic = 2, IIP = 3, IIL = 4, IIn = 5 };

inline constexpr std::array<SnType, 6> kAllSnTypes = {
    SnType::Ia, SnType::Ib, SnType::Ic, SnType::IIP, SnType::IIL, SnType::IIn};

/// The five non-Ia classes used as negatives in the paper's dataset
/// ("Ib, c, IIL, IIN, IIP").
inline constexpr std::array<SnType, 5> kNonIaTypes = {
    SnType::Ib, SnType::Ic, SnType::IIP, SnType::IIL, SnType::IIn};

constexpr bool is_type_ia(SnType t) noexcept { return t == SnType::Ia; }

constexpr std::string_view sn_type_name(SnType t) noexcept {
  switch (t) {
    case SnType::Ia: return "Ia";
    case SnType::Ib: return "Ib";
    case SnType::Ic: return "Ic";
    case SnType::IIP: return "IIP";
    case SnType::IIL: return "IIL";
    case SnType::IIn: return "IIn";
  }
  return "?";
}

/// Physical + nuisance parameters of one simulated supernova.
struct SnParams {
  SnType type = SnType::Ia;
  double redshift = 0.5;
  double stretch = 1.0;       ///< Ia light-curve stretch s (1 = fiducial)
  double color = 0.0;         ///< Ia SALT-like color c (positive = red)
  double peak_mjd = 0.0;      ///< observer-frame date of rest-B maximum
  double peak_abs_mag = -19.3;  ///< absolute magnitude at peak (rest B)
};

/// Rest-frame relative flux of the bare template (no stretch/color/
/// distance), normalized to 1 at phase 0 in rest B (440 nm).
/// `phase_days` is rest-frame days since peak; `wavelength_nm` the
/// rest-frame effective wavelength. Returns 0 before explosion.
double template_relative_flux(SnType type, double phase_days,
                              double wavelength_nm);

/// SALT-like color law CL(λ): magnitude change per unit color c,
/// normalized to CL(440 nm) = 0, positive toward the UV.
double color_law(double wavelength_nm) noexcept;

/// Observer-frame light curve of one supernova.
class LightCurve {
 public:
  LightCurve(const SnParams& params, const Cosmology& cosmology);

  /// Observed flux (zero-point 27 units) in band `b` at observer date
  /// `mjd`. Zero before explosion.
  double flux(Band b, double mjd) const;

  /// Apparent magnitude; clamps to `faint_limit` when the flux underflows
  /// (pre-explosion / far post-fade epochs).
  double magnitude(Band b, double mjd, double faint_limit = 35.0) const;

  /// Observer-frame date at which band `b` reaches maximum flux, found by
  /// golden-section search over ±120 rest-frame days around the B peak.
  double peak_mjd_in_band(Band b) const;

  const SnParams& params() const noexcept { return params_; }
  double distance_modulus() const noexcept { return mu_; }

 private:
  SnParams params_;
  double mu_;
};

}  // namespace sne::astro
