#include "astro/photometry.h"

#include <cmath>
#include <stdexcept>

namespace sne::astro {

double mag_from_flux(double flux) {
  if (flux <= 0.0) {
    throw std::domain_error("mag_from_flux: flux must be positive");
  }
  return -2.5 * std::log10(flux) + kZeroPoint;
}

double flux_from_mag(double mag) {
  return std::pow(10.0, (kZeroPoint - mag) / 2.5);
}

double signed_log(double x) noexcept {
  const double y = std::log10(std::abs(x) + 1.0);
  return x < 0.0 ? -y : y;
}

double signed_log_inverse(double y) noexcept {
  const double x = std::pow(10.0, std::abs(y)) - 1.0;
  return y < 0.0 ? -x : x;
}

}  // namespace sne::astro
