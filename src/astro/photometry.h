// photometry.h — flux/magnitude conversions and the signed-log pixel
// transform. The paper fixes the zero point at 27.0:
//     mag = −2.5·log10(flux) + 27.0
// and preprocesses difference-image pixels with
//     y = sgn(x)·log10(|x| + 1)
// so that the network sees magnitudes-like dynamic range while noise
// around zero stays linear.
#pragma once

namespace sne::astro {

/// Photometric zero point used throughout the paper.
inline constexpr double kZeroPoint = 27.0;

/// Stellar magnitude from flux (flux must be positive).
double mag_from_flux(double flux);

/// Flux from stellar magnitude.
double flux_from_mag(double mag);

/// Signed logarithmic pixel compression: sgn(x)·log10(|x| + 1).
/// Odd, monotone, identity-sloped at the origin.
double signed_log(double x) noexcept;

/// Inverse of signed_log.
double signed_log_inverse(double y) noexcept;

}  // namespace sne::astro
