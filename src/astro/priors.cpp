#include "astro/priors.h"

#include <algorithm>
#include <stdexcept>

namespace sne::astro {

SnParams sample_sn_params(SnType type, double redshift, double peak_mjd_lo,
                          double peak_mjd_hi, Rng& rng,
                          const SnPopulation& population) {
  if (peak_mjd_hi < peak_mjd_lo) {
    throw std::invalid_argument("sample_sn_params: bad peak window");
  }
  SnParams p;
  p.type = type;
  p.redshift = redshift;
  p.peak_mjd = rng.uniform(peak_mjd_lo, peak_mjd_hi);

  if (is_type_ia(type)) {
    // SALT-like Tripp relation: M = M0 − α·x1 + β·c + scatter. x1 maps to
    // the template stretch as s = 1 + 0.1·x1 (clamped to the physical
    // range seen in SALT training samples).
    const double x1 = rng.truncated_normal(0.0, population.ia_x1_sigma,
                                           -3.0, 3.0);
    const double c = rng.truncated_normal(0.0, population.ia_color_sigma,
                                          -0.3, 0.5);
    p.stretch = std::clamp(1.0 + 0.1 * x1, 0.6, 1.4);
    p.color = c;
    p.peak_abs_mag = population.ia_mean_abs_mag - population.ia_alpha * x1 +
                     population.ia_beta * c +
                     rng.normal(0.0, population.ia_sigma_int);
  } else {
    p.stretch = 1.0;
    p.color = 0.0;
    double mean = 0.0;
    double sigma = 1.0;
    switch (type) {
      case SnType::Ib: mean = population.ib_mean; sigma = population.ib_sigma; break;
      case SnType::Ic: mean = population.ic_mean; sigma = population.ic_sigma; break;
      case SnType::IIP: mean = population.iip_mean; sigma = population.iip_sigma; break;
      case SnType::IIL: mean = population.iil_mean; sigma = population.iil_sigma; break;
      case SnType::IIn: mean = population.iin_mean; sigma = population.iin_sigma; break;
      case SnType::Ia: break;  // unreachable
    }
    // Truncate at ±2σ: the tails of the Richardson luminosity functions
    // are dominated by selection effects we do not simulate.
    p.peak_abs_mag = rng.truncated_normal(mean, sigma, mean - 2.0 * sigma,
                                          mean + 2.0 * sigma);
  }
  return p;
}

SnType sample_sn_type(Rng& rng, double p_ia) {
  if (rng.bernoulli(p_ia)) return SnType::Ia;
  return kNonIaTypes[static_cast<std::size_t>(
      rng.uniform_index(kNonIaTypes.size()))];
}

}  // namespace sne::astro
