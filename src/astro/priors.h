// priors.h — population priors for supernova parameters. The dataset
// section of the paper draws each supernova's (type, stretch, color) from
// "the already known distributions" of Mosher et al. [12]; this module
// encodes those distributions: SALT-like x1/c Gaussians with the
// stretch–luminosity (α) and color–luminosity (β) corrections for Ia, and
// the measured absolute-magnitude distributions (Richardson et al. 2014)
// for the core-collapse classes.
#pragma once

#include "astro/lightcurve.h"
#include "tensor/rng.h"

namespace sne::astro {

/// Population hyper-parameters; defaults follow the SALT2 training values.
struct SnPopulation {
  // Type Ia
  double ia_mean_abs_mag = -19.36;  ///< M_B at x1 = 0, c = 0
  double ia_alpha = 0.14;           ///< stretch–luminosity slope
  double ia_beta = 3.1;             ///< color–luminosity slope
  double ia_sigma_int = 0.10;       ///< intrinsic scatter (mag)
  double ia_x1_sigma = 1.0;         ///< x1 ~ N(0, σ), s = 1 + 0.1·x1
  double ia_color_sigma = 0.1;      ///< c ~ N(0, σ)

  // Core collapse: mean absolute magnitude and scatter per type.
  double ib_mean = -17.45, ib_sigma = 1.12;
  double ic_mean = -17.66, ic_sigma = 1.18;
  double iip_mean = -16.90, iip_sigma = 1.12;
  double iil_mean = -17.46, iil_sigma = 0.88;
  double iin_mean = -18.53, iin_sigma = 1.36;
};

/// Draws the non-positional parameters of a supernova of type `type` at
/// redshift `redshift`, with the observer-frame B-peak date drawn
/// uniformly in [peak_mjd_lo, peak_mjd_hi].
SnParams sample_sn_params(SnType type, double redshift, double peak_mjd_lo,
                          double peak_mjd_hi, Rng& rng,
                          const SnPopulation& population = {});

/// Draws a type: Ia with probability `p_ia`, otherwise uniform over the
/// five core-collapse classes (the paper's 6000/6000 dataset uses 0.5).
SnType sample_sn_type(Rng& rng, double p_ia = 0.5);

}  // namespace sne::astro
