#include "baselines/chi2fit.h"

#include <limits>
#include <stdexcept>

namespace sne::baselines {

Chi2FitClassifier::Chi2FitClassifier(const Chi2FitConfig& config)
    : config_(config), grid_(config.grid) {
  if (config.epochs <= 0) {
    throw std::invalid_argument("Chi2FitClassifier: epochs must be positive");
  }
}

std::vector<sim::FluxMeasurement> Chi2FitClassifier::gather(
    const sim::SnDataset& data, std::int64_t i) const {
  std::vector<sim::FluxMeasurement> points;
  points.reserve(
      static_cast<std::size_t>(astro::kNumBands * config_.epochs));
  for (const astro::Band b : astro::kAllBands) {
    for (std::int64_t e = 0; e < config_.epochs; ++e) {
      points.push_back(data.measured_point(i, b, e));
    }
  }
  return points;
}

double Chi2FitClassifier::score_sample(const sim::SnDataset& data,
                                       std::int64_t i) const {
  const auto points = gather(data, i);
  const double z_known =
      config_.use_redshift ? data.host(i).photo_z : -1.0;

  // With redshift, restrict via the evidence path (cheaper: best fit under
  // the z constraint). Reuse log_evidence's filtering by running best-fit
  // manually over the constrained entries.
  double best_ia = std::numeric_limits<double>::infinity();
  double best_cc = std::numeric_limits<double>::infinity();
  for (const GridEntry& entry : grid_.entries()) {
    if (z_known >= 0.0 &&
        std::abs(entry.redshift - z_known) > config_.z_window) {
      continue;
    }
    const GridFit f = grid_.fit(entry, points);
    if (astro::is_type_ia(entry.type)) {
      best_ia = std::min(best_ia, f.chi2);
    } else {
      best_cc = std::min(best_cc, f.chi2);
    }
  }
  return 0.5 * (best_cc - best_ia);
}

std::vector<float> Chi2FitClassifier::score(
    const sim::SnDataset& data,
    const std::vector<std::int64_t>& samples) const {
  std::vector<float> out;
  out.reserve(samples.size());
  for (const std::int64_t i : samples) {
    out.push_back(static_cast<float>(score_sample(data, i)));
  }
  return out;
}

GridEntry Chi2FitClassifier::best_ia_entry(const sim::SnDataset& data,
                                           std::int64_t i) const {
  const auto points = gather(data, i);
  GridEntry best_entry;
  grid_.best_fit_of_class(true, points, &best_entry);
  return best_entry;
}

}  // namespace sne::baselines
