// chi2fit.h — multi-epoch template-fitting classifier in the style of
// Sullivan et al. (2006) photometric selection (ref. [18]): fit the full
// 20-point light curve against the Ia grid and the core-collapse grid and
// use the χ² difference as the classification score. This is the
// "standard photometric approach" the paper's introduction describes —
// the method that *requires* the multi-epoch observations the proposed
// CNN avoids.
#pragma once

#include <vector>

#include "baselines/template_grid.h"
#include "sim/dataset_builder.h"

namespace sne::baselines {

struct Chi2FitConfig {
  std::int64_t epochs = 4;  ///< how many epochs per band to use (1…4)
  bool use_redshift = false;
  double z_window = 0.15;
  TemplateGridConfig grid;
};

class Chi2FitClassifier {
 public:
  explicit Chi2FitClassifier(const Chi2FitConfig& config = {});

  /// Score = (χ²_CC_best − χ²_Ia_best)/2: positive when the Ia templates
  /// fit better. Monotone in the likelihood ratio.
  double score_sample(const sim::SnDataset& data, std::int64_t i) const;

  std::vector<float> score(const sim::SnDataset& data,
                           const std::vector<std::int64_t>& samples) const;

  /// Best-fitting Ia entry for one sample (useful for parameter-recovery
  /// diagnostics and the follow-up prioritizer example).
  GridEntry best_ia_entry(const sim::SnDataset& data, std::int64_t i) const;

 private:
  std::vector<sim::FluxMeasurement> gather(const sim::SnDataset& data,
                                           std::int64_t i) const;

  Chi2FitConfig config_;
  TemplateGrid grid_;
};

}  // namespace sne::baselines
