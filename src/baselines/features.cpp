#include "baselines/features.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "astro/photometry.h"

namespace sne::baselines {

namespace {

double safe_mag(double flux, double faint_mag) {
  const double floor_flux = astro::flux_from_mag(faint_mag);
  return astro::mag_from_flux(std::max(flux, floor_flux));
}

}  // namespace

LcFeatureExtractor::LcFeatureExtractor(const LcFeatureExtractorConfig& config)
    : config_(config) {
  if (config.epochs <= 0) {
    throw std::invalid_argument("LcFeatureExtractor: epochs must be > 0");
  }
}

std::int64_t LcFeatureExtractor::dim() const noexcept {
  // Per band: peak mag, peak date, rise slope, decline slope (4), plus
  // 4 adjacent-band peak colors, plus optional photo-z.
  return astro::kNumBands * 4 + (astro::kNumBands - 1) +
         (config_.include_redshift ? 1 : 0);
}

std::vector<float> LcFeatureExtractor::extract(const sim::SnDataset& data,
                                               std::int64_t i) const {
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(dim()));

  std::array<double, astro::kNumBands> peak_mag{};
  const double season = data.config().schedule.season_days;

  for (const astro::Band b : astro::kAllBands) {
    // Collect this band's epochs in time order.
    std::vector<sim::FluxMeasurement> pts;
    pts.reserve(static_cast<std::size_t>(config_.epochs));
    for (std::int64_t e = 0; e < config_.epochs; ++e) {
      pts.push_back(data.measured_point(i, b, e));
    }
    std::sort(pts.begin(), pts.end(),
              [](const sim::FluxMeasurement& a, const sim::FluxMeasurement& x) {
                return a.mjd < x.mjd;
              });

    // Peak = maximum measured flux.
    std::size_t peak_idx = 0;
    for (std::size_t k = 1; k < pts.size(); ++k) {
      if (pts[k].flux > pts[peak_idx].flux) peak_idx = k;
    }
    const double pmag = safe_mag(pts[peak_idx].flux, config_.faint_mag);
    peak_mag[static_cast<std::size_t>(astro::band_index(b))] = pmag;

    // Rise slope: mag/day from the first point to the peak; decline slope
    // from the peak to the last point. Degenerate spans contribute 0.
    auto slope = [&](std::size_t from, std::size_t to) -> double {
      if (to == from) return 0.0;
      const double dt = pts[to].mjd - pts[from].mjd;
      if (std::abs(dt) < 1e-9) return 0.0;
      const double dm = safe_mag(pts[to].flux, config_.faint_mag) -
                        safe_mag(pts[from].flux, config_.faint_mag);
      return dm / dt;
    };

    out.push_back(static_cast<float>((pmag - 25.0) / 5.0));
    out.push_back(static_cast<float>(
        (pts[peak_idx].mjd - data.config().schedule.start_mjd) / season));
    out.push_back(static_cast<float>(slope(0, peak_idx)));
    out.push_back(static_cast<float>(slope(peak_idx, pts.size() - 1)));
  }

  // Adjacent-band colors at peak (g−r, r−i, i−z, z−y): the SED shape,
  // which is what actually separates Ia from CC at a single phase.
  for (std::size_t b = 0; b + 1 < astro::kNumBands; ++b) {
    out.push_back(static_cast<float>((peak_mag[b] - peak_mag[b + 1]) / 2.0));
  }

  if (config_.include_redshift) {
    out.push_back(static_cast<float>(data.host(i).photo_z));
  }
  return out;
}

std::vector<std::vector<float>> LcFeatureExtractor::extract_all(
    const sim::SnDataset& data,
    const std::vector<std::int64_t>& samples) const {
  std::vector<std::vector<float>> rows;
  rows.reserve(samples.size());
  for (const std::int64_t i : samples) rows.push_back(extract(data, i));
  return rows;
}

}  // namespace sne::baselines
