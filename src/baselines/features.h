// features.h — hand-crafted light-curve features in the spirit of Lochner
// et al. (2016) "Photometric supernova classification with machine
// learning" (ref. [8]): per-band summary statistics of the measured light
// curve plus peak colors, fed to a random forest. With the paper-standard
// 4 epochs per band, the features are peak magnitude, peak date, rise and
// decline slopes per band, and adjacent-band colors at peak.
#pragma once

#include <vector>

#include "sim/dataset_builder.h"

namespace sne::baselines {

struct LcFeatureExtractorConfig {
  std::int64_t epochs = 4;
  bool include_redshift = false;  ///< append the host photo-z
  double faint_mag = 32.0;
};

class LcFeatureExtractor {
 public:
  explicit LcFeatureExtractor(const LcFeatureExtractorConfig& config = {});

  const LcFeatureExtractorConfig& config() const noexcept { return config_; }

  std::int64_t dim() const noexcept;

  /// Feature vector of one sample.
  std::vector<float> extract(const sim::SnDataset& data, std::int64_t i) const;

  /// Feature matrix over a set of samples (row-major).
  std::vector<std::vector<float>> extract_all(
      const sim::SnDataset& data,
      const std::vector<std::int64_t>& samples) const;

 private:
  LcFeatureExtractorConfig config_;
};

}  // namespace sne::baselines
