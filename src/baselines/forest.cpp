#include "baselines/forest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sne::baselines {

RandomForest::RandomForest(const ForestConfig& config) : config_(config) {
  if (config.num_trees <= 0 || config.max_depth <= 0 ||
      config.min_samples_leaf <= 0) {
    throw std::invalid_argument("RandomForest: bad configuration");
  }
}

namespace {

double gini_from_counts(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

std::int32_t RandomForest::build_node(
    Tree& tree, const std::vector<std::vector<float>>& x,
    const std::vector<int>& y, std::vector<std::int64_t>& rows,
    std::int64_t begin, std::int64_t end, std::int64_t depth, Rng& rng) {
  const std::int64_t count = end - begin;
  double positives = 0.0;
  for (std::int64_t k = begin; k < end; ++k) {
    positives += y[static_cast<std::size_t>(rows[static_cast<std::size_t>(k)])];
  }

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.feature = -1;
    leaf.leaf_value =
        static_cast<float>(positives / static_cast<double>(count));
    tree.push_back(leaf);
    return static_cast<std::int32_t>(tree.size() - 1);
  };

  if (depth >= config_.max_depth || count < 2 * config_.min_samples_leaf ||
      positives == 0.0 || positives == static_cast<double>(count)) {
    return make_leaf();
  }

  // Feature subsample for this split.
  auto m = config_.feature_fraction > 0.0
               ? static_cast<std::int64_t>(
                     std::ceil(config_.feature_fraction *
                               static_cast<double>(num_features_)))
               : static_cast<std::int64_t>(std::ceil(
                     std::sqrt(static_cast<double>(num_features_))));
  m = std::clamp<std::int64_t>(m, 1, num_features_);
  std::vector<std::size_t> feat_perm(
      static_cast<std::size_t>(num_features_));
  for (std::size_t f = 0; f < feat_perm.size(); ++f) feat_perm[f] = f;
  rng.shuffle(feat_perm);

  const double parent_gini = gini_from_counts(positives,
                                              static_cast<double>(count));
  double best_gain = 1e-12;
  std::int32_t best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<std::pair<float, int>> column(
      static_cast<std::size_t>(count));
  for (std::int64_t fi = 0; fi < m; ++fi) {
    const std::size_t f = feat_perm[static_cast<std::size_t>(fi)];
    for (std::int64_t k = 0; k < count; ++k) {
      const auto row =
          static_cast<std::size_t>(rows[static_cast<std::size_t>(begin + k)]);
      column[static_cast<std::size_t>(k)] = {x[row][f], y[row]};
    }
    std::sort(column.begin(), column.end());

    double left_pos = 0.0;
    for (std::int64_t k = 0; k + 1 < count; ++k) {
      left_pos += column[static_cast<std::size_t>(k)].second;
      const float v = column[static_cast<std::size_t>(k)].first;
      const float v_next = column[static_cast<std::size_t>(k + 1)].first;
      if (v == v_next) continue;  // no valid threshold between equal values
      const std::int64_t left_n = k + 1;
      const std::int64_t right_n = count - left_n;
      if (left_n < config_.min_samples_leaf ||
          right_n < config_.min_samples_leaf) {
        continue;
      }
      const double right_pos = positives - left_pos;
      const double gain =
          parent_gini -
          (static_cast<double>(left_n) / count) *
              gini_from_counts(left_pos, static_cast<double>(left_n)) -
          (static_cast<double>(right_n) / count) *
              gini_from_counts(right_pos, static_cast<double>(right_n));
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(f);
        best_threshold = 0.5f * (v + v_next);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition rows in place.
  std::int64_t mid = begin;
  for (std::int64_t k = begin; k < end; ++k) {
    const auto row =
        static_cast<std::size_t>(rows[static_cast<std::size_t>(k)]);
    if (x[row][static_cast<std::size_t>(best_feature)] <= best_threshold) {
      std::swap(rows[static_cast<std::size_t>(k)],
                rows[static_cast<std::size_t>(mid)]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) return make_leaf();  // degenerate split

  Node split;
  split.feature = best_feature;
  split.threshold = best_threshold;
  tree.push_back(split);
  const auto index = static_cast<std::int32_t>(tree.size() - 1);
  const std::int32_t left =
      build_node(tree, x, y, rows, begin, mid, depth + 1, rng);
  const std::int32_t right =
      build_node(tree, x, y, rows, mid, end, depth + 1, rng);
  tree[static_cast<std::size_t>(index)].left = left;
  tree[static_cast<std::size_t>(index)].right = right;
  return index;
}

void RandomForest::fit(const std::vector<std::vector<float>>& features,
                       const std::vector<int>& labels) {
  if (features.empty() || features.size() != labels.size()) {
    throw std::invalid_argument("RandomForest::fit: bad training data");
  }
  num_features_ = static_cast<std::int64_t>(features.front().size());
  for (const auto& row : features) {
    if (static_cast<std::int64_t>(row.size()) != num_features_) {
      throw std::invalid_argument("RandomForest::fit: ragged features");
    }
  }

  Rng rng(config_.seed);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(config_.num_trees));
  const auto n = static_cast<std::int64_t>(features.size());

  for (std::int64_t t = 0; t < config_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<std::int64_t> rows(static_cast<std::size_t>(n));
    for (auto& r : rows) {
      r = static_cast<std::int64_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n)));
    }
    Tree tree;
    tree.reserve(128);
    build_node(tree, features, labels, rows, 0, n, 0, rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::predict_proba(std::span<const float> features) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  if (static_cast<std::int64_t>(features.size()) != num_features_) {
    throw std::invalid_argument("RandomForest: feature dim mismatch");
  }
  double acc = 0.0;
  for (const Tree& tree : trees_) {
    // The root is the first node created by build_node for this tree.
    std::int32_t node = 0;
    while (tree[static_cast<std::size_t>(node)].feature >= 0) {
      const Node& nd = tree[static_cast<std::size_t>(node)];
      node = features[static_cast<std::size_t>(nd.feature)] <= nd.threshold
                 ? nd.left
                 : nd.right;
    }
    acc += tree[static_cast<std::size_t>(node)].leaf_value;
  }
  return acc / static_cast<double>(trees_.size());
}

std::vector<float> RandomForest::predict_proba_all(
    const std::vector<std::vector<float>>& features) const {
  std::vector<float> out;
  out.reserve(features.size());
  for (const auto& row : features) {
    out.push_back(static_cast<float>(predict_proba(row)));
  }
  return out;
}

}  // namespace sne::baselines
