// forest.h — random forest classifier built from scratch (CART trees,
// Gini impurity, bootstrap aggregation, per-split feature subsampling).
// Random forests are the workhorse of the photometric-classification
// literature the paper compares against (Bailey 2007, Bloom 2012,
// Lochner 2016); this implementation backs the Lochner-style baseline
// row of Table 2.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "tensor/rng.h"

namespace sne::baselines {

struct ForestConfig {
  std::int64_t num_trees = 100;
  std::int64_t max_depth = 10;
  std::int64_t min_samples_leaf = 4;
  /// Features tried per split, as a fraction of the total (√d is the
  /// classical default; 0 selects √d automatically).
  double feature_fraction = 0.0;
  std::uint64_t seed = 1234;
};

class RandomForest {
 public:
  explicit RandomForest(const ForestConfig& config = {});

  /// Fits on a row-major feature matrix with binary labels {0, 1}.
  void fit(const std::vector<std::vector<float>>& features,
           const std::vector<int>& labels);

  /// Fraction of trees voting class 1 (a calibrated-ish probability).
  double predict_proba(std::span<const float> features) const;

  /// Batch scoring.
  std::vector<float> predict_proba_all(
      const std::vector<std::vector<float>>& features) const;

  bool is_fitted() const noexcept { return !trees_.empty(); }
  std::int64_t num_features() const noexcept { return num_features_; }

 private:
  struct Node {
    // Leaf when feature < 0.
    std::int32_t feature = -1;
    float threshold = 0.0f;
    float leaf_value = 0.5f;  ///< P(class 1)
    std::int32_t left = -1;
    std::int32_t right = -1;
  };
  using Tree = std::vector<Node>;

  std::int32_t build_node(Tree& tree, const std::vector<std::vector<float>>& x,
                          const std::vector<int>& y,
                          std::vector<std::int64_t>& rows, std::int64_t begin,
                          std::int64_t end, std::int64_t depth, Rng& rng);

  ForestConfig config_;
  std::int64_t num_features_ = 0;
  std::vector<Tree> trees_;
};

}  // namespace sne::baselines
