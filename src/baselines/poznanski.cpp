#include "baselines/poznanski.h"

#include <cmath>

namespace sne::baselines {

PoznanskiClassifier::PoznanskiClassifier(const PoznanskiConfig& config)
    : config_(config), grid_(config.grid) {}

double PoznanskiClassifier::score_sample(const sim::SnDataset& data,
                                         std::int64_t i) const {
  // One epoch subset: the e-th observation of each band.
  std::vector<sim::FluxMeasurement> epoch_data;
  epoch_data.reserve(astro::kNumBands);
  for (const astro::Band b : astro::kAllBands) {
    epoch_data.push_back(data.measured_point(i, b, config_.epoch));
  }

  const double z_known =
      config_.use_redshift ? data.host(i).photo_z : -1.0;
  const double log_ia =
      grid_.log_evidence(true, epoch_data, z_known, config_.z_window);
  const double log_cc =
      grid_.log_evidence(false, epoch_data, z_known, config_.z_window);

  // Posterior with equal class priors (the dataset is balanced).
  const double m = std::max(log_ia, log_cc);
  const double pia = std::exp(log_ia - m);
  const double pcc = std::exp(log_cc - m);
  return pia / (pia + pcc);
}

std::vector<float> PoznanskiClassifier::score(
    const sim::SnDataset& data,
    const std::vector<std::int64_t>& samples) const {
  std::vector<float> out;
  out.reserve(samples.size());
  for (const std::int64_t i : samples) {
    out.push_back(static_cast<float>(score_sample(data, i)));
  }
  return out;
}

}  // namespace sne::baselines
