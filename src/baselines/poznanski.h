// poznanski.h — re-implementation of Poznanski, Maoz & Gal-Yam (2007),
// "Bayesian single-epoch photometric classification of supernovae"
// (ref. [14], the single-epoch comparator of Table 2). Given one epoch of
// multi-band fluxes, the classifier marginalizes template fits over phase
// and (optionally) redshift and reports the posterior odds of Ia vs
// core collapse. The paper's Table 2 contrasts its accuracy with and
// without a redshift prior — without one, single-epoch colors alone are
// nearly uninformative (accuracy 0.60 on SNLS), which is precisely the
// gap the CNN method closes.
#pragma once

#include <vector>

#include "baselines/template_grid.h"
#include "sim/dataset_builder.h"

namespace sne::baselines {

struct PoznanskiConfig {
  bool use_redshift = false;  ///< condition on the host photo-z
  double z_window = 0.15;     ///< photo-z uncertainty window
  std::int64_t epoch = 0;     ///< which epoch subset to classify
  TemplateGridConfig grid;
};

class PoznanskiClassifier {
 public:
  explicit PoznanskiClassifier(const PoznanskiConfig& config = {});

  /// Posterior probability of Ia for one sample's single-epoch fluxes.
  double score_sample(const sim::SnDataset& data, std::int64_t i) const;

  /// Scores for a set of samples (one float per sample, higher = more Ia).
  std::vector<float> score(const sim::SnDataset& data,
                           const std::vector<std::int64_t>& samples) const;

 private:
  PoznanskiConfig config_;
  TemplateGrid grid_;
};

}  // namespace sne::baselines
