#include "baselines/rnn.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "astro/photometry.h"

namespace sne::baselines {

namespace {
constexpr std::int64_t kBaseDims = 3;  // date, signed-log flux, log error
}

namespace {

nn::ModulePtr make_recurrent(const CharnockRnnConfig& config, Rng& rng) {
  const std::int64_t input =
      kBaseDims + astro::kNumBands + (config.include_redshift ? 1 : 0);
  if (config.unit == RecurrentUnit::Lstm) {
    return std::make_unique<nn::Lstm>(input, config.hidden, rng,
                                      "charnock.lstm");
  }
  return std::make_unique<nn::Gru>(input, config.hidden, rng,
                                   "charnock.gru");
}

}  // namespace

CharnockRnn::CharnockRnn(const CharnockRnnConfig& config, Rng& rng)
    : config_(config),
      recurrent_(make_recurrent(config, rng)),
      head_(config.hidden, 1, rng, "charnock.head") {
  if (config.hidden <= 0 || config.epochs_per_band <= 0) {
    throw std::invalid_argument("CharnockRnn: bad configuration");
  }
}

std::int64_t CharnockRnn::input_dim() const noexcept {
  return kBaseDims + astro::kNumBands + (config_.include_redshift ? 1 : 0);
}

Tensor CharnockRnn::forward(const Tensor& x) {
  return head_.forward(recurrent_->forward(x));
}

Tensor CharnockRnn::backward(const Tensor& grad_output) {
  return recurrent_->backward(head_.backward(grad_output));
}

std::vector<nn::Param*> CharnockRnn::params() {
  std::vector<nn::Param*> out = recurrent_->params();
  for (nn::Param* p : head_.params()) out.push_back(p);
  return out;
}

void CharnockRnn::set_training(bool training) {
  Module::set_training(training);
  recurrent_->set_training(training);
  head_.set_training(training);
}

std::vector<float> encode_measurement(const sim::FluxMeasurement& m,
                                      double season_start, double season_days,
                                      double photo_z, bool include_redshift) {
  std::vector<float> v;
  v.reserve(static_cast<std::size_t>(kBaseDims + astro::kNumBands) +
            (include_redshift ? 1 : 0));
  v.push_back(static_cast<float>((m.mjd - season_start) / season_days));
  // Signed-log compresses the 4-decade flux dynamic range and tolerates
  // the negative fluxes real difference photometry produces.
  v.push_back(static_cast<float>(astro::signed_log(m.flux) / 3.0));
  v.push_back(static_cast<float>(std::log10(m.flux_error + 1.0) / 3.0));
  for (const astro::Band b : astro::kAllBands) {
    v.push_back(b == m.band ? 1.0f : 0.0f);
  }
  if (include_redshift) v.push_back(static_cast<float>(photo_z / 2.0));
  return v;
}

nn::LazyDataset make_sequence_dataset(const sim::SnDataset& data,
                                      std::vector<std::int64_t> samples,
                                      const CharnockRnnConfig& config) {
  const auto n = static_cast<std::int64_t>(samples.size());
  if (n == 0) throw std::invalid_argument("make_sequence_dataset: empty");
  const std::int64_t steps = astro::kNumBands * config.epochs_per_band;
  const std::int64_t dims =
      kBaseDims + astro::kNumBands + (config.include_redshift ? 1 : 0);

  auto generator = [&data, samples = std::move(samples), config, steps,
                    dims](std::int64_t k) -> nn::Sample {
    const std::int64_t i = samples.at(static_cast<std::size_t>(k));
    const double season_start = data.config().schedule.start_mjd;
    const double season_days = data.config().schedule.season_days;
    const double z = data.host(i).photo_z;

    // Time-ordered sequence, truncated to the configured epoch count.
    std::vector<sim::FluxMeasurement> points;
    for (const astro::Band b : astro::kAllBands) {
      for (std::int64_t e = 0; e < config.epochs_per_band; ++e) {
        points.push_back(data.measured_point(i, b, e));
      }
    }
    std::sort(points.begin(), points.end(),
              [](const sim::FluxMeasurement& a, const sim::FluxMeasurement& b) {
                return a.mjd < b.mjd;
              });

    nn::Sample s;
    s.x = Tensor({steps, dims});
    for (std::int64_t t = 0;
         t < std::min<std::int64_t>(steps,
                                    static_cast<std::int64_t>(points.size()));
         ++t) {
      const auto enc =
          encode_measurement(points[static_cast<std::size_t>(t)],
                             season_start, season_days, z,
                             config.include_redshift);
      std::copy(enc.begin(), enc.end(), s.x.data() + t * dims);
    }
    s.y = Tensor({1}, data.is_ia(i) ? 1.0f : 0.0f);
    return s;
  };
  // Batch-parallel: measured_point draws from deterministic per-epoch
  // streams, so sequence assembly fans across the shared pool.
  return nn::LazyDataset(n, std::move(generator), nn::BatchMode::Parallel);
}

}  // namespace sne::baselines
