// rnn.h — recurrent photometric classifier in the style of Charnock &
// Moss (2016), "Deep Recurrent Neural Networks for Supernovae
// Classification" (ref. [4], the strongest multi-epoch comparator of
// Table 2). Each measured light-curve point becomes one timestep of
// (normalized date, signed-log flux, log error, band one-hot[, photo-z]);
// a GRU consumes the sequence in time order and a linear head maps the
// final hidden state to the SNIa logit.
#pragma once

#include <memory>
#include <vector>

#include "nn/nn.h"
#include "sim/dataset_builder.h"

namespace sne::baselines {

/// Recurrent unit choice; Charnock & Moss evaluated both.
enum class RecurrentUnit : std::uint8_t { Gru = 0, Lstm = 1 };

struct CharnockRnnConfig {
  std::int64_t hidden = 32;
  std::int64_t epochs_per_band = 4;  ///< sequence length = 5 × this
  bool include_redshift = false;
  RecurrentUnit unit = RecurrentUnit::Gru;
  std::uint64_t seed = 99;
};

/// The GRU classifier network: input [N, T, D] → logits [N, 1].
class CharnockRnn final : public nn::Module {
 public:
  CharnockRnn(const CharnockRnnConfig& config, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Param*> params() override;
  void set_training(bool training) override;

  std::int64_t input_dim() const noexcept;
  std::int64_t sequence_length() const noexcept {
    return astro::kNumBands * config_.epochs_per_band;
  }
  const CharnockRnnConfig& config() const noexcept { return config_; }

 private:
  CharnockRnnConfig config_;
  nn::ModulePtr recurrent_;  ///< Gru or Lstm, per config
  nn::Linear head_;
};

/// Per-timestep encoding of one measurement.
std::vector<float> encode_measurement(const sim::FluxMeasurement& m,
                                      double season_start, double season_days,
                                      double photo_z, bool include_redshift);

/// Lazy dataset of sequences: x = [T, D] (time-ordered measurements),
/// y = [1] label.
nn::LazyDataset make_sequence_dataset(const sim::SnDataset& data,
                                      std::vector<std::int64_t> samples,
                                      const CharnockRnnConfig& config);

}  // namespace sne::baselines
