#include "baselines/template_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sne::baselines {

TemplateGrid::TemplateGrid(const TemplateGridConfig& config)
    : config_(config) {
  if (config.z_step <= 0.0 || config.peak_step <= 0.0 ||
      config.z_max < config.z_min || config.peak_mjd_max < config.peak_mjd_min) {
    throw std::invalid_argument("TemplateGrid: bad grid spec");
  }
  for (double z = config.z_min; z <= config.z_max + 1e-9;
       z += config.z_step) {
    for (double t0 = config.peak_mjd_min; t0 <= config.peak_mjd_max + 1e-9;
         t0 += config.peak_step) {
      for (const astro::SnType type : astro::kAllSnTypes) {
        if (astro::is_type_ia(type)) {
          for (const double s : config.ia_stretches) {
            entries_.push_back({type, z, t0, s});
          }
        } else {
          entries_.push_back({type, z, t0, 1.0});
        }
      }
    }
  }
}

GridFit TemplateGrid::fit(const GridEntry& entry,
                          std::span<const sim::FluxMeasurement> data) const {
  if (data.empty()) throw std::invalid_argument("TemplateGrid::fit: no data");

  // Reference-amplitude model: the template at a fiducial absolute
  // magnitude; the profiled amplitude absorbs the true luminosity.
  astro::SnParams p;
  p.type = entry.type;
  p.redshift = entry.redshift;
  p.stretch = entry.stretch;
  p.color = 0.0;
  p.peak_mjd = entry.peak_mjd;
  p.peak_abs_mag = -19.0;
  const astro::LightCurve model(p, cosmology_);

  double sum_fm = 0.0;  // Σ f·m/σ²
  double sum_mm = 0.0;  // Σ m²/σ²
  double sum_ff = 0.0;  // Σ f²/σ²
  for (const sim::FluxMeasurement& d : data) {
    if (d.flux_error <= 0.0) {
      throw std::invalid_argument("TemplateGrid::fit: non-positive error");
    }
    const double w = 1.0 / (d.flux_error * d.flux_error);
    const double m = model.flux(d.band, d.mjd);
    sum_fm += d.flux * m * w;
    sum_mm += m * m * w;
    sum_ff += d.flux * d.flux * w;
  }

  GridFit out;
  out.amplitude = sum_mm > 0.0 ? std::max(0.0, sum_fm / sum_mm) : 0.0;
  // χ²(A*) = Σf²/σ² − 2A·Σfm/σ² + A²·Σm²/σ².
  out.chi2 = sum_ff - 2.0 * out.amplitude * sum_fm +
             out.amplitude * out.amplitude * sum_mm;
  return out;
}

GridFit TemplateGrid::best_fit_of_class(
    bool ia, std::span<const sim::FluxMeasurement> data,
    GridEntry* best_entry) const {
  GridFit best;
  best.chi2 = std::numeric_limits<double>::infinity();
  for (const GridEntry& entry : entries_) {
    if (astro::is_type_ia(entry.type) != ia) continue;
    const GridFit f = fit(entry, data);
    if (f.chi2 < best.chi2) {
      best = f;
      if (best_entry != nullptr) *best_entry = entry;
    }
  }
  return best;
}

double TemplateGrid::log_evidence(bool ia,
                                  std::span<const sim::FluxMeasurement> data,
                                  double z_known, double z_window) const {
  // Log-sum-exp over the class's grid entries. A flat prior over the grid
  // is used in z and t0; the "with redshift" variant restricts the z range
  // around the (photometric) redshift, mirroring Poznanski et al.
  double max_log = -std::numeric_limits<double>::infinity();
  std::vector<double> logs;
  logs.reserve(entries_.size());
  for (const GridEntry& entry : entries_) {
    if (astro::is_type_ia(entry.type) != ia) continue;
    if (z_known >= 0.0 && std::abs(entry.redshift - z_known) > z_window) {
      continue;
    }
    const GridFit f = fit(entry, data);
    const double lg = -0.5 * f.chi2;
    logs.push_back(lg);
    max_log = std::max(max_log, lg);
  }
  if (logs.empty()) return -std::numeric_limits<double>::infinity();
  double acc = 0.0;
  for (const double lg : logs) acc += std::exp(lg - max_log);
  return max_log + std::log(acc / static_cast<double>(logs.size()));
}

}  // namespace sne::baselines
