// template_grid.h — shared machinery of the photometric baselines: a grid
// of candidate light-curve models (type × redshift × peak date × stretch)
// evaluated against flux measurements by χ², with the overall amplitude
// profiled out analytically (for a fixed shape m_i the optimum of
// Σ((f_i − A·m_i)/σ_i)² is A* = Σf·m/σ² / Σm²/σ², subject to A ≥ 0).
// This is the classical template-fitting engine behind Sullivan-style
// photometric selection and the Poznanski Bayesian classifier.
#pragma once

#include <span>
#include <vector>

#include "astro/lightcurve.h"
#include "sim/measurement.h"

namespace sne::baselines {

/// One candidate model on the grid.
struct GridEntry {
  astro::SnType type = astro::SnType::Ia;
  double redshift = 0.5;
  double peak_mjd = 0.0;
  double stretch = 1.0;
};

struct TemplateGridConfig {
  double z_min = 0.1;
  double z_max = 2.0;
  double z_step = 0.1;
  double peak_mjd_min = -10.0;
  double peak_mjd_max = 70.0;
  double peak_step = 4.0;
  std::vector<double> ia_stretches = {0.8, 1.0, 1.2};
};

/// Result of fitting one entry.
struct GridFit {
  double chi2 = 0.0;
  double amplitude = 0.0;  ///< profiled flux scale (≥ 0)
};

class TemplateGrid {
 public:
  explicit TemplateGrid(const TemplateGridConfig& config = {});

  const std::vector<GridEntry>& entries() const noexcept { return entries_; }

  /// χ² of the measurements against one entry (amplitude profiled).
  GridFit fit(const GridEntry& entry,
              std::span<const sim::FluxMeasurement> data) const;

  /// Minimum χ² over all entries of Ia type (and the matching entry).
  GridFit best_fit_of_class(bool ia,
                            std::span<const sim::FluxMeasurement> data,
                            GridEntry* best_entry = nullptr) const;

  /// Σ over entries of the class of exp(−χ²/2) weighted by the redshift
  /// prior; optionally restricted to |z − z_known| ≤ z_window (the
  /// "with redshift" variants). The log of the summed evidence is
  /// returned (log-sum-exp, stable).
  double log_evidence(bool ia, std::span<const sim::FluxMeasurement> data,
                      double z_known = -1.0, double z_window = 0.15) const;

  const astro::Cosmology& cosmology() const noexcept { return cosmology_; }

 private:
  TemplateGridConfig config_;
  astro::Cosmology cosmology_;
  std::vector<GridEntry> entries_;
};

}  // namespace sne::baselines
