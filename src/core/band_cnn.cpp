#include "core/band_cnn.h"

#include <stdexcept>

#include "core/pixel_transform.h"

namespace sne::core {

std::int64_t BandCnn::trunk_output_extent(std::int64_t input_size,
                                          std::int64_t kernel) {
  std::int64_t e = input_size;
  for (int stage = 0; stage < 3; ++stage) {
    e = e - kernel + 1;  // valid convolution
    if (e < 2) {
      throw std::invalid_argument(
          "BandCnn: input size too small for three conv/pool stages");
    }
    e /= 2;  // 2×2 pooling
  }
  return e;
}

BandCnn::BandCnn(const BandCnnConfig& config, Rng& rng) : config_(config) {
  const std::int64_t out_extent =
      trunk_output_extent(config.input_size, config.kernel);

  if (config.signed_log) {
    net_.emplace<DiffSignedLogCrop>(config.input_size);
  } else {
    net_.emplace<RawDiffCrop>(config.input_size);
  }

  std::int64_t in_ch = 1;
  for (std::size_t stage = 0; stage < config.conv_channels.size(); ++stage) {
    const std::int64_t out_ch = config.conv_channels[stage];
    const std::string tag = "conv" + std::to_string(stage + 1);
    net_.emplace<nn::Conv2d>(in_ch, out_ch, config.kernel, rng, 1, 0,
                             "bandcnn." + tag);
    net_.emplace<nn::BatchNorm2d>(out_ch, 0.1f, 1e-5f,
                                  "bandcnn." + tag + ".bn");
    net_.emplace<nn::PReLU>(out_ch, 0.25f, "bandcnn." + tag + ".prelu");
    if (config.pool == PoolKind::Max) {
      net_.emplace<nn::MaxPool2d>(2);
    } else {
      net_.emplace<nn::AvgPool2d>(2);
    }
    in_ch = out_ch;
  }

  net_.emplace<nn::Flatten>();
  std::int64_t features = in_ch * out_extent * out_extent;
  for (std::size_t k = 0; k < config.fc_hidden.size(); ++k) {
    const std::string tag = "fc" + std::to_string(k + 1);
    net_.emplace<nn::Linear>(features, config.fc_hidden[k], rng,
                             "bandcnn." + tag);
    net_.emplace<nn::PReLU>(config.fc_hidden[k], 0.25f,
                            "bandcnn." + tag + ".prelu");
    features = config.fc_hidden[k];
  }
  auto& head = net_.emplace<nn::Linear>(features, 1, rng, "bandcnn.out");
  head.bias().value.fill(config.output_bias_init);
}

Tensor BandCnn::forward(const Tensor& x) { return net_.forward(x); }

Tensor BandCnn::backward(const Tensor& grad_output) {
  return net_.backward(grad_output);
}

void BandCnn::set_training(bool training) {
  Module::set_training(training);
  net_.set_training(training);
}

RawDiffCrop::RawDiffCrop(std::int64_t crop_size) : crop_(crop_size) {
  if (crop_size <= 0) {
    throw std::invalid_argument("RawDiffCrop: crop_size <= 0");
  }
}

Tensor RawDiffCrop::forward(const Tensor& x) {
  if (x.rank() != 4 || x.extent(1) != 2 || x.extent(2) < crop_ ||
      x.extent(3) < crop_) {
    throw std::invalid_argument("RawDiffCrop: bad input " + x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t s = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t y0 = (s - crop_) / 2;
  const std::int64_t x0 = (w - crop_) / 2;
  cached_in_shape_ = x.shape();

  Tensor out({n, 1, crop_, crop_});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* ref = x.data() + (i * 2 + 0) * s * w;
    const float* obs = x.data() + (i * 2 + 1) * s * w;
    float* dst = out.data() + i * crop_ * crop_;
    for (std::int64_t yy = 0; yy < crop_; ++yy) {
      const std::int64_t row = (y0 + yy) * w + x0;
      for (std::int64_t xx = 0; xx < crop_; ++xx) {
        dst[yy * crop_ + xx] = obs[row + xx] - ref[row + xx];
      }
    }
  }
  return out;
}

void RawDiffCrop::infer_into(ConstTensorView x, Tensor& out) const {
  if (x.rank() != 4 || x.extent(1) != 2 || x.extent(2) < crop_ ||
      x.extent(3) < crop_) {
    throw std::invalid_argument("RawDiffCrop: bad input " + x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t s = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t y0 = (s - crop_) / 2;
  const std::int64_t x0 = (w - crop_) / 2;

  out.resize({n, 1, crop_, crop_});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* ref = x.data() + (i * 2 + 0) * s * w;
    const float* obs = x.data() + (i * 2 + 1) * s * w;
    float* dst = out.data() + i * crop_ * crop_;
    for (std::int64_t yy = 0; yy < crop_; ++yy) {
      const std::int64_t row = (y0 + yy) * w + x0;
      for (std::int64_t xx = 0; xx < crop_; ++xx) {
        dst[yy * crop_ + xx] = obs[row + xx] - ref[row + xx];
      }
    }
  }
}

Shape RawDiffCrop::infer_shape(const Shape& in) const {
  if (in.size() != 4 || in[1] != 2 || in[2] < crop_ || in[3] < crop_) {
    throw std::invalid_argument("RawDiffCrop::infer_shape: bad shape");
  }
  return {in[0], 1, crop_, crop_};
}

Tensor RawDiffCrop::backward(const Tensor& grad_output) {
  if (cached_in_shape_.empty()) {
    throw std::logic_error("RawDiffCrop::backward before forward");
  }
  const std::int64_t n = cached_in_shape_[0];
  const std::int64_t s = cached_in_shape_[2];
  const std::int64_t w = cached_in_shape_[3];
  const std::int64_t y0 = (s - crop_) / 2;
  const std::int64_t x0 = (w - crop_) / 2;

  Tensor grad_input(cached_in_shape_);
  for (std::int64_t i = 0; i < n; ++i) {
    float* g_ref = grad_input.data() + (i * 2 + 0) * s * w;
    float* g_obs = grad_input.data() + (i * 2 + 1) * s * w;
    const float* gy = grad_output.data() + i * crop_ * crop_;
    for (std::int64_t yy = 0; yy < crop_; ++yy) {
      const std::int64_t row = (y0 + yy) * w + x0;
      for (std::int64_t xx = 0; xx < crop_; ++xx) {
        g_obs[row + xx] = gy[yy * crop_ + xx];
        g_ref[row + xx] = -gy[yy * crop_ + xx];
      }
    }
  }
  return grad_input;
}

}  // namespace sne::core
