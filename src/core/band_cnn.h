// band_cnn.h — the paper's band-wise CNN for flux (magnitude) estimation
// (Fig. 7): difference + signed-log + crop, then three convolution modules
// (5×5 conv → batch norm → PReLU → 2×2 max pool, channels 10/20/30),
// then a three-layer fully connected head ending in the scalar magnitude.
// One network is shared across all five bands ("all the parameters of the
// band-wise CNNs are shared with all the bands").
#pragma once

#include <memory>

#include "nn/nn.h"

namespace sne::core {

/// Pooling flavor; the paper argues max pooling is essential (each stamp
/// holds at most one SN) — the ablation bench tests average pooling.
enum class PoolKind { Max, Average };

struct BandCnnConfig {
  std::int64_t input_size = 60;  ///< crop size (Table 1 sweeps 36…65)
  std::array<std::int64_t, 3> conv_channels = {10, 20, 30};
  std::int64_t kernel = 5;
  std::array<std::int64_t, 2> fc_hidden = {64, 32};
  PoolKind pool = PoolKind::Max;
  bool signed_log = true;       ///< ablation: raw difference pixels
  /// Initial bias of the output unit; starting near a typical SN
  /// magnitude removes a large constant from the initial loss.
  float output_bias_init = 25.5f;
};

/// Builds the network. Input [N, 2, S, S] with S ≥ input_size; output
/// [N, 1] estimated magnitudes.
class BandCnn final : public nn::Module {
 public:
  BandCnn(const BandCnnConfig& config, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override {
    net_.infer_into(x, out);
  }
  Shape infer_shape(const Shape& in) const override {
    return net_.infer_shape(in);
  }
  std::vector<nn::Param*> params() override { return net_.params(); }
  std::vector<const nn::Param*> params() const override {
    return net_.params();
  }
  std::vector<nn::Param*> buffers() override { return net_.buffers(); }
  std::vector<const nn::Param*> buffers() const override {
    return net_.buffers();
  }
  void set_training(bool training) override;

  const BandCnnConfig& config() const noexcept { return config_; }

  /// The underlying layer stack; the inference planner walks it to size
  /// arena buffers and fold batch norms into convolutions.
  const nn::Sequential& net() const noexcept { return net_; }

  /// Spatial extent after the three conv/pool stages for a given input
  /// size (used to size the first FC layer; throws if the input is too
  /// small to survive three stages).
  static std::int64_t trunk_output_extent(std::int64_t input_size,
                                          std::int64_t kernel);

 private:
  BandCnnConfig config_;
  nn::Sequential net_;
};

/// A raw-pixel variant used by ablations: identical trunk but skipping
/// the signed-log compression (still differencing + cropping).
class RawDiffCrop final : public nn::Module {
 public:
  explicit RawDiffCrop(std::int64_t crop_size);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;

 private:
  std::int64_t crop_;
  Shape cached_in_shape_;
};

}  // namespace sne::core
