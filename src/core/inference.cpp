#include "core/inference.h"

#include "astro/bands.h"

namespace sne::core {

std::shared_ptr<const infer::InferencePlan> compile_plan(
    const BandCnn& cnn, infer::PlanOptions options) {
  const std::int64_t s = cnn.config().input_size;
  return std::make_shared<const infer::InferencePlan>(cnn.net(),
                                                      Shape{2, s, s}, options);
}

std::shared_ptr<const infer::InferencePlan> compile_plan(
    const LcClassifier& classifier, infer::PlanOptions options) {
  return std::make_shared<const infer::InferencePlan>(
      classifier.net(), Shape{classifier.config().input_dim}, options);
}

infer::InferenceSession make_session(const BandCnn& cnn,
                                     infer::PlanOptions options) {
  return infer::InferenceSession(compile_plan(cnn, options));
}

infer::InferenceSession make_session(const LcClassifier& classifier,
                                     infer::PlanOptions options) {
  return infer::InferenceSession(compile_plan(classifier, options));
}

namespace {

infer::JointGlue joint_glue(const JointModel& joint) {
  infer::JointGlue glue;
  glue.stamp = joint.config().cnn.input_size;
  glue.num_bands = astro::kNumBands;
  glue.mag_offset = static_cast<float>(joint.config().features.mag_offset);
  glue.mag_scale = static_cast<float>(joint.config().features.mag_scale);
  return glue;
}

}  // namespace

infer::JointSession make_session(const JointModel& joint,
                                 infer::PlanOptions options) {
  return infer::JointSession(make_session(joint.band_cnn(), options),
                             make_session(joint.classifier(), options),
                             joint_glue(joint));
}

infer::JointCalibration calibrate(const JointModel& joint,
                                  std::span<const Tensor> batches) {
  // Ranges must describe the fp32 reference path, so the recording
  // session is always built with default (fp32) options.
  infer::JointSession session = make_session(joint);
  infer::JointCalibration table;
  Tensor out;
  for (const Tensor& batch : batches) {
    session.calibrate(batch, out, table);
  }
  return table;
}

infer::JointSession make_session(const JointModel& joint,
                                 const infer::JointCalibration& calibration,
                                 infer::PlanOptions options) {
  options.precision = Precision::Int8;
  infer::PlanOptions cnn_options = options;
  cnn_options.calibration = &calibration.cnn;
  infer::PlanOptions clf_options = options;
  clf_options.calibration = &calibration.classifier;
  return infer::JointSession(make_session(joint.band_cnn(), cnn_options),
                             make_session(joint.classifier(), clf_options),
                             joint_glue(joint));
}

}  // namespace sne::core
