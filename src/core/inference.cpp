#include "core/inference.h"

#include <stdexcept>

#include "astro/bands.h"

namespace sne::core {

namespace {

infer::JointGlue joint_glue(const JointModel& joint) {
  infer::JointGlue glue;
  glue.stamp = joint.config().cnn.input_size;
  glue.num_bands = astro::kNumBands;
  glue.mag_offset = static_cast<float>(joint.config().features.mag_offset);
  glue.mag_scale = static_cast<float>(joint.config().features.mag_scale);
  return glue;
}

// Shared validation of the calibration/precision pairing for the
// single-net factories (which must not receive the joint table).
void check_single_net(const SessionOptions& options) {
  if (options.joint_calibration != nullptr) {
    throw std::invalid_argument(
        "SessionOptions: joint_calibration is only meaningful for the "
        "JointModel factory; single-net factories take `calibration`");
  }
  if (options.precision == Precision::Int8 && options.calibration == nullptr) {
    throw std::invalid_argument(
        "SessionOptions: Int8 requires a calibration table "
        "(record one via InferenceSession::calibrate)");
  }
}

}  // namespace

infer::PlanOptions plan_options(const SessionOptions& options) {
  check_single_net(options);
  infer::PlanOptions plan;
  plan.fold_batchnorm = options.fold_batchnorm;
  plan.fuse_prelu = options.fuse_prelu;
  plan.precision = options.precision;
  plan.calibration = options.calibration;
  return plan;
}

std::shared_ptr<const infer::InferencePlan> compile_plan(
    const BandCnn& cnn, const SessionOptions& options) {
  const std::int64_t s = cnn.config().input_size;
  return std::make_shared<const infer::InferencePlan>(
      cnn.net(), Shape{2, s, s}, plan_options(options));
}

std::shared_ptr<const infer::InferencePlan> compile_plan(
    const LcClassifier& classifier, const SessionOptions& options) {
  return std::make_shared<const infer::InferencePlan>(
      classifier.net(), Shape{classifier.config().input_dim},
      plan_options(options));
}

infer::InferenceSession make_session(const BandCnn& cnn,
                                     const SessionOptions& options) {
  return infer::InferenceSession(compile_plan(cnn, options));
}

infer::InferenceSession make_session(const LcClassifier& classifier,
                                     const SessionOptions& options) {
  return infer::InferenceSession(compile_plan(classifier, options));
}

infer::JointSession make_session(const JointModel& joint,
                                 const SessionOptions& options) {
  if (options.calibration != nullptr) {
    throw std::invalid_argument(
        "SessionOptions: the JointModel factory takes `joint_calibration`, "
        "not the single-net `calibration` table");
  }
  SessionOptions sub = options;
  sub.joint_calibration = nullptr;
  if (options.precision == Precision::Int8) {
    if (options.joint_calibration == nullptr) {
      throw std::invalid_argument(
          "SessionOptions: Int8 joint session requires joint_calibration "
          "(record one via core::calibrate)");
    }
    SessionOptions cnn_options = sub;
    cnn_options.calibration = &options.joint_calibration->cnn;
    SessionOptions clf_options = sub;
    clf_options.calibration = &options.joint_calibration->classifier;
    return infer::JointSession(make_session(joint.band_cnn(), cnn_options),
                               make_session(joint.classifier(), clf_options),
                               joint_glue(joint));
  }
  return infer::JointSession(make_session(joint.band_cnn(), sub),
                             make_session(joint.classifier(), sub),
                             joint_glue(joint));
}

infer::JointCalibration calibrate(const JointModel& joint,
                                  std::span<const Tensor> batches) {
  // Ranges must describe the fp32 reference path, so the recording
  // session is always built with default (fp32) options.
  infer::JointSession session = make_session(joint);
  infer::JointCalibration table;
  Tensor out;
  for (const Tensor& batch : batches) {
    session.calibrate(batch, out, table);
  }
  return table;
}

// ---- deprecated forwards --------------------------------------------

namespace {

// PlanOptions → SessionOptions, for the legacy overloads below.
SessionOptions from_plan_options(const infer::PlanOptions& options) {
  SessionOptions so;
  so.precision = options.precision;
  so.fold_batchnorm = options.fold_batchnorm;
  so.fuse_prelu = options.fuse_prelu;
  so.calibration = options.calibration;
  return so;
}

}  // namespace

std::shared_ptr<const infer::InferencePlan> compile_plan(
    const BandCnn& cnn, infer::PlanOptions options) {
  return compile_plan(cnn, from_plan_options(options));
}

std::shared_ptr<const infer::InferencePlan> compile_plan(
    const LcClassifier& classifier, infer::PlanOptions options) {
  return compile_plan(classifier, from_plan_options(options));
}

infer::InferenceSession make_session(const BandCnn& cnn,
                                     infer::PlanOptions options) {
  return make_session(cnn, from_plan_options(options));
}

infer::InferenceSession make_session(const LcClassifier& classifier,
                                     infer::PlanOptions options) {
  return make_session(classifier, from_plan_options(options));
}

infer::JointSession make_session(const JointModel& joint,
                                 infer::PlanOptions options) {
  return make_session(joint, from_plan_options(options));
}

infer::JointSession make_session(const JointModel& joint,
                                 const infer::JointCalibration& calibration,
                                 infer::PlanOptions options) {
  SessionOptions so = from_plan_options(options);
  so.precision = Precision::Int8;
  so.calibration = nullptr;
  so.joint_calibration = &calibration;
  return make_session(joint, so);
}

}  // namespace sne::core
