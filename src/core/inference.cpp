#include "core/inference.h"

#include "astro/bands.h"

namespace sne::core {

std::shared_ptr<const infer::InferencePlan> compile_plan(
    const BandCnn& cnn, infer::PlanOptions options) {
  const std::int64_t s = cnn.config().input_size;
  return std::make_shared<const infer::InferencePlan>(cnn.net(),
                                                      Shape{2, s, s}, options);
}

std::shared_ptr<const infer::InferencePlan> compile_plan(
    const LcClassifier& classifier, infer::PlanOptions options) {
  return std::make_shared<const infer::InferencePlan>(
      classifier.net(), Shape{classifier.config().input_dim}, options);
}

infer::InferenceSession make_session(const BandCnn& cnn,
                                     infer::PlanOptions options) {
  return infer::InferenceSession(compile_plan(cnn, options));
}

infer::InferenceSession make_session(const LcClassifier& classifier,
                                     infer::PlanOptions options) {
  return infer::InferenceSession(compile_plan(classifier, options));
}

infer::JointSession make_session(const JointModel& joint,
                                 infer::PlanOptions options) {
  infer::JointGlue glue;
  glue.stamp = joint.config().cnn.input_size;
  glue.num_bands = astro::kNumBands;
  glue.mag_offset = static_cast<float>(joint.config().features.mag_offset);
  glue.mag_scale = static_cast<float>(joint.config().features.mag_scale);
  return infer::JointSession(make_session(joint.band_cnn(), options),
                             make_session(joint.classifier(), options),
                             glue);
}

}  // namespace sne::core
