// inference.h — model-aware factories bridging the paper's trained models
// to the generic serving machinery in src/infer. The infer library knows
// only about Sequential stacks; these helpers know the models' input
// shapes and the joint model's feature-glue constants, so call sites can
// build a serving session in one line:
//
//   auto scorer = core::make_session(joint_model, core::SessionOptions{});
//   Tensor logits = scorer.run(batch);
//
// One options struct drives every precision: fp32 is the default, int8
// flips `precision` and attaches the calibration recorded by calibrate()
// (joint model) or InferenceSession::calibrate (single nets). The old
// per-precision overload pairs survive one release as deprecated
// forwards.
#pragma once

#include <memory>
#include <span>

#include "core/band_cnn.h"
#include "core/joint_model.h"
#include "core/lc_classifier.h"
#include "infer/session.h"

namespace sne::core {

/// The one knob set for building serving plans and sessions, whatever
/// the model and precision. Exactly one of the calibration pointers may
/// be non-null, and which one is legal depends on the factory:
/// single-net factories (BandCnn, LcClassifier, stream tiers) take
/// `calibration`; the JointModel factory takes `joint_calibration`.
/// Int8 without the matching calibration is refused — quantizing against
/// absent ranges would silently serve garbage.
struct SessionOptions {
  Precision precision = Precision::Fp32;
  /// Fold BatchNorm into the preceding conv using the trained running
  /// statistics (serving-only transformation; bitwise-pinned by tests).
  bool fold_batchnorm = true;
  /// Fuse PReLU into the preceding step's epilogue.
  bool fuse_prelu = true;
  /// Activation ranges for a single-net int8 plan. Borrowed for the
  /// duration of the factory call only.
  const infer::CalibrationTable* calibration = nullptr;
  /// Activation ranges for the two sub-networks of the joint model.
  /// Borrowed for the duration of the factory call only.
  const infer::JointCalibration* joint_calibration = nullptr;
};

/// Lowers SessionOptions to the infer-layer options for one single-net
/// plan (validating the calibration/precision pairing). Exposed so other
/// model owners — e.g. stream::Tier1Cnn — compile their plans through
/// the same options surface.
infer::PlanOptions plan_options(const SessionOptions& options);

/// Plan for the band-wise CNN over [N, 2, S, S] stamps (S = the model's
/// configured input size). The model must outlive the plan.
std::shared_ptr<const infer::InferencePlan> compile_plan(
    const BandCnn& cnn, const SessionOptions& options = {});

/// Plan for the light-curve classifier over [N, input_dim] features.
std::shared_ptr<const infer::InferencePlan> compile_plan(
    const LcClassifier& classifier, const SessionOptions& options = {});

/// One-call session builders. Each session is single-threaded; build one
/// per worker (sharing a plan via compile_plan + the shared_ptr
/// constructor when building many).
infer::InferenceSession make_session(const BandCnn& cnn,
                                     const SessionOptions& options = {});
infer::InferenceSession make_session(const LcClassifier& classifier,
                                     const SessionOptions& options = {});

/// Serving session for the full image→class joint model; wires the CNN
/// and classifier sessions together with the model's feature-glue
/// constants (stamp extent, band count, magnitude normalization). Int8
/// requires options.joint_calibration (each sub-network's plan is
/// lowered against its half of the table).
infer::JointSession make_session(const JointModel& joint,
                                 const SessionOptions& options = {});

/// Records activation ranges for both sub-networks of the joint model by
/// streaming `batches` (each [N, bands·2·S·S + bands], the joint-model
/// sample layout) through a fresh fp32 serving session. The returned
/// table feeds an int8 make_session via
/// SessionOptions::joint_calibration. Deterministic: the result is
/// byte-identical regardless of how the calibration set is batched or
/// which thread count renders it.
infer::JointCalibration calibrate(const JointModel& joint,
                                  std::span<const Tensor> batches);

// ---- deprecated forwards (one release; see docs/API.md) -------------
// The PlanOptions overload pairs predate SessionOptions. They carry no
// default argument so `make_session(model)` keeps resolving to the new
// factory unambiguously.

[[deprecated("use the SessionOptions overload")]]
std::shared_ptr<const infer::InferencePlan> compile_plan(
    const BandCnn& cnn, infer::PlanOptions options);
[[deprecated("use the SessionOptions overload")]]
std::shared_ptr<const infer::InferencePlan> compile_plan(
    const LcClassifier& classifier, infer::PlanOptions options);
[[deprecated("use the SessionOptions overload")]]
infer::InferenceSession make_session(const BandCnn& cnn,
                                     infer::PlanOptions options);
[[deprecated("use the SessionOptions overload")]]
infer::InferenceSession make_session(const LcClassifier& classifier,
                                     infer::PlanOptions options);
[[deprecated("use the SessionOptions overload")]]
infer::JointSession make_session(const JointModel& joint,
                                 infer::PlanOptions options);
[[deprecated(
    "use the SessionOptions overload (precision = Int8, joint_calibration)")]]
infer::JointSession make_session(const JointModel& joint,
                                 const infer::JointCalibration& calibration,
                                 infer::PlanOptions options = {});

}  // namespace sne::core
