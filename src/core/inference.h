// inference.h — model-aware factories bridging the paper's trained models
// to the generic serving machinery in src/infer. The infer library knows
// only about Sequential stacks; these helpers know the models' input
// shapes and the joint model's feature-glue constants, so call sites can
// build a serving session in one line:
//
//   auto scorer = core::make_session(joint_model);
//   Tensor logits = scorer.run(batch);
#pragma once

#include <memory>
#include <span>

#include "core/band_cnn.h"
#include "core/joint_model.h"
#include "core/lc_classifier.h"
#include "infer/session.h"

namespace sne::core {

/// Plan for the band-wise CNN over [N, 2, S, S] stamps (S = the model's
/// configured input size). The model must outlive the plan.
std::shared_ptr<const infer::InferencePlan> compile_plan(
    const BandCnn& cnn, infer::PlanOptions options = {});

/// Plan for the light-curve classifier over [N, input_dim] features.
std::shared_ptr<const infer::InferencePlan> compile_plan(
    const LcClassifier& classifier, infer::PlanOptions options = {});

/// One-call session builders. Each session is single-threaded; build one
/// per worker (sharing a plan via compile_plan + the shared_ptr
/// constructor when building many).
infer::InferenceSession make_session(const BandCnn& cnn,
                                     infer::PlanOptions options = {});
infer::InferenceSession make_session(const LcClassifier& classifier,
                                     infer::PlanOptions options = {});

/// Serving session for the full image→class joint model; wires the CNN
/// and classifier sessions together with the model's feature-glue
/// constants (stamp extent, band count, magnitude normalization).
infer::JointSession make_session(const JointModel& joint,
                                 infer::PlanOptions options = {});

/// Records activation ranges for both sub-networks of the joint model by
/// streaming `batches` (each [N, bands·2·S·S + bands], the joint-model
/// sample layout) through a fresh fp32 serving session. The returned
/// table feeds the int8 overload of make_session below. Deterministic:
/// the result is byte-identical regardless of how the calibration set is
/// batched or which thread count renders it.
infer::JointCalibration calibrate(const JointModel& joint,
                                  std::span<const Tensor> batches);

/// Int8 serving session for the joint model: each sub-network's plan is
/// lowered against its half of `calibration` (options.calibration is
/// ignored; options.precision defaults to Int8 here). `calibration` is
/// borrowed during construction only.
infer::JointSession make_session(const JointModel& joint,
                                 const infer::JointCalibration& calibration,
                                 infer::PlanOptions options = {});

}  // namespace sne::core
