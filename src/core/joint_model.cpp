#include "core/joint_model.h"

#include <algorithm>
#include <stdexcept>

namespace sne::core {

std::int64_t JointModel::input_dim(std::int64_t stamp_extent) {
  return astro::kNumBands * 2 * stamp_extent * stamp_extent +
         astro::kNumBands;
}

JointModel::JointModel(const JointModelConfig& config, Rng& rng)
    : config_(config),
      stamp_(config.cnn.input_size),
      cnn_(config.cnn, rng),
      classifier_(config.classifier, rng) {
  if (config.classifier.input_dim != astro::kNumBands * 2) {
    throw std::invalid_argument(
        "JointModel: classifier input_dim must be 10 (5 bands × (mag, "
        "date))");
  }
}

Tensor JointModel::forward(const Tensor& x) {
  const std::int64_t expected = input_dim(stamp_);
  if (x.rank() != 2 || x.extent(1) != expected) {
    throw std::invalid_argument("JointModel::forward: expected [N, " +
                                std::to_string(expected) + "], got " +
                                x.shape_string());
  }
  cached_x_shape_ = x.shape();
  const std::int64_t n = x.extent(0);
  const std::int64_t per_band = 2 * stamp_ * stamp_;
  const std::int64_t image_block = astro::kNumBands * per_band;

  // Re-pack the 5 band pairs of each sample into one [N·5, 2, S, S] batch:
  // shared weights across bands fall out of batching them together.
  Tensor images({n * astro::kNumBands, 2, stamp_, stamp_});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* src = x.data() + i * expected;
    std::copy(src, src + image_block,
              images.data() + i * image_block);
  }

  const Tensor mags = cnn_.forward(images);  // [N·5, 1]

  Tensor features({n, astro::kNumBands * 2});
  const auto offset = static_cast<float>(config_.features.mag_offset);
  const auto scale = static_cast<float>(config_.features.mag_scale);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* dates = x.data() + i * expected + image_block;
    for (std::int64_t b = 0; b < astro::kNumBands; ++b) {
      features.at(i, 2 * b) =
          (mags[i * astro::kNumBands + b] - offset) / scale;
      features.at(i, 2 * b + 1) = dates[b];
    }
  }
  return classifier_.forward(features);
}

Tensor JointModel::backward(const Tensor& grad_output) {
  if (cached_x_shape_.empty()) {
    throw std::logic_error("JointModel::backward before forward");
  }
  const std::int64_t n = cached_x_shape_[0];
  const std::int64_t expected = cached_x_shape_[1];
  const std::int64_t per_band = 2 * stamp_ * stamp_;
  const std::int64_t image_block = astro::kNumBands * per_band;

  const Tensor grad_features = classifier_.backward(grad_output);  // [N,10]

  Tensor grad_mags({n * astro::kNumBands, 1});
  const auto scale = static_cast<float>(config_.features.mag_scale);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t b = 0; b < astro::kNumBands; ++b) {
      grad_mags[i * astro::kNumBands + b] =
          grad_features.at(i, 2 * b) / scale;
    }
  }

  const Tensor grad_images = cnn_.backward(grad_mags);

  Tensor grad_x(cached_x_shape_);
  for (std::int64_t i = 0; i < n; ++i) {
    float* dst = grad_x.data() + i * expected;
    std::copy(grad_images.data() + i * image_block,
              grad_images.data() + (i + 1) * image_block, dst);
    for (std::int64_t b = 0; b < astro::kNumBands; ++b) {
      dst[image_block + b] = grad_features.at(i, 2 * b + 1);
    }
  }
  return grad_x;
}

void JointModel::infer_into(ConstTensorView x, Tensor& out) const {
  const std::int64_t expected = input_dim(stamp_);
  if (x.rank() != 2 || x.extent(1) != expected) {
    throw std::invalid_argument("JointModel::infer_into: expected [N, " +
                                std::to_string(expected) + "], got " +
                                x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t per_band = 2 * stamp_ * stamp_;
  const std::int64_t image_block = astro::kNumBands * per_band;

  // Per-thread, grow-only scratch mirroring forward's intermediates.
  thread_local Tensor images, mags, features;
  images.resize({n * astro::kNumBands, 2, stamp_, stamp_});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* src = x.data() + i * expected;
    std::copy(src, src + image_block, images.data() + i * image_block);
  }

  cnn_.infer_into(images, mags);  // [N·5, 1]

  features.resize({n, astro::kNumBands * 2});
  const auto offset = static_cast<float>(config_.features.mag_offset);
  const auto scale = static_cast<float>(config_.features.mag_scale);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* dates = x.data() + i * expected + image_block;
    for (std::int64_t b = 0; b < astro::kNumBands; ++b) {
      features.at(i, 2 * b) =
          (mags[i * astro::kNumBands + b] - offset) / scale;
      features.at(i, 2 * b + 1) = dates[b];
    }
  }
  classifier_.infer_into(features, out);
}

Shape JointModel::infer_shape(const Shape& in) const {
  if (in.size() != 2 || in[1] != input_dim(stamp_)) {
    throw std::invalid_argument("JointModel::infer_shape: bad input shape");
  }
  return {in[0], 1};
}

std::vector<nn::Param*> JointModel::params() {
  std::vector<nn::Param*> out = cnn_.params();
  for (nn::Param* p : classifier_.params()) out.push_back(p);
  return out;
}

std::vector<const nn::Param*> JointModel::params() const {
  std::vector<const nn::Param*> out = cnn_.params();
  for (const nn::Param* p : classifier_.params()) out.push_back(p);
  return out;
}

std::vector<nn::Param*> JointModel::buffers() {
  std::vector<nn::Param*> out = cnn_.buffers();
  for (nn::Param* p : classifier_.buffers()) out.push_back(p);
  return out;
}

std::vector<const nn::Param*> JointModel::buffers() const {
  std::vector<const nn::Param*> out = cnn_.buffers();
  for (const nn::Param* p : classifier_.buffers()) out.push_back(p);
  return out;
}

void JointModel::set_training(bool training) {
  Module::set_training(training);
  cnn_.set_training(training);
  classifier_.set_training(training);
}

}  // namespace sne::core
