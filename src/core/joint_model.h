// joint_model.h — the end-to-end image→class network (Fig. 6): five
// band-wise CNN applications with shared weights feeding the highway
// classifier. The paper's key training recipe (Fig. 12) initializes this
// model from the two separately pre-trained components and fine-tunes
// jointly, which converges faster and to a better optimum than training
// from scratch.
//
// Input layout per sample (one flat vector, so the generic Trainer/Dataset
// machinery applies):
//   [ band-major images: 5 × (matched reference, observation) × S × S,
//     then 5 normalized observation dates ]
// Output: [N, 1] SNIa logit.
#pragma once

#include "core/band_cnn.h"
#include "core/lc_classifier.h"
#include "core/lc_features.h"
#include "nn/nn.h"

namespace sne::core {

struct JointModelConfig {
  BandCnnConfig cnn;                 ///< cnn.input_size = stamp extent S
  LcClassifierConfig classifier;     ///< classifier.input_dim must be 10
  FeatureConfig features;            ///< magnitude normalization shared
};

class JointModel final : public nn::Module {
 public:
  JointModel(const JointModelConfig& config, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;
  std::vector<nn::Param*> params() override;
  std::vector<const nn::Param*> params() const override;
  std::vector<nn::Param*> buffers() override;
  std::vector<const nn::Param*> buffers() const override;
  void set_training(bool training) override;

  BandCnn& band_cnn() noexcept { return cnn_; }
  LcClassifier& classifier() noexcept { return classifier_; }
  const BandCnn& band_cnn() const noexcept { return cnn_; }
  const LcClassifier& classifier() const noexcept { return classifier_; }
  const JointModelConfig& config() const noexcept { return config_; }

  /// Flat input dimensionality for stamp extent S:
  /// 5·2·S·S images + 5 dates.
  static std::int64_t input_dim(std::int64_t stamp_extent);

 private:
  JointModelConfig config_;
  std::int64_t stamp_;  ///< S
  BandCnn cnn_;
  LcClassifier classifier_;
  Shape cached_x_shape_;
};

}  // namespace sne::core
