#include "core/lc_classifier.h"

#include <stdexcept>

namespace sne::core {

LcClassifier::LcClassifier(const LcClassifierConfig& config, Rng& rng)
    : config_(config) {
  if (config.input_dim <= 0 || config.hidden_units <= 0 ||
      config.highway_layers < 0) {
    throw std::invalid_argument("LcClassifier: bad configuration");
  }
  net_.emplace<nn::Linear>(config.input_dim, config.hidden_units, rng,
                           "lcclf.fc_in");
  net_.emplace<nn::PReLU>(config.hidden_units, 0.25f, "lcclf.fc_in.prelu");
  for (std::int64_t k = 0; k < config.highway_layers; ++k) {
    const std::string tag = "lcclf.hw" + std::to_string(k + 1);
    if (config.use_highway) {
      net_.emplace<nn::Highway>(config.hidden_units, rng, -1.0f, tag);
    } else {
      net_.emplace<nn::Linear>(config.hidden_units, config.hidden_units, rng,
                               tag + ".fc");
      net_.emplace<nn::PReLU>(config.hidden_units, 0.25f, tag + ".prelu");
    }
  }
  net_.emplace<nn::Linear>(config.hidden_units, 1, rng, "lcclf.fc_out");
}

Tensor LcClassifier::forward(const Tensor& x) { return net_.forward(x); }

Tensor LcClassifier::backward(const Tensor& grad_output) {
  return net_.backward(grad_output);
}

void LcClassifier::set_training(bool training) {
  Module::set_training(training);
  net_.set_training(training);
}

}  // namespace sne::core
