// lc_classifier.h — the paper's light-curve classifier (Fig. 6 right):
// a first fully connected layer, two highway layers, and a final fully
// connected output unit, producing the SNIa-vs-rest logit from the
// (magnitude, date) feature pairs of one or more epochs. Fig. 9 sweeps
// the hidden width; 100 units reaches AUC ≈ 0.958 on single-epoch
// features.
#pragma once

#include "nn/nn.h"

namespace sne::core {

struct LcClassifierConfig {
  std::int64_t input_dim = 10;   ///< 10 per epoch (5 bands × (mag, date))
  std::int64_t hidden_units = 100;
  std::int64_t highway_layers = 2;
  bool use_highway = true;       ///< ablation: plain FC layers instead
};

class LcClassifier final : public nn::Module {
 public:
  LcClassifier(const LcClassifierConfig& config, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override {
    net_.infer_into(x, out);
  }
  Shape infer_shape(const Shape& in) const override {
    return net_.infer_shape(in);
  }
  std::vector<nn::Param*> params() override { return net_.params(); }
  std::vector<const nn::Param*> params() const override {
    return net_.params();
  }
  std::vector<nn::Param*> buffers() override { return net_.buffers(); }
  std::vector<const nn::Param*> buffers() const override {
    return net_.buffers();
  }
  void set_training(bool training) override;

  const LcClassifierConfig& config() const noexcept { return config_; }

  /// The underlying layer stack, for the inference planner.
  const nn::Sequential& net() const noexcept { return net_; }

 private:
  LcClassifierConfig config_;
  nn::Sequential net_;
};

}  // namespace sne::core
