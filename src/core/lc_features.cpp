#include "core/lc_features.h"

#include <algorithm>
#include <stdexcept>

#include "astro/photometry.h"

namespace sne::core {

std::int64_t feature_dim(const FeatureConfig& config) {
  return config.epochs * astro::kNumBands * 2;
}

double normalize_mag(double mag, const FeatureConfig& config) {
  return (mag - config.mag_offset) / config.mag_scale;
}

double normalize_date(double mjd, double season_start,
                      const FeatureConfig& config) {
  return (mjd - season_start) / config.date_scale;
}

double mag_from_measured_flux(double flux, const FeatureConfig& config) {
  const double floor_flux = astro::flux_from_mag(config.faint_mag);
  return astro::mag_from_flux(std::max(flux, floor_flux));
}

Tensor lc_features(const sim::SnDataset& data, std::int64_t i,
                   const FeatureConfig& config) {
  if (config.epochs <= 0 ||
      config.epochs > data.config().schedule.epochs_per_band) {
    throw std::invalid_argument("lc_features: bad epoch count");
  }
  const double season_start = data.config().schedule.start_mjd;

  Tensor out({feature_dim(config)});
  std::int64_t k = 0;
  for (std::int64_t e = 0; e < config.epochs; ++e) {
    for (const astro::Band b : astro::kAllBands) {
      double mag;
      if (config.noisy) {
        mag = mag_from_measured_flux(data.measured_point(i, b, e).flux,
                                     config);
      } else {
        mag = data.true_magnitude(i, b, e, config.faint_mag);
      }
      const sim::Observation obs = data.band_epoch(i, b, e);
      out[k++] = static_cast<float>(normalize_mag(mag, config));
      out[k++] =
          static_cast<float>(normalize_date(obs.mjd, season_start, config));
    }
  }
  return out;
}

nn::LazyDataset make_lc_feature_dataset(const sim::SnDataset& data,
                                        std::vector<std::int64_t> indices,
                                        const FeatureConfig& config) {
  const auto n = static_cast<std::int64_t>(indices.size());
  auto generator = [&data, indices = std::move(indices),
                    config](std::int64_t k) -> nn::Sample {
    const std::int64_t i = indices.at(static_cast<std::size_t>(k));
    nn::Sample s;
    s.x = lc_features(data, i, config);
    s.y = Tensor({1}, data.is_ia(i) ? 1.0f : 0.0f);
    return s;
  };
  // Batch-parallel: lc_features only reads SnDataset's deterministic
  // per-(sample, band, epoch) measurement streams, so batches (and
  // materialize()) fan across the shared pool.
  return nn::LazyDataset(n, std::move(generator), nn::BatchMode::Parallel);
}

Tensor labels_for(const sim::SnDataset& data,
                  const std::vector<std::int64_t>& indices) {
  Tensor y({static_cast<std::int64_t>(indices.size()), 1});
  for (std::size_t k = 0; k < indices.size(); ++k) {
    y[static_cast<std::int64_t>(k)] = data.is_ia(indices[k]) ? 1.0f : 0.0f;
  }
  return y;
}

}  // namespace sne::core
