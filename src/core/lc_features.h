// lc_features.h — light-curve feature assembly for the classifier (the
// right half of Fig. 6). A k-epoch feature vector holds, for each of the
// k epoch-subsets and each of the 5 bands, the pair (magnitude, date):
// 10 dimensions per epoch, matching the paper's "10-dimensional light
// curve features composed of the estimated flux and the observation date
// for each band". Magnitudes and dates are affinely normalized so the
// network starts in a well-scaled regime; the same normalization is
// shared with the joint model so pre-trained classifier weights transplant
// unchanged.
#pragma once

#include <vector>

#include "nn/dataset.h"
#include "sim/dataset_builder.h"

namespace sne::core {

struct FeatureConfig {
  std::int64_t epochs = 1;    ///< k ∈ [1, epochs_per_band]
  bool noisy = false;         ///< true: measured fluxes; false: ground truth
  double mag_offset = 25.0;   ///< feature = (mag − offset) / scale
  double mag_scale = 5.0;
  double faint_mag = 32.0;    ///< clamp for unmeasurable fluxes
  double date_scale = 60.0;   ///< feature = (mjd − season start) / scale
};

/// Feature dimensionality: epochs × bands × 2.
std::int64_t feature_dim(const FeatureConfig& config);

/// Features of sample `i`: epochs-major, band-minor, (mag, date) pairs.
Tensor lc_features(const sim::SnDataset& data, std::int64_t i,
                   const FeatureConfig& config);

/// Normalized magnitude feature from a raw magnitude.
double normalize_mag(double mag, const FeatureConfig& config);

/// Normalized date feature from an observer MJD.
double normalize_date(double mjd, double season_start,
                      const FeatureConfig& config);

/// Magnitude from a (possibly non-positive) measured flux, clamped at the
/// faint limit.
double mag_from_measured_flux(double flux, const FeatureConfig& config);

/// Lazy nn::Dataset over the given sample indices: x = features,
/// y = [1] (1 = SNIa). The dataset borrows `data`; it must outlive it.
nn::LazyDataset make_lc_feature_dataset(const sim::SnDataset& data,
                                        std::vector<std::int64_t> indices,
                                        const FeatureConfig& config);

/// Binary labels (1 = SNIa) for the given indices, shape [n, 1].
Tensor labels_for(const sim::SnDataset& data,
                  const std::vector<std::int64_t>& indices);

}  // namespace sne::core
