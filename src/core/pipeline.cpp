#include "core/pipeline.h"

#include <algorithm>
#include <stdexcept>

#include "infer/session.h"
#include "nn/model_io.h"
#include "sim/image_ops.h"

namespace sne::core {

namespace {

Tensor maybe_crop(Tensor stamp, std::int64_t crop) {
  if (crop <= 0 || crop == stamp.extent(0)) return stamp;
  return sim::center_crop(stamp, crop);
}

}  // namespace

std::vector<FluxPairItem> enumerate_flux_pairs(
    const sim::SnDataset& data, const std::vector<std::int64_t>& samples,
    double max_mag) {
  std::vector<FluxPairItem> items;
  const std::int64_t epochs = data.config().schedule.epochs_per_band;
  items.reserve(samples.size() *
                static_cast<std::size_t>(astro::kNumBands * epochs));
  for (const std::int64_t i : samples) {
    for (const astro::Band b : astro::kAllBands) {
      for (std::int64_t e = 0; e < epochs; ++e) {
        // Clamp the faint limit so flux_from_mag stays representable even
        // for the "no filtering" default of max_mag.
        const double limit = std::min(max_mag, 98.0) + 1.0;
        if (data.true_magnitude(i, b, e, limit) <= max_mag) {
          items.push_back({i, b, e});
        }
      }
    }
  }
  return items;
}

nn::LazyDataset make_flux_pair_dataset(const sim::SnDataset& data,
                                       std::vector<FluxPairItem> items,
                                       std::int64_t crop, double faint_mag) {
  const auto n = static_cast<std::int64_t>(items.size());
  if (n == 0) {
    throw std::invalid_argument("make_flux_pair_dataset: no items");
  }
  auto generator = [&data, items = std::move(items), crop,
                    faint_mag](std::int64_t k) -> nn::Sample {
    const FluxPairItem& item = items.at(static_cast<std::size_t>(k));
    Tensor ref = maybe_crop(
        data.matched_reference_image(item.sample, item.band, item.epoch),
        crop);
    Tensor obs = maybe_crop(
        data.observation_image(item.sample, item.band, item.epoch), crop);

    const std::int64_t c = ref.extent(0);
    nn::Sample s;
    s.x = Tensor({2, c, c});
    std::copy(ref.data(), ref.data() + ref.size(), s.x.data());
    std::copy(obs.data(), obs.data() + obs.size(), s.x.data() + ref.size());
    s.y = Tensor({1}, static_cast<float>(data.true_magnitude(
                          item.sample, item.band, item.epoch, faint_mag)));
    return s;
  };
  // Batch-parallel: the generator only touches SnDataset's stateless lazy
  // renderers (per-stamp mix64 RNG streams), the same guarantee behind the
  // batched parallel render APIs, so batches fan across the shared pool.
  return nn::LazyDataset(n, std::move(generator), nn::BatchMode::Parallel);
}

nn::LazyDataset make_joint_dataset(const sim::SnDataset& data,
                                   std::vector<std::int64_t> samples,
                                   std::int64_t epoch, std::int64_t crop,
                                   const FeatureConfig& features) {
  const auto n = static_cast<std::int64_t>(samples.size());
  if (n == 0) throw std::invalid_argument("make_joint_dataset: no samples");
  if (crop <= 0) {
    throw std::invalid_argument(
        "make_joint_dataset: crop (stamp extent) must be positive");
  }
  auto generator = [&data, samples = std::move(samples), epoch, crop,
                    features](std::int64_t k) -> nn::Sample {
    const std::int64_t i = samples.at(static_cast<std::size_t>(k));
    const std::int64_t per_band = 2 * crop * crop;
    const double season_start = data.config().schedule.start_mjd;

    nn::Sample s;
    s.x = Tensor({astro::kNumBands * per_band + astro::kNumBands});
    for (const astro::Band b : astro::kAllBands) {
      const std::int64_t bi = astro::band_index(b);
      Tensor ref =
          maybe_crop(data.matched_reference_image(i, b, epoch), crop);
      Tensor obs = maybe_crop(data.observation_image(i, b, epoch), crop);
      float* dst = s.x.data() + bi * per_band;
      std::copy(ref.data(), ref.data() + ref.size(), dst);
      std::copy(obs.data(), obs.data() + obs.size(), dst + ref.size());

      const sim::Observation conditions = data.band_epoch(i, b, epoch);
      s.x[astro::kNumBands * per_band + bi] = static_cast<float>(
          normalize_date(conditions.mjd, season_start, features));
    }
    s.y = Tensor({1}, data.is_ia(i) ? 1.0f : 0.0f);
    return s;
  };
  // Batch-parallel for the same reason as make_flux_pair_dataset.
  return nn::LazyDataset(n, std::move(generator), nn::BatchMode::Parallel);
}

void init_joint_from_pretrained(JointModel& joint, BandCnn& pretrained_cnn,
                                LcClassifier& pretrained_classifier) {
  nn::copy_params(pretrained_cnn, joint.band_cnn());
  nn::copy_params(pretrained_classifier, joint.classifier());
}

double calibrate_flux_zero_point(BandCnn& cnn, const nn::Dataset& pairs,
                                 std::int64_t max_pairs) {
  if (pairs.size() == 0 || max_pairs <= 0) {
    throw std::invalid_argument("calibrate_flux_zero_point: no pairs");
  }
  const std::int64_t n = std::min(pairs.size(), max_pairs);
  cnn.set_training(false);

  // Score through an InferenceSession planned on the first pair's shape:
  // cache-free, and each owned sample's buffer is moved (not copied) into
  // its batch-of-one view.
  const nn::Sample first = pairs.get(0);
  infer::InferenceSession session(
      cnn.net(),
      {first.x.extent(0), first.x.extent(1), first.x.extent(2)});

  double residual = 0.0;
  Tensor pred;
  for (std::int64_t k = 0; k < n; ++k) {
    nn::Sample s = pairs.get(k);
    const std::int64_t c0 = s.x.extent(0);
    const std::int64_t c1 = s.x.extent(1);
    const std::int64_t c2 = s.x.extent(2);
    session.run(std::move(s.x).reshaped({1, c0, c1, c2}), pred);
    residual += static_cast<double>(pred[0]) - s.y[0];
  }
  residual /= static_cast<double>(n);

  for (nn::Param* p : cnn.params()) {
    if (p->name == "bandcnn.out.bias") {
      p->value[0] -= static_cast<float>(residual);
      return residual;
    }
  }
  throw std::logic_error(
      "calibrate_flux_zero_point: output bias parameter not found");
}

}  // namespace sne::core
