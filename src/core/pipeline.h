// pipeline.h — glue between the survey simulator and the models: dataset
// adapters that render (reference, observation) pairs into training
// tensors, and the pre-train → transplant → fine-tune recipe of the
// paper's joint model.
#pragma once

#include <vector>

#include "core/joint_model.h"
#include "nn/dataset.h"
#include "sim/dataset_builder.h"

namespace sne::core {

/// One flux-regression example: a (band, epoch) cutout pair of a sample.
struct FluxPairItem {
  std::int64_t sample = 0;
  astro::Band band = astro::Band::g;
  std::int64_t epoch = 0;
};

/// All (sample, band, epoch) triples of the given samples — the paper's
/// "we further divided each subset of a single-epoch observation into 5
/// pairs of images, each corresponding to a band". Pairs whose true
/// magnitude is fainter than `max_mag` are dropped: epochs where the SN
/// is far below the detection limit carry no flux signal to regress
/// (the paper's schedule keeps its SNe bright across the season).
std::vector<FluxPairItem> enumerate_flux_pairs(
    const sim::SnDataset& data, const std::vector<std::int64_t>& samples,
    double max_mag = 1e9);

/// Lazy dataset of flux-regression pairs: x = [2, C, C] (matched
/// reference, observation), y = [1] true magnitude (clamped at
/// `faint_mag`). `crop` trims the rendered 65×65 stamps for storage;
/// 0 keeps the full stamp. The dataset borrows `data`.
nn::LazyDataset make_flux_pair_dataset(const sim::SnDataset& data,
                                       std::vector<FluxPairItem> items,
                                       std::int64_t crop = 0,
                                       double faint_mag = 32.0);

/// Lazy dataset for the joint model: x = [5·2·C·C + 5] (band-major image
/// pairs then normalized dates of epoch-subset `epoch`), y = [1] label.
nn::LazyDataset make_joint_dataset(const sim::SnDataset& data,
                                   std::vector<std::int64_t> samples,
                                   std::int64_t epoch, std::int64_t crop,
                                   const FeatureConfig& features);

/// Copies pre-trained component weights into a joint model (the paper's
/// fine-tuning initialization).
void init_joint_from_pretrained(JointModel& joint, BandCnn& pretrained_cnn,
                                LcClassifier& pretrained_classifier);

/// Photometric zero-point calibration of a trained flux CNN: measures the
/// mean magnitude residual on (up to max_pairs of) the given pair dataset
/// and subtracts it from the network's output bias. A systematic offset
/// in the CNN's magnitudes would otherwise shift every feature the
/// transplanted classifier sees — the image-analysis analogue of
/// calibrating an instrument's zero point. Returns the offset removed.
double calibrate_flux_zero_point(BandCnn& cnn, const nn::Dataset& pairs,
                                 std::int64_t max_pairs = 256);

}  // namespace sne::core
