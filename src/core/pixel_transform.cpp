#include "core/pixel_transform.h"

#include <cmath>
#include <stdexcept>

namespace sne::core {

namespace {
// 1 / ln(10): d/dx [sgn(x)·log10(|x|+1)] = 1 / ((|x|+1)·ln 10).
constexpr float kInvLn10 = 0.43429448190325176f;
}  // namespace

DiffSignedLogCrop::DiffSignedLogCrop(std::int64_t crop_size)
    : crop_(crop_size) {
  if (crop_size <= 0) {
    throw std::invalid_argument("DiffSignedLogCrop: crop_size <= 0");
  }
}

Tensor DiffSignedLogCrop::forward(const Tensor& x) {
  if (x.rank() != 4 || x.extent(1) != 2 || x.extent(2) < crop_ ||
      x.extent(3) < crop_) {
    throw std::invalid_argument(
        "DiffSignedLogCrop: expected [N, 2, S>=crop, S>=crop], got " +
        x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t s = x.extent(2);
  const std::int64_t y0 = (s - crop_) / 2;
  const std::int64_t x0 = (x.extent(3) - crop_) / 2;

  cached_in_shape_ = x.shape();
  cached_diff_crop_ = Tensor({n, 1, crop_, crop_});
  Tensor out({n, 1, crop_, crop_});

  for (std::int64_t i = 0; i < n; ++i) {
    const float* ref = x.data() + (i * 2 + 0) * s * x.extent(3);
    const float* obs = x.data() + (i * 2 + 1) * s * x.extent(3);
    float* diff = cached_diff_crop_.data() + i * crop_ * crop_;
    float* dst = out.data() + i * crop_ * crop_;
    for (std::int64_t yy = 0; yy < crop_; ++yy) {
      const std::int64_t row = (y0 + yy) * x.extent(3) + x0;
      for (std::int64_t xx = 0; xx < crop_; ++xx) {
        const float d = obs[row + xx] - ref[row + xx];
        diff[yy * crop_ + xx] = d;
        const float mag = std::log10(std::abs(d) + 1.0f);
        dst[yy * crop_ + xx] = d < 0.0f ? -mag : mag;
      }
    }
  }
  return out;
}

void DiffSignedLogCrop::infer_into(ConstTensorView x, Tensor& out) const {
  if (x.rank() != 4 || x.extent(1) != 2 || x.extent(2) < crop_ ||
      x.extent(3) < crop_) {
    throw std::invalid_argument(
        "DiffSignedLogCrop: expected [N, 2, S>=crop, S>=crop], got " +
        x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t s = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t y0 = (s - crop_) / 2;
  const std::int64_t x0 = (w - crop_) / 2;

  out.resize({n, 1, crop_, crop_});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* ref = x.data() + (i * 2 + 0) * s * w;
    const float* obs = x.data() + (i * 2 + 1) * s * w;
    float* dst = out.data() + i * crop_ * crop_;
    for (std::int64_t yy = 0; yy < crop_; ++yy) {
      const std::int64_t row = (y0 + yy) * w + x0;
      for (std::int64_t xx = 0; xx < crop_; ++xx) {
        const float d = obs[row + xx] - ref[row + xx];
        const float mag = std::log10(std::abs(d) + 1.0f);
        dst[yy * crop_ + xx] = d < 0.0f ? -mag : mag;
      }
    }
  }
}

Shape DiffSignedLogCrop::infer_shape(const Shape& in) const {
  if (in.size() != 4 || in[1] != 2 || in[2] < crop_ || in[3] < crop_) {
    throw std::invalid_argument("DiffSignedLogCrop::infer_shape: bad shape");
  }
  return {in[0], 1, crop_, crop_};
}

Tensor DiffSignedLogCrop::backward(const Tensor& grad_output) {
  if (cached_diff_crop_.empty()) {
    throw std::logic_error("DiffSignedLogCrop::backward before forward");
  }
  check_same_shape(grad_output, cached_diff_crop_,
                   "DiffSignedLogCrop::backward");
  const std::int64_t n = cached_in_shape_[0];
  const std::int64_t s = cached_in_shape_[2];
  const std::int64_t w = cached_in_shape_[3];
  const std::int64_t y0 = (s - crop_) / 2;
  const std::int64_t x0 = (w - crop_) / 2;

  Tensor grad_input(cached_in_shape_);
  for (std::int64_t i = 0; i < n; ++i) {
    float* g_ref = grad_input.data() + (i * 2 + 0) * s * w;
    float* g_obs = grad_input.data() + (i * 2 + 1) * s * w;
    const float* diff = cached_diff_crop_.data() + i * crop_ * crop_;
    const float* gy = grad_output.data() + i * crop_ * crop_;
    for (std::int64_t yy = 0; yy < crop_; ++yy) {
      const std::int64_t row = (y0 + yy) * w + x0;
      for (std::int64_t xx = 0; xx < crop_; ++xx) {
        const float d = diff[yy * crop_ + xx];
        const float g =
            gy[yy * crop_ + xx] * kInvLn10 / (std::abs(d) + 1.0f);
        g_obs[row + xx] = g;
        g_ref[row + xx] = -g;
      }
    }
  }
  return grad_input;
}

}  // namespace sne::core
