// pixel_transform.h — the fixed (parameter-free) input stage of the
// band-wise CNN (Fig. 7): given the (matched-reference, observation) pair,
// compute the difference image, compress it with the signed logarithm
// y = sgn(x)·log10(|x| + 1), and center-crop to the network's input size.
// Implemented as a Module so the joint model can backpropagate through it
// during fine-tuning.
#pragma once

#include "nn/module.h"

namespace sne::core {

/// [N, 2, S, S] (channel 0 = matched reference, channel 1 = observation)
/// → [N, 1, crop, crop].
class DiffSignedLogCrop final : public nn::Module {
 public:
  explicit DiffSignedLogCrop(std::int64_t crop_size);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;

  std::int64_t crop_size() const noexcept { return crop_; }

 private:
  std::int64_t crop_;
  Tensor cached_diff_crop_;  ///< pre-signed-log cropped difference
  Shape cached_in_shape_;
};

}  // namespace sne::core
