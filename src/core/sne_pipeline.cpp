#include "core/sne_pipeline.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/inference.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "sim/image_ops.h"

namespace sne::core {

namespace {

// Adapts the pipeline's stage-tagged progress sink to one stage's
// per-epoch callback.
nn::EpochSink stage_sink(const SnePipelineConfig& config, const char* stage) {
  if (!config.progress) return nullptr;
  auto sink = config.progress;
  return [sink, stage](const nn::EpochStats& stats) { sink(stage, stats); };
}

// The config fields that determine the architecture are serialized as a
// tensor so the save file is self-describing.
Tensor config_tensor(const SnePipelineConfig& c) {
  return Tensor({3}, {static_cast<float>(c.stamp_size),
                      static_cast<float>(c.hidden_units),
                      static_cast<float>(c.epoch_subset)});
}

}  // namespace

SnePipeline::SnePipeline(const SnePipelineConfig& config)
    : config_(config), precision_(RuntimeConfig::current().precision) {
  if (config.stamp_size < 22 || config.hidden_units <= 0) {
    throw std::invalid_argument("SnePipeline: bad configuration");
  }
  build_models();
}

void SnePipeline::build_models() {
  Rng rng(config_.seed);
  JointModelConfig jc;
  jc.cnn.input_size = config_.stamp_size;
  jc.classifier.input_dim = astro::kNumBands * 2;
  jc.classifier.hidden_units = config_.hidden_units;
  joint_ = std::make_unique<JointModel>(jc, rng);
}

SnePipelineReport SnePipeline::train(
    const sim::SnDataset& data, const std::vector<std::int64_t>& train_samples,
    const std::vector<std::int64_t>& val_samples) {
  if (train_samples.empty()) {
    throw std::invalid_argument("SnePipeline::train: no training samples");
  }
  SnePipelineReport report;
  obs::Span train_span("pipeline.train",
                       static_cast<std::int64_t>(train_samples.size()));

  // Stage 1 — pre-train the band-wise flux CNN on image pairs.
  Rng rng_cnn(config_.seed + 1);
  BandCnnConfig cnn_cfg = joint_->config().cnn;
  BandCnn cnn(cnn_cfg, rng_cnn);
  {
    obs::Span span("pipeline.flux_pretrain");
    auto items =
        enumerate_flux_pairs(data, train_samples, config_.flux_max_mag);
    if (static_cast<std::int64_t>(items.size()) > config_.flux_pairs) {
      items.resize(static_cast<std::size_t>(config_.flux_pairs));
    }
    const nn::LazyDataset pairs =
        make_flux_pair_dataset(data, items, config_.stamp_size);
    nn::Adam opt(cnn.params(), config_.flux_lr);
    nn::Trainer trainer(cnn, opt, nn::mse_loss);
    nn::TrainConfig tc;
    tc.epochs = config_.flux_epochs;
    tc.batch_size = 16;
    tc.shuffle_seed = config_.seed + 2;
    tc.on_epoch = stage_sink(config_, "flux");
    report.flux_history = trainer.fit(pairs, nullptr, tc);
    // Photometric zero-point calibration (see calibrate_flux_zero_point).
    calibrate_flux_zero_point(cnn, pairs);
  }

  // Stage 2 — pre-train the light-curve classifier on ground-truth
  // features (the paper trains it on the simulated light curves).
  Rng rng_clf(config_.seed + 3);
  LcClassifierConfig clf_cfg = joint_->config().classifier;
  LcClassifier clf(clf_cfg, rng_clf);
  {
    obs::Span span("pipeline.classifier_pretrain");
    FeatureConfig features;
    features.epochs = 1;
    features.noisy = true;  // match the measurement error of CNN estimates
    // materialize() chunks through the loader, and the lc-feature
    // dataset is batch-parallel, so this pre-training setup derives its
    // feature vectors on the shared pool instead of serially.
    const nn::VectorDataset train = nn::materialize(
        make_lc_feature_dataset(data, train_samples, features));
    std::optional<nn::VectorDataset> val;
    if (!val_samples.empty()) {
      val.emplace(nn::materialize(
          make_lc_feature_dataset(data, val_samples, features)));
    }
    nn::Adam opt(clf.params(), config_.classifier_lr);
    nn::Trainer trainer(clf, opt, nn::bce_with_logits_loss,
                        nn::binary_accuracy);
    nn::TrainConfig tc;
    tc.epochs = config_.classifier_epochs;
    tc.batch_size = 64;
    tc.shuffle_seed = config_.seed + 4;
    tc.on_epoch = stage_sink(config_, "classifier");
    report.classifier_history =
        trainer.fit(train, val ? &*val : nullptr, tc);
  }

  // Stage 3 — transplant and fine-tune jointly on images.
  init_joint_from_pretrained(*joint_, cnn, clf);
  if (config_.joint_epochs > 0) {
    obs::Span span("pipeline.joint_finetune");
    const nn::LazyDataset train = make_joint_dataset(
        data, train_samples, config_.epoch_subset, config_.stamp_size, {});
    std::optional<nn::LazyDataset> val;
    if (!val_samples.empty()) {
      val.emplace(make_joint_dataset(data, val_samples, config_.epoch_subset,
                                     config_.stamp_size, {}));
    }
    nn::Adam opt(joint_->params(), config_.joint_lr);
    nn::Trainer trainer(*joint_, opt, nn::bce_with_logits_loss,
                        nn::binary_accuracy);
    nn::TrainConfig tc;
    tc.epochs = config_.joint_epochs;
    tc.batch_size = 16;
    tc.grad_clip = 5.0f;
    tc.shuffle_seed = config_.seed + 5;
    tc.on_epoch = stage_sink(config_, "joint");
    report.joint_history = trainer.fit(train, val ? &*val : nullptr, tc);
  }

  trained_ = true;
  // Any sessions compiled before/through training hold stale folded
  // parameters; the next score rebuilds from the fine-tuned weights.
  scorer_.reset();
  mag_session_.reset();
  return report;
}

infer::JointSession& SnePipeline::scorer() const {
  if (!scorer_) {
    SessionOptions options;
    if (precision() == Precision::Int8) {
      options.precision = Precision::Int8;
      options.joint_calibration = &calib_;
    }
    scorer_ =
        std::make_unique<infer::JointSession>(make_session(*joint_, options));
  }
  return *scorer_;
}

infer::InferenceSession& SnePipeline::mag_session() const {
  if (!mag_session_) {
    SessionOptions options;
    if (precision() == Precision::Int8) {
      options.precision = Precision::Int8;
      options.calibration = &calib_.cnn;
    }
    mag_session_ = std::make_unique<infer::InferenceSession>(
        make_session(joint_->band_cnn(), options));
  }
  return *mag_session_;
}

void SnePipeline::calibrate(const sim::SnDataset& data,
                            const std::vector<std::int64_t>& samples) {
  if (!trained_) throw std::logic_error("SnePipeline::calibrate: not trained");
  if (samples.empty()) {
    throw std::invalid_argument("SnePipeline::calibrate: no samples");
  }
  obs::Span span("pipeline.calibrate",
                 static_cast<std::int64_t>(samples.size()));
  const nn::LazyDataset set = make_joint_dataset(
      data, samples, config_.epoch_subset, config_.stamp_size, {});
  // Ranges describe the fp32 reference path, so the recording session is
  // always compiled at fp32 regardless of the requested precision.
  infer::JointSession session = make_session(*joint_);
  infer::JointCalibration table;
  Tensor out;
  for (std::int64_t k = 0; k < set.size(); ++k) {
    nn::Sample s = set.get(k);
    const std::int64_t dim = s.x.size();
    session.calibrate(std::move(s.x).reshaped({1, dim}), out, table);
  }
  calib_ = std::move(table);
  // Requant scales derive from the tables, so any compiled int8 session
  // is stale now; fp32 sessions rebuild identically, which is cheap.
  scorer_.reset();
  mag_session_.reset();
}

void SnePipeline::set_precision(Precision precision) {
  if (precision == Precision::Int8 && calib_.empty()) {
    throw std::logic_error(
        "SnePipeline::set_precision: Int8 requires calibrate() first");
  }
  if (precision != precision_) {
    scorer_.reset();
    mag_session_.reset();
  }
  precision_ = precision;
}

Precision SnePipeline::precision() const noexcept {
  return calib_.empty() ? Precision::Fp32 : precision_;
}

double SnePipeline::score(const sim::SnDataset& data,
                          std::int64_t sample) const {
  if (!trained_) throw std::logic_error("SnePipeline: not trained");
  const nn::LazyDataset one = make_joint_dataset(
      data, {sample}, config_.epoch_subset, config_.stamp_size, {});
  nn::Sample s = one.get(0);
  const std::int64_t dim = s.x.size();
  Tensor logit;
  scorer().run(std::move(s.x).reshaped({1, dim}), logit);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logit[0])));
}

std::vector<float> SnePipeline::score_all(
    const sim::SnDataset& data,
    const std::vector<std::int64_t>& samples) const {
  if (!trained_) throw std::logic_error("SnePipeline: not trained");
  const nn::LazyDataset set = make_joint_dataset(
      data, samples, config_.epoch_subset, config_.stamp_size, {});
  infer::JointSession& session = scorer();
  std::vector<float> out;
  out.reserve(samples.size());
  Tensor logit;
  for (std::int64_t k = 0; k < set.size(); ++k) {
    nn::Sample s = set.get(k);
    const std::int64_t dim = s.x.size();
    session.run(std::move(s.x).reshaped({1, dim}), logit);
    out.push_back(
        static_cast<float>(1.0 / (1.0 + std::exp(-logit[0]))));
  }
  return out;
}

double SnePipeline::estimate_magnitude(const Tensor& pair) const {
  if (!trained_) throw std::logic_error("SnePipeline: not trained");
  if (pair.rank() != 3 || pair.extent(0) != 2) {
    throw std::invalid_argument(
        "estimate_magnitude: expected [2, S, S] pair, got " +
        pair.shape_string());
  }
  Tensor stamp = pair;
  if (pair.extent(1) != config_.stamp_size) {
    // Center-crop each channel to the network's input extent.
    Tensor cropped({2, config_.stamp_size, config_.stamp_size});
    const std::int64_t plane = pair.extent(1) * pair.extent(2);
    for (std::int64_t c = 0; c < 2; ++c) {
      Tensor channel({pair.extent(1), pair.extent(2)});
      std::copy(pair.data() + c * plane, pair.data() + (c + 1) * plane,
                channel.data());
      const Tensor small = sim::center_crop(channel, config_.stamp_size);
      std::copy(small.data(), small.data() + small.size(),
                cropped.data() + c * small.size());
    }
    stamp = std::move(cropped);
  }
  Tensor mags;
  mag_session().run(
      std::move(stamp).reshaped(
          {1, 2, config_.stamp_size, config_.stamp_size}),
      mags);
  return mags[0];
}

namespace {

// Reserved record names carrying the calibration tables in a save file.
constexpr const char* kCalibNames[4] = {
    "__calib__.cnn.input_max", "__calib__.cnn.step_max",
    "__calib__.classifier.input_max", "__calib__.classifier.step_max"};

// Recomputes the quantized constants of both sub-networks against the
// given tables, in the exact record order save() writes them.
QTensorMap recompute_quantized(const JointModel& joint,
                               const infer::JointCalibration& calib) {
  QTensorMap out;
  SessionOptions options;
  options.precision = Precision::Int8;
  options.calibration = &calib.cnn;
  compile_plan(joint.band_cnn(), options)
      ->append_quantized(out, "__quant__.cnn.");
  options.calibration = &calib.classifier;
  compile_plan(joint.classifier(), options)
      ->append_quantized(out, "__quant__.classifier.");
  return out;
}

}  // namespace

void SnePipeline::save(const std::string& path) const {
  if (!trained_) throw std::logic_error("SnePipeline::save: not trained");
  TensorMap state = nn::state_dict(*joint_);
  state.emplace_back("__pipeline_config__", config_tensor(config_));
  QTensorMap quantized;
  if (!calib_.empty()) {
    const Tensor* tables[4] = {
        &calib_.cnn.input_max, &calib_.cnn.step_max,
        &calib_.classifier.input_max, &calib_.classifier.step_max};
    for (int i = 0; i < 4; ++i) state.emplace_back(kCalibNames[i], *tables[i]);
    if (precision() == Precision::Int8) {
      // Pin the quantized constants on disk: quantization is a pure
      // function of the weights and the tables saved above, so load()
      // can verify the records reproduce bit for bit.
      quantized = recompute_quantized(*joint_, calib_);
    }
  }
  // Pure-fp32 maps serialize as format v1, byte-identical to earlier
  // releases; the dtype-tagged v2 container appears only when quantized
  // records ride along.
  save_tensor_map(path, state, quantized);
}

SnePipeline SnePipeline::load(const std::string& path) {
  TensorMap state;
  QTensorMap quantized;
  load_tensor_map(path, state, quantized);
  SnePipelineConfig config;
  infer::JointCalibration calib;
  bool found = false;
  TensorMap weights;
  weights.reserve(state.size());
  for (auto& [name, tensor] : state) {
    if (name == "__pipeline_config__") {
      if (tensor.size() != 3) {
        throw std::runtime_error("SnePipeline::load: bad config record");
      }
      config.stamp_size = static_cast<std::int64_t>(tensor[0]);
      config.hidden_units = static_cast<std::int64_t>(tensor[1]);
      config.epoch_subset = static_cast<std::int64_t>(tensor[2]);
      found = true;
    } else if (name == kCalibNames[0]) {
      calib.cnn.input_max = std::move(tensor);
    } else if (name == kCalibNames[1]) {
      calib.cnn.step_max = std::move(tensor);
    } else if (name == kCalibNames[2]) {
      calib.classifier.input_max = std::move(tensor);
    } else if (name == kCalibNames[3]) {
      calib.classifier.step_max = std::move(tensor);
    } else {
      weights.emplace_back(std::move(name), std::move(tensor));
    }
  }
  if (!found) {
    throw std::runtime_error("SnePipeline::load: missing config record");
  }
  SnePipeline pipeline(config);
  nn::load_state_dict(*pipeline.joint_, weights);
  pipeline.trained_ = true;
  pipeline.calib_ = std::move(calib);
  if (!quantized.empty()) {
    if (pipeline.calib_.empty()) {
      throw std::runtime_error(
          "SnePipeline::load: quantized records without calibration tables");
    }
    pipeline.precision_ = Precision::Int8;
    // Integrity check: requantizing the loaded weights against the loaded
    // tables must reproduce the stored records exactly. A mismatch means
    // the file pairs weights with a foreign quantization — refuse it
    // rather than silently serving different bits than were validated.
    const QTensorMap expect = recompute_quantized(*pipeline.joint_,
                                                  pipeline.calib_);
    if (expect.size() != quantized.size()) {
      throw std::runtime_error(
          "SnePipeline::load: expected " + std::to_string(expect.size()) +
          " quantized records, file has " + std::to_string(quantized.size()));
    }
    for (std::size_t i = 0; i < expect.size(); ++i) {
      const auto& [name, got] = quantized[i];
      const auto& [want_name, want] = expect[i];
      const std::int64_t ch = want.channels();
      const bool ok =
          name == want_name && got.shape == want.shape &&
          got.data == want.data && got.scales.size() == ch &&
          std::equal(got.scales.data(), got.scales.data() + ch,
                     want.scales.data());
      if (!ok) {
        throw std::runtime_error("SnePipeline::load: quantized record '" +
                                 name +
                                 "' does not match its recomputation");
      }
    }
  }
  return pipeline;
}

JointModel& SnePipeline::joint_model() {
  if (!joint_) throw std::logic_error("SnePipeline: no model");
  return *joint_;
}

}  // namespace sne::core
