// sne_pipeline.h — the end-to-end facade: one object that owns the
// paper's full training recipe (pre-train flux CNN → pre-train
// classifier → transplant → fine-tune joint model) and the resulting
// artifacts, with save/load for deployment. This is the API a survey
// pipeline would integrate: feed it a labeled SnDataset once, then hand
// it single-epoch image sets for scoring forever after.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/joint_model.h"
#include "core/pipeline.h"
#include "infer/session.h"
#include "sim/dataset_builder.h"

namespace sne::core {

/// Configuration of the full recipe.
struct SnePipelineConfig {
  std::int64_t stamp_size = 44;        ///< CNN input extent (paper: 60)
  std::int64_t hidden_units = 100;     ///< classifier width (paper: 100)
  std::int64_t flux_epochs = 3;        ///< flux-CNN pre-training epochs
  std::int64_t flux_pairs = 2000;      ///< flux-CNN pre-training pairs cap
  double flux_max_mag = 26.5;          ///< regression faint cut
  std::int64_t classifier_epochs = 30;
  std::int64_t joint_epochs = 3;       ///< fine-tuning epochs
  std::int64_t epoch_subset = 0;       ///< single-epoch subset index
  float flux_lr = 2e-3f;
  float classifier_lr = 3e-3f;
  float joint_lr = 3e-4f;
  std::uint64_t seed = 1;
  /// Stage progress sink: called after every epoch of every training
  /// stage with the stage name ("flux" / "classifier" / "joint") and
  /// that epoch's statistics. Null (default) = silent; the library never
  /// writes to stdout itself.
  std::function<void(const char* stage, const nn::EpochStats&)> progress;
};

/// Per-stage training diagnostics returned by train().
struct SnePipelineReport {
  std::vector<nn::EpochStats> flux_history;
  std::vector<nn::EpochStats> classifier_history;
  std::vector<nn::EpochStats> joint_history;
};

class SnePipeline {
 public:
  explicit SnePipeline(const SnePipelineConfig& config = {});

  /// Runs the three-stage recipe on the given training samples of `data`
  /// (with optional validation samples for the histories). After train()
  /// the pipeline is ready to score.
  SnePipelineReport train(const sim::SnDataset& data,
                          const std::vector<std::int64_t>& train_samples,
                          const std::vector<std::int64_t>& val_samples = {});

  /// SNIa probability of one sample from its single-epoch images
  /// (5 matched-reference/observation pairs + dates). Requires train()
  /// or load().
  double score(const sim::SnDataset& data, std::int64_t sample) const;

  /// Batch scoring; returns P(SNIa) per sample.
  std::vector<float> score_all(
      const sim::SnDataset& data,
      const std::vector<std::int64_t>& samples) const;

  /// Estimated magnitude of a single (matched reference, observation)
  /// pair, shape [2, S, S] — the flux-estimation service on its own.
  double estimate_magnitude(const Tensor& pair) const;

  /// Records int8 activation ranges by streaming the given samples of
  /// `data` through a fresh fp32 serving session (scores are discarded).
  /// Replaces any previous calibration. The resulting tables are
  /// byte-identical no matter how the set is batched, which thread count
  /// runs it, or whether stamps replay from a snapshot or render live —
  /// so calibrating against a SnapshotDataset capture of `data` yields
  /// the same quantized model as calibrating live. Requires train() or
  /// load().
  void calibrate(const sim::SnDataset& data,
                 const std::vector<std::int64_t>& samples);

  /// Selects the serving precision for score()/score_all()/
  /// estimate_magnitude(). Int8 requires a prior calibrate() (throws
  /// std::logic_error otherwise); eligible conv steps then run the
  /// saturating int8 GEMM while everything else stays fp32 per step.
  /// The initial value comes from RuntimeConfig::current().precision
  /// (env SNE_PRECISION), which degrades softly: Int8 without a
  /// calibration serves fp32 until calibrate() is called.
  void set_precision(Precision precision);

  /// The precision scoring actually runs at right now: Int8 only when
  /// requested AND calibrated, Fp32 otherwise.
  Precision precision() const noexcept;

  bool is_calibrated() const noexcept { return !calib_.empty(); }
  const infer::JointCalibration& calibration() const noexcept {
    return calib_;
  }

  /// Serializes all weights (+ the config needed to rebuild) to a file.
  void save(const std::string& path) const;

  /// Restores a pipeline saved with save(). The config travels with the
  /// file, so the caller needs no prior knowledge of the architecture.
  static SnePipeline load(const std::string& path);

  bool is_trained() const noexcept { return trained_; }
  const SnePipelineConfig& config() const noexcept { return config_; }
  JointModel& joint_model();

 private:
  void build_models();

  /// Lazily built serving sessions over the trained joint model. Scoring
  /// never runs the training-path forward: the first score()/score_all()
  /// compiles an InferencePlan (Conv+BN folded using the trained running
  /// statistics) and reuses it for every later call. train() resets
  /// them, since fine-tuning invalidates the folded parameter copies a
  /// previous plan holds.
  infer::JointSession& scorer() const;
  infer::InferenceSession& mag_session() const;

  SnePipelineConfig config_;
  std::unique_ptr<JointModel> joint_;
  mutable std::unique_ptr<infer::JointSession> scorer_;
  mutable std::unique_ptr<infer::InferenceSession> mag_session_;
  infer::JointCalibration calib_;  ///< empty until calibrate()
  /// Requested precision; serving falls back to Fp32 while uncalibrated.
  Precision precision_;
  bool trained_ = false;
};

}  // namespace sne::core
