#include "data/snapshot.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "tensor/serialize.h"
#include "tensor/view.h"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sne::data {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'E', 'S', 'N', 'A', 'P', '\0'};
constexpr std::uint64_t kVersion = 1;
constexpr std::uint64_t kDtypeF32 = 1;
constexpr std::uint64_t kMaxRank = 8;
constexpr std::uint64_t kMaxCount = 100'000'000;

void write_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

std::uint64_t read_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  if (!is) throw std::runtime_error("snapshot: truncated header");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

// Reads rank + extents, guarding both against a corrupt header: the rank
// is capped and the element count of the shape must stay far below any
// plausible payload.
Shape read_shape(std::istream& is) {
  const std::uint64_t rank = read_u64(is);
  if (rank == 0 || rank > kMaxRank) {
    throw std::runtime_error("snapshot: implausible shape rank");
  }
  Shape shape;
  shape.reserve(rank);
  std::uint64_t numel = 1;
  for (std::uint64_t a = 0; a < rank; ++a) {
    const std::uint64_t e = read_u64(is);
    if (e == 0 || numel > (1ULL << 40) / e) {
      throw std::runtime_error("snapshot: implausible extent");
    }
    numel *= e;
    shape.push_back(static_cast<std::int64_t>(e));
  }
  return shape;
}

std::int64_t numel(const Shape& s) {
  return std::accumulate(s.begin(), s.end(), std::int64_t{1},
                         std::multiplies<>());
}

// Resizes `t` to [count, ...sample_shape] without building a Shape on
// the heap: the extents go through an inline array and the span resize
// overload, so a warm tensor makes this allocation-free.
void resize_with_batch_axis(Tensor& t, const Shape& sample_shape,
                            std::size_t count) {
  std::array<std::int64_t, kMaxRank + 1> sh;
  sh[0] = static_cast<std::int64_t>(count);
  std::copy(sample_shape.begin(), sample_shape.end(), sh.begin() + 1);
  t.resize(std::span<const std::int64_t>(sh.data(), sample_shape.size() + 1));
}

// Parses and validates the header; on return the stream is positioned at
// the offset table. Every count read out of the header is checked
// against the bytes actually remaining in the file before it is used to
// size an allocation — the same discipline as the SNDS/SNET readers.
SnapshotInfo read_header(std::istream& is) {
  char magic[8];
  is.read(magic, 8);
  if (!is || std::memcmp(magic, kMagic, 8) != 0) {
    throw std::runtime_error("snapshot: bad magic");
  }
  SnapshotInfo info;
  info.version = read_u64(is);
  if (info.version != kVersion) {
    throw std::runtime_error("snapshot: unsupported version " +
                             std::to_string(info.version));
  }
  const std::uint64_t dtype = read_u64(is);
  if (dtype != kDtypeF32) {
    throw std::runtime_error("snapshot: unsupported dtype " +
                             std::to_string(dtype));
  }
  info.x_shape = read_shape(is);
  info.y_shape = read_shape(is);
  const std::uint64_t count = read_u64(is);
  if (count == 0 || count > kMaxCount) {
    throw std::runtime_error("snapshot: implausible sample count");
  }
  info.count = static_cast<std::int64_t>(count);
  const std::uint64_t record_bytes =
      (static_cast<std::uint64_t>(numel(info.x_shape)) +
       static_cast<std::uint64_t>(numel(info.y_shape))) *
      sizeof(float);
  // count·(8 + record_bytes) can wrap u64 (the per-shape numel cap and
  // kMaxCount each hold, but their product reaches 2^70): a crafted
  // header that wraps to a small value would sail through the stream
  // budget below and defeat every later size check. Reject before
  // multiplying.
  if (count > std::numeric_limits<std::uint64_t>::max() / (8 + record_bytes)) {
    throw std::runtime_error(
        "snapshot: sample count times record size overflows");
  }
  // Offset table + payload must fit in what is left of the file.
  require_stream_bytes(is, count * (8 + record_bytes), "snapshot");
  return info;
}

}  // namespace

std::int64_t SnapshotInfo::x_numel() const noexcept { return numel(x_shape); }
std::int64_t SnapshotInfo::y_numel() const noexcept { return numel(y_shape); }

void write_snapshot(const std::string& path, const nn::Dataset& data,
                    std::int64_t batch_size) {
  const std::int64_t n = data.size();
  if (n <= 0) {
    throw std::invalid_argument("write_snapshot: empty dataset");
  }
  if (batch_size <= 0) {
    throw std::invalid_argument("write_snapshot: batch_size must be positive");
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("write_snapshot: cannot open " + path);
  }

  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), std::int64_t{0});

  // The first batch determines the per-sample shapes (every later batch
  // is checked against them by get_batch_into's own stacking contract).
  nn::Sample batch;
  data.get_batch_into(order, 0,
                      static_cast<std::size_t>(std::min(batch_size, n)),
                      batch);
  const Shape x_shape(batch.x.shape().begin() + 1, batch.x.shape().end());
  const Shape y_shape(batch.y.shape().begin() + 1, batch.y.shape().end());
  const std::int64_t xn = numel(x_shape);
  const std::int64_t yn = numel(y_shape);
  const std::uint64_t record_bytes =
      static_cast<std::uint64_t>(xn + yn) * sizeof(float);

  os.write(kMagic, 8);
  write_u64(os, kVersion);
  write_u64(os, kDtypeF32);
  write_u64(os, static_cast<std::uint64_t>(x_shape.size()));
  for (const std::int64_t e : x_shape) {
    write_u64(os, static_cast<std::uint64_t>(e));
  }
  write_u64(os, static_cast<std::uint64_t>(y_shape.size()));
  for (const std::int64_t e : y_shape) {
    write_u64(os, static_cast<std::uint64_t>(e));
  }
  write_u64(os, static_cast<std::uint64_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    write_u64(os, static_cast<std::uint64_t>(i) * record_bytes);
  }

  // Stream the payload batch by batch; samples were already rendered for
  // the first chunk.
  for (std::int64_t first = 0; first < n; first += batch_size) {
    const auto count = static_cast<std::size_t>(
        std::min(batch_size, n - first));
    if (first != 0) {
      data.get_batch_into(order, static_cast<std::size_t>(first), count,
                          batch);
    }
    for (std::size_t k = 0; k < count; ++k) {
      const auto row = static_cast<std::int64_t>(k);
      os.write(reinterpret_cast<const char*>(batch.x.data() + row * xn),
               static_cast<std::streamsize>(xn * sizeof(float)));
      os.write(reinterpret_cast<const char*>(batch.y.data() + row * yn),
               static_cast<std::streamsize>(yn * sizeof(float)));
    }
  }
  if (!os) {
    throw std::runtime_error("write_snapshot: stream failure writing " + path);
  }
}

SnapshotInfo read_snapshot_info(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("snapshot: cannot open " + path);
  }
  return read_header(is);
}

SnapshotDataset::SnapshotDataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("snapshot: cannot open " + path);
  }
  info_ = read_header(is);
  x_numel_ = info_.x_numel();
  y_numel_ = info_.y_numel();
  const std::uint64_t record_bytes =
      static_cast<std::uint64_t>(x_numel_ + y_numel_) * sizeof(float);
  const auto count = static_cast<std::uint64_t>(info_.count);

  offsets_.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    offsets_[i] = read_u64(is);
  }
  // Same overflow discipline as read_header: a wrapped payload_bytes
  // would turn the offset bound below into `offsets_[i] > huge` (the
  // subtraction underflows) and hand out-of-range offsets to the mmap
  // payload pointer.
  if (count > std::numeric_limits<std::uint64_t>::max() / record_bytes) {
    throw std::runtime_error(
        "snapshot: sample count times record size overflows");
  }
  const std::uint64_t payload_bytes = count * record_bytes;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (offsets_[i] % sizeof(float) != 0 ||
        offsets_[i] > payload_bytes - record_bytes) {
      throw std::runtime_error("snapshot: offset table entry out of range");
    }
  }
  const auto payload_start = static_cast<std::uint64_t>(is.tellg());

#ifndef _WIN32
  // mmap the whole file read-only; the payload pointer is the mapping
  // plus the header size. MAP_SHARED would also work (nothing writes),
  // but MAP_PRIVATE read-only is the conventional spelling for a cache.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 &&
        static_cast<std::uint64_t>(st.st_size) >=
            payload_start + payload_bytes) {
      void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                          PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        map_base_ = base;
        map_len_ = static_cast<std::size_t>(st.st_size);
        payload_ = reinterpret_cast<const float*>(
            static_cast<const char*>(base) + payload_start);
      }
    }
    ::close(fd);  // the mapping survives the descriptor
  }
#endif

  if (payload_ == nullptr) {
    // Fallback: read the payload into an owned buffer once.
    owned_.resize(payload_bytes / sizeof(float));
    is.read(reinterpret_cast<char*>(owned_.data()),
            static_cast<std::streamsize>(payload_bytes));
    if (!is) {
      throw std::runtime_error("snapshot: truncated payload in " + path);
    }
    payload_ = owned_.data();
  }
}

SnapshotDataset::~SnapshotDataset() {
#ifndef _WIN32
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
  }
#endif
}

const float* SnapshotDataset::record(std::int64_t index) const {
  if (index < 0 || index >= info_.count) {
    throw std::out_of_range("snapshot: sample index out of range");
  }
  return payload_ +
         offsets_[static_cast<std::size_t>(index)] / sizeof(float);
}

nn::Sample SnapshotDataset::get(std::int64_t index) const {
  const float* rec = record(index);
  nn::Sample s;
  s.x = Tensor(info_.x_shape);
  s.y = Tensor(info_.y_shape);
  std::memcpy(s.x.data(), rec,
              static_cast<std::size_t>(x_numel_) * sizeof(float));
  std::memcpy(s.y.data(), rec + x_numel_,
              static_cast<std::size_t>(y_numel_) * sizeof(float));
  return s;
}

void SnapshotDataset::get_batch_into(const std::vector<std::int64_t>& indices,
                                     std::size_t first, std::size_t count,
                                     nn::Sample& out) const {
  if (count == 0 || first + count > indices.size()) {
    throw std::invalid_argument("snapshot: bad batch range");
  }
  // Shape the batch buffers: leading batch axis plus the per-sample
  // shape. resize() reuses capacity, so a warm buffer allocates nothing.
  resize_with_batch_axis(out.x, info_.x_shape, count);
  resize_with_batch_axis(out.y, info_.y_shape, count);
  float* xdst = out.x.data();
  float* ydst = out.y.data();
  for (std::size_t k = 0; k < count; ++k) {
    const float* rec = record(indices[first + k]);
    std::memcpy(xdst + static_cast<std::int64_t>(k) * x_numel_, rec,
                static_cast<std::size_t>(x_numel_) * sizeof(float));
    std::memcpy(ydst + static_cast<std::int64_t>(k) * y_numel_,
                rec + x_numel_,
                static_cast<std::size_t>(y_numel_) * sizeof(float));
  }
}

}  // namespace sne::data
