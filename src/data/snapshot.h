// snapshot.h — versioned binary cache of a fully rendered dataset, plus
// an mmap-backed Dataset that replays it. The simulator's lazy datasets
// re-render every sample each epoch; for multi-epoch training runs the
// render cost dominates ingest. A snapshot renders the dataset exactly
// once (through the same pool-parallel get_batch path training uses, so
// the bytes are bitwise-identical to a live epoch) and later epochs
// replay it with pure pointer arithmetic: SnapshotDataset::get_batch_into
// is one per-row memcpy out of the mapping and allocates nothing after
// the first batch.
//
// On-disk layout (all integers u64 little-endian, payload float32 LE;
// the 8-byte magic keeps every header field and the offset table 8-byte
// aligned in the mapping) — see docs/FORMATS.md:
//
//   [0]  magic   "SNESNAP\0"
//   [8]  version (currently 1)
//   [16] dtype   (1 = float32 little-endian)
//   [24] x_rank, then x_rank extents   — per-sample x shape
//   [..] y_rank, then y_rank extents   — per-sample y shape
//   [..] count                         — number of samples
//   [..] count offsets                 — byte offset of each sample's
//                                        record from the payload start
//   [..] payload                       — per sample: x floats, y floats
//
// The offset table is redundant for the fixed-shape v1 records (offset i
// is i · record_bytes) but is validated on load and keeps the format
// extensible to variable-size records without a version bump of the
// reader's skeleton.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/dataset.h"
#include "tensor/tensor.h"

namespace sne::data {

/// Parsed snapshot header.
struct SnapshotInfo {
  std::uint64_t version = 0;
  Shape x_shape;  ///< per-sample x shape (no batch axis)
  Shape y_shape;  ///< per-sample y shape
  std::int64_t count = 0;

  std::int64_t x_numel() const noexcept;
  std::int64_t y_numel() const noexcept;
};

/// Renders every sample of `data` once — `batch_size` rows at a time
/// through get_batch, so batch-parallel datasets render on the shared
/// thread pool — and writes the snapshot to `path`. Throws on an empty
/// dataset or I/O failure.
void write_snapshot(const std::string& path, const nn::Dataset& data,
                    std::int64_t batch_size = 64);

/// Reads and validates just the header of a snapshot file.
SnapshotInfo read_snapshot_info(const std::string& path);

/// Replays a snapshot written by write_snapshot. The payload is memory-
/// mapped read-only where the platform supports it (the OS page cache
/// then shares one copy across processes); otherwise it is read into an
/// owned buffer once at construction. Either way get() and
/// get_batch_into() are pure gathers out of resident float data.
class SnapshotDataset final : public nn::Dataset {
 public:
  explicit SnapshotDataset(const std::string& path);
  ~SnapshotDataset() override;

  SnapshotDataset(const SnapshotDataset&) = delete;
  SnapshotDataset& operator=(const SnapshotDataset&) = delete;

  std::int64_t size() const override { return info_.count; }
  nn::Sample get(std::int64_t index) const override;

  /// One memcpy per row straight from the mapping into the caller's
  /// batch buffer; with a warm `out` this allocates nothing.
  void get_batch_into(const std::vector<std::int64_t>& indices,
                      std::size_t first, std::size_t count,
                      nn::Sample& out) const override;

  const SnapshotInfo& info() const noexcept { return info_; }

  /// True when the payload is an mmap of the file (false on the
  /// read-into-memory fallback).
  bool mapped() const noexcept { return map_base_ != nullptr; }

 private:
  const float* record(std::int64_t index) const;

  SnapshotInfo info_;
  std::vector<std::uint64_t> offsets_;  ///< validated at load
  std::int64_t x_numel_ = 0;
  std::int64_t y_numel_ = 0;

  const float* payload_ = nullptr;  ///< into map_base_ or owned_
  void* map_base_ = nullptr;        ///< whole-file mapping, if active
  std::size_t map_len_ = 0;
  std::vector<float> owned_;  ///< fallback storage
};

}  // namespace sne::data
