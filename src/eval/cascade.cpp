#include "eval/cascade.h"

#include <cstdio>

namespace sne::eval {

namespace {

double ratio(std::int64_t num, std::int64_t den) {
  return den == 0 ? 1.0 : static_cast<double>(num) / static_cast<double>(den);
}

CascadeTierReport tier_report(const CascadeTierCounts& c) {
  CascadeTierReport r;
  r.name = c.name;
  r.in = c.in;
  r.passed = c.passed;
  r.recall = ratio(c.positives_passed, c.positives_in);
  const std::int64_t negatives_in = c.in - c.positives_in;
  const std::int64_t negatives_passed = c.passed - c.positives_passed;
  r.rejection = ratio(negatives_in - negatives_passed, negatives_in);
  r.purity = ratio(c.positives_passed, c.passed);
  return r;
}

void append_row(std::string& out, const CascadeTierReport& r) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "  %-12s %10lld %10lld   %6.4f  %6.4f  %6.4f\n",
                r.name.c_str(), static_cast<long long>(r.in),
                static_cast<long long>(r.passed), r.recall, r.rejection,
                r.purity);
  out += line;
}

}  // namespace

CascadeReport cascade_report(const CascadeCounts& counts) {
  CascadeReport report;
  report.tiers.reserve(counts.tiers.size());
  for (const CascadeTierCounts& tier : counts.tiers) {
    report.tiers.push_back(tier_report(tier));
  }
  report.end_to_end = tier_report(counts.end_to_end);
  report.evicted = counts.evicted;
  report.incomplete = counts.incomplete;
  return report;
}

std::string CascadeReport::to_string() const {
  std::string out =
      "  tier                 in     passed   recall  reject  purity\n";
  for (const CascadeTierReport& tier : tiers) append_row(out, tier);
  append_row(out, end_to_end);
  if (evicted != 0 || incomplete != 0) {
    char line[96];
    std::snprintf(line, sizeof(line),
                  "  gate: %lld evicted, %lld incomplete\n",
                  static_cast<long long>(evicted),
                  static_cast<long long>(incomplete));
    out += line;
  }
  return out;
}

}  // namespace sne::eval
