// cascade.h — accounting for the alert-stream filter cascade
// (src/stream). Each tier of a cascade is a binary filter over the
// alerts (or candidates) that reach it; the quantities a survey cares
// about are per-tier and end-to-end:
//
//   recall    = positives passed / positives in   (kept what we wanted)
//   rejection = negatives cut / negatives in      (killed what we didn't)
//   purity    = positives passed / all passed     (what survivors look like)
//
// The counts are plain integers filled by stream::FilterCascade (or by
// hand in tests); cascade_report() derives the rates. "Positive" is
// tier-relative: for a real/bogus tier it means a real transient, for
// the final typing tier it means a genuine SNIa.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sne::eval {

/// Raw per-tier tallies. `in` counts what reached the tier, `passed`
/// what it forwarded; the `positives_*` pair tracks the tier's own
/// ground-truth positive class through the same gate.
struct CascadeTierCounts {
  std::string name;
  std::int64_t in = 0;
  std::int64_t passed = 0;
  std::int64_t positives_in = 0;
  std::int64_t positives_passed = 0;
};

/// Everything a cascade run tallies: one entry per tier in cascade
/// order, candidate-level end-to-end counts, and the gate's losses
/// (candidates evicted under memory pressure or left incomplete when
/// the night ended).
struct CascadeCounts {
  std::vector<CascadeTierCounts> tiers;
  CascadeTierCounts end_to_end;
  std::int64_t evicted = 0;
  std::int64_t incomplete = 0;
};

/// Derived rates of one tier. Empty denominators read as vacuously
/// perfect (1.0): a tier that saw no positives missed none, a tier
/// that saw no negatives rejected them all, an empty survivor set is
/// pure.
struct CascadeTierReport {
  std::string name;
  std::int64_t in = 0;
  std::int64_t passed = 0;
  double recall = 1.0;
  double rejection = 1.0;
  double purity = 1.0;
};

struct CascadeReport {
  std::vector<CascadeTierReport> tiers;
  CascadeTierReport end_to_end;
  std::int64_t evicted = 0;
  std::int64_t incomplete = 0;

  std::string to_string() const;  ///< aligned per-tier table
};

/// Derives the rates from raw counts (see CascadeTierReport for the
/// empty-denominator convention).
CascadeReport cascade_report(const CascadeCounts& counts);

}  // namespace sne::eval
