#include "eval/experiment.h"

#include <cstdio>

namespace sne::eval {

std::int64_t env_int64(const std::string& name, std::int64_t fallback) {
  return env::int64(name, fallback);
}

double env_double(const std::string& name, double fallback) {
  return env::float64(name, fallback);
}

void print_banner(const std::string& experiment, const std::string& note) {
  std::printf("=== %s ===\n%s\n\n", experiment.c_str(), note.c_str());
  std::fflush(stdout);
}

}  // namespace sne::eval
