#include "eval/experiment.h"

#include <cstdio>
#include <cstdlib>

namespace sne::eval {

std::int64_t env_int64(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(("SNE_" + name).c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  return (end == raw || *end != '\0') ? fallback
                                      : static_cast<std::int64_t>(v);
}

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(("SNE_" + name).c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  return (end == raw || *end != '\0') ? fallback : v;
}

void print_banner(const std::string& experiment, const std::string& note) {
  std::printf("=== %s ===\n%s\n\n", experiment.c_str(), note.c_str());
  std::fflush(stdout);
}

}  // namespace sne::eval
