#include "eval/experiment.h"

#include <cstdio>

namespace sne::eval {

void print_banner(const std::string& experiment, const std::string& note) {
  std::printf("=== %s ===\n%s\n\n", experiment.c_str(), note.c_str());
  std::fflush(stdout);
}

}  // namespace sne::eval
