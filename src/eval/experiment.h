// experiment.h — shared scaffolding for the bench binaries: environment-
// variable scale overrides (so every experiment can be run at paper scale
// on bigger hardware without recompiling) and wall-clock timing.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "tensor/env.h"

namespace sne::eval {

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints the standard bench banner (experiment id + scale note).
void print_banner(const std::string& experiment, const std::string& note);

}  // namespace sne::eval
