// experiment.h — shared scaffolding for the bench binaries: environment-
// variable scale overrides (so every experiment can be run at paper scale
// on bigger hardware without recompiling) and wall-clock timing.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "tensor/env.h"

namespace sne::eval {

/// Deprecated alias for sne::env::int64 — the env-override parsing moved
/// to tensor/env.h so the thread pool, RuntimeConfig, and the benches
/// share one implementation (with the ERANGE fallback fix).
std::int64_t env_int64(const std::string& name, std::int64_t fallback);

/// Deprecated alias for sne::env::float64.
double env_double(const std::string& name, double fallback);

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints the standard bench banner (experiment id + scale note).
void print_banner(const std::string& experiment, const std::string& note);

}  // namespace sne::eval
