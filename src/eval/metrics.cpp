#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sne::eval {

namespace {

void check_pair(std::span<const float> a, std::span<const float> b,
                const char* where) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument(std::string(where) +
                                ": size mismatch or empty");
  }
}

}  // namespace

double mse(std::span<const float> predicted, std::span<const float> target) {
  check_pair(predicted, target, "mse");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = static_cast<double>(predicted[i]) - target[i];
    acc += d * d;
  }
  return acc / static_cast<double>(predicted.size());
}

double mae(std::span<const float> predicted, std::span<const float> target) {
  check_pair(predicted, target, "mae");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += std::abs(static_cast<double>(predicted[i]) - target[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double bias(std::span<const float> predicted, std::span<const float> target) {
  check_pair(predicted, target, "bias");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += static_cast<double>(predicted[i]) - target[i];
  }
  return acc / static_cast<double>(predicted.size());
}

double pearson(std::span<const float> a, std::span<const float> b) {
  check_pair(a, b, "pearson");
  const auto n = static_cast<double>(a.size());
  double sa = 0.0, sb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sa += a[i];
    sb += b[i];
  }
  const double ma = sa / n;
  const double mb = sb / n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) {
    throw std::domain_error("pearson: zero variance");
  }
  return cov / std::sqrt(va * vb);
}

double brier_score(std::span<const float> probabilities,
                   std::span<const float> labels) {
  check_pair(probabilities, labels, "brier_score");
  double acc = 0.0;
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    const double d = static_cast<double>(probabilities[i]) - labels[i];
    acc += d * d;
  }
  return acc / static_cast<double>(probabilities.size());
}

std::vector<ReliabilityPoint> reliability_curve(
    std::span<const float> probabilities, std::span<const float> labels,
    std::int64_t bins) {
  check_pair(probabilities, labels, "reliability_curve");
  if (bins <= 0) throw std::invalid_argument("reliability_curve: bins <= 0");
  std::vector<double> sum_p(static_cast<std::size_t>(bins), 0.0);
  std::vector<double> sum_y(static_cast<std::size_t>(bins), 0.0);
  std::vector<std::int64_t> count(static_cast<std::size_t>(bins), 0);
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    const double p = std::clamp(static_cast<double>(probabilities[i]), 0.0,
                                1.0);
    auto b = static_cast<std::int64_t>(p * static_cast<double>(bins));
    if (b == bins) b = bins - 1;
    sum_p[static_cast<std::size_t>(b)] += p;
    sum_y[static_cast<std::size_t>(b)] += labels[i];
    ++count[static_cast<std::size_t>(b)];
  }
  std::vector<ReliabilityPoint> curve;
  for (std::int64_t b = 0; b < bins; ++b) {
    const auto k = static_cast<std::size_t>(b);
    if (count[k] == 0) continue;
    curve.push_back({sum_p[k] / count[k], sum_y[k] / count[k], count[k]});
  }
  return curve;
}

double expected_calibration_error(std::span<const float> probabilities,
                                  std::span<const float> labels,
                                  std::int64_t bins) {
  const auto curve = reliability_curve(probabilities, labels, bins);
  double acc = 0.0;
  for (const ReliabilityPoint& p : curve) {
    acc += std::abs(p.mean_predicted - p.empirical_rate) *
           static_cast<double>(p.count);
  }
  return acc / static_cast<double>(probabilities.size());
}

MeanStd mean_std(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean_std: empty");
  const auto n = static_cast<double>(values.size());
  double s = 0.0;
  for (const double v : values) s += v;
  const double mean = s / n;
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  return {mean, std::sqrt(var / n)};
}

}  // namespace sne::eval
