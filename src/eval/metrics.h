// metrics.h — regression and summary statistics used by the flux-
// estimation experiments (Table 1, Fig. 8).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sne::eval {

/// Mean squared error between two equal-length series.
double mse(std::span<const float> predicted, std::span<const float> target);

/// Mean absolute error (the paper's "mean estimation error of 0.087 light
/// magnitudes" for the 60×60 flux CNN).
double mae(std::span<const float> predicted, std::span<const float> target);

/// Mean signed error (bias); negative means predictions are too small.
double bias(std::span<const float> predicted, std::span<const float> target);

/// Pearson correlation coefficient.
double pearson(std::span<const float> a, std::span<const float> b);

/// Mean and (population) standard deviation of a series.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd mean_std(std::span<const double> values);

/// Brier score of probabilistic predictions against {0,1} labels:
/// mean((p − y)²). 0 is perfect; 0.25 is an uninformative constant 0.5.
double brier_score(std::span<const float> probabilities,
                   std::span<const float> labels);

/// Reliability curve: predictions bucketed into `bins` equal probability
/// bins; each point is (mean predicted p, empirical positive rate, count).
/// Empty bins are omitted. A calibrated classifier tracks the diagonal.
struct ReliabilityPoint {
  double mean_predicted = 0.0;
  double empirical_rate = 0.0;
  std::int64_t count = 0;
};
std::vector<ReliabilityPoint> reliability_curve(
    std::span<const float> probabilities, std::span<const float> labels,
    std::int64_t bins = 10);

/// Expected calibration error: count-weighted mean |p̂ − rate| over the
/// reliability curve.
double expected_calibration_error(std::span<const float> probabilities,
                                  std::span<const float> labels,
                                  std::int64_t bins = 10);

}  // namespace sne::eval
