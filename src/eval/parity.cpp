#include "eval/parity.h"

#include <cmath>
#include <stdexcept>

#include "eval/roc.h"

namespace sne::eval {

PrecisionParity precision_parity(std::span<const float> reference,
                                 std::span<const float> quantized,
                                 std::span<const float> labels) {
  if (reference.empty() || reference.size() != quantized.size() ||
      reference.size() != labels.size()) {
    throw std::invalid_argument(
        "precision_parity: reference/quantized/labels must be the same "
        "non-zero length");
  }
  PrecisionParity out;
  double sum = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = std::abs(static_cast<double>(reference[i]) -
                              static_cast<double>(quantized[i]));
    if (d > out.max_abs_diff) out.max_abs_diff = d;
    sum += d;
  }
  out.mean_abs_diff = sum / static_cast<double>(reference.size());
  out.auc_reference = auc(reference, labels);
  out.auc_quantized = auc(quantized, labels);
  out.auc_delta = out.auc_quantized - out.auc_reference;
  return out;
}

}  // namespace sne::eval
