// parity.h — quantization acceptance metrics. An int8 deployment is only
// admissible if it preserves the paper's headline metric: the AUC of the
// ROC curve. precision_parity() compares a quantized scorer's outputs
// against the fp32 reference on the same samples and reports both the
// score-level drift and the AUC delta, so a serving stack can gate the
// int8 path on |auc_delta| staying under a budget (this repo pins 1e-3).
#pragma once

#include <span>

namespace sne::eval {

struct PrecisionParity {
  double auc_reference = 0.0;  ///< AUC of the fp32 scores
  double auc_quantized = 0.0;  ///< AUC of the quantized scores
  double auc_delta = 0.0;      ///< auc_quantized − auc_reference (signed)
  double max_abs_diff = 0.0;   ///< largest per-sample |score| drift
  double mean_abs_diff = 0.0;  ///< average per-sample |score| drift
};

/// Compares two score vectors over the same labeled samples. All three
/// spans must have the same non-zero length and `labels` must contain at
/// least one example of each class (the AUC preconditions).
PrecisionParity precision_parity(std::span<const float> reference,
                                 std::span<const float> quantized,
                                 std::span<const float> labels);

}  // namespace sne::eval
