#include "eval/roc.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/rng.h"

namespace sne::eval {

namespace {

void check_inputs(std::span<const float> scores,
                  std::span<const float> labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    throw std::invalid_argument("roc: scores/labels size mismatch or empty");
  }
  bool has_pos = false;
  bool has_neg = false;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    // A NaN score would break the tie-group sweep in compute_roc: NaN
    // compares unequal to itself, so the group cursor never advances and
    // the outer loop spins forever. Reject non-finite values up front with
    // a diagnosable error instead.
    if (!std::isfinite(scores[i])) {
      throw std::invalid_argument("roc: non-finite score at index " +
                                  std::to_string(i));
    }
    if (!std::isfinite(labels[i])) {
      throw std::invalid_argument("roc: non-finite label at index " +
                                  std::to_string(i));
    }
    (labels[i] > 0.5f ? has_pos : has_neg) = true;
  }
  if (!has_pos || !has_neg) {
    throw std::invalid_argument("roc: need both classes present");
  }
}

}  // namespace

RocCurve compute_roc(std::span<const float> scores,
                     std::span<const float> labels) {
  check_inputs(scores, labels);
  const std::size_t n = scores.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  double total_pos = 0.0;
  double total_neg = 0.0;
  for (const float l : labels) {
    if (l > 0.5f) {
      total_pos += 1.0;
    } else {
      total_neg += 1.0;
    }
  }

  RocCurve curve;
  curve.points.push_back({0.0, 0.0, scores[order.front()] + 1.0});

  double tp = 0.0;
  double fp = 0.0;
  double auc_acc = 0.0;
  double prev_fpr = 0.0;
  double prev_tpr = 0.0;
  std::size_t k = 0;
  while (k < n) {
    // Consume all examples tied at this score together so ties contribute
    // a diagonal segment (correct trapezoidal AUC under ties).
    const float cut = scores[order[k]];
    while (k < n && scores[order[k]] == cut) {
      if (labels[order[k]] > 0.5f) {
        tp += 1.0;
      } else {
        fp += 1.0;
      }
      ++k;
    }
    const double fpr = fp / total_neg;
    const double tpr = tp / total_pos;
    auc_acc += 0.5 * (fpr - prev_fpr) * (tpr + prev_tpr);
    curve.points.push_back({fpr, tpr, static_cast<double>(cut)});
    prev_fpr = fpr;
    prev_tpr = tpr;
  }
  curve.auc = auc_acc;
  return curve;
}

double auc(std::span<const float> scores, std::span<const float> labels) {
  return compute_roc(scores, labels).auc;
}

double accuracy_at(std::span<const float> scores,
                   std::span<const float> labels, double threshold) {
  if (scores.size() != labels.size() || scores.empty()) {
    throw std::invalid_argument("accuracy_at: bad inputs");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] > threshold;
    const bool truth = labels[i] > 0.5f;
    if (predicted == truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

double best_accuracy(std::span<const float> scores,
                     std::span<const float> labels) {
  check_inputs(scores, labels);
  const RocCurve curve = compute_roc(scores, labels);
  double total_pos = 0.0;
  for (const float l : labels) {
    if (l > 0.5f) total_pos += 1.0;
  }
  const double total = static_cast<double>(labels.size());
  const double total_neg = total - total_pos;

  double best = 0.0;
  for (const RocPoint& p : curve.points) {
    const double correct = p.tpr * total_pos + (1.0 - p.fpr) * total_neg;
    best = std::max(best, correct / total);
  }
  return best;
}

AucInterval bootstrap_auc(std::span<const float> scores,
                          std::span<const float> labels,
                          std::int64_t resamples, double confidence,
                          std::uint64_t seed) {
  check_inputs(scores, labels);
  if (resamples < 10 || confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("bootstrap_auc: bad parameters");
  }
  std::vector<std::size_t> pos_idx;
  std::vector<std::size_t> neg_idx;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    (labels[i] > 0.5f ? pos_idx : neg_idx).push_back(i);
  }

  Rng rng(seed);
  std::vector<double> replicates;
  replicates.reserve(static_cast<std::size_t>(resamples));
  std::vector<float> s_boot;
  std::vector<float> l_boot;
  for (std::int64_t r = 0; r < resamples; ++r) {
    s_boot.clear();
    l_boot.clear();
    for (std::size_t k = 0; k < pos_idx.size(); ++k) {
      const std::size_t pick =
          pos_idx[static_cast<std::size_t>(rng.uniform_index(pos_idx.size()))];
      s_boot.push_back(scores[pick]);
      l_boot.push_back(1.0f);
    }
    for (std::size_t k = 0; k < neg_idx.size(); ++k) {
      const std::size_t pick =
          neg_idx[static_cast<std::size_t>(rng.uniform_index(neg_idx.size()))];
      s_boot.push_back(scores[pick]);
      l_boot.push_back(0.0f);
    }
    replicates.push_back(auc(s_boot, l_boot));
  }
  std::sort(replicates.begin(), replicates.end());

  const double alpha = 0.5 * (1.0 - confidence);
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(replicates.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(std::floor(pos));
    const auto hi_idx = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - std::floor(pos);
    return replicates[lo_idx] * (1.0 - frac) + replicates[hi_idx] * frac;
  };

  AucInterval out;
  out.auc = auc(scores, labels);
  out.lo = quantile(alpha);
  out.hi = quantile(1.0 - alpha);
  return out;
}

double tpr_at_fpr(const RocCurve& curve, double max_fpr) {
  // The curve's points are vertices of a piecewise-linear curve with
  // nondecreasing FPR; the operating point at a fixed FPR budget lies ON
  // the curve, so when max_fpr falls inside a segment the achievable TPR
  // is the linear interpolation along that segment (realized by randomized
  // thresholding between the bracketing cuts). Taking only the best vertex
  // with fpr <= max_fpr — the old behaviour — systematically
  // underestimates TPR on coarse curves, where segments are long.
  double best_tpr = 0.0;
  const auto& pts = curve.points;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].fpr <= max_fpr) {
      best_tpr = std::max(best_tpr, pts[i].tpr);
    } else if (i > 0 && pts[i - 1].fpr <= max_fpr) {
      // This segment crosses the budget: pts[i-1].fpr <= max_fpr <
      // pts[i].fpr, so the span is strictly positive.
      const double span = pts[i].fpr - pts[i - 1].fpr;
      const double t = (max_fpr - pts[i - 1].fpr) / span;
      best_tpr = std::max(best_tpr,
                          pts[i - 1].tpr + t * (pts[i].tpr - pts[i - 1].tpr));
    }
  }
  return best_tpr;
}

}  // namespace sne::eval
