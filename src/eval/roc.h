// roc.h — receiver-operating-characteristic analysis. Every classification
// result in the paper (Figs. 9, 10, 11 and Table 2) is reported as a ROC
// curve or its AUC; the Poznanski baseline rows report accuracy instead.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sne::eval {

struct RocPoint {
  double fpr = 0.0;       ///< false positive rate
  double tpr = 0.0;       ///< true positive rate
  double threshold = 0.0; ///< score cut producing this point
};

struct RocCurve {
  std::vector<RocPoint> points;  ///< monotone in fpr, from (0,0) to (1,1)
  double auc = 0.0;              ///< trapezoidal area under the curve
};

/// Computes the full ROC curve. `labels` are {0, 1}; higher score must
/// mean "more positive". Both spans must be the same non-zero length and
/// contain at least one example of each class.
RocCurve compute_roc(std::span<const float> scores,
                     std::span<const float> labels);

/// AUC only (same preconditions); equivalent to the Mann–Whitney U
/// statistic with tie correction.
double auc(std::span<const float> scores, std::span<const float> labels);

/// Classification accuracy at a fixed score threshold.
double accuracy_at(std::span<const float> scores,
                   std::span<const float> labels, double threshold);

/// Accuracy at the best possible threshold (what "accuracy" means in the
/// Poznanski2007 rows of Table 2, which tuned their cut).
double best_accuracy(std::span<const float> scores,
                     std::span<const float> labels);

/// TPR at the largest threshold whose FPR does not exceed `max_fpr`
/// (the TPR@FPR operating-point metric of the bogus-rejection literature).
double tpr_at_fpr(const RocCurve& curve, double max_fpr);

/// Bootstrap confidence interval for the AUC: `resamples` stratified
/// bootstrap replicates (positives and negatives resampled separately so
/// every replicate has both classes), percentile interval at the given
/// confidence level. Deterministic in `seed`.
struct AucInterval {
  double auc = 0.0;  ///< point estimate on the full sample
  double lo = 0.0;
  double hi = 1.0;
};
AucInterval bootstrap_auc(std::span<const float> scores,
                          std::span<const float> labels,
                          std::int64_t resamples = 200,
                          double confidence = 0.95,
                          std::uint64_t seed = 17);

}  // namespace sne::eval
