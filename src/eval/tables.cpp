#include "eval/tables.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sne::eval {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_markdown() const {
  std::ostringstream os;
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  }
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_pm(double mean, double std, int precision) {
  return fmt(mean, precision) + " ± " + fmt(std, precision);
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_file: cannot open " + path);
  os << contents;
  if (!os) throw std::runtime_error("write_file: write failed for " + path);
}

std::string series_to_tsv(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("series_to_tsv: length mismatch");
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < x.size(); ++i) {
    os << x[i] << '\t' << y[i] << '\n';
  }
  return os.str();
}

}  // namespace sne::eval
