// tables.h — plain-text/markdown/CSV emitters used by every bench binary
// to print the rows of the paper's tables and the series of its figures
// in a uniform, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace sne::eval {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Column-aligned rendering with a header separator.
  std::string to_string() const;

  /// GitHub-markdown rendering.
  std::string to_markdown() const;

  /// RFC-4180-ish CSV (no quoting of commas; cells must not contain them).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string fmt(double value, int precision = 4);

/// Formats "mean ± std".
std::string fmt_pm(double mean, double std, int precision = 3);

/// Writes a string to a file, throwing on failure.
void write_file(const std::string& path, const std::string& contents);

/// Renders an (x, y) series as "x<TAB>y" lines — the figure-series dump
/// format consumed by EXPERIMENTS.md plots.
std::string series_to_tsv(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace sne::eval
