#include "infer/plan.h"

#include <cxxabi.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "obs/obs.h"

namespace sne::infer {

namespace {

// "sne::nn::Conv2d" → "Conv2d": the span label for one plan step.
std::string layer_type_name(const nn::Module& layer) {
  int status = 0;
  char* demangled =
      abi::__cxa_demangle(typeid(layer).name(), nullptr, nullptr, &status);
  std::string name =
      (status == 0 && demangled != nullptr) ? demangled : typeid(layer).name();
  std::free(demangled);
  const std::size_t pos = name.rfind("::");
  if (pos != std::string::npos) name.erase(0, pos + 2);
  return name;
}

// Folds BN(conv(x)) into a single convolution. With per-channel running
// statistics (μ, σ²), scale γ and shift β:
//   y_c = γ_c · (conv_c(x) − μ_c) / √(σ²_c + ε) + β_c
//       = (s_c · W_c) * x + (s_c · (b_c − μ_c) + β_c),  s_c = γ_c/√(σ²_c+ε)
void fold_conv_bn(const nn::Conv2d& conv, const nn::BatchNorm2d& bn,
                  Tensor& weight, Tensor& bias) {
  weight = conv.weight().value;  // [Cout, Cin·k·k]
  bias = conv.bias().value;      // [Cout]
  const std::int64_t cout = weight.extent(0);
  const std::int64_t row = weight.extent(1);
  for (std::int64_t c = 0; c < cout; ++c) {
    const float inv_std =
        1.0f / std::sqrt(bn.running_var().value[c] + bn.eps());
    const float s = bn.gamma().value[c] * inv_std;
    float* w = weight.data() + c * row;
    for (std::int64_t j = 0; j < row; ++j) w[j] *= s;
    bias[c] = s * (bias[c] - bn.running_mean().value[c]) +
              bn.beta().value[c];
  }
}

}  // namespace

InferencePlan::InferencePlan(const nn::Sequential& net,
                             Shape sample_input_shape, PlanOptions options)
    : input_shape_(std::move(sample_input_shape)) {
  if (net.size() == 0) {
    throw std::invalid_argument("InferencePlan: empty network");
  }

  // Shapes are planned per-sample with a placeholder batch axis of 1; the
  // session rescales axis 0 to the actual batch size at run time.
  Shape cur;
  cur.reserve(input_shape_.size() + 1);
  cur.push_back(1);
  cur.insert(cur.end(), input_shape_.begin(), input_shape_.end());

  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Module& layer = net.layer(i);
    Step step;
    step.layer = &layer;

    const auto* conv = dynamic_cast<const nn::Conv2d*>(&layer);
    const nn::BatchNorm2d* bn =
        (conv != nullptr && options.fold_batchnorm && i + 1 < net.size())
            ? dynamic_cast<const nn::BatchNorm2d*>(&net.layer(i + 1))
            : nullptr;
    if (bn != nullptr) {
      step.folded = true;
      step.conv = conv;
      fold_conv_bn(*conv, *bn, step.weight, step.bias);
      ++num_folded_;
      ++i;  // the batch norm is absorbed; skip its step
    } else if (dynamic_cast<const nn::Flatten*>(&layer) != nullptr) {
      step.reshape_only = true;
    }

    // A per-channel PReLU right after the conv (or the absorbed BN) rides
    // in the convolution's GEMM epilogue: conv→BN→PReLU becomes one step.
    // Bitwise identical to a separate activation pass, so fusing is
    // unconditionally safe when the channel counts line up.
    bool fused_prelu = false;
    if (conv != nullptr && options.fuse_prelu && i + 1 < net.size()) {
      const auto* prelu = dynamic_cast<const nn::PReLU*>(&net.layer(i + 1));
      if (prelu != nullptr && prelu->channels() == conv->out_channels()) {
        step.conv = conv;
        step.prelu = prelu->slope().value;
        ++num_fused_prelu_;
        ++i;  // the activation is absorbed; skip its step
        fused_prelu = true;
      }
    }

    cur = layer.infer_shape(cur);  // BN/PReLU preserve shape, so this holds
    step.sample_out = cur;
    step.trace_name = obs::intern(
        "infer." + std::to_string(steps_.size()) + "." +
        layer_type_name(layer) + (step.folded ? "+bn" : "") +
        (fused_prelu ? "+prelu" : ""));
    steps_.push_back(std::move(step));
  }

  output_shape_.assign(cur.begin() + 1, cur.end());

  if (options.precision == Precision::Int8) {
    if (options.calibration == nullptr || options.calibration->empty()) {
      throw std::invalid_argument(
          "InferencePlan: Int8 lowering requires a calibration table "
          "(run InferenceSession::calibrate on an fp32 plan first)");
    }
    lower_int8(*options.calibration);
    precision_ = Precision::Int8;
  }
}

void InferencePlan::lower_int8(const CalibrationTable& calibration) {
  if (static_cast<std::size_t>(calibration.step_max.size()) !=
          steps_.size() ||
      calibration.input_max.size() != 1) {
    throw std::invalid_argument(
        "InferencePlan: calibration table has " +
        std::to_string(calibration.step_max.size()) +
        " step ranges but the plan has " + std::to_string(steps_.size()) +
        " steps — it was recorded with different fold/fuse options");
  }

  // Walk the steps threading the calibrated activation range through:
  // the range entering step i is the network input's range for the first
  // step and step_max[i-1] after. Only conv steps with a usable (finite,
  // positive) input range lower to int8; anything else keeps its fp32
  // kernel — the per-step fallback that makes precision a plan property
  // instead of an all-or-nothing switch.
  float cur_max = calibration.input_max[0];
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    Step& step = steps_[i];
    const float next_max = calibration.step_max[static_cast<std::int64_t>(i)];
    const auto* conv = dynamic_cast<const nn::Conv2d*>(step.layer);
    if (!step.reshape_only && conv != nullptr && cur_max > 0.0f &&
        std::isfinite(cur_max)) {
      const Tensor& w = step.folded ? step.weight : conv->weight().value;
      step.qweight = quantize_per_channel(w);
      const float in_scale = cur_max / 127.0f;
      const std::int64_t cout = step.qweight.channels();
      step.requant = Tensor({cout});
      for (std::int64_t c = 0; c < cout; ++c) {
        step.requant[c] = in_scale * step.qweight.scales[c];
      }
      step.input_inv_scale = 127.0f / cur_max;
      step.conv = conv;  // unfolded/unfused convs need the typed entry too
      step.int8 = true;
      ++num_int8_;
      step.trace_name = obs::intern(std::string(step.trace_name) + "+i8");
    }
    cur_max = next_max;
  }
}

void InferencePlan::append_quantized(QTensorMap& out,
                                     const std::string& prefix) const {
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (!steps_[i].int8) continue;
    out.emplace_back(prefix + std::to_string(i) + ".qweight",
                     steps_[i].qweight);
  }
}

}  // namespace sne::infer
