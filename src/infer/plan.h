// plan.h — ahead-of-time execution plan for serving a trained Sequential.
// The training path's forward() caches every activation for backward; the
// serving path needs none of that, so the plan walks the layer stack once,
// computes every intermediate shape, decides which steps are pure
// reshapes, and folds each Conv2d → BatchNorm2d pair into a single
// convolution with adjusted weights. The plan is immutable and borrows
// the network: build it once from a trained model, then share it across
// any number of InferenceSessions (one per serving thread).
#pragma once

#include <memory>
#include <vector>

#include "nn/conv2d.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace sne::infer {

struct PlanOptions {
  /// Fold each Conv2d immediately followed by a BatchNorm2d into one
  /// convolution with scaled weights (γ/√(var+ε) per output channel) and
  /// shifted bias, using the batch norm's *running* statistics. The
  /// trained model is not modified; the folded parameters live in the
  /// plan. Exact for inference semantics up to float rounding.
  bool fold_batchnorm = true;
};

/// One executable step of the plan. Either a layer invocation (possibly
/// with folded substitute parameters) or a pure reshape the session
/// performs in place on its arena buffer.
class InferencePlan {
 public:
  /// Builds a plan for `net` applied to batches whose per-sample shape is
  /// `sample_input_shape` (no batch axis, e.g. {2, 60, 60}). The network
  /// must outlive the plan; it is never mutated.
  InferencePlan(const nn::Sequential& net, Shape sample_input_shape,
                PlanOptions options = {});

  const Shape& sample_input_shape() const noexcept { return input_shape_; }
  const Shape& sample_output_shape() const noexcept { return output_shape_; }
  std::size_t num_steps() const noexcept { return steps_.size(); }
  /// Number of Conv2d→BatchNorm2d pairs folded at plan time.
  std::size_t num_folded() const noexcept { return num_folded_; }

 private:
  friend class InferenceSession;

  struct Step {
    const nn::Module* layer = nullptr;  ///< borrowed from the network
    Shape sample_out;  ///< output shape of this step at batch size 1
    bool reshape_only = false;  ///< Flatten: in-place metadata change
    bool folded = false;        ///< run conv with substitute parameters
    const nn::Conv2d* conv = nullptr;  ///< set when folded
    Tensor weight;  ///< folded weight [Cout, Cin·k·k]
    Tensor bias;    ///< folded bias [Cout]
    /// Interned obs span label ("infer.<i>.<layer type>"), stable for
    /// the process — safe to reference from trace records that outlive
    /// the plan.
    const char* trace_name = nullptr;
  };

  Shape input_shape_;
  Shape output_shape_;
  std::vector<Step> steps_;
  std::size_t num_folded_ = 0;
};

}  // namespace sne::infer
