// plan.h — ahead-of-time execution plan for serving a trained Sequential.
// The training path's forward() caches every activation for backward; the
// serving path needs none of that, so the plan walks the layer stack once,
// computes every intermediate shape (validating it — a network that would
// throw at execution time fails here, at plan time), decides which steps
// are pure reshapes, folds each Conv2d → BatchNorm2d pair into a single
// convolution with adjusted weights, and fuses a following per-channel
// PReLU into that convolution's GEMM epilogue — so the paper's
// conv→BN→PReLU module executes as ONE fused step per stage. The plan is
// immutable and borrows the network: build it once from a trained model,
// then share it across any number of InferenceSessions (one per serving
// thread).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/conv2d.h"
#include "nn/sequential.h"
#include "tensor/qtensor.h"
#include "tensor/runtime.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace sne::infer {

/// Activation ranges recorded by InferenceSession::calibrate over one or
/// more representative fp32 batches: the largest |value| seen at the
/// network input and after every plan step. The int8 lowering derives its
/// activation scales from these (scale = max/127, symmetric). max is
/// order-independent and the fp32 serving path is bitwise deterministic,
/// so a table is byte-identical no matter how the calibration set is
/// batched, which thread count runs it, or whether the batches replay
/// from a SnapshotDataset or render live.
struct CalibrationTable {
  Tensor input_max;  ///< [1], largest |x| over all calibration batches
  Tensor step_max;   ///< [num_steps], largest |out| after each plan step
  std::int64_t batches = 0;  ///< batches folded in (diagnostic only)

  bool empty() const noexcept { return step_max.size() == 0; }
};

struct PlanOptions {
  /// Fold each Conv2d immediately followed by a BatchNorm2d into one
  /// convolution with scaled weights (γ/√(var+ε) per output channel) and
  /// shifted bias, using the batch norm's *running* statistics. The
  /// trained model is not modified; the folded parameters live in the
  /// plan. Exact for inference semantics up to float rounding.
  bool fold_batchnorm = true;
  /// Fuse a per-channel PReLU that immediately follows a Conv2d (or a
  /// folded Conv2d→BatchNorm2d pair) into the convolution's GEMM epilogue,
  /// so Conv+BN+PReLU executes as one plan step. Bitwise identical to
  /// running the activation as its own step — the epilogue applies the
  /// same elementwise operation — it just removes one full pass over the
  /// activation tensor and one arena ping-pong.
  bool fuse_prelu = true;
  /// Serving precision this plan lowers to. Fp32 plans ignore
  /// `calibration`. Int8 plans require a calibration table recorded from
  /// a plan with the SAME fold/fuse options (step counts are validated;
  /// the factories in core/inference.h get this right): each conv step
  /// whose calibrated input range is usable gets per-output-channel
  /// quantized weights and a requantization epilogue; every other step —
  /// pooling, Linear, unfused activations, or a conv with a degenerate
  /// range — falls back to fp32, per step, with no accuracy cliff.
  Precision precision = Precision::Fp32;
  /// Borrowed during plan construction only (the plan copies what it
  /// keeps). Required when precision == Precision::Int8.
  const CalibrationTable* calibration = nullptr;
};

/// One executable step of the plan. Either a layer invocation (possibly
/// with folded substitute parameters) or a pure reshape the session
/// performs in place on its arena buffer.
class InferencePlan {
 public:
  /// Builds a plan for `net` applied to batches whose per-sample shape is
  /// `sample_input_shape` (no batch axis, e.g. {2, 60, 60}). The network
  /// must outlive the plan; it is never mutated.
  InferencePlan(const nn::Sequential& net, Shape sample_input_shape,
                PlanOptions options = {});

  const Shape& sample_input_shape() const noexcept { return input_shape_; }
  const Shape& sample_output_shape() const noexcept { return output_shape_; }
  std::size_t num_steps() const noexcept { return steps_.size(); }
  /// Number of Conv2d→BatchNorm2d pairs folded at plan time.
  std::size_t num_folded() const noexcept { return num_folded_; }
  /// Number of PReLU activations fused into a convolution epilogue.
  std::size_t num_fused_prelu() const noexcept { return num_fused_prelu_; }
  /// The precision this plan was lowered to.
  Precision precision() const noexcept { return precision_; }
  /// Number of steps running the int8 kernel (0 for fp32 plans; the
  /// remaining steps of an int8 plan are per-step fp32 fallbacks).
  std::size_t num_int8_steps() const noexcept { return num_int8_; }

  /// Appends every int8 step's quantized constants to `out` as
  /// ("<prefix><step index>.qweight", QTensor) records — the
  /// serialization side of a quantized plan. Quantization is a pure
  /// function of the trained weights and the calibration table, so a
  /// plan rebuilt from a loaded checkpoint reproduces these bytes
  /// exactly; saving them pins that invariant on disk.
  void append_quantized(QTensorMap& out, const std::string& prefix) const;

 private:
  friend class InferenceSession;

  struct Step {
    const nn::Module* layer = nullptr;  ///< borrowed from the network
    Shape sample_out;  ///< output shape of this step at batch size 1
    bool reshape_only = false;  ///< Flatten: in-place metadata change
    bool folded = false;        ///< run conv with substitute parameters
    /// Set when folded and/or a PReLU is fused: the step runs through
    /// Conv2d::infer_with instead of the generic infer_into.
    const nn::Conv2d* conv = nullptr;
    Tensor weight;  ///< folded weight [Cout, Cin·k·k] (folded only)
    Tensor bias;    ///< folded bias [Cout] (folded only)
    /// Per-channel PReLU slopes [Cout] fused into the conv's GEMM
    /// epilogue; empty when no activation was fused.
    Tensor prelu;
    /// Int8 lowering of this conv step (int8 == true): per-channel
    /// quantized weights, the precomputed requant scales
    /// (input_scale · weight_scale[c]) for the igemm epilogue, and the
    /// inverse input scale (127 / calibrated max|x|) the session
    /// quantizes activations with. The step's bias/prelu tensors are
    /// shared with the fp32 path — the requant epilogue applies them.
    bool int8 = false;
    QTensor qweight;
    Tensor requant;  ///< [Cout]
    float input_inv_scale = 0.0f;
    /// Interned obs span label ("infer.<i>.<layer type>"), stable for
    /// the process — safe to reference from trace records that outlive
    /// the plan.
    const char* trace_name = nullptr;
  };

  /// Quantizes every eligible conv step against the calibrated ranges;
  /// called from the constructor when options.precision == Int8.
  void lower_int8(const CalibrationTable& calibration);

  Shape input_shape_;
  Shape output_shape_;
  std::vector<Step> steps_;
  std::size_t num_folded_ = 0;
  std::size_t num_fused_prelu_ = 0;
  std::size_t num_int8_ = 0;
  Precision precision_ = Precision::Fp32;
};

}  // namespace sne::infer
