#include "infer/session.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"

namespace sne::infer {

InferenceSession::InferenceSession(std::shared_ptr<const InferencePlan> plan)
    : plan_(std::move(plan)) {
  if (!plan_) {
    throw std::invalid_argument("InferenceSession: null plan");
  }
}

InferenceSession::InferenceSession(const nn::Sequential& net,
                                   Shape sample_input_shape,
                                   PlanOptions options)
    : InferenceSession(std::make_shared<const InferencePlan>(
          net, std::move(sample_input_shape), options)) {}

namespace {

// Folds one observed activation buffer into a running range slot.
void fold_max(Tensor& slot, std::int64_t index, const float* data,
              std::int64_t n) {
  const float m = max_abs(data, n);
  if (m > slot[index]) slot[index] = m;
}

}  // namespace

void InferenceSession::run(ConstTensorView batch, Tensor& out) {
  run_impl(batch, out, nullptr);
}

void InferenceSession::calibrate(ConstTensorView batch, Tensor& out,
                                 CalibrationTable& table) {
  if (plan_->precision() != Precision::Fp32) {
    throw std::logic_error(
        "InferenceSession::calibrate: calibration must run on an fp32 "
        "plan (the table describes the reference path)");
  }
  if (table.empty()) {
    table.input_max = Tensor({1});
    table.step_max = Tensor({static_cast<std::int64_t>(plan_->num_steps())});
  } else if (static_cast<std::size_t>(table.step_max.size()) !=
             plan_->num_steps()) {
    throw std::invalid_argument(
        "InferenceSession::calibrate: table was started on a plan with " +
        std::to_string(table.step_max.size()) + " steps, this plan has " +
        std::to_string(plan_->num_steps()));
  }
  run_impl(batch, out, &table);
  ++table.batches;
}

void InferenceSession::run_impl(ConstTensorView batch, Tensor& out,
                                CalibrationTable* calib) {
  const InferencePlan& plan = *plan_;
  const Shape& in = plan.input_shape_;
  const auto in_rank = static_cast<std::int64_t>(in.size()) + 1;
  bool shape_ok = batch.rank() == in_rank && batch.extent(0) > 0;
  for (std::size_t a = 0; shape_ok && a < in.size(); ++a) {
    shape_ok = batch.extent(static_cast<std::int64_t>(a) + 1) == in[a];
  }
  if (!shape_ok) {
    throw std::invalid_argument(
        "InferenceSession::run: batch shape " + batch.shape_string() +
        " does not match the planned sample shape");
  }
  const std::int64_t n = batch.extent(0);

  // Warmup (arena/scratch sizing happens inside) is traced under its own
  // name so steady-state latency reads clean in the summary.
  obs::Span run_span(warmed_ ? "infer.run" : "infer.run.warmup", n);
  warmed_ = true;

  // A strided view (e.g. a non-leading-axis slice) is gathered into the
  // arena once; contiguous views — whole tensors or row slices of a
  // larger batch — run with zero input copies.
  ConstTensorView cur = batch;
  Tensor* cur_buf = nullptr;  // arena buffer holding cur's data, if any
  if (!batch.is_contiguous()) {
    batch.copy_to(ping_);
    cur = ConstTensorView(ping_);
    cur_buf = &ping_;
  }
  if (calib != nullptr) {
    fold_max(calib->input_max, 0, cur.data(), cur.size());
  }

  // Walk the plan ping-ponging between the two arena buffers; the last
  // computing step writes straight into `out`. Flatten steps on an arena
  // buffer are in-place metadata changes (Tensor::resize with an equal
  // element count reuses the buffer); a Flatten over the caller's batch
  // is a pure view reinterpretation — the step costs nothing either way.
  for (std::size_t s = 0; s < plan.steps_.size(); ++s) {
    const auto& step = plan.steps_[s];
    obs::Span step_span(step.trace_name);
    const bool last = (s + 1 == plan.steps_.size());
    if (step.reshape_only) {
      shape_scratch_.assign(step.sample_out.begin(), step.sample_out.end());
      shape_scratch_[0] = n;
      if (cur_buf != nullptr && !last) {
        cur_buf->resize(shape_scratch_);
        cur = ConstTensorView(*cur_buf);
      } else if (!last) {
        // Data still lives in the caller's batch: reinterpret the view.
        cur = cur.reshaped(shape_scratch_);
      } else {
        // The result must end up in the caller's out, so this single
        // degenerate case (reshape as final step) stays a copy.
        out.resize(shape_scratch_);
        cur.copy_to(out.data());
        cur = ConstTensorView(out);
        cur_buf = nullptr;
      }
      if (calib != nullptr) {
        // A reshape changes no values; recording keeps the table's
        // one-slot-per-step indexing trivial.
        fold_max(calib->step_max, static_cast<std::int64_t>(s), cur.data(),
                 cur.size());
      }
      continue;
    }
    Tensor* dst = last ? &out : (cur_buf == &ping_ ? &pong_ : &ping_);
    if (step.int8) {
      // Quantized conv step: int8 weights + requant epilogue carrying
      // the (possibly folded) bias and fused PReLU. Output is f32, so
      // the next step is precision-oblivious.
      const Tensor& b = step.folded ? step.bias : step.conv->bias().value;
      const IgemmEpilogue ep{step.requant.data(), b.data(),
                             step.prelu.empty() ? nullptr
                                                : step.prelu.data()};
      step.conv->infer_quantized(step.qweight.data.data(), ep,
                                 step.input_inv_scale, cur, *dst,
                                 int8_scratch_);
    } else if (step.conv != nullptr) {
      // Conv step, possibly with substitute (BN-folded) parameters and a
      // fused PReLU applied in the GEMM epilogue.
      const Tensor& w = step.folded ? step.weight : step.conv->weight().value;
      const Tensor& b = step.folded ? step.bias : step.conv->bias().value;
      step.conv->infer_with(w, b, cur, *dst,
                            step.prelu.empty() ? nullptr : &step.prelu);
    } else {
      step.layer->infer_into(cur, *dst);
    }
    cur = ConstTensorView(*dst);
    cur_buf = last ? nullptr : dst;
    if (calib != nullptr) {
      fold_max(calib->step_max, static_cast<std::int64_t>(s), cur.data(),
               cur.size());
    }
  }
}

Tensor InferenceSession::run(ConstTensorView batch) {
  Tensor out;
  run(batch, out);
  return out;
}

JointSession::JointSession(InferenceSession cnn, InferenceSession classifier,
                           const JointGlue& glue)
    : cnn_(std::move(cnn)), classifier_(std::move(classifier)), glue_(glue) {
  if (glue.stamp <= 0 || glue.num_bands <= 0 || glue.mag_scale == 0.0f) {
    throw std::invalid_argument("JointSession: bad glue configuration");
  }
}

void JointSession::run(const Tensor& batch, Tensor& out) {
  run_impl(batch, out, nullptr);
}

void JointSession::calibrate(const Tensor& batch, Tensor& out,
                             JointCalibration& table) {
  run_impl(batch, out, &table);
}

void JointSession::run_impl(const Tensor& batch, Tensor& out,
                            JointCalibration* table) {
  const std::int64_t nb = glue_.num_bands;
  const std::int64_t stamp = glue_.stamp;
  const std::int64_t per_band = 2 * stamp * stamp;
  const std::int64_t image_block = nb * per_band;
  const std::int64_t expected = image_block + nb;
  if (batch.rank() != 2 || batch.extent(1) != expected) {
    throw std::invalid_argument("JointSession::run: expected [N, " +
                                std::to_string(expected) + "], got " +
                                batch.shape_string());
  }
  const std::int64_t n = batch.extent(0);
  obs::Span span("infer.joint", n);

  // The image columns of every row, as one strided [N, image_block] view;
  // the gather into the CNN batch is a single per-row-memcpy copy_to.
  images_.resize({n * nb, 2, stamp, stamp});
  batch.view().slice(1, 0, image_block).copy_to(images_.data());

  if (table != nullptr) {
    cnn_.calibrate(images_, mags_, table->cnn);  // [N·bands, 1]
  } else {
    cnn_.run(images_, mags_);  // [N·bands, 1]
  }

  features_.resize({n, nb * 2});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* dates = batch.data() + i * expected + image_block;
    for (std::int64_t b = 0; b < nb; ++b) {
      features_.at(i, 2 * b) =
          (mags_[i * nb + b] - glue_.mag_offset) / glue_.mag_scale;
      features_.at(i, 2 * b + 1) = dates[b];
    }
  }
  if (table != nullptr) {
    classifier_.calibrate(features_, out, table->classifier);
  } else {
    classifier_.run(features_, out);
  }
}

Tensor JointSession::run(const Tensor& batch) {
  Tensor out;
  run(batch, out);
  return out;
}

}  // namespace sne::infer
