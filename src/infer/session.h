// session.h — the serving-side executor for a trained network. A session
// owns the mutable run-time state (two ping-pong arena buffers sized on
// first use), while the immutable InferencePlan it executes is shared.
// After the first run() with a given batch size, subsequent runs perform
// zero heap allocations: every buffer is grow-only and every kernel on
// this path (sgemm_serial, sgemm_bt, the elementwise loops) runs on the
// calling thread without touching the allocator or the thread pool.
//
// Thread-safety contract: a session is NOT safe for concurrent run()
// calls, but sessions are cheap and independent — create one per worker
// thread over a shared plan and run them concurrently (the plan and the
// model it borrows are only read).
#pragma once

#include <memory>

#include "infer/plan.h"

namespace sne::infer {

class InferenceSession {
 public:
  explicit InferenceSession(std::shared_ptr<const InferencePlan> plan);

  /// Convenience: builds a fresh plan privately owned by this session.
  InferenceSession(const nn::Sequential& net, Shape sample_input_shape,
                   PlanOptions options = {});

  const InferencePlan& plan() const noexcept { return *plan_; }

  /// Runs the planned network over `batch` (shape [N, ...sample shape])
  /// and resizes `out` to [N, ...output shape]. Reusing the same `out`
  /// tensor across calls keeps the steady state allocation-free.
  ///
  /// `batch` is a non-owning view: a Tensor converts implicitly, and a
  /// contiguous row slice of a larger batch (view().slice(0, lo, hi))
  /// scores directly with no shard copy — the serving shard pattern. A
  /// strided view is gathered once into the arena, then runs as usual.
  /// Reshape-only (Flatten) steps at the head of the plan are executed
  /// as view reinterpretations of the caller's buffer: zero copies until
  /// the first computing step.
  void run(ConstTensorView batch, Tensor& out);

  /// Allocating convenience overload.
  Tensor run(ConstTensorView batch);

  /// Runs the batch exactly like run() AND folds the observed activation
  /// ranges into `table` (initializing it on first use, accumulating on
  /// repeat calls — stream the calibration set through in batches). Only
  /// valid on an fp32 plan: the table feeds the int8 lowering, so it must
  /// describe the reference path. max-abs is order-independent and the
  /// fp32 path is bitwise deterministic, so the finished table does not
  /// depend on batch order, thread count, or snapshot-replay vs live
  /// rendering of the calibration set.
  void calibrate(ConstTensorView batch, Tensor& out, CalibrationTable& table);

 private:
  void run_impl(ConstTensorView batch, Tensor& out, CalibrationTable* calib);

  std::shared_ptr<const InferencePlan> plan_;
  Tensor ping_;
  Tensor pong_;
  nn::ConvInt8Scratch int8_scratch_;  ///< quantized input/column buffers
  Shape shape_scratch_;  ///< reused per-step shape, batch axis rescaled
  bool warmed_ = false;  ///< first run() sizes the arena; traced apart
};

/// Layout/normalization constants the joint image→class model glues its
/// two sub-networks together with. Kept as a plain struct so the infer
/// library stays generic over any (cnn, classifier) Sequential pair.
struct JointGlue {
  std::int64_t stamp = 0;      ///< stamp extent S
  std::int64_t num_bands = 5;  ///< bands per sample
  float mag_offset = 25.0f;    ///< feature = (mag − offset) / scale
  float mag_scale = 5.0f;
};

/// Calibration state of the joint model: one table per sub-network.
struct JointCalibration {
  CalibrationTable cnn;
  CalibrationTable classifier;

  bool empty() const noexcept {
    return cnn.empty() || classifier.empty();
  }
};

/// Serving path for the joint model: repacks each flat sample
/// [bands·2·S·S images, bands dates] into a [N·bands, 2, S, S] image
/// batch, runs the CNN session, assembles the (normalized magnitude,
/// date) features, and runs the classifier session. Same thread-safety
/// contract as InferenceSession: one JointSession per worker.
class JointSession {
 public:
  JointSession(InferenceSession cnn, InferenceSession classifier,
               const JointGlue& glue);

  /// batch is [N, bands·2·S·S + bands]; out becomes [N, 1] logits.
  void run(const Tensor& batch, Tensor& out);
  Tensor run(const Tensor& batch);

  /// run() that also folds activation ranges of both sub-networks into
  /// `table`; see InferenceSession::calibrate for the contract.
  void calibrate(const Tensor& batch, Tensor& out, JointCalibration& table);

  const JointGlue& glue() const noexcept { return glue_; }
  InferenceSession& cnn() noexcept { return cnn_; }
  InferenceSession& classifier() noexcept { return classifier_; }

 private:
  void run_impl(const Tensor& batch, Tensor& out, JointCalibration* table);


  InferenceSession cnn_;
  InferenceSession classifier_;
  JointGlue glue_;
  Tensor images_;
  Tensor mags_;
  Tensor features_;
};

}  // namespace sne::infer
