#include "nn/activation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sne::nn {

PReLU::PReLU(std::int64_t channels, float init_slope, std::string name)
    : channels_(channels),
      slope_(name + ".slope", Tensor({channels}, init_slope)) {
  if (channels <= 0) {
    throw std::invalid_argument("PReLU: channels must be positive");
  }
}

Tensor PReLU::forward(const Tensor& x) {
  if (x.rank() < 2 || x.extent(1) != channels_) {
    throw std::invalid_argument("PReLU: axis-1 extent must be " +
                                std::to_string(channels_) + ", got " +
                                x.shape_string());
  }
  cached_input_ = x;
  const std::int64_t n = x.extent(0);
  const std::int64_t spatial = x.size() / (n * channels_);
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float a = slope_.value[c];
      const float* src = x.data() + (i * channels_ + c) * spatial;
      float* dst = y.data() + (i * channels_ + c) * spatial;
      for (std::int64_t p = 0; p < spatial; ++p) {
        dst[p] = src[p] > 0.0f ? src[p] : a * src[p];
      }
    }
  }
  return y;
}

void PReLU::infer_into(ConstTensorView x, Tensor& out) const {
  if (x.rank() < 2 || x.extent(1) != channels_) {
    throw std::invalid_argument("PReLU: axis-1 extent must be " +
                                std::to_string(channels_) + ", got " +
                                x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t spatial = x.size() / (n * channels_);
  out.resize(x.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float a = slope_.value[c];
      const float* src = x.data() + (i * channels_ + c) * spatial;
      float* dst = out.data() + (i * channels_ + c) * spatial;
      for (std::int64_t p = 0; p < spatial; ++p) {
        dst[p] = src[p] > 0.0f ? src[p] : a * src[p];
      }
    }
  }
}

Tensor PReLU::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("PReLU::backward before forward");
  }
  check_same_shape(grad_output, cached_input_, "PReLU::backward");
  const std::int64_t n = cached_input_.extent(0);
  const std::int64_t spatial = cached_input_.size() / (n * channels_);
  Tensor grad_input(cached_input_.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float a = slope_.value[c];
      const float* xin = cached_input_.data() + (i * channels_ + c) * spatial;
      const float* gy = grad_output.data() + (i * channels_ + c) * spatial;
      float* gx = grad_input.data() + (i * channels_ + c) * spatial;
      double da = 0.0;
      for (std::int64_t p = 0; p < spatial; ++p) {
        if (xin[p] > 0.0f) {
          gx[p] = gy[p];
        } else {
          gx[p] = a * gy[p];
          da += static_cast<double>(gy[p]) * xin[p];
        }
      }
      slope_.grad[c] += static_cast<float>(da);
    }
  }
  return grad_input;
}

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
  return y;
}

void ReLU::infer_into(ConstTensorView x, Tensor& out) const {
  out.resize(x.shape());
  const float* src = x.data();  // enforces a contiguous view
  for (std::int64_t i = 0; i < x.size(); ++i) {
    out[i] = src[i] > 0.0f ? src[i] : 0.0f;
  }
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("ReLU::backward first");
  check_same_shape(grad_output, cached_input_, "ReLU::backward");
  Tensor grad_input(cached_input_.shape());
  for (std::int64_t i = 0; i < grad_output.size(); ++i) {
    grad_input[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  return grad_input;
}

Tensor Sigmoid::forward(const Tensor& x) {
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.size(); ++i) {
    y[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }
  cached_output_ = y;
  return y;
}

void Sigmoid::infer_into(ConstTensorView x, Tensor& out) const {
  out.resize(x.shape());
  const float* src = x.data();  // enforces a contiguous view
  for (std::int64_t i = 0; i < x.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-src[i]));
  }
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) {
    throw std::logic_error("Sigmoid::backward before forward");
  }
  check_same_shape(grad_output, cached_output_, "Sigmoid::backward");
  Tensor grad_input(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.size(); ++i) {
    const float s = cached_output_[i];
    grad_input[i] = grad_output[i] * s * (1.0f - s);
  }
  return grad_input;
}

Tensor Tanh::forward(const Tensor& x) {
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
  cached_output_ = y;
  return y;
}

void Tanh::infer_into(ConstTensorView x, Tensor& out) const {
  out.resize(x.shape());
  const float* src = x.data();  // enforces a contiguous view
  for (std::int64_t i = 0; i < x.size(); ++i) out[i] = std::tanh(src[i]);
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) {
    throw std::logic_error("Tanh::backward before forward");
  }
  check_same_shape(grad_output, cached_output_, "Tanh::backward");
  Tensor grad_input(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.size(); ++i) {
    const float t = cached_output_[i];
    grad_input[i] = grad_output[i] * (1.0f - t * t);
  }
  return grad_input;
}

Tensor Flatten::forward(const Tensor& x) {
  if (x.rank() < 2) {
    throw std::invalid_argument("Flatten: rank must be >= 2");
  }
  cached_shape_ = x.shape();
  return x.reshaped({x.extent(0), -1});
}

Tensor Flatten::forward_moved(Tensor&& x) {
  if (x.rank() < 2) {
    throw std::invalid_argument("Flatten: rank must be >= 2");
  }
  cached_shape_ = x.shape();
  return std::move(x).reshaped({cached_shape_[0], -1});
}

Tensor Flatten::backward_moved(Tensor&& grad_output) {
  if (cached_shape_.empty()) {
    throw std::logic_error("Flatten::backward before forward");
  }
  return std::move(grad_output).reshaped(cached_shape_);
}

void Flatten::infer_into(ConstTensorView x, Tensor& out) const {
  if (x.rank() < 2) {
    throw std::invalid_argument("Flatten: rank must be >= 2");
  }
  out.resize({x.extent(0), x.size() / x.extent(0)});
  std::copy(x.data(), x.data() + x.size(), out.data());
}

Shape Flatten::infer_shape(const Shape& in) const {
  if (in.size() < 2) {
    throw std::invalid_argument("Flatten: rank must be >= 2");
  }
  std::int64_t rest = 1;
  for (std::size_t a = 1; a < in.size(); ++a) rest *= in[a];
  return {in[0], rest};
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_shape_.empty()) {
    throw std::logic_error("Flatten::backward before forward");
  }
  return grad_output.reshaped(cached_shape_);
}

}  // namespace sne::nn
