// activation.h — elementwise activations and shape adapters. PReLU (He et
// al.) is the activation the paper uses in every convolution module; the
// sigmoid closes the classifier head.
#pragma once

#include "nn/module.h"

namespace sne::nn {

/// Parametric ReLU with one learnable slope per channel:
/// y = x (x > 0), y = a_c · x (x ≤ 0). Accepts [N, C] or [N, C, H, W].
/// `channels` must match axis 1 of the input.
class PReLU final : public Module {
 public:
  explicit PReLU(std::int64_t channels, float init_slope = 0.25f,
                 std::string name = "prelu");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  std::vector<Param*> params() override { return {&slope_}; }
  std::vector<const Param*> params() const override { return {&slope_}; }

  std::int64_t channels() const noexcept { return channels_; }
  /// Per-channel slopes [C]; the inference planner reads these to fuse the
  /// activation into the preceding convolution's GEMM epilogue.
  const Param& slope() const noexcept { return slope_; }

 private:
  std::int64_t channels_;
  Param slope_;  // [C]
  Tensor cached_input_;
};

/// Plain ReLU (used by ablation variants).
class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;

 private:
  Tensor cached_input_;
};

/// Elementwise logistic sigmoid.
class Sigmoid final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;

 private:
  Tensor cached_output_;
};

/// Elementwise tanh.
class Tanh final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;

 private:
  Tensor cached_output_;
};

/// Collapses [N, C, H, W] (or any rank ≥ 2) to [N, C·H·W]; the adapter
/// between the convolutional trunk and the fully connected head.
class Flatten final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Zero-copy variants for owned activations: a flatten is a pure
  /// metadata change, so when the caller owns the tensor (Sequential owns
  /// every intermediate) the buffer is moved, not copied. Bitwise
  /// identical to forward()/backward().
  Tensor forward_moved(Tensor&& x);
  Tensor backward_moved(Tensor&& grad_output);
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;

 private:
  Shape cached_shape_;
};

}  // namespace sne::nn
