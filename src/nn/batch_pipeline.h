// batch_pipeline.h — the bounded producer/consumer engine behind every
// streaming batch source in the repo. A BatchPipeline pulls batches out
// of a producer callback and hands them to one consumer in exactly the
// order the producer yields them:
//
//   * depth == 0 — synchronous: next() invokes the producer on the
//     calling thread, writing straight into the caller's batch (steady
//     state reuses its capacity, so nothing allocates).
//   * depth > 0 — one background thread runs the producer up to `depth`
//     batches ahead of consumption, parked on a bounded queue.
//
// Determinism contract: the pipeline never reorders, drops, or
// duplicates batches, so the consumer sees the producer's serial
// sequence at any depth — the property DataLoader and stream::NightStream
// build their bitwise-invariance guarantees on.
//
// Telemetry (all names derived from the `prefix` given at construction,
// e.g. "loader" or "stream"):
//   <prefix>.render          span around each producer call
//   <prefix>.prefetch_stall  span while the producer waits on a full queue
//   <prefix>.batches         counter of produced batches
//   <prefix>.prefetch_stalls counter of full-queue waits
//   <prefix>.queue_depth     gauge of queue occupancy after each push/pop
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "obs/obs.h"

namespace sne::nn {

template <typename Batch>
class BatchPipeline {
 public:
  /// Fills `out` with the next batch; returns false when the stream is
  /// exhausted (leaving `out` untouched). Called from one thread at a
  /// time: the consumer thread at depth 0, the worker otherwise. May
  /// throw — the exception surfaces from the consumer's next() call.
  using Producer = std::function<bool(Batch&)>;

  BatchPipeline(Producer produce, std::int64_t depth, std::string_view prefix)
      : produce_(std::move(produce)),
        depth_(depth > 0 ? static_cast<std::size_t>(depth) : 0),
        render_name_(obs::intern(std::string(prefix) + ".render")),
        stall_name_(obs::intern(std::string(prefix) + ".prefetch_stall")),
        batches_(obs::counter(std::string(prefix) + ".batches")),
        stalls_(obs::counter(std::string(prefix) + ".prefetch_stalls")),
        queue_gauge_(obs::gauge(std::string(prefix) + ".queue_depth")) {
    if (depth_ > 0) worker_ = std::thread([this] { run(); });
  }

  ~BatchPipeline() { stop(); }
  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  /// Moves the next batch into `out`; false once the producer finished.
  /// Rethrows any producer exception (after in-order delivery of the
  /// batches produced before it).
  bool next(Batch& out) {
    if (depth_ == 0) return next_sync(out);
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || done_; });
    if (!queue_.empty()) {
      out = std::move(queue_.front());
      queue_.pop_front();
      queue_gauge_.set(static_cast<std::int64_t>(queue_.size()));
      not_full_.notify_one();
      return true;
    }
    if (error_) std::rethrow_exception(error_);
    return false;
  }

 private:
  bool next_sync(Batch& out) {
    if (finished_) return false;
    bool more = false;
    {
      obs::Span span(render_name_, produced_);
      more = produce_(out);
    }
    if (!more) {
      finished_ = true;
      return false;
    }
    batches_.add(1);
    ++produced_;
    return true;
  }

  void run() {
    try {
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mutex_);
          if (queue_.size() >= depth_ && !cancel_) {
            // Queue full: production is ahead of consumption; stall until
            // the consumer drains a batch (or the pipeline is torn down).
            stalls_.add(1);
            obs::Span stall(stall_name_);
            not_full_.wait(lock,
                           [&] { return cancel_ || queue_.size() < depth_; });
          }
          if (cancel_) break;
        }
        Batch batch;
        bool more = false;
        {
          obs::Span span(render_name_, produced_);
          more = produce_(batch);
        }
        if (!more) break;
        batches_.add(1);
        ++produced_;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (cancel_) break;
          queue_.push_back(std::move(batch));
          queue_gauge_.set(static_cast<std::int64_t>(queue_.size()));
        }
        not_empty_.notify_one();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    not_empty_.notify_all();
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cancel_ = true;
    }
    not_full_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

  Producer produce_;
  std::size_t depth_;
  const char* render_name_;
  const char* stall_name_;
  obs::Counter& batches_;
  obs::Counter& stalls_;
  obs::Gauge& queue_gauge_;

  std::int64_t produced_ = 0;  ///< render-span batch index
  bool finished_ = false;      ///< synchronous path's end-of-stream latch

  std::thread worker_;
  std::mutex mutex_;
  std::condition_variable not_full_;   // producer waits for queue space
  std::condition_variable not_empty_;  // consumer waits for a batch
  std::deque<Batch> queue_;
  bool done_ = false;
  bool cancel_ = false;
  std::exception_ptr error_;
};

}  // namespace sne::nn
