#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

#include "tensor/thread_pool.h"

namespace sne::nn {

BatchNormBase::BatchNormBase(std::int64_t channels, float momentum, float eps,
                             std::string name)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(name + ".gamma", Tensor({channels}, 1.0f)),
      beta_(name + ".beta", Tensor({channels})),
      running_mean_(name + ".running_mean", Tensor({channels})),
      running_var_(name + ".running_var", Tensor({channels}, 1.0f)) {
  if (channels <= 0) {
    throw std::invalid_argument("BatchNorm: channels must be positive");
  }
}

void BatchNorm1d::check_input(ConstTensorView x) const {
  if (x.rank() != 2 || x.extent(1) != channels_) {
    throw std::invalid_argument("BatchNorm1d: expected [N, " +
                                std::to_string(channels_) + "], got " +
                                x.shape_string());
  }
}

void BatchNorm2d::check_input(ConstTensorView x) const {
  if (x.rank() != 4 || x.extent(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected [N, " +
                                std::to_string(channels_) + ", H, W], got " +
                                x.shape_string());
  }
}

Tensor BatchNormBase::forward(const Tensor& x) {
  check_input(x);
  const std::int64_t n = x.extent(0);
  const std::int64_t spatial =
      x.rank() == 4 ? x.extent(2) * x.extent(3) : 1;
  const std::int64_t per_channel = n * spatial;
  const std::int64_t chw = channels_ * spatial;

  cached_per_channel_ = per_channel;
  cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
  cached_xhat_ = Tensor(x.shape());
  Tensor y(x.shape());

  // Channels are fully independent (statistics, running buffers, and the
  // normalized output all live in per-channel slices), so the channel loop
  // distributes across the pool with bitwise-identical results for any
  // thread count.
  parallel_for(0, channels_, [&](std::int64_t c) {
    float mean;
    float var;
    if (training_) {
      double s = 0.0;
      double s2 = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* base = x.data() + i * chw + c * spatial;
        for (std::int64_t p = 0; p < spatial; ++p) {
          const double v = base[p];
          s += v;
          s2 += v * v;
        }
      }
      mean = static_cast<float>(s / static_cast<double>(per_channel));
      var = static_cast<float>(s2 / static_cast<double>(per_channel)) -
            mean * mean;
      if (var < 0.0f) var = 0.0f;  // numerical guard
      running_mean_.value[c] =
          (1.0f - momentum_) * running_mean_.value[c] + momentum_ * mean;
      // Unbiased variance for the running estimate, as in common practice.
      const float unbiased =
          per_channel > 1
              ? var * static_cast<float>(per_channel) /
                    static_cast<float>(per_channel - 1)
              : var;
      running_var_.value[c] =
          (1.0f - momentum_) * running_var_.value[c] + momentum_ * unbiased;
    } else {
      mean = running_mean_.value[c];
      var = running_var_.value[c];
    }
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + i * chw + c * spatial;
      float* xh = cached_xhat_.data() + i * chw + c * spatial;
      float* dst = y.data() + i * chw + c * spatial;
      for (std::int64_t p = 0; p < spatial; ++p) {
        const float xhat = (src[p] - mean) * inv_std;
        xh[p] = xhat;
        dst[p] = g * xhat + b;
      }
    }
  });
  return y;
}

void BatchNormBase::infer_into(ConstTensorView x, Tensor& out) const {
  check_input(x);
  const std::int64_t n = x.extent(0);
  const std::int64_t spatial = x.rank() == 4 ? x.extent(2) * x.extent(3) : 1;
  const std::int64_t chw = channels_ * spatial;

  out.resize(x.shape());

  // Running statistics, always — the inference path never sees batch
  // statistics, no matter the training flag. Serial channel loop, no
  // caches written.
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float mean = running_mean_.value[c];
    const float inv_std = 1.0f / std::sqrt(running_var_.value[c] + eps_);
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + i * chw + c * spatial;
      float* dst = out.data() + i * chw + c * spatial;
      for (std::int64_t p = 0; p < spatial; ++p) {
        dst[p] = g * (src[p] - mean) * inv_std + b;
      }
    }
  }
}

Tensor BatchNormBase::backward(const Tensor& grad_output) {
  if (cached_xhat_.empty()) {
    throw std::logic_error("BatchNorm::backward before forward");
  }
  check_same_shape(grad_output, cached_xhat_, "BatchNorm::backward");
  const std::int64_t n = grad_output.extent(0);
  const std::int64_t spatial =
      grad_output.rank() == 4 ? grad_output.extent(2) * grad_output.extent(3)
                              : 1;
  const std::int64_t chw = channels_ * spatial;
  const auto m = static_cast<float>(cached_per_channel_);

  Tensor grad_input(grad_output.shape());

  parallel_for(0, channels_, [&](std::int64_t c) {
    const float g = gamma_.value[c];
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(c)];

    double sum_gy = 0.0;
    double sum_gy_xhat = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* gy = grad_output.data() + i * chw + c * spatial;
      const float* xh = cached_xhat_.data() + i * chw + c * spatial;
      for (std::int64_t p = 0; p < spatial; ++p) {
        sum_gy += gy[p];
        sum_gy_xhat += static_cast<double>(gy[p]) * xh[p];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gy_xhat);
    beta_.grad[c] += static_cast<float>(sum_gy);

    if (training_) {
      const auto mean_gy = static_cast<float>(sum_gy) / m;
      const auto mean_gy_xhat = static_cast<float>(sum_gy_xhat) / m;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* gy = grad_output.data() + i * chw + c * spatial;
        const float* xh = cached_xhat_.data() + i * chw + c * spatial;
        float* gx = grad_input.data() + i * chw + c * spatial;
        for (std::int64_t p = 0; p < spatial; ++p) {
          gx[p] = g * inv_std * (gy[p] - mean_gy - xh[p] * mean_gy_xhat);
        }
      }
    } else {
      // Inference mode treats mean/var as constants.
      for (std::int64_t i = 0; i < n; ++i) {
        const float* gy = grad_output.data() + i * chw + c * spatial;
        float* gx = grad_input.data() + i * chw + c * spatial;
        for (std::int64_t p = 0; p < spatial; ++p) {
          gx[p] = g * inv_std * gy[p];
        }
      }
    }
  });
  return grad_input;
}

}  // namespace sne::nn
