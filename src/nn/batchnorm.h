// batchnorm.h — batch normalization (Ioffe & Szegedy 2015, ref. [5] of the
// paper). Fig. 7's convolution modules interleave 5×5 conv → batch norm →
// PReLU → max-pool; BatchNorm2d normalizes per channel over (N, H, W),
// BatchNorm1d per feature over N.
#pragma once

#include "nn/module.h"

namespace sne::nn {

/// Shared implementation: normalizes over all axes except the channel axis.
class BatchNormBase : public Module {
 public:
  BatchNormBase(std::int64_t channels, float momentum, float eps,
                std::string name);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<const Param*> params() const override {
    return {&gamma_, &beta_};
  }
  std::vector<Param*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  std::vector<const Param*> buffers() const override {
    return {&running_mean_, &running_var_};
  }

  std::int64_t channels() const noexcept { return channels_; }

  // Read-only access to the affine parameters and running statistics, used
  // by the inference planner to fold a batch norm into the preceding
  // convolution's weights.
  float eps() const noexcept { return eps_; }
  const Param& gamma() const noexcept { return gamma_; }
  const Param& beta() const noexcept { return beta_; }
  const Param& running_mean() const noexcept { return running_mean_; }
  const Param& running_var() const noexcept { return running_var_; }

 protected:
  /// Number of elements sharing channel statistics (N or N·H·W), and the
  /// per-element channel stride layout: rank must be 2 ([N, C]) or
  /// 4 ([N, C, H, W]).
  virtual void check_input(ConstTensorView x) const = 0;

  std::int64_t channels_;
  float momentum_;
  float eps_;
  Param gamma_;
  Param beta_;
  Param running_mean_;
  Param running_var_;

  // Forward caches for backward.
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  std::int64_t cached_per_channel_ = 0;
};

/// Batch norm over [N, C] inputs.
class BatchNorm1d final : public BatchNormBase {
 public:
  explicit BatchNorm1d(std::int64_t features, float momentum = 0.1f,
                       float eps = 1e-5f, std::string name = "bn1d")
      : BatchNormBase(features, momentum, eps, std::move(name)) {}

 private:
  void check_input(ConstTensorView x) const override;
};

/// Batch norm over [N, C, H, W] inputs (per-channel statistics).
class BatchNorm2d final : public BatchNormBase {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f, std::string name = "bn2d")
      : BatchNormBase(channels, momentum, eps, std::move(name)) {}

 private:
  void check_input(ConstTensorView x) const override;
};

}  // namespace sne::nn
