#include "nn/conv2d.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/qtensor.h"
#include "tensor/thread_pool.h"

namespace sne::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, Rng& rng, std::int64_t stride,
               std::int64_t pad, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(name + ".weight",
              Tensor({out_channels, in_channels * kernel * kernel})),
      bias_(name + ".bias", Tensor({out_channels})) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0) {
    throw std::invalid_argument("Conv2d: invalid configuration");
  }
  const auto fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);
  weight_.value = Tensor::rand_uniform(weight_.value.shape(), rng, -bound,
                                       bound);
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.extent(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::forward: expected [N, " +
                                std::to_string(in_channels_) +
                                ", H, W], got " + x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t out_h = conv_out_extent(h, kernel_, pad_, stride_);
  const std::int64_t out_w = conv_out_extent(w, kernel_, pad_, stride_);
  if (out_h <= 0 || out_w <= 0) {
    throw std::invalid_argument("Conv2d::forward: kernel larger than input");
  }
  const std::int64_t col_rows = in_channels_ * kernel_ * kernel_;
  const std::int64_t out_hw = out_h * out_w;

  // backward only needs the input's shape (the pixels it reads come from
  // cached_columns_ / cached_input_), so caching the shape alone halves
  // the layer's per-batch activation memory.
  cached_in_shape_ = x.shape();
  Tensor y({n, out_channels_, out_h, out_w});
  // Bias rides in the GEMM epilogue: same per-element operations as a
  // separate broadcast pass, but applied while the output panel is still
  // cache-hot.
  const GemmEpilogue bias_ep{bias_.value.data(), nullptr};

  if (is_pointwise()) {
    // 1×1/stride-1/no-pad: the column matrix IS the input sample, so feed
    // it straight to GEMM — no im2col pass, no column buffer. backward
    // reads the columns, so cache the input itself instead.
    cached_columns_ = Tensor();
    cached_input_ = x;
    const std::int64_t chw = in_channels_ * h * w;
    parallel_for(0, n, [&](std::int64_t i) {
      sgemm(out_channels_, out_hw, col_rows, 1.0f, weight_.value.data(),
            x.data() + i * chw, 0.0f, y.data() + i * out_channels_ * out_hw,
            bias_ep);
    });
    return y;
  }

  cached_input_ = Tensor();
  cached_columns_ = Tensor({n, col_rows, out_hw});

  // Samples are independent: each writes its own slice of the column
  // buffer and of y.
  parallel_for(0, n, [&](std::int64_t i) {
    float* cols = cached_columns_.data() + i * col_rows * out_hw;
    im2col(x.data() + i * in_channels_ * h * w, in_channels_, h, w, kernel_,
           kernel_, pad_, stride_, cols);
    // y_i[Cout, H'W'] = W[Cout, col_rows] · cols[col_rows, H'W'] + bias
    sgemm(out_channels_, out_hw, col_rows, 1.0f, weight_.value.data(), cols,
          0.0f, y.data() + i * out_channels_ * out_hw, bias_ep);
  });
  return y;
}

void Conv2d::infer_into(ConstTensorView x, Tensor& out) const {
  infer_with(weight_.value, bias_.value, x, out);
}

void Conv2d::infer_with(const Tensor& weight, const Tensor& bias,
                        ConstTensorView x, Tensor& out,
                        const Tensor* prelu) const {
  if (x.rank() != 4 || x.extent(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::infer_with: expected [N, " +
                                std::to_string(in_channels_) +
                                ", H, W], got " + x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t out_h = conv_out_extent(h, kernel_, pad_, stride_);
  const std::int64_t out_w = conv_out_extent(w, kernel_, pad_, stride_);
  if (out_h <= 0 || out_w <= 0) {
    throw std::invalid_argument("Conv2d::infer_with: kernel larger than input");
  }
  const std::int64_t col_rows = in_channels_ * kernel_ * kernel_;
  const std::int64_t out_hw = out_h * out_w;

  out.resize({n, out_channels_, out_h, out_w});

  // Bias — and, when the planner fused the following activation, the
  // per-channel PReLU — run in the GEMM epilogue, bitwise identical to the
  // separate passes they replace.
  const GemmEpilogue ep{bias.data(),
                        prelu != nullptr ? prelu->data() : nullptr};

  if (is_pointwise()) {
    // 1×1 fast path: the input sample is already the column matrix. No
    // im2col, and no column buffer at all on this path.
    const std::int64_t chw = in_channels_ * h * w;
    for (std::int64_t i = 0; i < n; ++i) {
      sgemm_serial(out_channels_, out_hw, col_rows, 1.0f, weight.data(),
                   x.data() + i * chw, 0.0f,
                   out.data() + i * out_channels_ * out_hw, ep);
    }
    return;
  }

  // Serial per-sample loop with a per-thread, grow-only column buffer for
  // just one sample (the training path keeps the whole batch's columns for
  // backward). No pool dispatch, no allocation after warmup: concurrency
  // on the inference path comes from running independent sessions on
  // separate workers.
  thread_local std::vector<float> cols;
  cols.resize(static_cast<std::size_t>(col_rows * out_hw));
  for (std::int64_t i = 0; i < n; ++i) {
    im2col(x.data() + i * in_channels_ * h * w, in_channels_, h, w, kernel_,
           kernel_, pad_, stride_, cols.data());
    sgemm_serial(out_channels_, out_hw, col_rows, 1.0f, weight.data(),
                 cols.data(), 0.0f,
                 out.data() + i * out_channels_ * out_hw, ep);
  }
}

void Conv2d::infer_quantized(const std::int8_t* qweight,
                             const IgemmEpilogue& epilogue,
                             float input_inv_scale, ConstTensorView x,
                             Tensor& out, ConvInt8Scratch& scratch) const {
  if (x.rank() != 4 || x.extent(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::infer_quantized: expected [N, " +
                                std::to_string(in_channels_) +
                                ", H, W], got " + x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t out_h = conv_out_extent(h, kernel_, pad_, stride_);
  const std::int64_t out_w = conv_out_extent(w, kernel_, pad_, stride_);
  if (out_h <= 0 || out_w <= 0) {
    throw std::invalid_argument(
        "Conv2d::infer_quantized: kernel larger than input");
  }
  const std::int64_t col_rows = in_channels_ * kernel_ * kernel_;
  const std::int64_t out_hw = out_h * out_w;
  const std::int64_t chw = in_channels_ * h * w;

  out.resize({n, out_channels_, out_h, out_w});
  scratch.input.resize(static_cast<std::size_t>(chw));

  if (is_pointwise()) {
    // 1×1 fast path, quantized: the int8 image IS the column matrix.
    for (std::int64_t i = 0; i < n; ++i) {
      quantize_into(x.data() + i * chw, chw, input_inv_scale,
                    scratch.input.data());
      igemm_serial(out_channels_, out_hw, col_rows, qweight,
                   scratch.input.data(),
                   out.data() + i * out_channels_ * out_hw, epilogue);
    }
    return;
  }

  // Quantize once per sample (O(C·H·W)), then lower the int8 image —
  // the column matrix costs a quarter of the f32 path's byte traffic,
  // which is where most of the int8 serving win comes from.
  scratch.columns.resize(static_cast<std::size_t>(col_rows * out_hw));
  for (std::int64_t i = 0; i < n; ++i) {
    quantize_into(x.data() + i * chw, chw, input_inv_scale,
                  scratch.input.data());
    im2col_i8(scratch.input.data(), in_channels_, h, w, kernel_, kernel_,
              pad_, stride_, scratch.columns.data());
    igemm_serial(out_channels_, out_hw, col_rows, qweight,
                 scratch.columns.data(),
                 out.data() + i * out_channels_ * out_hw, epilogue);
  }
}

Shape Conv2d::infer_shape(const Shape& in) const {
  if (in.size() != 4 || in[1] != in_channels_) {
    throw std::invalid_argument("Conv2d::infer_shape: bad input shape");
  }
  const std::int64_t out_h = conv_out_extent(in[2], kernel_, pad_, stride_);
  const std::int64_t out_w = conv_out_extent(in[3], kernel_, pad_, stride_);
  // Validate exactly like forward/infer_with: a plan built over a
  // kernel-larger-than-input shape must fail at plan time, not explode
  // when the session first runs.
  if (out_h <= 0 || out_w <= 0) {
    throw std::invalid_argument(
        "Conv2d::infer_shape: kernel larger than input for [" +
        std::to_string(in[2]) + ", " + std::to_string(in[3]) + "]");
  }
  return {in[0], out_channels_, out_h, out_w};
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (cached_in_shape_.empty()) {
    throw std::logic_error("Conv2d::backward before forward");
  }
  const std::int64_t n = cached_in_shape_[0];
  const std::int64_t h = cached_in_shape_[2];
  const std::int64_t w = cached_in_shape_[3];
  const std::int64_t out_h = conv_out_extent(h, kernel_, pad_, stride_);
  const std::int64_t out_w = conv_out_extent(w, kernel_, pad_, stride_);
  const std::int64_t out_hw = out_h * out_w;
  const std::int64_t col_rows = in_channels_ * kernel_ * kernel_;
  if (grad_output.rank() != 4 || grad_output.extent(0) != n ||
      grad_output.extent(1) != out_channels_ ||
      grad_output.extent(2) != out_h || grad_output.extent(3) != out_w) {
    throw std::invalid_argument("Conv2d::backward: bad grad shape " +
                                grad_output.shape_string());
  }

  Tensor grad_input(cached_in_shape_);

  // Per-sample partial parameter gradients. Samples run in parallel into
  // disjoint slices; the reduction below folds them into Param::grad in
  // sample order, which makes the result bitwise independent of the
  // thread count (and identical to the old serial accumulation).
  const std::int64_t wsize = out_channels_ * col_rows;
  std::vector<float> dw(static_cast<std::size_t>(n * wsize));
  std::vector<float> db(static_cast<std::size_t>(n * out_channels_));

  const bool pointwise = is_pointwise();
  parallel_for(0, n, [&](std::int64_t i) {
    const float* gy = grad_output.data() + i * out_channels_ * out_hw;
    // On the 1×1 fast path the cached input doubles as the column matrix
    // (no im2col ran in forward).
    const float* cols =
        pointwise ? cached_input_.data() + i * in_channels_ * h * w
                  : cached_columns_.data() + i * col_rows * out_hw;
    // dW_i[Cout, col_rows] = gy[Cout, H'W'] · colsᵀ
    sgemm_bt(out_channels_, col_rows, out_hw, 1.0f, gy, cols, 0.0f,
             dw.data() + i * wsize);
    // db_i[Cout] = per-channel sums of gy
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      const float* plane = gy + c * out_hw;
      double s = 0.0;
      for (std::int64_t p = 0; p < out_hw; ++p) s += plane[p];
      db[static_cast<std::size_t>(i * out_channels_ + c)] =
          static_cast<float>(s);
    }
    if (pointwise) {
      // col2im is the identity for 1×1/stride-1/no-pad, so Wᵀ · gy is the
      // input gradient itself: write it straight into grad_input, no
      // scratch buffer and no scatter.
      sgemm_at(col_rows, out_hw, out_channels_, 1.0f, weight_.value.data(),
               gy, 0.0f, grad_input.data() + i * in_channels_ * h * w);
    } else {
      thread_local std::vector<float> grad_cols;
      grad_cols.resize(static_cast<std::size_t>(col_rows * out_hw));
      // dcols[col_rows, H'W'] = Wᵀ · gy, then scatter back with col2im.
      sgemm_at(col_rows, out_hw, out_channels_, 1.0f, weight_.value.data(),
               gy, 0.0f, grad_cols.data());
      col2im(grad_cols.data(), in_channels_, h, w, kernel_, kernel_, pad_,
             stride_, grad_input.data() + i * in_channels_ * h * w);
    }
  });

  // Deterministic reduction: fixed sample order, on the calling thread.
  for (std::int64_t i = 0; i < n; ++i) {
    const float* dwi = dw.data() + i * wsize;
    float* wg = weight_.grad.data();
    for (std::int64_t j = 0; j < wsize; ++j) wg[j] += dwi[j];
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      bias_.grad[c] += db[static_cast<std::size_t>(i * out_channels_ + c)];
    }
  }
  return grad_input;
}

}  // namespace sne::nn
