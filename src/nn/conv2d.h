// conv2d.h — 2-d convolution implemented as im2col + GEMM, the standard
// lowering on CPU. This is the workhorse of the paper's band-wise CNN
// (three 5×5 convolution stages, Fig. 7).
#pragma once

#include <vector>

#include "nn/module.h"
#include "tensor/gemm.h"
#include "tensor/rng.h"

namespace sne::nn {

/// Caller-owned scratch of the quantized conv path: the int8 image of the
/// current sample and its int8 column matrix. Grow-only, so a serving
/// session that reuses one across run() calls stays allocation-free after
/// warmup — this is the "int8 ping-pong arena" the InferenceSession sizes.
struct ConvInt8Scratch {
  std::vector<std::int8_t> input;
  std::vector<std::int8_t> columns;
};

/// 2-d convolution: input [N, Cin, H, W] → output [N, Cout, H', W'] with
/// H' = (H + 2·pad − k)/stride + 1 (and likewise W').
class Conv2d final : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, Rng& rng, std::int64_t stride = 1,
         std::int64_t pad = 0, std::string name = "conv");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::vector<const Param*> params() const override {
    return {&weight_, &bias_};
  }

  /// infer_into with substituted parameters: the inference planner uses
  /// this to run a batch-norm-folded convolution through the layer's own
  /// kernel without mutating the trained weights. `weight` must be
  /// [Cout, Cin·k·k] and `bias` [Cout], like the layer's own parameters.
  /// When `prelu` is non-null it must be [Cout] per-channel PReLU slopes;
  /// they are applied in the GEMM epilogue, bitwise identical to running a
  /// separate PReLU pass over the conv output.
  void infer_with(const Tensor& weight, const Tensor& bias, ConstTensorView x,
                  Tensor& out, const Tensor* prelu = nullptr) const;

  /// Quantized inference: per sample, quantizes the f32 input with
  /// `input_inv_scale` (= 127 / calibrated max|x|), lowers it through the
  /// int8 im2col, and runs the saturating s8×s8→s32 GEMM whose epilogue
  /// requantizes to f32 (per-channel scale), adds the bias and applies
  /// the fused PReLU — so the output tensor is f32 like every other step
  /// and downstream layers are oblivious to the precision. `qweight` is
  /// the per-channel-quantized weight payload [Cout, Cin·k·k] and
  /// `epilogue.scale` must carry input_scale · weight_scale[c] (the
  /// inference planner precomputes both). Same serial/zero-alloc
  /// contract as infer_with, with `scratch` holding the int8 buffers.
  void infer_quantized(const std::int8_t* qweight,
                       const IgemmEpilogue& epilogue, float input_inv_scale,
                       ConstTensorView x, Tensor& out,
                       ConvInt8Scratch& scratch) const;

  std::int64_t in_channels() const noexcept { return in_channels_; }
  std::int64_t out_channels() const noexcept { return out_channels_; }
  std::int64_t kernel() const noexcept { return kernel_; }
  /// 1×1/stride-1/no-pad: the im2col matrix equals the input sample, so
  /// both forward and inference feed the input straight to GEMM with no
  /// column buffer.
  bool is_pointwise() const noexcept {
    return kernel_ == 1 && stride_ == 1 && pad_ == 0;
  }
  const Param& weight() const noexcept { return weight_; }
  const Param& bias() const noexcept { return bias_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;
  Param weight_;  // [Cout, Cin·k·k]
  Param bias_;    // [Cout]
  Shape cached_in_shape_;  // backward needs only the forward input's shape
  Tensor cached_columns_;  // im2col of the whole batch: [N, Cin·k·k, H'·W']
                           // (empty on the 1×1 fast path)
  Tensor cached_input_;    // 1×1 fast path: the input doubles as the column
                           // matrix, so backward caches it instead
};

}  // namespace sne::nn
