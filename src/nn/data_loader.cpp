#include "nn/data_loader.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/runtime.h"

namespace sne::nn {

DataLoader::DataLoader(const Dataset& data, DataLoaderConfig config)
    : data_(&data),
      config_(config),
      prefetch_(RuntimeConfig::current().prefetch),
      shuffle_rng_(config.shuffle_seed),
      n_(data.size()) {
  if (config_.batch_size <= 0) {
    throw std::invalid_argument("DataLoader: batch_size must be positive");
  }
  if (prefetch_ < 0) prefetch_ = 1;
  if (n_ <= 0) {
    throw std::invalid_argument("DataLoader: empty dataset");
  }
}

DataLoader::~DataLoader() = default;

std::int64_t DataLoader::num_batches() const noexcept {
  return (n_ + config_.batch_size - 1) / config_.batch_size;
}

void DataLoader::start_epoch() {
  pipeline_.reset();  // joins the previous epoch's worker, if any
  if (order_.empty()) {
    order_.resize(static_cast<std::size_t>(n_));
    for (std::size_t i = 0; i < order_.size(); ++i) {
      order_[i] = static_cast<std::int64_t>(i);
    }
  }
  if (config_.shuffle) {
    std::vector<std::size_t> perm(order_.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    shuffle_rng_.shuffle(perm);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      order_[i] = static_cast<std::int64_t>(perm[i]);
    }
  }
  epoch_active_ = true;
  // The producer walks the epoch order start to end. Writing into the
  // pipeline-supplied batch (the caller's own, at depth 0) reuses its
  // capacity — steady-state epochs over in-memory or snapshot datasets
  // allocate nothing on the synchronous path.
  pipeline_ = std::make_unique<BatchPipeline<Sample>>(
      [this, first = std::size_t{0}](Sample& out) mutable {
        if (first >= order_.size()) return false;
        const std::size_t count =
            std::min(static_cast<std::size_t>(config_.batch_size),
                     order_.size() - first);
        data_->get_batch_into(order_, first, count, out);
        first += count;
        return true;
      },
      prefetch_, "loader");
}

bool DataLoader::next(Sample& batch) {
  if (!epoch_active_) {
    throw std::logic_error("DataLoader::next: no active epoch");
  }
  // A renderer exception surfaces here (the pipeline rethrows it once
  // prior batches are delivered). The epoch must close cleanly either
  // way: leaving pipeline_/epoch_active_ set after a throw would make
  // the next next() call rethrow a stale error — or worse, report an
  // active epoch that has no live producer.
  bool more = false;
  try {
    more = pipeline_->next(batch);
  } catch (...) {
    pipeline_.reset();
    epoch_active_ = false;
    throw;
  }
  if (!more) {
    pipeline_.reset();
    epoch_active_ = false;
  }
  return more;
}

}  // namespace sne::nn
