#include "nn/data_loader.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "tensor/runtime.h"

namespace sne::nn {

namespace {

// Loader telemetry. Batches rendered, queue occupancy after each
// producer push (max = how full the prefetch buffer actually runs), and
// stalls (producer found the queue full and had to wait — the training
// thread is the bottleneck; consumer-side waits show up as the
// caller's data-wait span instead).
obs::Counter& batches_counter() {
  static obs::Counter& c = obs::counter("loader.batches");
  return c;
}

obs::Counter& stall_counter() {
  static obs::Counter& c = obs::counter("loader.prefetch_stalls");
  return c;
}

obs::Gauge& queue_gauge() {
  static obs::Gauge& g = obs::gauge("loader.queue_depth");
  return g;
}

}  // namespace

// Background batch renderer: one worker thread walks the epoch order and
// pushes finished batches into a bounded queue (capacity = prefetch
// depth). The queue preserves submission order, so the consumer sees
// exactly the serial batch sequence regardless of depth. Rendering
// happens outside the queue lock; a dataset with a parallel get_batch
// fans each batch across the shared pool from here, interleaving pool
// jobs with whatever the training thread is running.
struct DataLoader::Prefetcher {
  Prefetcher(const Dataset& data, const std::vector<std::int64_t>& order,
             std::int64_t batch_size, std::int64_t depth)
      : data_(&data),
        order_(&order),
        batch_size_(static_cast<std::size_t>(batch_size)),
        depth_(static_cast<std::size_t>(depth)) {
    worker_ = std::thread([this] { run(); });
  }

  ~Prefetcher() { stop(); }

  bool pop(Sample& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || done_; });
    if (!queue_.empty()) {
      out = std::move(queue_.front());
      queue_.pop_front();
      queue_gauge().set(static_cast<std::int64_t>(queue_.size()));
      not_full_.notify_one();
      return true;
    }
    if (error_) std::rethrow_exception(error_);
    return false;
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cancel_ = true;
    }
    not_full_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

 private:
  void run() {
    try {
      for (std::size_t first = 0; first < order_->size();
           first += batch_size_) {
        {
          std::unique_lock<std::mutex> lock(mutex_);
          if (queue_.size() >= depth_ && !cancel_) {
            // Queue full: rendering is ahead of consumption, the
            // producer stalls until the training thread drains a batch.
            stall_counter().add(1);
            obs::Span stall("loader.prefetch_stall");
            not_full_.wait(lock,
                           [&] { return cancel_ || queue_.size() < depth_; });
          }
          if (cancel_) break;
        }
        const std::size_t count =
            std::min(batch_size_, order_->size() - first);
        Sample batch;
        {
          obs::Span span("loader.render",
                         static_cast<std::int64_t>(first / batch_size_));
          batch = data_->get_batch(*order_, first, count);
        }
        batches_counter().add(1);
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (cancel_) break;
          queue_.push_back(std::move(batch));
          queue_gauge().set(static_cast<std::int64_t>(queue_.size()));
        }
        not_empty_.notify_one();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    not_empty_.notify_all();
  }

  const Dataset* data_;
  const std::vector<std::int64_t>* order_;
  std::size_t batch_size_;
  std::size_t depth_;

  std::thread worker_;
  std::mutex mutex_;
  std::condition_variable not_full_;   // producer waits for queue space
  std::condition_variable not_empty_;  // consumer waits for a batch
  std::deque<Sample> queue_;
  bool done_ = false;
  bool cancel_ = false;
  std::exception_ptr error_;
};

DataLoader::DataLoader(const Dataset& data, DataLoaderConfig config)
    : data_(&data),
      config_(config),
      shuffle_rng_(config.shuffle_seed),
      n_(data.size()) {
  if (config_.batch_size <= 0) {
    throw std::invalid_argument("DataLoader: batch_size must be positive");
  }
  // Negative = unset: resolve through the process-wide runtime config.
  config_.prefetch = RuntimeConfig::resolve_prefetch(config_.prefetch);
  if (n_ <= 0) {
    throw std::invalid_argument("DataLoader: empty dataset");
  }
}

DataLoader::~DataLoader() = default;

std::int64_t DataLoader::num_batches() const noexcept {
  return (n_ + config_.batch_size - 1) / config_.batch_size;
}

void DataLoader::start_epoch() {
  prefetcher_.reset();  // joins the previous epoch's worker, if any
  if (order_.empty()) {
    order_.resize(static_cast<std::size_t>(n_));
    for (std::size_t i = 0; i < order_.size(); ++i) {
      order_[i] = static_cast<std::int64_t>(i);
    }
  }
  if (config_.shuffle) {
    std::vector<std::size_t> perm(order_.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    shuffle_rng_.shuffle(perm);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      order_[i] = static_cast<std::int64_t>(perm[i]);
    }
  }
  cursor_ = 0;
  epoch_active_ = true;
  if (config_.prefetch > 0) {
    prefetcher_ = std::make_unique<Prefetcher>(*data_, order_,
                                               config_.batch_size,
                                               config_.prefetch);
  }
}

bool DataLoader::next(Sample& batch) {
  if (!epoch_active_) {
    throw std::logic_error("DataLoader::next: no active epoch");
  }
  if (prefetcher_) {
    // A producer-side exception surfaces here (pop rethrows it once the
    // queue is drained). The epoch must close cleanly either way: leaving
    // prefetcher_/epoch_active_ set after a throw would make the next
    // next() call rethrow a stale error — or worse, report an active
    // epoch that has no live producer.
    bool more = false;
    try {
      more = prefetcher_->pop(batch);
    } catch (...) {
      prefetcher_.reset();
      epoch_active_ = false;
      throw;
    }
    if (more) return true;
    prefetcher_.reset();
    epoch_active_ = false;
    return false;
  }
  if (cursor_ >= order_.size()) {
    epoch_active_ = false;
    return false;
  }
  const std::size_t count =
      std::min(static_cast<std::size_t>(config_.batch_size),
               order_.size() - cursor_);
  {
    // Synchronous path: rendering happens on the consumer thread, so
    // the whole batch synthesis is visible as loader.render here.
    // Writing into the caller's batch (instead of returning a fresh
    // Sample) reuses its capacity — steady-state epochs over in-memory
    // or snapshot datasets allocate nothing.
    obs::Span span("loader.render",
                   static_cast<std::int64_t>(
                       cursor_ / static_cast<std::size_t>(config_.batch_size)));
    data_->get_batch_into(order_, cursor_, count, batch);
  }
  batches_counter().add(1);
  cursor_ += count;
  return true;
}

}  // namespace sne::nn
