// data_loader.h — batch-native sample delivery for the training loop.
// A DataLoader owns epoch shuffling and batch assembly over a Dataset,
// and (when the runtime prefetch depth is > 0) renders batches ahead of
// consumption on a background thread: batch k+1 is synthesized — through
// the dataset's possibly pool-parallel get_batch — while batch k trains.
//
// Determinism contract: the sequence of batches depends only on the
// dataset, batch size, and shuffle seed. Prefetch depth and thread count
// change *when* a batch is rendered, never *what* it contains (get(i) is
// deterministic in i and batches are handed out in epoch order), so
// training statistics are bitwise identical for any prefetch/thread
// configuration — asserted by data_loader_test.cpp.
//
// The prefetch depth is not a per-loader knob: every loader reads
// sne::RuntimeConfig::current().prefetch (env SNE_PREFETCH) once, at
// construction. The queue machinery itself lives in batch_pipeline.h and
// is shared with the alert-stream generator in src/stream.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/batch_pipeline.h"
#include "nn/dataset.h"
#include "tensor/rng.h"

namespace sne::nn {

struct DataLoaderConfig {
  std::int64_t batch_size = 32;
  /// Reshuffle the epoch order before each start_epoch(). The shuffle
  /// stream advances exactly one permutation per epoch, so epoch k's
  /// order is independent of how (or whether) earlier epochs were read.
  bool shuffle = false;
  std::uint64_t shuffle_seed = 1;
};

/// Iterates a dataset in batches, one epoch at a time:
///
///   DataLoader loader(data, {.batch_size = 16});
///   for (int e = 0; e < epochs; ++e) {
///     loader.start_epoch();
///     for (Sample batch; loader.next(batch);) consume(batch);
///   }
///
/// The final batch of an epoch is smaller when batch_size does not
/// divide the dataset (batch.x.extent(0) is the actual count). The
/// loader borrows the dataset, which must outlive it. A loader is not
/// itself thread-safe: one consumer thread drives start_epoch/next.
class DataLoader {
 public:
  DataLoader(const Dataset& data, DataLoaderConfig config);
  ~DataLoader();
  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  std::int64_t size() const noexcept { return n_; }
  std::int64_t num_batches() const noexcept;
  const DataLoaderConfig& config() const noexcept { return config_; }

  /// Prefetch depth this loader latched from RuntimeConfig::current()
  /// .prefetch at construction (0 = synchronous rendering).
  std::int64_t prefetch_depth() const noexcept { return prefetch_; }

  /// Begins a new epoch: draws the epoch order (advancing the shuffle
  /// stream when shuffling) and, with prefetch > 0, starts rendering
  /// batches on the background thread. Abandoning an unfinished epoch
  /// by calling start_epoch() again is safe.
  void start_epoch();

  /// Moves the next batch of the current epoch into `batch`; returns
  /// false when the epoch is exhausted. Rethrows any exception the
  /// renderer hit (closing the epoch either way). Requires a
  /// start_epoch() first.
  bool next(Sample& batch);

 private:
  const Dataset* data_;
  DataLoaderConfig config_;
  std::int64_t prefetch_ = 0;
  Rng shuffle_rng_;
  std::int64_t n_ = 0;
  std::vector<std::int64_t> order_;
  bool epoch_active_ = false;
  std::unique_ptr<BatchPipeline<Sample>> pipeline_;
};

}  // namespace sne::nn
