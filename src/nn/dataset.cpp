#include "nn/dataset.h"

#include <stdexcept>
#include <string>

#include "nn/data_loader.h"
#include "tensor/thread_pool.h"
#include "tensor/view.h"

namespace sne::nn {

namespace {

void check_batch_range(const std::vector<std::int64_t>& indices,
                       std::size_t first, std::size_t count) {
  if (count == 0 || first + count > indices.size()) {
    throw std::invalid_argument("get_batch: bad range");
  }
}

// Resizes the caller's batch tensors to a leading axis of `count` over
// the prototype sample shapes. Tensor::resize reuses capacity, so a warm
// batch buffer makes this allocation-free.
void resize_batch(Sample& out, const Shape& proto_x, const Shape& proto_y,
                  std::size_t count) {
  Shape x_shape = proto_x;
  Shape y_shape = proto_y;
  x_shape.insert(x_shape.begin(), static_cast<std::int64_t>(count));
  y_shape.insert(y_shape.begin(), static_cast<std::int64_t>(count));
  out.x.resize(x_shape);
  out.y.resize(y_shape);
}

std::string shape_string(const Shape& shape) {
  std::string out = "[";
  for (std::size_t a = 0; a < shape.size(); ++a) {
    if (a) out += ", ";
    out += std::to_string(shape[a]);
  }
  return out + "]";
}

// Full-shape ragged check: element counts alone would accept a
// transposed sample (e.g. [65, 65, 2] in a [2, 65, 65] batch).
void check_sample_shapes(const Sample& s, const Shape& x_shape,
                         const Shape& y_shape) {
  if (s.x.shape() != x_shape || s.y.shape() != y_shape) {
    throw std::runtime_error("get_batch: ragged sample shapes (" +
                             shape_string(s.x.shape()) + " vs batch row " +
                             shape_string(x_shape) + ")");
  }
}

// Writes the sample into batch row k through subviews: the row slice is
// reshaped back to the sample shape and the copy lands directly in the
// parent batch buffer (contiguous rows, so it is one memcpy per tensor).
void copy_into_row(Sample& batch, const Sample& s, std::size_t k) {
  const auto row = static_cast<std::int64_t>(k);
  batch.x.slice(0, row, row + 1).reshaped(s.x.shape()).copy_from(s.x);
  batch.y.slice(0, row, row + 1).reshaped(s.y.shape()).copy_from(s.y);
}

}  // namespace

void Dataset::get_batch_into(const std::vector<std::int64_t>& indices,
                             std::size_t first, std::size_t count,
                             Sample& out) const {
  check_batch_range(indices, first, count);
  Sample proto = get(indices[first]);
  const Shape x_shape = proto.x.shape();
  const Shape y_shape = proto.y.shape();
  resize_batch(out, x_shape, y_shape, count);
  for (std::size_t k = 0; k < count; ++k) {
    const Sample s = k == 0 ? std::move(proto) : get(indices[first + k]);
    check_sample_shapes(s, x_shape, y_shape);
    copy_into_row(out, s, k);
  }
}

Sample Dataset::get_batch(const std::vector<std::int64_t>& indices,
                          std::size_t first, std::size_t count) const {
  Sample batch;
  get_batch_into(indices, first, count, batch);
  return batch;
}

void VectorDataset::get_batch_into(const std::vector<std::int64_t>& indices,
                                   std::size_t first, std::size_t count,
                                   Sample& out) const {
  check_batch_range(indices, first, count);
  const Sample& proto = samples_.at(
      static_cast<std::size_t>(indices[first]));
  const Shape& x_shape = proto.x.shape();
  const Shape& y_shape = proto.y.shape();
  resize_batch(out, x_shape, y_shape, count);
  for (std::size_t k = 0; k < count; ++k) {
    const Sample& s = samples_.at(
        static_cast<std::size_t>(indices[first + k]));
    check_sample_shapes(s, x_shape, y_shape);
    copy_into_row(out, s, k);
  }
}

void LazyDataset::get_batch_into(const std::vector<std::int64_t>& indices,
                                 std::size_t first, std::size_t count,
                                 Sample& out) const {
  if (mode_ != BatchMode::Parallel || count < 2) {
    Dataset::get_batch_into(indices, first, count, out);
    return;
  }
  check_batch_range(indices, first, count);
  // Fan the generator across the pool (each sample is an independent,
  // deterministic render), then stack serially in index order — batches
  // are bitwise identical to the serial path for any thread count.
  std::vector<Sample> rendered(count);
  parallel_for(0, static_cast<std::int64_t>(count), [&](std::int64_t k) {
    rendered[static_cast<std::size_t>(k)] =
        generator_(indices[first + static_cast<std::size_t>(k)]);
  });
  const Shape& x_shape = rendered.front().x.shape();
  const Shape& y_shape = rendered.front().y.shape();
  resize_batch(out, x_shape, y_shape, count);
  for (std::size_t k = 0; k < count; ++k) {
    check_sample_shapes(rendered[k], x_shape, y_shape);
    copy_into_row(out, rendered[k], k);
  }
}

void SubsetDataset::get_batch_into(const std::vector<std::int64_t>& indices,
                                   std::size_t first, std::size_t count,
                                   Sample& out) const {
  check_batch_range(indices, first, count);
  std::vector<std::int64_t> remapped(count);
  for (std::size_t k = 0; k < count; ++k) {
    remapped[k] = indices_.at(
        static_cast<std::size_t>(indices[first + k]));
  }
  base_->get_batch_into(remapped, 0, count, out);
}

VectorDataset materialize(const Dataset& dataset) {
  const std::int64_t n = dataset.size();
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(n));
  if (n == 0) return VectorDataset(std::move(samples));

  // Chunks flow through a prefetching loader: datasets with a parallel
  // get_batch synthesize chunk k+1 on the pool while chunk k is split
  // into per-sample rows here.
  DataLoaderConfig cfg;
  cfg.batch_size = 64;
  cfg.shuffle = false;
  DataLoader loader(dataset, cfg);
  loader.start_epoch();
  Sample chunk;
  while (loader.next(chunk)) {
    const std::int64_t count = chunk.x.extent(0);
    Shape x_shape(chunk.x.shape().begin() + 1, chunk.x.shape().end());
    Shape y_shape(chunk.y.shape().begin() + 1, chunk.y.shape().end());
    for (std::int64_t k = 0; k < count; ++k) {
      samples.push_back(Sample{
          chunk.x.slice(0, k, k + 1).reshaped(x_shape).to_tensor(),
          chunk.y.slice(0, k, k + 1).reshaped(y_shape).to_tensor()});
    }
  }
  return VectorDataset(std::move(samples));
}

Sample make_batch(const Dataset& dataset,
                  const std::vector<std::int64_t>& indices, std::size_t first,
                  std::size_t count) {
  return dataset.get_batch(indices, first, count);
}

SplitIndices split_indices(std::int64_t n, double train_fraction,
                           double val_fraction, Rng& rng) {
  if (n <= 0) throw std::invalid_argument("split_indices: empty dataset");
  if (train_fraction < 0 || val_fraction < 0 ||
      train_fraction + val_fraction > 1.0) {
    throw std::invalid_argument("split_indices: bad fractions");
  }
  std::vector<std::size_t> perm(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);

  const auto n_train = static_cast<std::size_t>(
      static_cast<double>(n) * train_fraction);
  const auto n_val =
      static_cast<std::size_t>(static_cast<double>(n) * val_fraction);

  SplitIndices out;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto idx = static_cast<std::int64_t>(perm[i]);
    if (i < n_train) {
      out.train.push_back(idx);
    } else if (i < n_train + n_val) {
      out.val.push_back(idx);
    } else {
      out.test.push_back(idx);
    }
  }
  return out;
}

}  // namespace sne::nn
