#include "nn/dataset.h"

#include <stdexcept>

namespace sne::nn {

VectorDataset materialize(const Dataset& dataset) {
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(dataset.size()));
  for (std::int64_t i = 0; i < dataset.size(); ++i) {
    samples.push_back(dataset.get(i));
  }
  return VectorDataset(std::move(samples));
}

Sample make_batch(const Dataset& dataset,
                  const std::vector<std::int64_t>& indices, std::size_t first,
                  std::size_t count) {
  if (count == 0 || first + count > indices.size()) {
    throw std::invalid_argument("make_batch: bad range");
  }
  Sample proto = dataset.get(indices[first]);

  Shape x_shape = proto.x.shape();
  Shape y_shape = proto.y.shape();
  x_shape.insert(x_shape.begin(), static_cast<std::int64_t>(count));
  y_shape.insert(y_shape.begin(), static_cast<std::int64_t>(count));

  Sample batch{Tensor(std::move(x_shape)), Tensor(std::move(y_shape))};
  const std::int64_t x_stride = proto.x.size();
  const std::int64_t y_stride = proto.y.size();

  for (std::size_t k = 0; k < count; ++k) {
    const Sample s =
        k == 0 ? std::move(proto) : dataset.get(indices[first + k]);
    if (s.x.size() != x_stride || s.y.size() != y_stride) {
      throw std::runtime_error("make_batch: ragged sample shapes");
    }
    std::copy(s.x.data(), s.x.data() + x_stride,
              batch.x.data() + static_cast<std::int64_t>(k) * x_stride);
    std::copy(s.y.data(), s.y.data() + y_stride,
              batch.y.data() + static_cast<std::int64_t>(k) * y_stride);
  }
  return batch;
}

SplitIndices split_indices(std::int64_t n, double train_fraction,
                           double val_fraction, Rng& rng) {
  if (n <= 0) throw std::invalid_argument("split_indices: empty dataset");
  if (train_fraction < 0 || val_fraction < 0 ||
      train_fraction + val_fraction > 1.0) {
    throw std::invalid_argument("split_indices: bad fractions");
  }
  std::vector<std::size_t> perm(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);

  const auto n_train = static_cast<std::size_t>(
      static_cast<double>(n) * train_fraction);
  const auto n_val =
      static_cast<std::size_t>(static_cast<double>(n) * val_fraction);

  SplitIndices out;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto idx = static_cast<std::int64_t>(perm[i]);
    if (i < n_train) {
      out.train.push_back(idx);
    } else if (i < n_train + n_val) {
      out.val.push_back(idx);
    } else {
      out.test.push_back(idx);
    }
  }
  return out;
}

}  // namespace sne::nn
