// dataset.h — supervised dataset abstraction and batching. Datasets are
// index-addressable and stateless so that the simulator can render samples
// lazily (images are regenerated on demand from compact parameters instead
// of being held in memory).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sne::nn {

/// One supervised example.
struct Sample {
  Tensor x;
  Tensor y;
};

/// Index-addressable dataset. get(i) must be deterministic in i.
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual std::int64_t size() const = 0;
  virtual Sample get(std::int64_t index) const = 0;
};

/// In-memory dataset over pre-materialized samples.
class VectorDataset final : public Dataset {
 public:
  explicit VectorDataset(std::vector<Sample> samples)
      : samples_(std::move(samples)) {}

  std::int64_t size() const override {
    return static_cast<std::int64_t>(samples_.size());
  }
  Sample get(std::int64_t index) const override {
    return samples_.at(static_cast<std::size_t>(index));
  }

 private:
  std::vector<Sample> samples_;
};

/// Dataset computed on the fly from a generator function.
class LazyDataset final : public Dataset {
 public:
  LazyDataset(std::int64_t n, std::function<Sample(std::int64_t)> generator)
      : n_(n), generator_(std::move(generator)) {}

  std::int64_t size() const override { return n_; }
  Sample get(std::int64_t index) const override { return generator_(index); }

 private:
  std::int64_t n_;
  std::function<Sample(std::int64_t)> generator_;
};

/// View of a subset of another dataset (used for train/val/test splits).
class SubsetDataset final : public Dataset {
 public:
  SubsetDataset(const Dataset& base, std::vector<std::int64_t> indices)
      : base_(&base), indices_(std::move(indices)) {}

  std::int64_t size() const override {
    return static_cast<std::int64_t>(indices_.size());
  }
  Sample get(std::int64_t index) const override {
    return base_->get(indices_.at(static_cast<std::size_t>(index)));
  }

 private:
  const Dataset* base_;
  std::vector<std::int64_t> indices_;
};

/// Evaluates every sample of a dataset once and stores the results in
/// memory. Worth it for small-footprint samples (feature vectors, flux
/// sequences) that are consumed over many epochs; image datasets should
/// stay lazy.
VectorDataset materialize(const Dataset& dataset);

/// Stacks samples dataset[indices[first..first+count)] into batch tensors:
/// x gains a leading batch axis, y likewise.
Sample make_batch(const Dataset& dataset,
                  const std::vector<std::int64_t>& indices, std::size_t first,
                  std::size_t count);

/// Deterministic shuffled index split into train/val/test by fractions
/// (paper: 80/10/10). Fractions must sum to ≤ 1; remainder goes to test.
struct SplitIndices {
  std::vector<std::int64_t> train;
  std::vector<std::int64_t> val;
  std::vector<std::int64_t> test;
};
SplitIndices split_indices(std::int64_t n, double train_fraction,
                           double val_fraction, Rng& rng);

}  // namespace sne::nn
