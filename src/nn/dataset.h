// dataset.h — supervised dataset abstraction and batching. Datasets are
// index-addressable and stateless so that the simulator can render samples
// lazily (images are regenerated on demand from compact parameters instead
// of being held in memory).
//
// Batching is a first-class dataset operation: get_batch(indices, first,
// count) stacks a run of samples into batch tensors, and datasets whose
// per-sample work is thread-safe (the simulator factories) override it to
// fan sample synthesis across the shared sne::ThreadPool. Batches are
// bitwise identical for any thread count because get(i) is deterministic
// in i and stacking always happens in index order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sne::nn {

/// One supervised example.
struct Sample {
  Tensor x;
  Tensor y;
};

/// Whether a dataset's get_batch may evaluate samples concurrently on the
/// shared thread pool. Parallel requires the per-sample path to be
/// thread-safe (no mutable shared state between get(i) calls).
enum class BatchMode { Serial, Parallel };

/// Index-addressable dataset. get(i) must be deterministic in i.
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual std::int64_t size() const = 0;
  virtual Sample get(std::int64_t index) const = 0;

  /// Stacks samples dataset[indices[first..first+count)] into the
  /// caller-provided batch tensors: out.x gains a leading batch axis, y
  /// likewise. `out` is resized (capacity is reused, so a warm buffer
  /// makes steady-state batching allocation-free for in-memory datasets)
  /// and every sample is written directly into its batch row through a
  /// subview — no intermediate stacking copy. The default evaluates
  /// get() serially in index order; overrides may synthesize samples
  /// concurrently but must produce bitwise-identical batches. Throws if
  /// any sample's x or y shape differs from the first one's.
  virtual void get_batch_into(const std::vector<std::int64_t>& indices,
                              std::size_t first, std::size_t count,
                              Sample& out) const;

  /// Allocating convenience wrapper over get_batch_into.
  Sample get_batch(const std::vector<std::int64_t>& indices,
                   std::size_t first, std::size_t count) const;
};

/// In-memory dataset over pre-materialized samples.
class VectorDataset final : public Dataset {
 public:
  explicit VectorDataset(std::vector<Sample> samples)
      : samples_(std::move(samples)) {}

  std::int64_t size() const override {
    return static_cast<std::int64_t>(samples_.size());
  }
  Sample get(std::int64_t index) const override {
    return samples_.at(static_cast<std::size_t>(index));
  }
  /// Stacks straight from the stored samples (no per-sample Tensor copy
  /// through get()).
  void get_batch_into(const std::vector<std::int64_t>& indices,
                      std::size_t first, std::size_t count,
                      Sample& out) const override;

 private:
  std::vector<Sample> samples_;
};

/// Dataset computed on the fly from a generator function. Constructed
/// with BatchMode::Parallel, get_batch fans generator calls across the
/// shared thread pool — the mode every simulator-backed factory uses,
/// since their generators only touch the stateless lazy renderers.
class LazyDataset final : public Dataset {
 public:
  LazyDataset(std::int64_t n, std::function<Sample(std::int64_t)> generator,
              BatchMode mode = BatchMode::Serial)
      : n_(n), generator_(std::move(generator)), mode_(mode) {}

  std::int64_t size() const override { return n_; }
  Sample get(std::int64_t index) const override { return generator_(index); }
  void get_batch_into(const std::vector<std::int64_t>& indices,
                      std::size_t first, std::size_t count,
                      Sample& out) const override;
  BatchMode batch_mode() const noexcept { return mode_; }

 private:
  std::int64_t n_;
  std::function<Sample(std::int64_t)> generator_;
  BatchMode mode_ = BatchMode::Serial;
};

/// View of a subset of another dataset (used for train/val/test splits).
class SubsetDataset final : public Dataset {
 public:
  SubsetDataset(const Dataset& base, std::vector<std::int64_t> indices)
      : base_(&base), indices_(std::move(indices)) {}

  std::int64_t size() const override {
    return static_cast<std::int64_t>(indices_.size());
  }
  Sample get(std::int64_t index) const override {
    return base_->get(indices_.at(static_cast<std::size_t>(index)));
  }
  /// Remaps the index run and delegates to the base dataset, so a subset
  /// of a batch-parallel dataset stays batch-parallel.
  void get_batch_into(const std::vector<std::int64_t>& indices,
                      std::size_t first, std::size_t count,
                      Sample& out) const override;

 private:
  const Dataset* base_;
  std::vector<std::int64_t> indices_;
};

/// Evaluates every sample of a dataset once and stores the results in
/// memory. Batches flow through a prefetching DataLoader, so datasets
/// with a parallel get_batch materialize on the shared pool while the
/// stored copies are written. Worth it for small-footprint samples
/// (feature vectors, flux sequences) that are consumed over many epochs;
/// image datasets should stay lazy.
VectorDataset materialize(const Dataset& dataset);

/// Backwards-compatible wrapper over Dataset::get_batch.
Sample make_batch(const Dataset& dataset,
                  const std::vector<std::int64_t>& indices, std::size_t first,
                  std::size_t count);

/// Deterministic shuffled index split into train/val/test by fractions
/// (paper: 80/10/10). Fractions must sum to ≤ 1; remainder goes to test.
struct SplitIndices {
  std::vector<std::int64_t> train;
  std::vector<std::int64_t> val;
  std::vector<std::int64_t> test;
};
SplitIndices split_indices(std::int64_t n, double train_fraction,
                           double val_fraction, Rng& rng);

}  // namespace sne::nn
