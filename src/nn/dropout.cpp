#include "nn/dropout.h"

#include <algorithm>
#include <stdexcept>

namespace sne::nn {

Dropout::Dropout(float probability, std::uint64_t seed)
    : p_(probability), rng_(seed) {
  if (probability < 0.0f || probability >= 1.0f) {
    throw std::invalid_argument("Dropout: probability must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training_ || p_ == 0.0f) {
    cached_mask_ = Tensor();  // identity; backward passes grads through
    return x;
  }
  const float keep_scale = 1.0f / (1.0f - p_);
  cached_mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const float m = rng_.bernoulli(p_) ? 0.0f : keep_scale;
    cached_mask_[i] = m;
    y[i] = x[i] * m;
  }
  return y;
}

void Dropout::infer_into(ConstTensorView x, Tensor& out) const {
  // Inference is always the identity, regardless of the training flag.
  out.resize(x.shape());
  std::copy(x.data(), x.data() + x.size(), out.data());
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (cached_mask_.empty()) return grad_output;  // identity pass
  check_same_shape(grad_output, cached_mask_, "Dropout::backward");
  Tensor grad_input = grad_output;
  grad_input *= cached_mask_;
  return grad_input;
}

}  // namespace sne::nn
