// dropout.h — inverted dropout. Not part of the paper's architecture
// (batch norm does the regularization there), but standard equipment for
// a training library of this era and used by the regularization ablation.
#pragma once

#include "nn/module.h"
#include "tensor/rng.h"

namespace sne::nn {

/// Inverted dropout: during training each activation is zeroed with
/// probability p and survivors are scaled by 1/(1−p); inference is the
/// identity. The mask sequence is driven by an internal seeded RNG, so
/// training remains reproducible.
class Dropout final : public Module {
 public:
  explicit Dropout(float probability, std::uint64_t seed = 77);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;

  float probability() const noexcept { return p_; }

 private:
  float p_;
  Rng rng_;
  Tensor cached_mask_;  ///< scale factors applied in the last forward
};

}  // namespace sne::nn
