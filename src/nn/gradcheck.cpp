#include "nn/gradcheck.h"

#include <cmath>

namespace sne::nn {

namespace {

double probe_dot(const Tensor& output, const Tensor& probe) {
  double s = 0.0;
  for (std::int64_t i = 0; i < output.size(); ++i) {
    s += static_cast<double>(output[i]) * probe[i];
  }
  return s;
}

void update_worst(GradCheckResult& result, float analytic, float numeric,
                  const std::string& where, float tolerance) {
  const float abs_err = std::abs(analytic - numeric);
  const float denom = std::max({std::abs(analytic), std::abs(numeric), 1.0f});
  const float rel_err = abs_err / denom;
  if (rel_err > result.max_rel_error) {
    result.max_rel_error = rel_err;
    result.worst_param = where;
  }
  result.max_abs_error = std::max(result.max_abs_error, abs_err);
  if (rel_err > tolerance) result.passed = false;
}

}  // namespace

GradCheckResult check_gradients(Module& module, const Tensor& x, Rng& rng,
                                float eps, float tolerance) {
  GradCheckResult result;

  // Fix training mode off so stochastic-statistics layers (batch norm)
  // still participate, but with batch statistics recomputed identically
  // across the perturbed evaluations. We keep training mode ON because
  // inference-mode batch norm has a simpler (diagonal) Jacobian that would
  // not exercise the interesting code path.
  module.set_training(true);

  Tensor base_out = module.forward(x);
  Tensor probe = Tensor::randn(base_out.shape(), rng);

  // Analytic gradients.
  module.zero_grad();
  Tensor grad_in = module.backward(probe);

  // A fresh forward for every perturbation: f(θ+ε) and f(θ−ε).
  auto scalar_at = [&](void) -> double {
    return probe_dot(module.forward(x), probe);
  };

  // Input gradient.
  Tensor x_mut = x;
  for (std::int64_t i = 0; i < x_mut.size(); ++i) {
    const float saved = x_mut[i];
    x_mut[i] = saved + eps;
    const double up = probe_dot(module.forward(x_mut), probe);
    x_mut[i] = saved - eps;
    const double down = probe_dot(module.forward(x_mut), probe);
    x_mut[i] = saved;
    const auto numeric = static_cast<float>((up - down) / (2.0 * eps));
    update_worst(result, grad_in[i], numeric, "<input>", tolerance);
  }

  // Parameter gradients.
  for (Param* p : module.params()) {
    for (std::int64_t i = 0; i < p->value.size(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double up = scalar_at();
      p->value[i] = saved - eps;
      const double down = scalar_at();
      p->value[i] = saved;
      const auto numeric = static_cast<float>((up - down) / (2.0 * eps));
      update_worst(result, p->grad[i], numeric, p->name, tolerance);
    }
  }

  // Leave the module caches consistent with the unperturbed input.
  module.forward(x);
  return result;
}

}  // namespace sne::nn
