// gradcheck.h — finite-difference gradient verification. Every layer's
// hand-written backward pass is validated against central differences in
// the test suite; this is the safety net that lets the library skip a
// general autograd.
#pragma once

#include <functional>
#include <string>

#include "nn/module.h"

namespace sne::nn {

struct GradCheckResult {
  bool passed = true;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  std::string worst_param;  ///< "<input>" for the input gradient
};

/// Checks d(sum of outputs·probe)/d(input and params) of `module` at input
/// `x` against central finite differences with step `eps`.
/// A random probe vector converts the vector-valued output into a scalar so
/// a single backward pass covers the full Jacobian action.
GradCheckResult check_gradients(Module& module, const Tensor& x, Rng& rng,
                                float eps = 1e-3f, float tolerance = 2e-2f);

}  // namespace sne::nn
