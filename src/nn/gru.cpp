#include "nn/gru.h"

#include <cmath>
#include <stdexcept>

#include "tensor/gemm.h"

namespace sne::nn {

namespace {

Tensor glorot(std::int64_t rows, std::int64_t cols, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return Tensor::rand_uniform({rows, cols}, rng, -bound, bound);
}

void sigmoid_inplace(Tensor& t) {
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = 1.0f / (1.0f + std::exp(-t[i]));
  }
}

void tanh_inplace(Tensor& t) {
  for (std::int64_t i = 0; i < t.size(); ++i) t[i] = std::tanh(t[i]);
}

void add_bias(Tensor& t, const Tensor& bias) {
  const std::int64_t n = t.extent(0);
  const std::int64_t f = t.extent(1);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = t.data() + i * f;
    for (std::int64_t j = 0; j < f; ++j) row[j] += bias[j];
  }
}

// dW[H,in] += gᵀ[H,N] · x[N,in];  db[H] += column sums of g.
void accumulate_affine_grads(const Tensor& g, const Tensor& x, Param& w,
                             Param& b) {
  sgemm_at(w.value.extent(0), w.value.extent(1), g.extent(0), 1.0f, g.data(),
           x.data(), 1.0f, w.grad.data());
  const std::int64_t n = g.extent(0);
  const std::int64_t h = g.extent(1);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = g.data() + i * h;
    for (std::int64_t j = 0; j < h; ++j) b.grad[j] += row[j];
  }
}

// out[N,in] += g[N,H] · W[H,in]
void backprop_affine_input(const Tensor& g, const Param& w, Tensor& out) {
  Tensor tmp({g.extent(0), w.value.extent(1)});
  sgemm(g.extent(0), w.value.extent(1), g.extent(1), 1.0f, g.data(),
        w.value.data(), 0.0f, tmp.data());
  out += tmp;
}

}  // namespace

Gru::Gru(std::int64_t input_size, std::int64_t hidden_size, Rng& rng,
         std::string name)
    : input_(input_size),
      hidden_(hidden_size),
      wz_(name + ".wz", glorot(hidden_size, input_size, rng)),
      uz_(name + ".uz", glorot(hidden_size, hidden_size, rng)),
      bz_(name + ".bz", Tensor({hidden_size})),
      wr_(name + ".wr", glorot(hidden_size, input_size, rng)),
      ur_(name + ".ur", glorot(hidden_size, hidden_size, rng)),
      br_(name + ".br", Tensor({hidden_size})),
      wn_(name + ".wn", glorot(hidden_size, input_size, rng)),
      un_(name + ".un", glorot(hidden_size, hidden_size, rng)),
      bn_(name + ".bn", Tensor({hidden_size})) {
  if (input_size <= 0 || hidden_size <= 0) {
    throw std::invalid_argument("Gru: sizes must be positive");
  }
}

void Gru::affine(const Tensor& x, const Param& w, Tensor& y) {
  sgemm_bt(x.extent(0), w.value.extent(0), x.extent(1), 1.0f, x.data(),
           w.value.data(), 1.0f, y.data());
}

Tensor Gru::forward(const Tensor& x) {
  if (x.rank() != 3 || x.extent(2) != input_) {
    throw std::invalid_argument("Gru::forward: expected [N, T, " +
                                std::to_string(input_) + "], got " +
                                x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t steps = x.extent(1);

  cached_x_.clear();
  cached_h_prev_.clear();
  cached_z_.clear();
  cached_r_.clear();
  cached_n_.clear();

  Tensor h({n, hidden_});
  for (std::int64_t t = 0; t < steps; ++t) {
    // Slice x_t out of the [N, T, D] batch.
    Tensor xt({n, input_});
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + (i * steps + t) * input_;
      std::copy(src, src + input_, xt.data() + i * input_);
    }

    Tensor z({n, hidden_});
    affine(xt, wz_, z);
    affine(h, uz_, z);
    add_bias(z, bz_.value);
    sigmoid_inplace(z);

    Tensor r({n, hidden_});
    affine(xt, wr_, r);
    affine(h, ur_, r);
    add_bias(r, br_.value);
    sigmoid_inplace(r);

    Tensor rh = r;
    rh *= h;
    Tensor ncand({n, hidden_});
    affine(xt, wn_, ncand);
    affine(rh, un_, ncand);
    add_bias(ncand, bn_.value);
    tanh_inplace(ncand);

    cached_x_.push_back(std::move(xt));
    cached_h_prev_.push_back(h);
    cached_z_.push_back(z);
    cached_r_.push_back(r);
    cached_n_.push_back(ncand);

    Tensor h_new({n, hidden_});
    const Tensor& zc = cached_z_.back();
    const Tensor& nc = cached_n_.back();
    for (std::int64_t i = 0; i < h_new.size(); ++i) {
      h_new[i] = (1.0f - zc[i]) * nc[i] + zc[i] * h[i];
    }
    h = std::move(h_new);
  }
  return h;
}

void Gru::infer_into(ConstTensorView x, Tensor& out) const {
  if (x.rank() != 3 || x.extent(2) != input_) {
    throw std::invalid_argument("Gru::infer_into: expected [N, T, " +
                                std::to_string(input_) + "], got " +
                                x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t steps = x.extent(1);

  // Per-thread, grow-only scratch: one tensor per recurrence quantity
  // instead of the per-timestep cache vectors the training path keeps.
  thread_local Tensor xt, z, r, rh, ncand;
  xt.resize({n, input_});
  z.resize({n, hidden_});
  r.resize({n, hidden_});
  rh.resize({n, hidden_});
  ncand.resize({n, hidden_});

  out.resize({n, hidden_});
  out.zero();  // h_0 = 0
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + (i * steps + t) * input_;
      std::copy(src, src + input_, xt.data() + i * input_);
    }

    z.zero();
    affine(xt, wz_, z);
    affine(out, uz_, z);
    add_bias(z, bz_.value);
    sigmoid_inplace(z);

    r.zero();
    affine(xt, wr_, r);
    affine(out, ur_, r);
    add_bias(r, br_.value);
    sigmoid_inplace(r);

    std::copy(r.data(), r.data() + r.size(), rh.data());
    rh *= out;
    ncand.zero();
    affine(xt, wn_, ncand);
    affine(rh, un_, ncand);
    add_bias(ncand, bn_.value);
    tanh_inplace(ncand);

    // h_t = (1 − z) ⊙ ñ + z ⊙ h_{t−1}, updated in place.
    for (std::int64_t i = 0; i < out.size(); ++i) {
      out[i] = (1.0f - z[i]) * ncand[i] + z[i] * out[i];
    }
  }
}

Shape Gru::infer_shape(const Shape& in) const {
  if (in.size() != 3 || in[2] != input_) {
    throw std::invalid_argument("Gru::infer_shape: bad input shape");
  }
  return {in[0], hidden_};
}

Tensor Gru::backward(const Tensor& grad_output) {
  if (cached_x_.empty()) {
    throw std::logic_error("Gru::backward before forward");
  }
  const auto steps = static_cast<std::int64_t>(cached_x_.size());
  const std::int64_t n = cached_x_[0].extent(0);
  if (grad_output.rank() != 2 || grad_output.extent(0) != n ||
      grad_output.extent(1) != hidden_) {
    throw std::invalid_argument("Gru::backward: bad grad shape " +
                                grad_output.shape_string());
  }

  Tensor grad_x({n, steps, input_});
  Tensor gh = grad_output;

  for (std::int64_t t = steps - 1; t >= 0; --t) {
    const Tensor& xt = cached_x_[static_cast<std::size_t>(t)];
    const Tensor& h_prev = cached_h_prev_[static_cast<std::size_t>(t)];
    const Tensor& z = cached_z_[static_cast<std::size_t>(t)];
    const Tensor& r = cached_r_[static_cast<std::size_t>(t)];
    const Tensor& nc = cached_n_[static_cast<std::size_t>(t)];

    Tensor dz_pre({n, hidden_});
    Tensor dn_pre({n, hidden_});
    Tensor gh_prev({n, hidden_});
    for (std::int64_t i = 0; i < gh.size(); ++i) {
      const float g = gh[i];
      dz_pre[i] = g * (h_prev[i] - nc[i]) * z[i] * (1.0f - z[i]);
      dn_pre[i] = g * (1.0f - z[i]) * (1.0f - nc[i] * nc[i]);
      gh_prev[i] = g * z[i];
    }

    // Candidate branch: ñ = tanh(Wn·x + Un·(r ⊙ h_prev) + bn).
    Tensor rh = r;
    rh *= h_prev;
    accumulate_affine_grads(dn_pre, xt, wn_, bn_);
    // dUn += dn_preᵀ · rh done inside a second accumulate (weight matrix Un):
    sgemm_at(hidden_, hidden_, n, 1.0f, dn_pre.data(), rh.data(), 1.0f,
             un_.grad.data());
    // d(rh)[N,H] = dn_pre · Un
    Tensor d_rh({n, hidden_});
    sgemm(n, hidden_, hidden_, 1.0f, dn_pre.data(), un_.value.data(), 0.0f,
          d_rh.data());
    Tensor dr_pre({n, hidden_});
    for (std::int64_t i = 0; i < d_rh.size(); ++i) {
      gh_prev[i] += d_rh[i] * r[i];
      dr_pre[i] = d_rh[i] * h_prev[i] * r[i] * (1.0f - r[i]);
    }

    // Update and reset gates.
    accumulate_affine_grads(dz_pre, xt, wz_, bz_);
    sgemm_at(hidden_, hidden_, n, 1.0f, dz_pre.data(), h_prev.data(), 1.0f,
             uz_.grad.data());
    backprop_affine_input(dz_pre, uz_, gh_prev);

    accumulate_affine_grads(dr_pre, xt, wr_, br_);
    sgemm_at(hidden_, hidden_, n, 1.0f, dr_pre.data(), h_prev.data(), 1.0f,
             ur_.grad.data());
    backprop_affine_input(dr_pre, ur_, gh_prev);

    // Input gradient for this timestep.
    Tensor dxt({n, input_});
    sgemm(n, input_, hidden_, 1.0f, dz_pre.data(), wz_.value.data(), 0.0f,
          dxt.data());
    sgemm(n, input_, hidden_, 1.0f, dr_pre.data(), wr_.value.data(), 1.0f,
          dxt.data());
    sgemm(n, input_, hidden_, 1.0f, dn_pre.data(), wn_.value.data(), 1.0f,
          dxt.data());
    for (std::int64_t i = 0; i < n; ++i) {
      float* dst = grad_x.data() + (i * steps + t) * input_;
      const float* src = dxt.data() + i * input_;
      std::copy(src, src + input_, dst);
    }

    gh = std::move(gh_prev);
  }
  return grad_x;
}

std::vector<Param*> Gru::params() {
  return {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wn_, &un_, &bn_};
}

std::vector<const Param*> Gru::params() const {
  return {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wn_, &un_, &bn_};
}

}  // namespace sne::nn
