// gru.h — gated recurrent unit over flux time series. This powers the
// re-implemented Charnock & Moss (2016) baseline, which classifies
// supernovae from multi-epoch photometry with a recurrent network; it is
// the strongest multi-epoch comparator row of the paper's Table 2.
#pragma once

#include "nn/module.h"
#include "tensor/rng.h"

namespace sne::nn {

/// GRU processing a batch of sequences [N, T, D] and returning the final
/// hidden state [N, H]. Backward implements full backpropagation through
/// time and is finite-difference checked in tests.
///
///   z_t = σ(W_z·x_t + U_z·h_{t−1} + b_z)
///   r_t = σ(W_r·x_t + U_r·h_{t−1} + b_r)
///   ñ_t = tanh(W_n·x_t + U_n·(r_t ⊙ h_{t−1}) + b_n)
///   h_t = (1 − z_t) ⊙ ñ_t + z_t ⊙ h_{t−1}
class Gru final : public Module {
 public:
  Gru(std::int64_t input_size, std::int64_t hidden_size, Rng& rng,
      std::string name = "gru");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;
  std::vector<Param*> params() override;
  std::vector<const Param*> params() const override;

  std::int64_t hidden_size() const noexcept { return hidden_; }

 private:
  /// y[N,H] (+)= x[N,D] · Wᵀ; W is [H, D].
  static void affine(const Tensor& x, const Param& w, Tensor& y);

  std::int64_t input_;
  std::int64_t hidden_;
  Param wz_, uz_, bz_;
  Param wr_, ur_, br_;
  Param wn_, un_, bn_;

  // Per-timestep caches (index 0..T-1).
  std::vector<Tensor> cached_x_;       // [N, D]
  std::vector<Tensor> cached_h_prev_;  // [N, H]
  std::vector<Tensor> cached_z_;
  std::vector<Tensor> cached_r_;
  std::vector<Tensor> cached_n_;
};

}  // namespace sne::nn
