#include "nn/highway.h"

#include <cmath>
#include <stdexcept>

namespace sne::nn {

Highway::Highway(std::int64_t features, Rng& rng, float gate_bias_init,
                 std::string name)
    : transform_(features, features, rng, name + ".transform"),
      gate_(features, features, rng, name + ".gate") {
  gate_.bias().value.fill(gate_bias_init);
}

Tensor Highway::forward(const Tensor& x) {
  cached_input_ = x;

  Tensor h = transform_.forward(x);
  for (std::int64_t i = 0; i < h.size(); ++i) h[i] = std::tanh(h[i]);
  cached_h_ = h;

  Tensor t = gate_.forward(x);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = 1.0f / (1.0f + std::exp(-t[i]));
  }
  cached_t_ = t;

  Tensor y(x.shape());
  for (std::int64_t i = 0; i < y.size(); ++i) {
    y[i] = t[i] * h[i] + (1.0f - t[i]) * x[i];
  }
  return y;
}

Tensor Highway::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Highway::backward before forward");
  }
  check_same_shape(grad_output, cached_input_, "Highway::backward");

  // Pre-activation gradients for the two branches.
  Tensor grad_h_pre(grad_output.shape());
  Tensor grad_t_pre(grad_output.shape());
  Tensor grad_x(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.size(); ++i) {
    const float gy = grad_output[i];
    const float h = cached_h_[i];
    const float t = cached_t_[i];
    const float x = cached_input_[i];
    grad_h_pre[i] = gy * t * (1.0f - h * h);          // through tanh
    grad_t_pre[i] = gy * (h - x) * t * (1.0f - t);    // through sigmoid
    grad_x[i] = gy * (1.0f - t);                      // carry gate
  }
  grad_x += transform_.backward(grad_h_pre);
  grad_x += gate_.backward(grad_t_pre);
  return grad_x;
}

void Highway::infer_into(ConstTensorView x, Tensor& out) const {
  // Per-thread scratch for the two branch activations; grow-only, so the
  // steady state allocates nothing.
  thread_local Tensor h;
  thread_local Tensor t;
  transform_.infer_into(x, h);
  gate_.infer_into(x, t);
  for (std::int64_t i = 0; i < h.size(); ++i) h[i] = std::tanh(h[i]);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = 1.0f / (1.0f + std::exp(-t[i]));
  }
  out.resize(x.shape());
  for (std::int64_t i = 0; i < out.size(); ++i) {
    out[i] = t[i] * h[i] + (1.0f - t[i]) * x[i];
  }
}

std::vector<Param*> Highway::params() {
  std::vector<Param*> out = transform_.params();
  for (Param* p : gate_.params()) out.push_back(p);
  return out;
}

std::vector<const Param*> Highway::params() const {
  std::vector<const Param*> out = transform_.params();
  for (const Param* p : gate_.params()) out.push_back(p);
  return out;
}

void Highway::set_training(bool training) {
  Module::set_training(training);
  transform_.set_training(training);
  gate_.set_training(training);
}

}  // namespace sne::nn
