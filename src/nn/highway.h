// highway.h — highway network layer (Srivastava et al. 2015, ref. [17]).
// The paper's light-curve classifier is FC → 2 highway layers → FC; the
// gated shortcut lets the shallow network behave near-identity early in
// training, which is what makes the joint fine-tuning stable.
#pragma once

#include "nn/linear.h"
#include "nn/module.h"

namespace sne::nn {

/// y = t ⊙ g(W_h·x + b_h) + (1 − t) ⊙ x,  t = σ(W_t·x + b_t)
/// with g = tanh. Input and output are both [N, features]. The transform
/// gate bias starts negative (default −1) so the layer initially passes
/// its input through, as recommended by the original paper.
class Highway final : public Module {
 public:
  Highway(std::int64_t features, Rng& rng, float gate_bias_init = -1.0f,
          std::string name = "highway");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  std::vector<Param*> params() override;
  std::vector<const Param*> params() const override;
  void set_training(bool training) override;

  const Linear& transform() const noexcept { return transform_; }
  const Linear& gate() const noexcept { return gate_; }

 private:
  Linear transform_;  // W_h, b_h
  Linear gate_;       // W_t, b_t
  Tensor cached_input_;
  Tensor cached_h_;  // tanh(W_h x + b_h)
  Tensor cached_t_;  // σ(W_t x + b_t)
};

}  // namespace sne::nn
