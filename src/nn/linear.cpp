#include "nn/linear.h"

#include <cmath>
#include <stdexcept>

#include "tensor/gemm.h"

namespace sne::nn {

namespace {

Tensor kaiming_uniform(std::int64_t out, std::int64_t in, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in));
  return Tensor::rand_uniform({out, in}, rng, -bound, bound);
}

}  // namespace

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               std::string name)
    : in_(in_features),
      out_(out_features),
      weight_(name + ".weight", kaiming_uniform(out_features, in_features, rng)),
      bias_(name + ".bias", Tensor({out_features})) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: feature counts must be positive");
  }
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.extent(1) != in_) {
    throw std::invalid_argument("Linear::forward: expected [N, " +
                                std::to_string(in_) + "], got " +
                                x.shape_string());
  }
  cached_input_ = x;
  const std::int64_t n = x.extent(0);
  Tensor y({n, out_});
  // y = x[N,in] · Wᵀ (W is [out,in]).
  sgemm_bt(n, out_, in_, 1.0f, x.data(), weight_.value.data(), 0.0f, y.data());
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = y.data() + i * out_;
    for (std::int64_t j = 0; j < out_; ++j) row[j] += bias_.value[j];
  }
  return y;
}

void Linear::infer_into(ConstTensorView x, Tensor& out) const {
  if (x.rank() != 2 || x.extent(1) != in_) {
    throw std::invalid_argument("Linear::infer_into: expected [N, " +
                                std::to_string(in_) + "], got " +
                                x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  out.resize({n, out_});
  // sgemm_bt runs on the calling thread and allocates nothing, so this
  // stays within the inference path's zero-allocation contract.
  sgemm_bt(n, out_, in_, 1.0f, x.data(), weight_.value.data(), 0.0f,
           out.data());
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = out.data() + i * out_;
    for (std::int64_t j = 0; j < out_; ++j) row[j] += bias_.value[j];
  }
}

Shape Linear::infer_shape(const Shape& in) const {
  if (in.size() != 2 || in[1] != in_) {
    throw std::invalid_argument("Linear::infer_shape: bad input shape");
  }
  return {in[0], out_};
}

Tensor Linear::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Linear::backward before forward");
  }
  const std::int64_t n = cached_input_.extent(0);
  if (grad_output.rank() != 2 || grad_output.extent(0) != n ||
      grad_output.extent(1) != out_) {
    throw std::invalid_argument("Linear::backward: bad grad shape " +
                                grad_output.shape_string());
  }

  // dW[out,in] += gyᵀ[out,N] · x[N,in]
  sgemm_at(out_, in_, n, 1.0f, grad_output.data(), cached_input_.data(), 1.0f,
           weight_.grad.data());
  // db[out] += column sums of gy
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = grad_output.data() + i * out_;
    for (std::int64_t j = 0; j < out_; ++j) bias_.grad[j] += row[j];
  }
  // dx[N,in] = gy[N,out] · W[out,in]
  Tensor grad_input({n, in_});
  sgemm(n, in_, out_, 1.0f, grad_output.data(), weight_.value.data(), 0.0f,
        grad_input.data());
  return grad_input;
}

}  // namespace sne::nn
