// linear.h — fully connected layer, y = x·Wᵀ + b.
#pragma once

#include "nn/module.h"
#include "tensor/rng.h"

namespace sne::nn {

/// Fully connected layer over the last axis: input [N, in_features] →
/// output [N, out_features]. Weights use Kaiming-uniform initialization
/// (fan-in), matching the PReLU activations used throughout the paper's
/// networks.
class Linear final : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         std::string name = "linear");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::vector<const Param*> params() const override {
    return {&weight_, &bias_};
  }

  std::int64_t in_features() const noexcept { return in_; }
  std::int64_t out_features() const noexcept { return out_; }
  Param& weight() noexcept { return weight_; }
  Param& bias() noexcept { return bias_; }
  const Param& weight() const noexcept { return weight_; }
  const Param& bias() const noexcept { return bias_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor cached_input_;
};

}  // namespace sne::nn
