#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

namespace sne::nn {

LossResult mse_loss(const Tensor& prediction, const Tensor& target) {
  check_same_shape(prediction, target, "mse_loss");
  if (prediction.size() == 0) {
    throw std::invalid_argument("mse_loss: empty batch");
  }
  const auto n = static_cast<float>(prediction.size());
  LossResult result;
  result.grad = Tensor(prediction.shape());
  double acc = 0.0;
  for (std::int64_t i = 0; i < prediction.size(); ++i) {
    const float d = prediction[i] - target[i];
    acc += static_cast<double>(d) * d;
    result.grad[i] = 2.0f * d / n;
  }
  result.value = static_cast<float>(acc / n);
  return result;
}

LossResult bce_with_logits_loss(const Tensor& logits, const Tensor& target) {
  check_same_shape(logits, target, "bce_with_logits_loss");
  if (logits.size() == 0) {
    throw std::invalid_argument("bce_with_logits_loss: empty batch");
  }
  const auto n = static_cast<float>(logits.size());
  LossResult result;
  result.grad = Tensor(logits.shape());
  double acc = 0.0;
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    const float x = logits[i];
    const float t = target[i];
    const float abs_x = std::abs(x);
    acc += static_cast<double>(std::max(x, 0.0f)) - x * t +
           std::log1p(std::exp(-abs_x));
    const float sigma = 1.0f / (1.0f + std::exp(-x));
    result.grad[i] = (sigma - t) / n;
  }
  result.value = static_cast<float>(acc / n);
  return result;
}

float binary_accuracy(const Tensor& logits, const Tensor& target) {
  check_same_shape(logits, target, "binary_accuracy");
  if (logits.size() == 0) return 0.0f;
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    const bool predicted = logits[i] > 0.0f;
    const bool truth = target[i] > 0.5f;
    if (predicted == truth) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(logits.size());
}

}  // namespace sne::nn
