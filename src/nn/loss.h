// loss.h — training objectives. The flux network minimizes mean squared
// error on stellar magnitudes; the classifiers minimize binary cross
// entropy on logits (numerically stable log-sum-exp form).
#pragma once

#include "tensor/tensor.h"

namespace sne::nn {

/// Value and input-gradient of a loss evaluated on a batch.
struct LossResult {
  float value = 0.0f;  ///< mean loss over the batch
  Tensor grad;         ///< d(value)/d(prediction), same shape as prediction
};

/// Mean squared error: value = mean((pred − target)²).
LossResult mse_loss(const Tensor& prediction, const Tensor& target);

/// Binary cross entropy on raw logits with targets in {0, 1}:
/// value = mean(softplus(logit) − target·logit), computed in the
/// overflow-safe form max(x,0) − x·t + log(1 + exp(−|x|)).
LossResult bce_with_logits_loss(const Tensor& logits, const Tensor& target);

/// Fraction of correct binary predictions at threshold 0.5 on logits
/// (i.e. logit > 0 ⇔ predict class 1).
float binary_accuracy(const Tensor& logits, const Tensor& target);

}  // namespace sne::nn
