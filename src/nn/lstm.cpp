#include "nn/lstm.h"

#include <cmath>
#include <stdexcept>

#include "tensor/gemm.h"

namespace sne::nn {

namespace {

Tensor glorot(std::int64_t rows, std::int64_t cols, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return Tensor::rand_uniform({rows, cols}, rng, -bound, bound);
}

void sigmoid_inplace(Tensor& t) {
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = 1.0f / (1.0f + std::exp(-t[i]));
  }
}

void tanh_inplace(Tensor& t) {
  for (std::int64_t i = 0; i < t.size(); ++i) t[i] = std::tanh(t[i]);
}

void add_bias(Tensor& t, const Tensor& bias) {
  const std::int64_t n = t.extent(0);
  const std::int64_t f = t.extent(1);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = t.data() + i * f;
    for (std::int64_t j = 0; j < f; ++j) row[j] += bias[j];
  }
}

// y[N,H] (+)= x[N,D] · Wᵀ (W is [H,D]).
void affine(const Tensor& x, const Param& w, Tensor& y) {
  sgemm_bt(x.extent(0), w.value.extent(0), x.extent(1), 1.0f, x.data(),
           w.value.data(), 1.0f, y.data());
}

// dW += gᵀ·x, db += colsum(g), and out[N, in] += g·W.
void backprop_gate(const Tensor& g_pre, const Tensor& xt,
                   const Tensor& h_prev, Param& w, Param& u, Param& b,
                   Tensor& gh_prev, Tensor& dxt) {
  sgemm_at(w.value.extent(0), w.value.extent(1), g_pre.extent(0), 1.0f,
           g_pre.data(), xt.data(), 1.0f, w.grad.data());
  sgemm_at(u.value.extent(0), u.value.extent(1), g_pre.extent(0), 1.0f,
           g_pre.data(), h_prev.data(), 1.0f, u.grad.data());
  const std::int64_t n = g_pre.extent(0);
  const std::int64_t h = g_pre.extent(1);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = g_pre.data() + i * h;
    for (std::int64_t j = 0; j < h; ++j) b.grad[j] += row[j];
  }
  sgemm(n, u.value.extent(1), h, 1.0f, g_pre.data(), u.value.data(), 1.0f,
        gh_prev.data());
  sgemm(n, w.value.extent(1), h, 1.0f, g_pre.data(), w.value.data(), 1.0f,
        dxt.data());
}

}  // namespace

Lstm::Lstm(std::int64_t input_size, std::int64_t hidden_size, Rng& rng,
           std::string name)
    : input_(input_size),
      hidden_(hidden_size),
      wi_(name + ".wi", glorot(hidden_size, input_size, rng)),
      ui_(name + ".ui", glorot(hidden_size, hidden_size, rng)),
      bi_(name + ".bi", Tensor({hidden_size})),
      wf_(name + ".wf", glorot(hidden_size, input_size, rng)),
      uf_(name + ".uf", glorot(hidden_size, hidden_size, rng)),
      bf_(name + ".bf", Tensor({hidden_size}, 1.0f)),
      wo_(name + ".wo", glorot(hidden_size, input_size, rng)),
      uo_(name + ".uo", glorot(hidden_size, hidden_size, rng)),
      bo_(name + ".bo", Tensor({hidden_size})),
      wg_(name + ".wg", glorot(hidden_size, input_size, rng)),
      ug_(name + ".ug", glorot(hidden_size, hidden_size, rng)),
      bg_(name + ".bg", Tensor({hidden_size})) {
  if (input_size <= 0 || hidden_size <= 0) {
    throw std::invalid_argument("Lstm: sizes must be positive");
  }
}

Tensor Lstm::forward(const Tensor& x) {
  if (x.rank() != 3 || x.extent(2) != input_) {
    throw std::invalid_argument("Lstm::forward: expected [N, T, " +
                                std::to_string(input_) + "], got " +
                                x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t steps = x.extent(1);

  cached_x_.clear();
  cached_h_prev_.clear();
  cached_c_prev_.clear();
  cached_i_.clear();
  cached_f_.clear();
  cached_o_.clear();
  cached_g_.clear();
  cached_c_.clear();

  Tensor h({n, hidden_});
  Tensor c({n, hidden_});
  for (std::int64_t t = 0; t < steps; ++t) {
    Tensor xt({n, input_});
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + (i * steps + t) * input_;
      std::copy(src, src + input_, xt.data() + i * input_);
    }

    auto gate = [&](const Param& w, const Param& u, const Param& b) {
      Tensor z({n, hidden_});
      affine(xt, w, z);
      affine(h, u, z);
      add_bias(z, b.value);
      return z;
    };
    Tensor i_gate = gate(wi_, ui_, bi_);
    sigmoid_inplace(i_gate);
    Tensor f_gate = gate(wf_, uf_, bf_);
    sigmoid_inplace(f_gate);
    Tensor o_gate = gate(wo_, uo_, bo_);
    sigmoid_inplace(o_gate);
    Tensor g_cand = gate(wg_, ug_, bg_);
    tanh_inplace(g_cand);

    Tensor c_new({n, hidden_});
    for (std::int64_t k = 0; k < c_new.size(); ++k) {
      c_new[k] = f_gate[k] * c[k] + i_gate[k] * g_cand[k];
    }
    Tensor h_new({n, hidden_});
    for (std::int64_t k = 0; k < h_new.size(); ++k) {
      h_new[k] = o_gate[k] * std::tanh(c_new[k]);
    }

    cached_x_.push_back(std::move(xt));
    cached_h_prev_.push_back(h);
    cached_c_prev_.push_back(c);
    cached_i_.push_back(std::move(i_gate));
    cached_f_.push_back(std::move(f_gate));
    cached_o_.push_back(std::move(o_gate));
    cached_g_.push_back(std::move(g_cand));
    cached_c_.push_back(c_new);

    h = std::move(h_new);
    c = std::move(c_new);
  }
  return h;
}

void Lstm::infer_into(ConstTensorView x, Tensor& out) const {
  if (x.rank() != 3 || x.extent(2) != input_) {
    throw std::invalid_argument("Lstm::infer_into: expected [N, T, " +
                                std::to_string(input_) + "], got " +
                                x.shape_string());
  }
  const std::int64_t n = x.extent(0);
  const std::int64_t steps = x.extent(1);

  // Per-thread, grow-only scratch instead of the per-timestep caches.
  thread_local Tensor xt, i_gate, f_gate, o_gate, g_cand, c;
  xt.resize({n, input_});
  i_gate.resize({n, hidden_});
  f_gate.resize({n, hidden_});
  o_gate.resize({n, hidden_});
  g_cand.resize({n, hidden_});
  c.resize({n, hidden_});
  c.zero();

  out.resize({n, hidden_});
  out.zero();  // h_0 = 0
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + (i * steps + t) * input_;
      std::copy(src, src + input_, xt.data() + i * input_);
    }

    auto gate = [&](const Param& w, const Param& u, const Param& b,
                    Tensor& z) {
      z.zero();
      affine(xt, w, z);
      affine(out, u, z);
      add_bias(z, b.value);
    };
    gate(wi_, ui_, bi_, i_gate);
    sigmoid_inplace(i_gate);
    gate(wf_, uf_, bf_, f_gate);
    sigmoid_inplace(f_gate);
    gate(wo_, uo_, bo_, o_gate);
    sigmoid_inplace(o_gate);
    gate(wg_, ug_, bg_, g_cand);
    tanh_inplace(g_cand);

    for (std::int64_t k = 0; k < c.size(); ++k) {
      c[k] = f_gate[k] * c[k] + i_gate[k] * g_cand[k];
    }
    for (std::int64_t k = 0; k < out.size(); ++k) {
      out[k] = o_gate[k] * std::tanh(c[k]);
    }
  }
}

Shape Lstm::infer_shape(const Shape& in) const {
  if (in.size() != 3 || in[2] != input_) {
    throw std::invalid_argument("Lstm::infer_shape: bad input shape");
  }
  return {in[0], hidden_};
}

Tensor Lstm::backward(const Tensor& grad_output) {
  if (cached_x_.empty()) {
    throw std::logic_error("Lstm::backward before forward");
  }
  const auto steps = static_cast<std::int64_t>(cached_x_.size());
  const std::int64_t n = cached_x_[0].extent(0);
  if (grad_output.rank() != 2 || grad_output.extent(0) != n ||
      grad_output.extent(1) != hidden_) {
    throw std::invalid_argument("Lstm::backward: bad grad shape " +
                                grad_output.shape_string());
  }

  Tensor grad_x({n, steps, input_});
  Tensor gh = grad_output;
  Tensor gc({n, hidden_});  // carried cell-state gradient

  for (std::int64_t t = steps - 1; t >= 0; --t) {
    const auto ts = static_cast<std::size_t>(t);
    const Tensor& xt = cached_x_[ts];
    const Tensor& h_prev = cached_h_prev_[ts];
    const Tensor& c_prev = cached_c_prev_[ts];
    const Tensor& ig = cached_i_[ts];
    const Tensor& fg = cached_f_[ts];
    const Tensor& og = cached_o_[ts];
    const Tensor& gg = cached_g_[ts];
    const Tensor& ct = cached_c_[ts];

    Tensor di_pre({n, hidden_});
    Tensor df_pre({n, hidden_});
    Tensor do_pre({n, hidden_});
    Tensor dg_pre({n, hidden_});
    Tensor gc_prev({n, hidden_});
    for (std::int64_t k = 0; k < gh.size(); ++k) {
      const float tanh_c = std::tanh(ct[k]);
      // Total cell gradient: carried gc plus h's path through tanh(c).
      const float gct = gc[k] + gh[k] * og[k] * (1.0f - tanh_c * tanh_c);
      do_pre[k] = gh[k] * tanh_c * og[k] * (1.0f - og[k]);
      di_pre[k] = gct * gg[k] * ig[k] * (1.0f - ig[k]);
      df_pre[k] = gct * c_prev[k] * fg[k] * (1.0f - fg[k]);
      dg_pre[k] = gct * ig[k] * (1.0f - gg[k] * gg[k]);
      gc_prev[k] = gct * fg[k];
    }

    Tensor gh_prev({n, hidden_});
    Tensor dxt({n, input_});
    backprop_gate(di_pre, xt, h_prev, wi_, ui_, bi_, gh_prev, dxt);
    backprop_gate(df_pre, xt, h_prev, wf_, uf_, bf_, gh_prev, dxt);
    backprop_gate(do_pre, xt, h_prev, wo_, uo_, bo_, gh_prev, dxt);
    backprop_gate(dg_pre, xt, h_prev, wg_, ug_, bg_, gh_prev, dxt);

    for (std::int64_t i = 0; i < n; ++i) {
      float* dst = grad_x.data() + (i * steps + t) * input_;
      const float* src = dxt.data() + i * input_;
      std::copy(src, src + input_, dst);
    }

    gh = std::move(gh_prev);
    gc = std::move(gc_prev);
  }
  return grad_x;
}

std::vector<Param*> Lstm::params() {
  return {&wi_, &ui_, &bi_, &wf_, &uf_, &bf_,
          &wo_, &uo_, &bo_, &wg_, &ug_, &bg_};
}

std::vector<const Param*> Lstm::params() const {
  return {&wi_, &ui_, &bi_, &wf_, &uf_, &bf_,
          &wo_, &uo_, &bo_, &wg_, &ug_, &bg_};
}

}  // namespace sne::nn
