// lstm.h — long short-term memory over flux sequences. Charnock & Moss
// (2016) evaluated both LSTM and GRU photometric classifiers; the GRU
// lives in gru.h, this is the LSTM, so the baseline can be run with the
// authors' preferred unit and the two can be ablated against each other.
#pragma once

#include "nn/module.h"
#include "tensor/rng.h"

namespace sne::nn {

/// LSTM processing [N, T, D] and returning the final hidden state [N, H].
/// Backward implements full BPTT (finite-difference checked in tests).
///
///   i_t = σ(W_i·x_t + U_i·h_{t−1} + b_i)      input gate
///   f_t = σ(W_f·x_t + U_f·h_{t−1} + b_f)      forget gate
///   o_t = σ(W_o·x_t + U_o·h_{t−1} + b_o)      output gate
///   g_t = tanh(W_g·x_t + U_g·h_{t−1} + b_g)   candidate
///   c_t = f_t ⊙ c_{t−1} + i_t ⊙ g_t
///   h_t = o_t ⊙ tanh(c_t)
///
/// The forget-gate bias starts at +1 (Jozefowicz et al. 2015) so early
/// training does not erase the cell state.
class Lstm final : public Module {
 public:
  Lstm(std::int64_t input_size, std::int64_t hidden_size, Rng& rng,
       std::string name = "lstm");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;
  std::vector<Param*> params() override;
  std::vector<const Param*> params() const override;

  std::int64_t hidden_size() const noexcept { return hidden_; }

 private:
  std::int64_t input_;
  std::int64_t hidden_;
  // Gate parameters, order: input, forget, output, candidate.
  Param wi_, ui_, bi_;
  Param wf_, uf_, bf_;
  Param wo_, uo_, bo_;
  Param wg_, ug_, bg_;

  // Per-timestep caches.
  std::vector<Tensor> cached_x_;
  std::vector<Tensor> cached_h_prev_;
  std::vector<Tensor> cached_c_prev_;
  std::vector<Tensor> cached_i_, cached_f_, cached_o_, cached_g_;
  std::vector<Tensor> cached_c_;  ///< post-update cell state
};

}  // namespace sne::nn
