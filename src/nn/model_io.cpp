#include "nn/model_io.h"

#include <stdexcept>
#include <unordered_map>

namespace sne::nn {

TensorMap state_dict(Module& module) {
  TensorMap map;
  for (Param* p : module.params()) map.emplace_back(p->name, p->value);
  for (Param* p : module.buffers()) map.emplace_back(p->name, p->value);
  return map;
}

void load_state_dict(Module& module, const TensorMap& state, bool strict) {
  std::unordered_map<std::string, const Tensor*> lookup;
  lookup.reserve(state.size());
  for (const auto& [name, tensor] : state) {
    if (!lookup.emplace(name, &tensor).second) {
      throw std::runtime_error("load_state_dict: duplicate name " + name);
    }
  }

  std::size_t consumed = 0;
  auto apply = [&](Param* p) {
    const auto it = lookup.find(p->name);
    if (it == lookup.end()) {
      if (strict) {
        throw std::runtime_error("load_state_dict: missing tensor " + p->name);
      }
      return;
    }
    if (it->second->shape() != p->value.shape()) {
      throw std::runtime_error("load_state_dict: shape mismatch for " +
                               p->name + ": " + it->second->shape_string() +
                               " vs " + p->value.shape_string());
    }
    p->value = *it->second;
    ++consumed;
  };
  for (Param* p : module.params()) apply(p);
  for (Param* p : module.buffers()) apply(p);

  if (strict && consumed != state.size()) {
    throw std::runtime_error(
        "load_state_dict: snapshot has unused tensors (architecture "
        "mismatch)");
  }
}

void save_model(const std::string& path, Module& module) {
  save_tensor_map(path, state_dict(module));
}

void load_model(const std::string& path, Module& module, bool strict) {
  load_state_dict(module, load_tensor_map(path), strict);
}

void copy_params(Module& src, Module& dst) {
  const auto src_params = src.params();
  const auto dst_params = dst.params();
  const auto src_buffers = src.buffers();
  const auto dst_buffers = dst.buffers();
  if (src_params.size() != dst_params.size() ||
      src_buffers.size() != dst_buffers.size()) {
    throw std::runtime_error("copy_params: architecture mismatch");
  }
  auto copy_all = [](const std::vector<Param*>& from,
                     const std::vector<Param*>& to) {
    for (std::size_t i = 0; i < from.size(); ++i) {
      if (from[i]->value.shape() != to[i]->value.shape()) {
        throw std::runtime_error("copy_params: shape mismatch at " +
                                 from[i]->name);
      }
      to[i]->value = from[i]->value;
    }
  };
  copy_all(src_params, dst_params);
  copy_all(src_buffers, dst_buffers);
}

}  // namespace sne::nn
