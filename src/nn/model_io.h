// model_io.h — save/load of module parameters and buffers. The paper's
// training recipe pre-trains the band-wise CNN and the light-curve
// classifier separately, then stitches the snapshots into the joint model
// for fine-tuning; these helpers implement that hand-off.
#pragma once

#include <string>

#include "nn/module.h"
#include "tensor/serialize.h"

namespace sne::nn {

/// Snapshot of all parameters and buffers, keyed by Param::name.
TensorMap state_dict(Module& module);

/// Loads a snapshot produced by state_dict. Matching is by name; shapes
/// must agree. With strict=true every snapshot entry must be consumed and
/// every module tensor must be found, otherwise std::runtime_error.
void load_state_dict(Module& module, const TensorMap& state,
                     bool strict = true);

/// File-based convenience wrappers.
void save_model(const std::string& path, Module& module);
void load_model(const std::string& path, Module& module, bool strict = true);

/// Copies parameters from `src` to `dst` positionally (same architecture
/// assumed); used to transplant pre-trained weights into submodules whose
/// serialized names differ. Shapes must match pairwise.
void copy_params(Module& src, Module& dst);

}  // namespace sne::nn
