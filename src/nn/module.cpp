#include "nn/module.h"

namespace sne::nn {

void Module::infer_into(ConstTensorView x, Tensor& out) const {
  // Fallback for modules without a dedicated cache-free kernel. forward()
  // mutates only this module's activation caches, never its parameters, so
  // the cast is observable solely as redundant cache writes — acceptable
  // for the fallback, but modules used on the planned inference path
  // override this with a genuinely const implementation.
  // The view must be materialized for forward(), which takes an owning
  // Tensor.
  out = const_cast<Module*>(this)->forward(x.to_tensor());
}

void Module::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

std::int64_t Module::num_params() {
  std::int64_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

}  // namespace sne::nn
