#include "nn/module.h"

namespace sne::nn {

void Module::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

std::int64_t Module::num_params() {
  std::int64_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

}  // namespace sne::nn
