// module.h — the layer abstraction of the from-scratch deep-learning
// library. Modules own their parameters and the activation caches needed
// for the explicit backward pass. There is no tape autograd: backward() of
// each layer is hand-derived and validated against finite differences in
// tests/nn_gradcheck_test.cpp. This keeps the hot path allocation-light and
// the execution order deterministic (a test invariant on this project).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sne::nn {

/// A learnable parameter: value and accumulated gradient, plus the name
/// under which it is serialized.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

/// Base class for all layers.
///
/// Contract:
///  - forward(x) returns the layer output and caches whatever backward needs;
///  - backward(gy) consumes the gradient w.r.t. the *last* forward output,
///    accumulates parameter gradients into Param::grad, and returns the
///    gradient w.r.t. the last forward input;
///  - backward without a preceding forward is a programming error and throws.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters of this module (non-owning views into members).
  /// Default: none.
  virtual std::vector<Param*> params() { return {}; }

  /// Persistent non-learnable state (e.g. batch-norm running statistics)
  /// that must survive save/load. Default: none.
  virtual std::vector<Param*> buffers() { return {}; }

  /// Switches between training mode (batch statistics, dropout active) and
  /// inference mode. Default: store the flag.
  virtual void set_training(bool training) { training_ = training; }
  bool is_training() const noexcept { return training_; }

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Total number of scalar learnable parameters.
  std::int64_t num_params();

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace sne::nn
