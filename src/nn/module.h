// module.h — the layer abstraction of the from-scratch deep-learning
// library. Modules own their parameters and the activation caches needed
// for the explicit backward pass. There is no tape autograd: backward() of
// each layer is hand-derived and validated against finite differences in
// tests/nn_gradcheck_test.cpp. This keeps the hot path allocation-light and
// the execution order deterministic (a test invariant on this project).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/view.h"

namespace sne::nn {

using sne::ConstTensorView;
using sne::TensorView;

/// A learnable parameter: value and accumulated gradient, plus the name
/// under which it is serialized.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

/// Base class for all layers.
///
/// Contract:
///  - forward(x) returns the layer output and caches whatever backward needs;
///  - backward(gy) consumes the gradient w.r.t. the *last* forward output,
///    accumulates parameter gradients into Param::grad, and returns the
///    gradient w.r.t. the last forward input;
///  - backward without a preceding forward is a programming error and throws.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Cache-free inference: computes the layer's output for `x` into `out`
  /// without touching the activation caches that forward() keeps for
  /// backward. `out` is resized to the output shape (no reallocation once
  /// its capacity suffices, so a reused buffer makes steady-state calls
  /// allocation-free). Inference semantics are always applied — batch
  /// norm uses its running statistics and dropout is the identity —
  /// regardless of is_training(). Safe to call concurrently from several
  /// threads on the same module as long as no thread mutates it.
  ///
  /// `x` is a non-owning view, so callers can feed a Tensor (implicit
  /// conversion), a batch-row slice, or an arena buffer without copying.
  /// Kernels obtain the raw pointer via x.data(), which throws on a
  /// strided view — pass contiguous views (or let Sequential gather once
  /// at its entry).
  ///
  /// The default falls back to the training-path forward() (which does
  /// cache, and must materialize the view), so every module is usable
  /// through the inference API even before it grows a dedicated kernel.
  virtual void infer_into(ConstTensorView x, Tensor& out) const;

  /// Output shape this layer produces for an input of shape `in`
  /// (including the batch axis). Used by the inference planner to size
  /// arena buffers ahead of execution. Default: shape-preserving.
  virtual Shape infer_shape(const Shape& in) const { return in; }

  /// Learnable parameters of this module (non-owning views into members).
  /// Default: none. The const overload powers read-only traversal (e.g.
  /// plan-time Conv+BN weight folding, which must not mutate the model).
  virtual std::vector<Param*> params() { return {}; }
  virtual std::vector<const Param*> params() const { return {}; }

  /// Persistent non-learnable state (e.g. batch-norm running statistics)
  /// that must survive save/load. Default: none.
  virtual std::vector<Param*> buffers() { return {}; }
  virtual std::vector<const Param*> buffers() const { return {}; }

  /// Switches between training mode (batch statistics, dropout active) and
  /// inference mode. Default: store the flag.
  virtual void set_training(bool training) { training_ = training; }
  bool is_training() const noexcept { return training_; }

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Total number of scalar learnable parameters.
  std::int64_t num_params();

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace sne::nn
