#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace sne::nn {

float Optimizer::clip_grad_norm(float max_norm) {
  double total = 0.0;
  for (Param* p : params_) {
    const float n = p->grad.l2_norm();
    total += static_cast<double>(n) * n;
  }
  const auto norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Param* p : params_) p->grad *= scale;
  }
  return norm;
}

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (lr <= 0.0f) throw std::invalid_argument("Sgd: lr must be positive");
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    Tensor& vel = velocity_[k];
    for (std::int64_t i = 0; i < p.value.size(); ++i) {
      const float g = p.grad[i] + weight_decay_ * p.value[i];
      vel[i] = momentum_ * vel[i] + g;
      p.value[i] -= lr_ * vel[i];
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  if (lr <= 0.0f) throw std::invalid_argument("Adam: lr must be positive");
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  // Bias corrections in double: float pow drifts visibly for large t
  // (beta2^t needs ~1e-8 resolution near 1), which would perturb the
  // effective learning rate late in long runs.
  const auto bias1 = static_cast<float>(
      1.0 - std::pow(static_cast<double>(beta1_), static_cast<double>(t_)));
  const auto bias2 = static_cast<float>(
      1.0 - std::pow(static_cast<double>(beta2_), static_cast<double>(t_)));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (std::int64_t i = 0; i < p.value.size(); ++i) {
      const float g = p.grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      p.value[i] -=
          lr_ * (m_hat / (std::sqrt(v_hat) + eps_) +
                 weight_decay_ * p.value[i]);
    }
  }
}

}  // namespace sne::nn
