// optimizer.h — first-order optimizers over a parameter set. Adam is the
// default trainer used for all of the paper's networks; SGD with momentum
// exists for the convergence-comparison ablation.
#pragma once

#include <vector>

#include "nn/module.h"

namespace sne::nn {

/// Common interface: step() applies accumulated gradients, then the caller
/// zeroes them (Trainer does both).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;
  virtual ~Optimizer() = default;

  virtual void step() = 0;

  void zero_grad() {
    for (Param* p : params_) p->grad.zero();
  }

  /// Global L2 gradient-norm clipping; returns the pre-clip norm. A no-op
  /// when the norm is already below `max_norm`.
  float clip_grad_norm(float max_norm);

  void set_learning_rate(float lr) noexcept { lr_ = lr; }
  float learning_rate() const noexcept { return lr_; }

 protected:
  std::vector<Param*> params_;
  float lr_ = 1e-3f;
};

/// Stochastic gradient descent with classical momentum and optional
/// decoupled weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction and optional decoupled
/// weight decay (AdamW-style).
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace sne::nn
