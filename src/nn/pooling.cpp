#include "nn/pooling.h"

#include <cmath>
#include <stdexcept>

#include "tensor/gemm.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SNE_POOL_X86 1
#else
#define SNE_POOL_X86 0
#endif

namespace sne::nn {

namespace {

void check_pool_input(ConstTensorView x, std::int64_t kernel) {
  if (x.rank() != 4) {
    throw std::invalid_argument("pooling: expected [N, C, H, W], got " +
                                x.shape_string());
  }
  if (x.extent(2) < kernel || x.extent(3) < kernel) {
    throw std::invalid_argument("pooling: window larger than input");
  }
}

std::int64_t pooled_extent(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride) {
  return (in - kernel) / stride + 1;
}

#if SNE_POOL_X86

// One fold step of the scalar update rule, per lane:
//   take v when (v > best, ordered) or (best is NaN and v is not).
// _CMP_GT_OQ is false whenever either operand is NaN — exactly like the
// scalar `v > best` — so the blend reproduces the scalar result bit for
// bit, including the all-NaN window and the first-seen-zero tie cases.
__attribute__((target("avx2"))) inline __m256 pool_fold_avx2(__m256 best,
                                                             __m256 v) {
  const __m256 gt = _mm256_cmp_ps(v, best, _CMP_GT_OQ);
  const __m256 nan_best = _mm256_cmp_ps(best, best, _CMP_UNORD_Q);
  const __m256 ord_v = _mm256_cmp_ps(v, v, _CMP_ORD_Q);
  return _mm256_blendv_ps(best, v, _mm256_or_ps(gt, _mm256_and_ps(nan_best, ord_v)));
}

// 2x2 stride-2 plane pool, eight output columns per iteration. The two
// shuffles split 16 consecutive inputs into even/odd columns (lane-
// scrambled, but identically for all four operands, so each lane still
// folds one window in the scalar's encounter order: top-left, top-right,
// bottom-left, bottom-right); one 64-bit permute restores output order.
__attribute__((target("avx2"))) void maxpool_2x2_avx2(const float* plane,
                                                      std::int64_t w,
                                                      std::int64_t oh,
                                                      std::int64_t ow,
                                                      float* dst) {
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    const float* r0 = plane + 2 * oy * w;
    const float* r1 = r0 + w;
    float* out = dst + oy * ow;
    std::int64_t ox = 0;
    for (; ox + 8 <= ow; ox += 8) {
      const __m256 a0 = _mm256_loadu_ps(r0 + 2 * ox);
      const __m256 a1 = _mm256_loadu_ps(r0 + 2 * ox + 8);
      const __m256 b0 = _mm256_loadu_ps(r1 + 2 * ox);
      const __m256 b1 = _mm256_loadu_ps(r1 + 2 * ox + 8);
      const __m256 e0 = _mm256_shuffle_ps(a0, a1, _MM_SHUFFLE(2, 0, 2, 0));
      const __m256 o0 = _mm256_shuffle_ps(a0, a1, _MM_SHUFFLE(3, 1, 3, 1));
      const __m256 e1 = _mm256_shuffle_ps(b0, b1, _MM_SHUFFLE(2, 0, 2, 0));
      const __m256 o1 = _mm256_shuffle_ps(b0, b1, _MM_SHUFFLE(3, 1, 3, 1));
      const __m256 m =
          pool_fold_avx2(pool_fold_avx2(pool_fold_avx2(e0, o0), e1), o1);
      const __m256 fixed = _mm256_castpd_ps(_mm256_permute4x64_pd(
          _mm256_castps_pd(m), _MM_SHUFFLE(3, 1, 2, 0)));
      _mm256_storeu_ps(out + ox, fixed);
    }
    for (; ox < ow; ++ox) {
      const float* win = r0 + 2 * ox;
      float best = win[0];
      for (int k = 1; k < 4; ++k) {
        const float v = k < 2 ? win[k] : r1[2 * ox + k - 2];
        if (v > best || (std::isnan(best) && !std::isnan(v))) best = v;
      }
      out[ox] = best;
    }
  }
}

#endif  // SNE_POOL_X86

}  // namespace

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel <= 0 || stride_ <= 0) {
    throw std::invalid_argument("MaxPool2d: invalid window");
  }
}

Tensor MaxPool2d::forward(const Tensor& x) {
  check_pool_input(x, kernel_);
  const std::int64_t n = x.extent(0);
  const std::int64_t c = x.extent(1);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);

  cached_in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(y.size()), 0);

  std::int64_t out = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      const std::int64_t plane_base = (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out) {
          // Seed the argmax with the window's own first element so the
          // gradient can never escape the window: with a -inf seed and
          // best_idx = 0, an all-NaN window would route its gradient to
          // global element 0 of the input — a cross-sample leak. NaN
          // candidates are skipped (they never win), a NaN seed is
          // replaced by the first finite candidate, and an all-NaN
          // window propagates NaN from its first element.
          const std::int64_t first = oy * stride_ * w + ox * stride_;
          float best = plane[first];
          std::int64_t best_idx = plane_base + first;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = oy * stride_ + ky;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best || (std::isnan(best) && !std::isnan(v))) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          y[out] = best;
          argmax_[static_cast<std::size_t>(out)] = best_idx;
        }
      }
    }
  }
  return y;
}

void MaxPool2d::infer_into(ConstTensorView x, Tensor& out) const {
  check_pool_input(x, kernel_);
  const std::int64_t n = x.extent(0);
  const std::int64_t c = x.extent(1);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);

  out.resize({n, c, oh, ow});
#if SNE_POOL_X86
  // The serving-shaped window (2x2, stride 2) takes the vector plane
  // pool — bitwise identical to the scalar walk below (see pool_fold_avx2)
  // and pinned against it by the dispatch test.
  if (kernel_ == 2 && stride_ == 2 &&
      gemm_tier() == GemmTier::Avx2Fma) {
    for (std::int64_t p = 0; p < n * c; ++p) {
      maxpool_2x2_avx2(x.data() + p * h * w, w, oh, ow,
                       out.data() + p * oh * ow);
    }
    return;
  }
#endif
  // Same window walk and NaN semantics as forward, without the argmax
  // bookkeeping backward needs.
  std::int64_t o = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++o) {
          float best = plane[oy * stride_ * w + ox * stride_];
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const float* row = plane + (oy * stride_ + ky) * w + ox * stride_;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const float v = row[kx];
              if (v > best || (std::isnan(best) && !std::isnan(v))) best = v;
            }
          }
          out[o] = best;
        }
      }
    }
  }
}

Shape MaxPool2d::infer_shape(const Shape& in) const {
  if (in.size() != 4) {
    throw std::invalid_argument("MaxPool2d::infer_shape: bad input shape");
  }
  // Same validation as the execution paths (check_pool_input): the
  // planner's AOT shape walk must reject a window larger than the input
  // rather than plan a non-positive extent.
  if (in[2] < kernel_ || in[3] < kernel_) {
    throw std::invalid_argument(
        "MaxPool2d::infer_shape: window larger than input");
  }
  return {in[0], in[1], pooled_extent(in[2], kernel_, stride_),
          pooled_extent(in[3], kernel_, stride_)};
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (cached_in_shape_.empty()) {
    throw std::logic_error("MaxPool2d::backward before forward");
  }
  if (grad_output.size() != static_cast<std::int64_t>(argmax_.size())) {
    throw std::invalid_argument("MaxPool2d::backward: bad grad shape " +
                                grad_output.shape_string());
  }
  Tensor grad_input(cached_in_shape_);
  for (std::int64_t out = 0; out < grad_output.size(); ++out) {
    grad_input[argmax_[static_cast<std::size_t>(out)]] += grad_output[out];
  }
  return grad_input;
}

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel <= 0 || stride_ <= 0) {
    throw std::invalid_argument("AvgPool2d: invalid window");
  }
}

Tensor AvgPool2d::forward(const Tensor& x) {
  check_pool_input(x, kernel_);
  const std::int64_t n = x.extent(0);
  const std::int64_t c = x.extent(1);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  cached_in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  std::int64_t out = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out) {
          float s = 0.0f;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const float* row = plane + (oy * stride_ + ky) * w + ox * stride_;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) s += row[kx];
          }
          y[out] = s * inv;
        }
      }
    }
  }
  return y;
}

void AvgPool2d::infer_into(ConstTensorView x, Tensor& out) const {
  check_pool_input(x, kernel_);
  const std::int64_t n = x.extent(0);
  const std::int64_t c = x.extent(1);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  out.resize({n, c, oh, ow});
  std::int64_t o = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++o) {
          float s = 0.0f;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const float* row = plane + (oy * stride_ + ky) * w + ox * stride_;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) s += row[kx];
          }
          out[o] = s * inv;
        }
      }
    }
  }
}

Shape AvgPool2d::infer_shape(const Shape& in) const {
  if (in.size() != 4) {
    throw std::invalid_argument("AvgPool2d::infer_shape: bad input shape");
  }
  if (in[2] < kernel_ || in[3] < kernel_) {
    throw std::invalid_argument(
        "AvgPool2d::infer_shape: window larger than input");
  }
  return {in[0], in[1], pooled_extent(in[2], kernel_, stride_),
          pooled_extent(in[3], kernel_, stride_)};
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  if (cached_in_shape_.empty()) {
    throw std::logic_error("AvgPool2d::backward before forward");
  }
  const std::int64_t n = cached_in_shape_[0];
  const std::int64_t c = cached_in_shape_[1];
  const std::int64_t h = cached_in_shape_[2];
  const std::int64_t w = cached_in_shape_[3];
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);
  if (grad_output.rank() != 4 || grad_output.extent(0) != n ||
      grad_output.extent(1) != c || grad_output.extent(2) != oh ||
      grad_output.extent(3) != ow) {
    throw std::invalid_argument("AvgPool2d::backward: bad grad shape");
  }
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  Tensor grad_input(cached_in_shape_);
  std::int64_t out = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      float* plane = grad_input.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out) {
          const float g = grad_output[out] * inv;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            float* row = plane + (oy * stride_ + ky) * w + ox * stride_;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) row[kx] += g;
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace sne::nn
