#include "nn/pooling.h"

#include <cmath>
#include <stdexcept>

namespace sne::nn {

namespace {

void check_pool_input(ConstTensorView x, std::int64_t kernel) {
  if (x.rank() != 4) {
    throw std::invalid_argument("pooling: expected [N, C, H, W], got " +
                                x.shape_string());
  }
  if (x.extent(2) < kernel || x.extent(3) < kernel) {
    throw std::invalid_argument("pooling: window larger than input");
  }
}

std::int64_t pooled_extent(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride) {
  return (in - kernel) / stride + 1;
}

}  // namespace

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel <= 0 || stride_ <= 0) {
    throw std::invalid_argument("MaxPool2d: invalid window");
  }
}

Tensor MaxPool2d::forward(const Tensor& x) {
  check_pool_input(x, kernel_);
  const std::int64_t n = x.extent(0);
  const std::int64_t c = x.extent(1);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);

  cached_in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(y.size()), 0);

  std::int64_t out = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      const std::int64_t plane_base = (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out) {
          // Seed the argmax with the window's own first element so the
          // gradient can never escape the window: with a -inf seed and
          // best_idx = 0, an all-NaN window would route its gradient to
          // global element 0 of the input — a cross-sample leak. NaN
          // candidates are skipped (they never win), a NaN seed is
          // replaced by the first finite candidate, and an all-NaN
          // window propagates NaN from its first element.
          const std::int64_t first = oy * stride_ * w + ox * stride_;
          float best = plane[first];
          std::int64_t best_idx = plane_base + first;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = oy * stride_ + ky;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best || (std::isnan(best) && !std::isnan(v))) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          y[out] = best;
          argmax_[static_cast<std::size_t>(out)] = best_idx;
        }
      }
    }
  }
  return y;
}

void MaxPool2d::infer_into(ConstTensorView x, Tensor& out) const {
  check_pool_input(x, kernel_);
  const std::int64_t n = x.extent(0);
  const std::int64_t c = x.extent(1);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);

  out.resize({n, c, oh, ow});
  // Same window walk and NaN semantics as forward, without the argmax
  // bookkeeping backward needs.
  std::int64_t o = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++o) {
          float best = plane[oy * stride_ * w + ox * stride_];
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const float* row = plane + (oy * stride_ + ky) * w + ox * stride_;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const float v = row[kx];
              if (v > best || (std::isnan(best) && !std::isnan(v))) best = v;
            }
          }
          out[o] = best;
        }
      }
    }
  }
}

Shape MaxPool2d::infer_shape(const Shape& in) const {
  if (in.size() != 4) {
    throw std::invalid_argument("MaxPool2d::infer_shape: bad input shape");
  }
  // Same validation as the execution paths (check_pool_input): the
  // planner's AOT shape walk must reject a window larger than the input
  // rather than plan a non-positive extent.
  if (in[2] < kernel_ || in[3] < kernel_) {
    throw std::invalid_argument(
        "MaxPool2d::infer_shape: window larger than input");
  }
  return {in[0], in[1], pooled_extent(in[2], kernel_, stride_),
          pooled_extent(in[3], kernel_, stride_)};
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (cached_in_shape_.empty()) {
    throw std::logic_error("MaxPool2d::backward before forward");
  }
  if (grad_output.size() != static_cast<std::int64_t>(argmax_.size())) {
    throw std::invalid_argument("MaxPool2d::backward: bad grad shape " +
                                grad_output.shape_string());
  }
  Tensor grad_input(cached_in_shape_);
  for (std::int64_t out = 0; out < grad_output.size(); ++out) {
    grad_input[argmax_[static_cast<std::size_t>(out)]] += grad_output[out];
  }
  return grad_input;
}

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel <= 0 || stride_ <= 0) {
    throw std::invalid_argument("AvgPool2d: invalid window");
  }
}

Tensor AvgPool2d::forward(const Tensor& x) {
  check_pool_input(x, kernel_);
  const std::int64_t n = x.extent(0);
  const std::int64_t c = x.extent(1);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  cached_in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  std::int64_t out = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out) {
          float s = 0.0f;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const float* row = plane + (oy * stride_ + ky) * w + ox * stride_;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) s += row[kx];
          }
          y[out] = s * inv;
        }
      }
    }
  }
  return y;
}

void AvgPool2d::infer_into(ConstTensorView x, Tensor& out) const {
  check_pool_input(x, kernel_);
  const std::int64_t n = x.extent(0);
  const std::int64_t c = x.extent(1);
  const std::int64_t h = x.extent(2);
  const std::int64_t w = x.extent(3);
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  out.resize({n, c, oh, ow});
  std::int64_t o = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++o) {
          float s = 0.0f;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const float* row = plane + (oy * stride_ + ky) * w + ox * stride_;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) s += row[kx];
          }
          out[o] = s * inv;
        }
      }
    }
  }
}

Shape AvgPool2d::infer_shape(const Shape& in) const {
  if (in.size() != 4) {
    throw std::invalid_argument("AvgPool2d::infer_shape: bad input shape");
  }
  if (in[2] < kernel_ || in[3] < kernel_) {
    throw std::invalid_argument(
        "AvgPool2d::infer_shape: window larger than input");
  }
  return {in[0], in[1], pooled_extent(in[2], kernel_, stride_),
          pooled_extent(in[3], kernel_, stride_)};
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  if (cached_in_shape_.empty()) {
    throw std::logic_error("AvgPool2d::backward before forward");
  }
  const std::int64_t n = cached_in_shape_[0];
  const std::int64_t c = cached_in_shape_[1];
  const std::int64_t h = cached_in_shape_[2];
  const std::int64_t w = cached_in_shape_[3];
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);
  if (grad_output.rank() != 4 || grad_output.extent(0) != n ||
      grad_output.extent(1) != c || grad_output.extent(2) != oh ||
      grad_output.extent(3) != ow) {
    throw std::invalid_argument("AvgPool2d::backward: bad grad shape");
  }
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  Tensor grad_input(cached_in_shape_);
  std::int64_t out = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      float* plane = grad_input.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out) {
          const float g = grad_output[out] * inv;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            float* row = plane + (oy * stride_ + ky) * w + ox * stride_;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) row[kx] += g;
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace sne::nn
