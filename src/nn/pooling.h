// pooling.h — spatial pooling. The paper singles out 2×2 max pooling as
// "the most important" component of the band-wise CNN, because every
// observation cutout contains at most one supernova: max pooling makes the
// magnitude estimate translation-tolerant to the SN position within the
// host ellipse. AvgPool2d exists for the ablation bench that tests that
// claim.
#pragma once

#include <vector>

#include "nn/module.h"

namespace sne::nn {

/// Max pooling over non-overlapping (stride = kernel) or strided windows.
/// Input [N, C, H, W] → [N, C, H', W'].
class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(std::int64_t kernel, std::int64_t stride = 0);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;

 private:
  std::int64_t kernel_;
  std::int64_t stride_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Average pooling with the same window semantics as MaxPool2d.
class AvgPool2d final : public Module {
 public:
  explicit AvgPool2d(std::int64_t kernel, std::int64_t stride = 0);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;

 private:
  std::int64_t kernel_;
  std::int64_t stride_;
  Shape cached_in_shape_;
};

}  // namespace sne::nn
