#include "nn/sequential.h"

#include <algorithm>
#include <deque>

#include "nn/activation.h"

namespace sne::nn {

Tensor Sequential::forward(const Tensor& x) {
  // The first layer reads the caller's tensor directly (no up-front deep
  // copy), and a Flatten over an owned intermediate is a pure metadata
  // move — both bitwise identical to the copying path they replace.
  const Tensor* cur = &x;
  Tensor h;
  for (auto& layer : layers_) {
    auto* flatten = dynamic_cast<Flatten*>(layer.get());
    if (flatten != nullptr && cur == &h) {
      h = flatten->forward_moved(std::move(h));
    } else {
      h = layer->forward(*cur);
    }
    cur = &h;
  }
  return cur == &x ? x : h;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  const Tensor* cur = &grad_output;
  Tensor g;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    auto* flatten = dynamic_cast<Flatten*>(it->get());
    if (flatten != nullptr && cur == &g) {
      g = flatten->backward_moved(std::move(g));
    } else {
      g = (*it)->backward(*cur);
    }
    cur = &g;
  }
  return cur == &grad_output ? grad_output : g;
}

void Sequential::infer_into(ConstTensorView x, Tensor& out) const {
  // Ping-pong through two per-thread scratch tensors so a chain of N
  // layers costs two buffers, not N. The scratch lives in a deque indexed
  // by nesting depth: nested Sequentials (and composite layers that call
  // back into infer_into on this thread) get their own pair, and deque
  // references stay valid while inner frames grow the container.
  thread_local std::deque<Tensor> scratch;
  thread_local std::size_t depth = 0;

  const std::size_t base = 2 * depth;
  while (scratch.size() < base + 2) scratch.emplace_back();
  ++depth;
  Tensor& a = scratch[base];
  Tensor& b = scratch[base + 1];

  // Strided inputs are gathered once here, so every layer kernel below
  // sees a dense buffer (their x.data() calls would throw otherwise).
  ConstTensorView cur = x;
  Tensor* cur_buf = nullptr;  // scratch tensor holding cur, if any
  if (!x.is_contiguous()) {
    x.copy_to(a);
    cur = ConstTensorView(a);
    cur_buf = &a;
  }
  Tensor* next = (cur_buf == &a) ? &b : &a;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    Tensor* dst = last ? &out : next;
    if (dynamic_cast<const Flatten*>(layers_[i].get()) != nullptr) {
      if (cur_buf != nullptr) {
        // Flatten of an owned intermediate is a pure metadata change —
        // move the buffer instead of copying it through the layer.
        *dst = std::move(*cur_buf).reshaped({cur.extent(0), -1});
      } else if (!last) {
        // Flatten of the caller's input: reinterpret the view in place —
        // zero copies, the next layer reads the caller's buffer directly.
        cur = cur.reshaped({cur.extent(0), -1});
        continue;
      } else {
        // Degenerate flatten-only network: the data must land in `out`.
        out.resize({cur.extent(0), cur.size() / cur.extent(0)});
        cur.copy_to(out.data());
      }
    } else {
      layers_[i]->infer_into(cur, *dst);
    }
    cur = ConstTensorView(*dst);
    cur_buf = last ? nullptr : dst;
    if (dst == next) next = (next == &a) ? &b : &a;
  }
  if (layers_.empty()) {
    out.resize(x.shape());
    x.copy_to(out.data());
  }
  --depth;
}

Shape Sequential::infer_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& layer : layers_) s = layer->infer_shape(s);
  return s;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<const Param*> Sequential::params() const {
  std::vector<const Param*> out;
  for (const auto& layer : layers_) {
    const Module& m = *layer;
    for (const Param* p : m.params()) out.push_back(p);
  }
  return out;
}

std::vector<Param*> Sequential::buffers() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->buffers()) out.push_back(p);
  }
  return out;
}

std::vector<const Param*> Sequential::buffers() const {
  std::vector<const Param*> out;
  for (const auto& layer : layers_) {
    const Module& m = *layer;
    for (const Param* p : m.buffers()) out.push_back(p);
  }
  return out;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

}  // namespace sne::nn
