#include "nn/sequential.h"

#include <algorithm>
#include <deque>

#include "nn/activation.h"

namespace sne::nn {

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::infer_into(const Tensor& x, Tensor& out) const {
  // Ping-pong through two per-thread scratch tensors so a chain of N
  // layers costs two buffers, not N. The scratch lives in a deque indexed
  // by nesting depth: nested Sequentials (and composite layers that call
  // back into infer_into on this thread) get their own pair, and deque
  // references stay valid while inner frames grow the container.
  thread_local std::deque<Tensor> scratch;
  thread_local std::size_t depth = 0;

  const std::size_t base = 2 * depth;
  while (scratch.size() < base + 2) scratch.emplace_back();
  ++depth;
  Tensor& a = scratch[base];
  Tensor& b = scratch[base + 1];

  const Tensor* cur = &x;
  Tensor* next = &a;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor* dst = (i + 1 == layers_.size()) ? &out : next;
    if (dynamic_cast<const Flatten*>(layers_[i].get()) != nullptr &&
        cur != &x) {
      // Flatten of an owned intermediate is a pure metadata change — move
      // the buffer instead of copying it through the layer.
      Tensor* buf = (cur == &a) ? &a : &b;
      *dst = std::move(*buf).reshaped({cur->extent(0), -1});
    } else {
      layers_[i]->infer_into(*cur, *dst);
    }
    cur = dst;
    if (dst == next) next = (next == &a) ? &b : &a;
  }
  if (layers_.empty()) {
    out.resize(x.shape());
    std::copy(x.data(), x.data() + x.size(), out.data());
  }
  --depth;
}

Shape Sequential::infer_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& layer : layers_) s = layer->infer_shape(s);
  return s;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<const Param*> Sequential::params() const {
  std::vector<const Param*> out;
  for (const auto& layer : layers_) {
    const Module& m = *layer;
    for (const Param* p : m.params()) out.push_back(p);
  }
  return out;
}

std::vector<Param*> Sequential::buffers() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->buffers()) out.push_back(p);
  }
  return out;
}

std::vector<const Param*> Sequential::buffers() const {
  std::vector<const Param*> out;
  for (const auto& layer : layers_) {
    const Module& m = *layer;
    for (const Param* p : m.buffers()) out.push_back(p);
  }
  return out;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

}  // namespace sne::nn
