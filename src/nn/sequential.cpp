#include "nn/sequential.h"

namespace sne::nn {

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Param*> Sequential::buffers() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->buffers()) out.push_back(p);
  }
  return out;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

}  // namespace sne::nn
