// sequential.h — ordered container of modules; forward runs them in order,
// backward in reverse. All of the paper's networks are expressed as
// Sequential stacks (plus the Highway and Gru composite modules).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace sne::nn {

class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference to the added layer for optional
  /// further configuration. Takes ownership.
  template <typename M>
  M& add(std::unique_ptr<M> layer) {
    M& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  /// Constructs a layer in place.
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    return add(std::make_unique<M>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(ConstTensorView x, Tensor& out) const override;
  Shape infer_shape(const Shape& in) const override;
  std::vector<Param*> params() override;
  std::vector<const Param*> params() const override;
  std::vector<Param*> buffers() override;
  std::vector<const Param*> buffers() const override;
  void set_training(bool training) override;

  std::size_t size() const noexcept { return layers_.size(); }
  Module& layer(std::size_t i) { return *layers_.at(i); }
  const Module& layer(std::size_t i) const { return *layers_.at(i); }

 private:
  std::vector<ModulePtr> layers_;
};

}  // namespace sne::nn
