#include "nn/trainer.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"

namespace sne::nn {

namespace {

// Loader over a dataset read start-to-end in index order (evaluation,
// prediction): no shuffle; the runtime prefetch depth decides whether
// rendering overlaps scoring.
DataLoaderConfig sequential_loader_config(std::int64_t batch_size) {
  DataLoaderConfig cfg;
  cfg.batch_size = batch_size;
  cfg.shuffle = false;
  return cfg;
}

}  // namespace

EpochSink stdout_epoch_sink() {
  return [](const EpochStats& stats) {
    std::printf("epoch %3lld  train_loss %.5f  val_loss %.5f\n",
                static_cast<long long>(stats.epoch), stats.train_loss,
                stats.val_loss);
    std::fflush(stdout);
  };
}

Trainer::Trainer(Module& model, Optimizer& optimizer, LossFn loss,
                 MetricFn metric)
    : model_(model),
      optimizer_(optimizer),
      loss_(std::move(loss)),
      metric_(std::move(metric)) {
  if (!loss_) throw std::invalid_argument("Trainer: loss function required");
}

float Trainer::train_batch(const Sample& batch, float grad_clip,
                           Tensor* prediction_out) {
  model_.set_training(true);
  optimizer_.zero_grad();
  Tensor prediction;
  LossResult loss;
  {
    obs::Span span("train.forward");
    prediction = model_.forward(batch.x);
    loss = loss_(prediction, batch.y);
  }
  {
    obs::Span span("train.backward");
    model_.backward(loss.grad);
  }
  {
    obs::Span span("train.step");
    if (grad_clip > 0.0f) optimizer_.clip_grad_norm(grad_clip);
    optimizer_.step();
  }
  if (prediction_out != nullptr) *prediction_out = std::move(prediction);
  return loss.value;
}

std::vector<EpochStats> Trainer::fit(const Dataset& train, const Dataset* val,
                                     const TrainConfig& config) {
  if (train.size() == 0) throw std::invalid_argument("fit: empty train set");
  if (config.epochs <= 0 || config.batch_size <= 0) {
    throw std::invalid_argument("fit: epochs and batch_size must be positive");
  }

  DataLoaderConfig loader_cfg;
  loader_cfg.batch_size = config.batch_size;
  loader_cfg.shuffle = true;
  loader_cfg.shuffle_seed = config.shuffle_seed;
  DataLoader loader(train, loader_cfg);

  std::vector<EpochStats> history;
  history.reserve(static_cast<std::size_t>(config.epochs));

  // Deprecated TrainConfig::verbose forwards to the default sink.
  EpochSink sink = config.on_epoch;
  if (!sink && config.verbose) sink = stdout_epoch_sink();

  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    obs::Span epoch_span("train.epoch", epoch);
    model_.set_training(true);
    double loss_sum = 0.0;
    double metric_sum = 0.0;
    std::int64_t seen = 0;

    loader.start_epoch();
    Sample batch;
    for (;;) {
      bool more;
      {
        // Time the training thread spends waiting on data — the render
        // itself when prefetch is 0, queue wait when batches come from
        // the background thread.
        obs::Span wait("train.data_wait");
        more = loader.next(batch);
      }
      if (!more) break;
      const std::int64_t count = batch.x.extent(0);
      Tensor prediction;
      const float batch_loss = train_batch(
          batch, config.grad_clip, metric_ ? &prediction : nullptr);

      loss_sum += static_cast<double>(batch_loss) * static_cast<double>(count);
      if (metric_) {
        metric_sum += static_cast<double>(metric_(prediction, batch.y)) *
                      static_cast<double>(count);
      }
      seen += count;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = static_cast<float>(loss_sum / seen);
    stats.train_metric =
        metric_ ? static_cast<float>(metric_sum / seen)
                : std::numeric_limits<float>::quiet_NaN();
    if (val != nullptr && val->size() > 0) {
      obs::Span span("train.validate", epoch);
      const EvalStats v = evaluate(*val);
      stats.val_loss = v.loss;
      stats.val_metric = v.metric;
    } else {
      stats.val_loss = std::numeric_limits<float>::quiet_NaN();
      stats.val_metric = std::numeric_limits<float>::quiet_NaN();
    }
    if (sink) sink(stats);
    if (config.lr_decay != 1.0f) {
      optimizer_.set_learning_rate(optimizer_.learning_rate() *
                                   config.lr_decay);
    }
    history.push_back(stats);
  }
  return history;
}

EvalStats Trainer::evaluate(const Dataset& data, std::int64_t batch_size) {
  if (data.size() == 0) throw std::invalid_argument("evaluate: empty dataset");
  obs::Span span("trainer.evaluate", data.size());
  const bool was_training = model_.is_training();
  model_.set_training(false);

  double loss_sum = 0.0;
  double metric_sum = 0.0;
  std::int64_t seen = 0;
  Tensor prediction;  // reused across batches by the cache-free path
  DataLoader loader(data, sequential_loader_config(batch_size));
  loader.start_epoch();
  Sample batch;
  while (loader.next(batch)) {
    const std::int64_t count = batch.x.extent(0);
    model_.infer_into(batch.x, prediction);
    const LossResult loss = loss_(prediction, batch.y);
    loss_sum += static_cast<double>(loss.value) * static_cast<double>(count);
    if (metric_) {
      metric_sum += static_cast<double>(metric_(prediction, batch.y)) *
                    static_cast<double>(count);
    }
    seen += count;
  }
  model_.set_training(was_training);

  EvalStats out;
  out.loss = static_cast<float>(loss_sum / seen);
  out.metric = metric_ ? static_cast<float>(metric_sum / seen)
                       : std::numeric_limits<float>::quiet_NaN();
  return out;
}

Tensor Trainer::predict(const Dataset& data, std::int64_t batch_size) {
  if (data.size() == 0) throw std::invalid_argument("predict: empty dataset");
  obs::Span span("trainer.predict", data.size());
  const bool was_training = model_.is_training();
  model_.set_training(false);

  Tensor out;
  std::int64_t row_size = 0;
  std::int64_t written = 0;
  Tensor prediction;  // reused across batches by the cache-free path
  DataLoader loader(data, sequential_loader_config(batch_size));
  loader.start_epoch();
  Sample batch;
  while (loader.next(batch)) {
    const std::int64_t count = batch.x.extent(0);
    model_.infer_into(batch.x, prediction);
    if (out.empty()) {
      row_size = prediction.size() / prediction.extent(0);
      Shape shape = prediction.shape();
      shape[0] = data.size();
      out = Tensor(std::move(shape));
    }
    std::copy(prediction.data(), prediction.data() + prediction.size(),
              out.data() + written * row_size);
    written += count;
  }
  model_.set_training(was_training);
  return out;
}

}  // namespace sne::nn
