// trainer.h — generic mini-batch training loop shared by the flux CNN,
// the light-curve classifier, the joint model and the GRU baseline. The
// loop is deliberately plain: shuffle, batch, forward, loss, backward,
// clip, step — with per-epoch train/validation statistics collected for
// the convergence figures (Fig. 12). Batches are delivered by a
// DataLoader, so sample synthesis overlaps with the forward/backward
// pass (and fans across the pool for batch-parallel datasets) without
// changing any statistic: results are bitwise identical for any
// prefetch depth or thread count.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "nn/data_loader.h"
#include "nn/dataset.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace sne::nn {

/// Loss adapter: maps (prediction, target) to value + gradient.
using LossFn = std::function<LossResult(const Tensor&, const Tensor&)>;

/// Optional scalar metric (e.g. binary accuracy) computed alongside loss.
using MetricFn = std::function<float(const Tensor&, const Tensor&)>;

/// Per-epoch statistics; validation fields are NaN when no validation set
/// was supplied.
struct EpochStats {
  std::int64_t epoch = 0;
  float train_loss = 0.0f;
  float val_loss = 0.0f;
  float train_metric = 0.0f;
  float val_metric = 0.0f;
};

/// Epoch-event sink: fit() invokes it after every epoch with the fresh
/// statistics. The library never writes to stdout itself — attach
/// stdout_epoch_sink() (or your own progress bar / logger) to observe
/// training.
using EpochSink = std::function<void(const EpochStats&)>;

/// The classic one-line-per-epoch stdout reporter
/// ("epoch %3d  train_loss %.5f  val_loss %.5f").
EpochSink stdout_epoch_sink();

struct TrainConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  float grad_clip = 0.0f;   ///< 0 disables clipping
  float lr_decay = 1.0f;    ///< learning rate ×= lr_decay after each epoch
  std::uint64_t shuffle_seed = 1;
  /// Called after every epoch. Null = silent (unless `verbose`, below).
  EpochSink on_epoch;
  /// Deprecated alias: verbose == true with no on_epoch sink attaches
  /// stdout_epoch_sink(). Prefer setting on_epoch directly.
  bool verbose = false;
};

/// Aggregate result of evaluate(): mean loss (and metric) over a dataset.
struct EvalStats {
  float loss = 0.0f;
  float metric = 0.0f;
};

class Trainer {
 public:
  /// The trainer borrows the model and optimizer; both must outlive it.
  Trainer(Module& model, Optimizer& optimizer, LossFn loss,
          MetricFn metric = nullptr);

  /// Runs config.epochs passes over `train`; when `val` is non-null the
  /// model is evaluated on it (in inference mode) after every epoch.
  /// Batches come from a shuffling DataLoader (seeded by
  /// config.shuffle_seed; the prefetch depth is the process-wide
  /// sne::RuntimeConfig::current().prefetch).
  std::vector<EpochStats> fit(const Dataset& train, const Dataset* val,
                              const TrainConfig& config);

  /// Single gradient pass over one batch; returns the batch loss. Exposed
  /// for fine-grained loops (fine-tuning schedules); fit() routes every
  /// batch through here so clipping/step logic cannot diverge. When
  /// `prediction_out` is non-null it receives the forward output (for
  /// metric computation without a second forward pass).
  float train_batch(const Sample& batch, float grad_clip = 0.0f,
                    Tensor* prediction_out = nullptr);

  /// Mean loss/metric over a dataset in inference mode, computed through
  /// the cache-free Module::infer_into path (no activation caches are
  /// written). Batches are prefetched one ahead of the scoring step.
  /// Restores training mode afterwards if it was set.
  EvalStats evaluate(const Dataset& data, std::int64_t batch_size = 64);

  /// Model predictions over a dataset in inference mode, one row per
  /// sample, concatenated along axis 0. Uses the cache-free
  /// Module::infer_into path with one batch of prefetch.
  Tensor predict(const Dataset& data, std::int64_t batch_size = 64);

 private:
  Module& model_;
  Optimizer& optimizer_;
  LossFn loss_;
  MetricFn metric_;
};

}  // namespace sne::nn
