#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>

namespace sne::obs {

namespace {

std::atomic<bool> g_enabled{false};

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Trace epoch: set on the first enable() so exported timestamps start
// near zero. Zero until then (now_ns() is still monotonic).
std::atomic<std::int64_t> g_epoch{0};

// Per-thread span log. Registered with (and kept alive by) the registry,
// so a snapshot can outlive the thread. The mutex is per-log: recording
// threads never contend with each other, only with a concurrent
// snapshot/reset.
struct ThreadLog {
  std::mutex mutex;
  std::vector<SpanRecord> spans;
  std::uint32_t tid = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadLog>> logs;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::set<std::string, std::less<>> interned;

  static Registry& instance() {
    static Registry* r = new Registry;  // leaked: usable during shutdown
    return *r;
  }
};

ThreadLog& thread_log() {
  thread_local std::shared_ptr<ThreadLog> log = [] {
    auto l = std::make_shared<ThreadLog>();
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mutex);
    l->tid = static_cast<std::uint32_t>(r.logs.size());
    r.logs.push_back(l);
    return l;
  }();
  return *log;
}

// Span nesting depth of the current thread (only spans that were active
// at construction count, so enable/disable races cannot unbalance it).
thread_local std::int32_t tls_depth = 0;

void record_span(const char* name, std::int64_t start, std::int64_t end,
                 std::int64_t arg, std::int32_t depth) {
  ThreadLog& log = thread_log();
  SpanRecord rec;
  rec.name = name;
  rec.start_ns = start;
  rec.dur_ns = end - start;
  rec.arg = arg;
  rec.tid = log.tid;
  rec.depth = depth;
  std::lock_guard<std::mutex> lock(log.mutex);
  log.spans.push_back(rec);
}

}  // namespace

bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void enable() {
  std::int64_t expected = 0;
  g_epoch.compare_exchange_strong(expected, steady_ns(),
                                  std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void disable() { g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    log->spans.clear();
  }
  for (auto& [name, c] : r.counters) {
    c.v_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : r.gauges) {
    g.v_.store(0, std::memory_order_relaxed);
    g.max_.store(0, std::memory_order_relaxed);
  }
}

std::int64_t now_ns() noexcept {
  return steady_ns() - g_epoch.load(std::memory_order_relaxed);
}

const char* intern(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.interned.emplace(name).first->c_str();
}

Span::Span(const char* name) noexcept : Span(name, kNoArg) {}

Span::Span(const char* name, std::int64_t arg) noexcept {
  if (!enabled()) return;  // single relaxed load + branch when disabled
  name_ = name;
  arg_ = arg;
  start_ = now_ns();
  active_ = true;
  ++tls_depth;
}

Span::~Span() {
  if (!active_) return;
  const std::int32_t depth = --tls_depth;
  record_span(name_, start_, now_ns(), arg_, depth);
}

Counter& counter(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.counters.find(name);
  if (it != r.counters.end()) return it->second;
  return r.counters.emplace(std::piecewise_construct,
                            std::forward_as_tuple(name),
                            std::forward_as_tuple())
      .first->second;
}

Gauge& gauge(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.gauges.find(name);
  if (it != r.gauges.end()) return it->second;
  return r.gauges.emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple())
      .first->second;
}

std::vector<SpanRecord> snapshot_spans() {
  Registry& r = Registry::instance();
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    logs = r.logs;
  }
  std::vector<SpanRecord> out;
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> lock(log->mutex);
    out.insert(out.end(), log->spans.begin(), log->spans.end());
  }
  return out;
}

std::vector<CounterRecord> snapshot_counters() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<CounterRecord> out;
  out.reserve(r.counters.size() + r.gauges.size());
  for (const auto& [name, c] : r.counters) {
    CounterRecord rec;
    rec.name = name;
    rec.value = c.value();
    out.push_back(std::move(rec));
  }
  for (const auto& [name, g] : r.gauges) {
    CounterRecord rec;
    rec.name = name;
    rec.value = g.value();
    rec.is_gauge = true;
    rec.max = g.max();
    out.push_back(std::move(rec));
  }
  return out;
}

namespace {

struct NameStats {
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t min_ns = INT64_MAX;
  std::int64_t max_ns = 0;
};

std::string format_row(const char* name, const NameStats& s,
                       double wall_ns) {
  char buf[192];
  const double total_ms = static_cast<double>(s.total_ns) * 1e-6;
  const double share =
      wall_ns > 0.0 ? 100.0 * static_cast<double>(s.total_ns) / wall_ns : 0.0;
  std::snprintf(buf, sizeof(buf),
                "  %-32s %8lld  %10.3f ms  %9.3f ms  %9.3f ms  %9.3f ms"
                "  %5.1f%%\n",
                name, static_cast<long long>(s.count), total_ms,
                total_ms / static_cast<double>(s.count),
                static_cast<double>(s.min_ns) * 1e-6,
                static_cast<double>(s.max_ns) * 1e-6, share);
  return buf;
}

}  // namespace

std::string summary_table() {
  const std::vector<SpanRecord> spans = snapshot_spans();
  std::map<std::string, NameStats> by_name;
  std::int64_t first_start = INT64_MAX;
  std::int64_t last_end = 0;
  for (const SpanRecord& s : spans) {
    NameStats& stats = by_name[s.name];
    ++stats.count;
    stats.total_ns += s.dur_ns;
    stats.min_ns = std::min(stats.min_ns, s.dur_ns);
    stats.max_ns = std::max(stats.max_ns, s.dur_ns);
    first_start = std::min(first_start, s.start_ns);
    last_end = std::max(last_end, s.start_ns + s.dur_ns);
  }
  const double wall_ns =
      spans.empty() ? 0.0 : static_cast<double>(last_end - first_start);

  std::string out;
  out += "spans (wall ";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f ms):\n", wall_ns * 1e-6);
    out += buf;
  }
  out +=
      "  name                                count       total          "
      "mean        min        max   wall\n";
  for (const auto& [name, stats] : by_name) {
    out += format_row(name.c_str(), stats, wall_ns);
  }
  const std::vector<CounterRecord> counters = snapshot_counters();
  if (!counters.empty()) {
    out += "counters:\n";
    for (const CounterRecord& c : counters) {
      char buf[160];
      if (c.is_gauge) {
        std::snprintf(buf, sizeof(buf), "  %-32s %12lld  (max %lld)\n",
                      c.name.c_str(), static_cast<long long>(c.value),
                      static_cast<long long>(c.max));
      } else {
        std::snprintf(buf, sizeof(buf), "  %-32s %12lld\n", c.name.c_str(),
                      static_cast<long long>(c.value));
      }
      out += buf;
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os) {
  std::vector<SpanRecord> spans = snapshot_spans();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata rows so the tracks read as "thread 0..N".
  std::set<std::uint32_t> tids;
  for (const SpanRecord& s : spans) tids.insert(s.tid);
  char buf[256];
  for (const std::uint32_t tid : tids) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"thread %u\"}}",
                  first ? "" : ",", tid, tid);
    os << buf;
    first = false;
  }
  for (const SpanRecord& s : spans) {
    // Span names are literals or interned identifiers (no quotes or
    // backslashes), so they embed into JSON without escaping.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                  first ? "" : ",", s.name,
                  static_cast<double>(s.start_ns) * 1e-3,
                  static_cast<double>(s.dur_ns) * 1e-3, s.tid);
    os << buf;
    if (s.arg != kNoArg) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"arg\":%lld}",
                    static_cast<long long>(s.arg));
      os << buf;
    }
    os << "}";
    first = false;
  }
  // Counters ride along as a final instant-event summary per name.
  const std::int64_t ts = spans.empty() ? 0 : now_ns();
  for (const CounterRecord& c : snapshot_counters()) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,"
                  "\"args\":{\"value\":%lld}}",
                  first ? "" : ",", c.name.c_str(),
                  static_cast<double>(ts) * 1e-3,
                  static_cast<long long>(c.value));
    os << buf;
    first = false;
  }
  os << "]}\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

}  // namespace sne::obs
