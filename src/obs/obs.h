// obs.h — lightweight, thread-safe telemetry: RAII Span scoped timers
// with per-thread nesting, named monotonic Counters and Gauges, a
// process-wide Registry behind free functions, and two exporters (a
// human-readable summary table and chrome://tracing JSON with one track
// per thread).
//
// Cost contract: the instrumentation is designed to live in hot loops
// permanently. While tracing is disabled every Span constructor and
// Counter::add is a single relaxed atomic load and a branch — no clock
// read, no allocation, no lock. Enabling mid-process (obs::enable())
// needs no recompilation; spans and counts start flowing from the next
// call site hit. While enabled, completed spans append to per-thread
// buffers under an uncontended per-buffer mutex, so concurrent threads
// never serialize against each other on a shared log.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sne::obs {

/// True while telemetry is being captured. One relaxed atomic load.
bool enabled() noexcept;

/// Starts capturing. Also (re)bases the trace clock on the first call so
/// exported timestamps are relative to the first enable().
void enable();

/// Stops capturing. Already-collected spans and counter values survive
/// until reset().
void disable();

/// Drops every collected span and zeroes all counters and gauges.
/// Capture state (enabled/disabled) is unchanged.
void reset();

/// Monotonic nanoseconds (steady clock) since the trace epoch.
std::int64_t now_ns() noexcept;

/// Interns a dynamically built name and returns a stable pointer that
/// lives for the process. Use for span/counter names that are not string
/// literals (e.g. per-plan-step labels). Thread-safe; O(log n) + one
/// allocation on the first sighting, lookup afterwards.
const char* intern(std::string_view name);

constexpr std::int64_t kNoArg = INT64_MIN;

/// RAII scoped timer. The constructor samples the clock and pushes one
/// level of per-thread nesting; the destructor records a completed span
/// (name, interval, thread, depth, optional integer argument). Name must
/// outlive the process (string literal or intern()).
class Span {
 public:
  explicit Span(const char* name) noexcept;
  Span(const char* name, std::int64_t arg) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_ = 0;
  std::int64_t arg_ = kNoArg;
  bool active_ = false;
};

/// Named monotonic counter. Obtain through obs::counter() and keep the
/// reference (typically a function-local static) so the registry lookup
/// happens once per call site. add() is a relaxed-atomic branch when
/// disabled and a relaxed fetch_add when enabled — exact under
/// concurrent increments either way.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  Counter() = default;  // prefer obs::counter(): detached counters are
                        // invisible to the exporters
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend void reset();
  std::atomic<std::int64_t> v_{0};
};

/// Named gauge: records the most recent value and the high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  Gauge() = default;  // prefer obs::gauge(), as with Counter
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend void reset();
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Registry lookup (create on first use). The returned reference is
/// stable for the process lifetime.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);

/// One completed span, as collected.
struct SpanRecord {
  const char* name = nullptr;
  std::int64_t start_ns = 0;  ///< relative to the trace epoch
  std::int64_t dur_ns = 0;
  std::int64_t arg = kNoArg;  ///< kNoArg when none was given
  std::uint32_t tid = 0;      ///< dense per-process thread id, 0 = first seen
  std::int32_t depth = 0;     ///< nesting depth on its thread, 0 = root
};

struct CounterRecord {
  std::string name;
  std::int64_t value = 0;
  bool is_gauge = false;
  std::int64_t max = 0;  ///< high-water mark (gauges only)
};

/// Copies of everything collected so far (order: per thread, in
/// completion order). Safe to call while other threads keep recording.
std::vector<SpanRecord> snapshot_spans();
std::vector<CounterRecord> snapshot_counters();

/// Human-readable aggregation: one row per span name (count, total,
/// mean, min, max, wall-clock share) followed by counters and gauges.
std::string summary_table();

/// chrome://tracing / Perfetto "traceEvents" JSON. Each thread gets its
/// own track; spans are complete ("ph":"X") events in microseconds.
void write_chrome_trace(std::ostream& os);

/// Convenience: writes the trace to a file. Returns false (and writes
/// nothing) if the file cannot be opened.
bool write_chrome_trace(const std::string& path);

}  // namespace sne::obs
