#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sne::serve {

namespace {

std::string errno_string(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

ScoreClient ScoreClient::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error(errno_string("client: socket"));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("client: unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = errno_string("client: connect " + path);
    ::close(fd);
    throw std::runtime_error(err);
  }
  return ScoreClient(fd);
}

ScoreClient ScoreClient::connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error(errno_string("client: socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("client: bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = errno_string("client: connect " + host + ":" +
                                         std::to_string(port));
    ::close(fd);
    throw std::runtime_error(err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return ScoreClient(fd);
}

ScoreClient::ScoreClient(int fd) : fd_(fd) {
  try {
    read_hello();
  } catch (...) {
    ::close(fd_);
    throw;
  }
}

ScoreClient::~ScoreClient() {
  if (fd_ >= 0) ::close(fd_);
}

ScoreClient::ScoreClient(ScoreClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      sample_numel_(other.sample_numel_),
      output_numel_(other.output_numel_),
      max_batch_(other.max_batch_),
      max_delay_us_(other.max_delay_us_),
      next_id_(other.next_id_) {}

ScoreClient& ScoreClient::operator=(ScoreClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    sample_numel_ = other.sample_numel_;
    output_numel_ = other.output_numel_;
    max_batch_ = other.max_batch_;
    max_delay_us_ = other.max_delay_us_;
    next_id_ = other.next_id_;
  }
  return *this;
}

void ScoreClient::read_hello() {
  if (read_frame(fd_, frame_) == ReadStatus::kEof) {
    throw std::runtime_error("client: server closed before hello");
  }
  if (frame_.type != FrameType::kHello || frame_.payload.size() != 32) {
    throw std::runtime_error("client: malformed hello frame");
  }
  sample_numel_ = static_cast<std::int64_t>(get_u64(frame_.payload.data()));
  output_numel_ =
      static_cast<std::int64_t>(get_u64(frame_.payload.data() + 8));
  max_batch_ = static_cast<std::int64_t>(get_u64(frame_.payload.data() + 16));
  max_delay_us_ =
      static_cast<std::int64_t>(get_u64(frame_.payload.data() + 24));
  if (sample_numel_ <= 0 || output_numel_ <= 0) {
    throw std::runtime_error("client: hello advertises empty shapes");
  }
}

void ScoreClient::send_request(std::uint64_t id,
                               std::span<const float> sample) {
  if (static_cast<std::int64_t>(sample.size()) != sample_numel_) {
    throw std::runtime_error(
        "client: sample holds " + std::to_string(sample.size()) +
        " floats, server expects " + std::to_string(sample_numel_));
  }
  sendbuf_.clear();
  put_u64(sendbuf_, id);
  put_f32(sendbuf_, sample);
  if (!write_frame(fd_, FrameType::kScoreRequest,
                   {sendbuf_.data(), sendbuf_.size()})) {
    throw std::runtime_error("client: connection lost while sending");
  }
}

ScoreResponse ScoreClient::recv_response() {
  if (read_frame(fd_, frame_) == ReadStatus::kEof) {
    throw std::runtime_error("client: server closed the connection");
  }
  ScoreResponse resp;
  if (frame_.type == FrameType::kScoreOk) {
    const std::size_t score_bytes =
        static_cast<std::size_t>(output_numel_) * sizeof(float);
    if (frame_.payload.size() != 8 + score_bytes) {
      throw std::runtime_error("client: score frame has wrong size");
    }
    resp.id = get_u64(frame_.payload.data());
    resp.ok = true;
    resp.scores.resize(static_cast<std::size_t>(output_numel_));
    std::memcpy(resp.scores.data(), frame_.payload.data() + 8, score_bytes);
    return resp;
  }
  if (frame_.type == FrameType::kScoreError) {
    if (frame_.payload.size() < 16) {
      throw std::runtime_error("client: error frame has wrong size");
    }
    resp.id = get_u64(frame_.payload.data());
    resp.ok = false;
    resp.error = static_cast<WireError>(get_u64(frame_.payload.data() + 8));
    resp.message.assign(frame_.payload.begin() + 16, frame_.payload.end());
    return resp;
  }
  throw std::runtime_error("client: unexpected frame type from server");
}

std::vector<float> ScoreClient::score(std::span<const float> sample) {
  const std::uint64_t id = next_id_++;
  send_request(id, sample);
  ScoreResponse resp = recv_response();
  if (resp.id != id) {
    throw std::runtime_error("client: response id does not match request");
  }
  if (!resp.ok) throw ScoreError(resp.error, resp.message);
  return std::move(resp.scores);
}

}  // namespace sne::serve
