// client.h — the client side of the scoring daemon's wire protocol.
// A ScoreClient owns one connected socket (Unix or TCP), consumes the
// server's hello frame (which advertises the flat sample/output shapes
// and the batching knobs), and then speaks score requests. Two usage
// levels:
//
//   - score(sample): one synchronous round trip. Throws ScoreError with
//     the server's typed code (overloaded / shutting down / ...) on a
//     rejection.
//   - send_request(id, sample) + recv_response(): explicit pipelining —
//     keep many requests in flight on one connection (the bench does
//     this) and match responses to requests by id. Responses can come
//     back in any order when the server runs multiple workers.
//
// A ScoreClient is NOT thread-safe; use one per thread (connections are
// cheap) — that is what the integration test's concurrent clients do.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace sne::serve {

/// A typed rejection from the server (carries the wire error code).
class ScoreError : public std::runtime_error {
 public:
  ScoreError(WireError code, const std::string& what)
      : std::runtime_error(std::string(wire_error_name(code)) + ": " + what),
        code_(code) {}
  WireError code() const noexcept { return code_; }

 private:
  WireError code_;
};

/// One server reply, matched to its request by id.
struct ScoreResponse {
  std::uint64_t id = 0;
  bool ok = false;
  std::vector<float> scores;         ///< output_numel floats when ok
  WireError error = WireError::kInternal;  ///< valid when !ok
  std::string message;               ///< valid when !ok
};

class ScoreClient {
 public:
  /// Connect and consume the hello frame. Throw std::runtime_error on
  /// connection failure or a protocol violation in the hello.
  static ScoreClient connect_unix(const std::string& path);
  static ScoreClient connect_tcp(const std::string& host, int port);

  ~ScoreClient();
  ScoreClient(ScoreClient&& other) noexcept;
  ScoreClient& operator=(ScoreClient&& other) noexcept;
  ScoreClient(const ScoreClient&) = delete;
  ScoreClient& operator=(const ScoreClient&) = delete;

  /// Shapes and batching knobs advertised by the server's hello frame.
  std::int64_t sample_numel() const noexcept { return sample_numel_; }
  std::int64_t output_numel() const noexcept { return output_numel_; }
  std::int64_t server_max_batch() const noexcept { return max_batch_; }
  std::int64_t server_max_delay_us() const noexcept { return max_delay_us_; }

  /// Sends one request (no wait). `sample` must hold exactly
  /// sample_numel() floats; throws std::runtime_error otherwise or when
  /// the connection is gone.
  void send_request(std::uint64_t id, std::span<const float> sample);

  /// Blocks for the next response frame. Throws std::runtime_error on a
  /// closed connection or malformed traffic (typed rejections are NOT
  /// exceptions here — they come back as ok == false).
  ScoreResponse recv_response();

  /// One synchronous round trip. Throws ScoreError on a typed rejection.
  std::vector<float> score(std::span<const float> sample);

 private:
  explicit ScoreClient(int fd);
  void read_hello();

  int fd_ = -1;
  std::int64_t sample_numel_ = 0;
  std::int64_t output_numel_ = 0;
  std::int64_t max_batch_ = 0;
  std::int64_t max_delay_us_ = 0;
  std::uint64_t next_id_ = 1;
  Frame frame_;               ///< reused receive buffer
  std::vector<char> sendbuf_;  ///< reused request payload buffer
};

}  // namespace sne::serve
