#include "serve/micro_batcher.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace sne::serve {

namespace {

obs::Gauge& depth_gauge() {
  static obs::Gauge& g = obs::gauge("serve.queue_depth");
  return g;
}

obs::Counter& reject_counter() {
  static obs::Counter& c = obs::counter("serve.rejected");
  return c;
}

}  // namespace

MicroBatcher::MicroBatcher(MicroBatcherConfig config) : config_(config) {
  if (config_.max_batch <= 0) {
    throw std::invalid_argument("MicroBatcher: max_batch must be positive");
  }
  if (config_.max_delay_us < 0) {
    throw std::invalid_argument("MicroBatcher: max_delay_us must be >= 0");
  }
  if (config_.max_queue < config_.max_batch) {
    throw std::invalid_argument(
        "MicroBatcher: max_queue must be >= max_batch");
  }
}

MicroBatcher::Admit MicroBatcher::submit(ScoreJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return Admit::kShuttingDown;
    if (static_cast<std::int64_t>(queue_.size()) >= config_.max_queue) {
      reject_counter().add(1);
      return Admit::kOverloaded;
    }
    job.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(job));
    depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
  }
  // Every push notifies: the first job of an empty queue must wake a
  // worker so it can arm the deadline timer, and a push that completes a
  // full batch must wake one to flush it.
  ready_.notify_one();
  return Admit::kOk;
}

bool MicroBatcher::next_batch(std::vector<ScoreJob>& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Wait until the flush predicate holds: full batch, expired oldest
    // request, or shutdown (drain whatever is queued, immediately).
    while (!shutdown_ &&
           static_cast<std::int64_t>(queue_.size()) < config_.max_batch) {
      if (queue_.empty()) {
        ready_.wait(lock);
        continue;
      }
      const auto deadline =
          queue_.front().enqueued +
          std::chrono::microseconds(config_.max_delay_us);
      if (ready_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;  // oldest request aged out: flush the partial batch
      }
      // Woken by a push or shutdown (or spuriously): re-evaluate. A new
      // front (another worker flushed meanwhile) re-arms the deadline.
    }
    if (!queue_.empty()) break;
    if (shutdown_) return false;
    // A concurrent worker drained the queue between our wake-up and the
    // lock re-acquisition; go back to waiting.
  }

  out.clear();
  const auto take = std::min<std::size_t>(
      queue_.size(), static_cast<std::size_t>(config_.max_batch));
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
  return true;
}

void MicroBatcher::begin_shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  ready_.notify_all();
}

std::int64_t MicroBatcher::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(queue_.size());
}

bool MicroBatcher::shutting_down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

}  // namespace sne::serve
