// micro_batcher.h — the request coalescer at the heart of the scoring
// daemon. Single-cutout score requests land in one bounded FIFO; worker
// threads pull *batches* that flush on size-or-deadline: a batch is
// ready the moment max_batch requests are queued, OR when the oldest
// queued request has waited max_delay_us microseconds — whichever comes
// first (the same two-knob ready() predicate as a buffered network
// layer's min-bytes/max-delay pair). Admission control is reject-fast,
// not block: a submit against a full queue returns a typed Overloaded
// verdict immediately so the caller can push backpressure to the client
// instead of tying up a reader thread.
//
// Thread-safety: any number of submitting threads and any number of
// worker threads. FIFO order is preserved into batches, so with one
// worker the response order equals the submission order.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace sne::serve {

struct MicroBatcherConfig {
  /// Flush as soon as this many requests are queued (the batch size the
  /// worker's InferenceSession actually runs).
  std::int64_t max_batch = 16;
  /// Flush the oldest queued request once it has waited this long, even
  /// if the batch is not full — the tail-latency bound under light load.
  /// 0 flushes immediately (every batch is whatever is queued).
  std::int64_t max_delay_us = 2000;
  /// Admission bound: submits beyond this many queued requests are
  /// rejected with Admit::kOverloaded.
  std::int64_t max_queue = 1024;
};

/// One queued score request: the flattened cutout plus the completion
/// callbacks the owning connection supplied. Callbacks run on a worker
/// thread after the batch is scored (or on the draining worker when the
/// batch fails); they must not block on the batcher itself.
struct ScoreJob {
  std::uint64_t id = 0;
  std::vector<float> input;
  std::chrono::steady_clock::time_point enqueued{};
  std::function<void(std::span<const float> scores)> deliver;
  std::function<void(WireError code, const std::string& what)> fail;
};

class MicroBatcher {
 public:
  enum class Admit {
    kOk,            ///< queued; a deliver/fail callback will fire
    kOverloaded,    ///< queue full — caller reports backpressure
    kShuttingDown,  ///< drain in progress — no new work
  };

  explicit MicroBatcher(MicroBatcherConfig config);

  /// Stamps the enqueue time and queues the job (FIFO). O(1); never
  /// blocks. On a non-kOk verdict the job was NOT queued and its
  /// callbacks will not fire — the caller owns the rejection.
  Admit submit(ScoreJob job);

  /// Blocks until a batch is ready (size-or-deadline, above) and moves up
  /// to max_batch jobs into `out` (cleared first; capacity reused).
  /// During shutdown every queued job is still handed out — drain, don't
  /// drop. Returns false only when shutting down AND the queue is empty:
  /// the worker's signal to exit.
  bool next_batch(std::vector<ScoreJob>& out);

  /// Begins the drain: subsequent submits are rejected with
  /// kShuttingDown, and workers blocked in next_batch wake to flush the
  /// remaining queue immediately (no deadline wait).
  void begin_shutdown();

  std::int64_t depth() const;
  bool shutting_down() const;
  const MicroBatcherConfig& config() const noexcept { return config_; }

 private:
  MicroBatcherConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  ///< workers wait for work/shutdown
  std::deque<ScoreJob> queue_;
  bool shutdown_ = false;
};

}  // namespace sne::serve
