#include "serve/scorer.h"

#include <numeric>
#include <stdexcept>
#include <utility>

#include "tensor/view.h"

namespace sne::serve {

namespace {

std::int64_t numel(const Shape& s) {
  return std::accumulate(s.begin(), s.end(), std::int64_t{1},
                         std::multiplies<>());
}

class PlanScorer final : public Scorer {
 public:
  explicit PlanScorer(std::shared_ptr<const infer::InferencePlan> plan)
      : session_(plan),
        sample_numel_(numel(plan->sample_input_shape())),
        output_numel_(numel(plan->sample_output_shape())) {
    // [N, ...sample shape] template; extent 0 is patched per batch.
    batch_shape_.push_back(0);
    for (const std::int64_t e : plan->sample_input_shape()) {
      batch_shape_.push_back(e);
    }
  }

  std::int64_t sample_numel() const override { return sample_numel_; }
  std::int64_t output_numel() const override { return output_numel_; }

  void run(const Tensor& batch, Tensor& out) override {
    const std::int64_t n = batch.extent(0);
    batch_shape_[0] = n;
    // Reinterpret the flat rows as the plan's input shape — a view, no
    // copy — then flatten the session's [N, ...out shape] in place.
    session_.run(ConstTensorView(batch.data(), batch_shape_), out);
    out.resize({n, output_numel_});
  }

 private:
  infer::InferenceSession session_;
  std::int64_t sample_numel_;
  std::int64_t output_numel_;
  Shape batch_shape_;
};

class JointScorer final : public Scorer {
 public:
  explicit JointScorer(infer::JointSession session)
      : session_(std::move(session)) {
    const infer::JointGlue& glue = session_.glue();
    sample_numel_ =
        glue.num_bands * (2 * glue.stamp * glue.stamp) + glue.num_bands;
    output_numel_ =
        numel(session_.classifier().plan().sample_output_shape());
  }

  std::int64_t sample_numel() const override { return sample_numel_; }
  std::int64_t output_numel() const override { return output_numel_; }

  void run(const Tensor& batch, Tensor& out) override {
    session_.run(batch, out);
    out.resize({batch.extent(0), output_numel_});
  }

 private:
  infer::JointSession session_;
  std::int64_t sample_numel_ = 0;
  std::int64_t output_numel_ = 0;
};

int sources_set(const ScorerSpec& spec) {
  return (spec.plan ? 1 : 0) + (spec.joint ? 1 : 0) + (spec.custom ? 1 : 0);
}

}  // namespace

std::unique_ptr<Scorer> make_scorer(const ScorerSpec& spec) {
  if (sources_set(spec) != 1) {
    throw std::invalid_argument(
        "ScorerSpec: exactly one of plan/joint/custom must be set");
  }
  if (spec.plan) return std::make_unique<PlanScorer>(spec.plan);
  if (spec.joint) return std::make_unique<JointScorer>(spec.joint());
  return spec.custom();
}

ScorerFactory scorer_factory(ScorerSpec spec) {
  if (sources_set(spec) != 1) {
    throw std::invalid_argument(
        "ScorerSpec: exactly one of plan/joint/custom must be set");
  }
  return [spec = std::move(spec)] { return make_scorer(spec); };
}

// ---- deprecated forwards --------------------------------------------

std::unique_ptr<Scorer> make_scorer(
    std::shared_ptr<const infer::InferencePlan> plan) {
  ScorerSpec spec;
  spec.plan = std::move(plan);
  return make_scorer(spec);
}

std::unique_ptr<Scorer> make_scorer(infer::JointSession session) {
  return std::make_unique<JointScorer>(std::move(session));
}

}  // namespace sne::serve
