// scorer.h — the per-worker scoring backend of the daemon. The server
// is generic over what model it serves: a Scorer turns a batch of
// flat samples ([N, sample_numel]) into a batch of flat scores
// ([N, output_numel]); the wire protocol speaks exactly those two
// numbers (advertised in the hello frame).
//
// Construction goes through one ScorerSpec, whatever the backend: a
// plain InferencePlan (the band CNN, the classifier, any Sequential),
// the two-stage JointSession, or a fully custom Scorer such as the
// alert-stream FilterCascade adapter in src/stream. The server mints
// one scorer per worker through scorer_factory(spec).
//
// A Scorer inherits InferenceSession's thread-safety contract: NOT safe
// for concurrent run() calls, cheap to build per worker over a shared
// plan. The server builds one per worker through a ScorerFactory, on the
// thread that calls ScoreServer::start() — factories never run
// concurrently with each other.
#pragma once

#include <functional>
#include <memory>

#include "infer/session.h"
#include "tensor/tensor.h"

namespace sne::serve {

class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Flat floats per request cutout / per response, as on the wire.
  virtual std::int64_t sample_numel() const = 0;
  virtual std::int64_t output_numel() const = 0;

  /// Scores `batch` (shape [N, sample_numel], contiguous) into `out`,
  /// resized to [N, output_numel]. Reusing both tensors across calls
  /// keeps the steady state allocation-free.
  virtual void run(const Tensor& batch, Tensor& out) = 0;
};

using ScorerFactory = std::function<std::unique_ptr<Scorer>()>;

/// The one way to say what a server scores. Exactly one source must be
/// set; make_scorer/scorer_factory refuse anything else. The builders
/// (not built objects) make the spec reusable: the server invokes them
/// once per worker.
struct ScorerSpec {
  /// Plan-backed: each flat row is reinterpreted as the plan's sample
  /// input shape (zero-copy view), scored by a private
  /// InferenceSession, and the output flattened per row. The plan is
  /// shared across workers.
  std::shared_ptr<const infer::InferencePlan> plan;
  /// Joint-model-backed: builds one JointSession per worker (e.g.
  /// [] { return core::make_session(model, options); }). The session
  /// already consumes flat [N, bands·2·S·S + bands] rows.
  std::function<infer::JointSession()> joint;
  /// Escape hatch for scorers the serve library does not know about
  /// (stream::make_cascade_scorer_spec uses this). Invoked once per
  /// worker.
  std::function<std::unique_ptr<Scorer>()> custom;
};

/// Builds one scorer from the spec. Throws std::invalid_argument unless
/// exactly one of plan/joint/custom is set.
std::unique_ptr<Scorer> make_scorer(const ScorerSpec& spec);

/// The per-worker factory the ScoreServer consumes; validates the spec
/// eagerly so a bad spec fails at configuration time, not in start().
ScorerFactory scorer_factory(ScorerSpec spec);

// ---- deprecated forwards (one release; see docs/API.md) -------------

[[deprecated("wrap the plan in a ScorerSpec")]]
std::unique_ptr<Scorer> make_scorer(
    std::shared_ptr<const infer::InferencePlan> plan);

[[deprecated("use ScorerSpec::joint with a session builder")]]
std::unique_ptr<Scorer> make_scorer(infer::JointSession session);

}  // namespace sne::serve
