// scorer.h — the per-worker scoring backend of the daemon. The server
// is generic over what model it serves: a Scorer turns a batch of
// flat samples ([N, sample_numel]) into a batch of flat scores
// ([N, output_numel]); the wire protocol speaks exactly those two
// numbers (advertised in the hello frame). Adapters exist for the two
// serving executors the repo has — a plain InferencePlan (the band CNN,
// the classifier, any Sequential) and the two-stage JointSession.
//
// A Scorer inherits InferenceSession's thread-safety contract: NOT safe
// for concurrent run() calls, cheap to build per worker over a shared
// plan. The server builds one per worker through a ScorerFactory, on the
// thread that calls ScoreServer::start() — factories never run
// concurrently with each other.
#pragma once

#include <functional>
#include <memory>

#include "infer/session.h"
#include "tensor/tensor.h"

namespace sne::serve {

class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Flat floats per request cutout / per response, as on the wire.
  virtual std::int64_t sample_numel() const = 0;
  virtual std::int64_t output_numel() const = 0;

  /// Scores `batch` (shape [N, sample_numel], contiguous) into `out`,
  /// resized to [N, output_numel]. Reusing both tensors across calls
  /// keeps the steady state allocation-free.
  virtual void run(const Tensor& batch, Tensor& out) = 0;
};

using ScorerFactory = std::function<std::unique_ptr<Scorer>()>;

/// Scorer over a shared InferencePlan: each flat row is reinterpreted as
/// the plan's sample input shape (zero-copy view), scored by a private
/// InferenceSession, and the output flattened per row.
std::unique_ptr<Scorer> make_scorer(
    std::shared_ptr<const infer::InferencePlan> plan);

/// Scorer over the joint image→class model (which already consumes flat
/// [N, bands·2·S·S + bands] rows). The session is moved in; build one
/// per factory call via core::make_session.
std::unique_ptr<Scorer> make_scorer(infer::JointSession session);

}  // namespace sne::serve
