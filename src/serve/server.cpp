#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/obs.h"

namespace sne::serve {

namespace {

constexpr std::size_t kLatencyReservoir = 16384;
constexpr int kListenBacklog = 64;

obs::Counter& requests_counter() {
  static obs::Counter& c = obs::counter("serve.requests");
  return c;
}

obs::Counter& batches_counter() {
  static obs::Counter& c = obs::counter("serve.batches");
  return c;
}

obs::Counter& scored_counter() {
  static obs::Counter& c = obs::counter("serve.scored");
  return c;
}

// Power-of-two batch-fill buckets (1, 2, 3–4, …, 65+), mirrored into
// obs counters so a trace capture carries the fill distribution too.
std::size_t fill_bucket(std::int64_t fill) {
  std::size_t b = 0;
  for (std::int64_t edge = 1; b + 1 < 8 && fill > edge; ++b) edge *= 2;
  return b;
}

obs::Counter& fill_counter(std::size_t bucket) {
  static obs::Counter* counters[8] = {
      &obs::counter("serve.batch_fill.1"),
      &obs::counter("serve.batch_fill.2"),
      &obs::counter("serve.batch_fill.le4"),
      &obs::counter("serve.batch_fill.le8"),
      &obs::counter("serve.batch_fill.le16"),
      &obs::counter("serve.batch_fill.le32"),
      &obs::counter("serve.batch_fill.le64"),
      &obs::counter("serve.batch_fill.gt64"),
  };
  return *counters[bucket];
}

void put_u64_at(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// A score request that was framed well enough to carry its 8-byte id
// but is otherwise malformed: the id rides the exception so the
// bad-frame error sent back names the request a pipelined client can
// actually correlate, instead of a hardcoded 0.
struct BadRequestError : std::runtime_error {
  BadRequestError(std::uint64_t id, const std::string& what)
      : std::runtime_error(what), id(id) {}
  std::uint64_t id;
};

}  // namespace

std::string ServerStats::to_string() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests %lld (rejected %lld, wire errors %lld, internal %lld)\n"
      "batches %lld, mean fill %.2f, max queue depth %lld\n"
      "latency p50 %.3f ms, p99 %.3f ms (%lld samples)\n"
      "fill histogram [1|2|<=4|<=8|<=16|<=32|<=64|>64]: "
      "%lld %lld %lld %lld %lld %lld %lld %lld\n",
      static_cast<long long>(requests), static_cast<long long>(rejected),
      static_cast<long long>(wire_errors),
      static_cast<long long>(internal_errors),
      static_cast<long long>(batches), mean_batch_fill,
      static_cast<long long>(max_queue_depth), p50_ms, p99_ms,
      static_cast<long long>(latency_samples),
      static_cast<long long>(batch_fill[0]),
      static_cast<long long>(batch_fill[1]),
      static_cast<long long>(batch_fill[2]),
      static_cast<long long>(batch_fill[3]),
      static_cast<long long>(batch_fill[4]),
      static_cast<long long>(batch_fill[5]),
      static_cast<long long>(batch_fill[6]),
      static_cast<long long>(batch_fill[7]));
  return buf;
}

// One live client connection. The Connection owns the fd: the reader
// thread holds one reference for the life of its loop, and every
// in-flight ScoreJob's deliver/fail callback holds another, so the
// descriptor stays open — and its number can never be recycled onto a
// different client — until the last queued response for this connection
// has been written. Only ~Connection (the final reference) closes;
// everyone else, reader exit and stop() alike, at most ::shutdown()s.
struct ScoreServer::Connection {
  explicit Connection(int fd) noexcept : fd(fd) {}
  ~Connection() { ::close(fd); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;
  std::mutex write_mutex;  ///< responses come from worker threads
};

ScoreServer::ScoreServer(ScoreServerConfig config, ScorerFactory factory)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      batcher_(config_.batcher) {
  if (config_.workers <= 0) {
    throw std::invalid_argument("ScoreServer: workers must be positive");
  }
  if (!factory_) {
    throw std::invalid_argument("ScoreServer: a scorer factory is required");
  }
  latency_ns_.resize(kLatencyReservoir, 0);
}

ScoreServer::ScoreServer(ScoreServerConfig config, ScorerSpec spec)
    : ScoreServer(std::move(config), scorer_factory(std::move(spec))) {}

ScoreServer::~ScoreServer() { stop(); }

void ScoreServer::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("ScoreServer: already started");
  }
  if (config_.unix_path.empty() && config_.tcp_port < 0) {
    throw std::invalid_argument(
        "ScoreServer: configure a unix_path and/or a tcp_port");
  }

  // Per-worker scorers, built serially here: scorer factories (plan
  // compilation in particular) are not required to be concurrency-safe.
  for (int w = 0; w < config_.workers; ++w) {
    scorers_.push_back(factory_());
    if (scorers_.back() == nullptr) {
      throw std::runtime_error("ScoreServer: scorer factory returned null");
    }
    if (w == 0) {
      sample_numel_ = scorers_[0]->sample_numel();
      output_numel_ = scorers_[0]->output_numel();
      if (sample_numel_ <= 0 || output_numel_ <= 0) {
        throw std::runtime_error("ScoreServer: scorer reports empty shapes");
      }
      const std::uint64_t sample_bytes =
          static_cast<std::uint64_t>(sample_numel_) * sizeof(float);
      if (8 + sample_bytes > kMaxFramePayload) {
        throw std::runtime_error(
            "ScoreServer: sample does not fit in a wire frame");
      }
    } else if (scorers_.back()->sample_numel() != sample_numel_ ||
               scorers_.back()->output_numel() != output_numel_) {
      throw std::runtime_error(
          "ScoreServer: scorer factory produced mismatched shapes");
    }
  }

  if (!config_.unix_path.empty()) {
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) throw std::runtime_error(errno_string("serve: socket"));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("serve: unix socket path too long: " +
                               config_.unix_path);
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.unix_path.c_str());  // stale socket from a past run
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(unix_fd_, kListenBacklog) != 0) {
      throw std::runtime_error(
          errno_string(("serve: cannot listen on " + config_.unix_path)
                           .c_str()));
    }
  }
  if (config_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) throw std::runtime_error(errno_string("serve: socket"));
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::inet_pton(AF_INET, config_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("serve: bad tcp_host " + config_.tcp_host);
    }
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(tcp_fd_, kListenBacklog) != 0) {
      throw std::runtime_error(errno_string("serve: cannot listen on tcp"));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  for (int w = 0; w < config_.workers; ++w) {
    worker_threads_.emplace_back(
        [this, w] { worker_loop(scorers_[static_cast<std::size_t>(w)].get()); });
  }
  if (unix_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(unix_fd_, false); });
  }
  if (tcp_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(tcp_fd_, true); });
  }
}

void ScoreServer::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;

  // 1. Stop accepting: shutdown wakes the blocked accept(), the loops
  //    exit, then the listener fds are closed.
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());

  // 2. Drain: new submissions now bounce with a typed shutting-down
  //    error, while the workers flush everything already admitted — each
  //    of those requests still gets its response.
  batcher_.begin_shutdown();
  for (std::thread& t : worker_threads_) t.join();
  worker_threads_.clear();

  // 3. Unblock and retire the readers. Connections own their fds:
  //    shutdown here wakes blocked read_frame() calls; each fd closes
  //    when its Connection's last reference (reader or in-flight
  //    response callback) drops.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& conn : connections_) ::shutdown(conn->fd, SHUT_RDWR);
    readers.swap(reader_threads_);
  }
  for (std::thread& t : readers) t.join();
}

void ScoreServer::accept_loop(int listen_fd, bool tcp) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopped_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED || errno == ECONNRESET) {
        continue;  // that one connection died, not the listener
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Descriptor/memory exhaustion under load is transient: back off
        // briefly and keep accepting. Returning here would leave the
        // socket bound but forever unserved — clients would hang in the
        // backlog while the daemon looks healthy.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      return;  // the listener itself is gone or broken: stop accepting
    }
    auto conn = std::make_shared<Connection>(fd);  // owns fd from here on
    if (stopped_.load()) return;
    if (tcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stopped_.load()) return;
    connections_.push_back(conn);
    reader_threads_.emplace_back(
        [this, conn = std::move(conn)]() mutable { reader_loop(conn); });
  }
}

void ScoreServer::send_error(Connection& conn, std::uint64_t id,
                             WireError code, const std::string& what) {
  char head[16];
  put_u64_at(head, id);
  put_u64_at(head + 8, static_cast<std::uint64_t>(code));
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  write_frame(conn.fd, FrameType::kScoreError, {head, sizeof(head)},
              {what.data(), what.size()});
}

void ScoreServer::record_latency(std::int64_t ns) {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_ns_[latency_next_] = ns;
  latency_next_ = (latency_next_ + 1) % latency_ns_.size();
  ++latency_count_;
}

void ScoreServer::handle_request(const std::shared_ptr<Connection>& conn,
                                 const Frame& frame) {
  const std::uint64_t sample_bytes =
      static_cast<std::uint64_t>(sample_numel_) * sizeof(float);
  if (frame.payload.size() != 8 + sample_bytes) {
    const std::uint64_t id =
        frame.payload.size() >= 8 ? get_u64(frame.payload.data()) : 0;
    throw BadRequestError(
        id, "score request payload holds " +
                std::to_string(frame.payload.size()) + " bytes, expected " +
                std::to_string(8 + sample_bytes));
  }
  ScoreJob job;
  job.id = get_u64(frame.payload.data());
  job.input.resize(static_cast<std::size_t>(sample_numel_));
  std::memcpy(job.input.data(), frame.payload.data() + 8,
              static_cast<std::size_t>(sample_bytes));
  const std::uint64_t id = job.id;
  job.deliver = [this, conn, id](std::span<const float> scores) {
    char head[8];
    put_u64_at(head, id);
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    write_frame(conn->fd, FrameType::kScoreOk, {head, sizeof(head)},
                {reinterpret_cast<const char*>(scores.data()),
                 scores.size_bytes()});
  };
  job.fail = [this, conn, id](WireError code, const std::string& what) {
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(*conn, id, code, what);
  };

  switch (batcher_.submit(std::move(job))) {
    case MicroBatcher::Admit::kOk: {
      requests_counter().add(1);
      requests_.fetch_add(1, std::memory_order_relaxed);
      const std::int64_t depth = batcher_.depth();
      std::int64_t prev = max_queue_depth_.load(std::memory_order_relaxed);
      while (prev < depth && !max_queue_depth_.compare_exchange_weak(
                                 prev, depth, std::memory_order_relaxed)) {
      }
      break;
    }
    case MicroBatcher::Admit::kOverloaded:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      send_error(*conn, id, WireError::kOverloaded,
                 "request queue is full");
      break;
    case MicroBatcher::Admit::kShuttingDown:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      send_error(*conn, id, WireError::kShuttingDown,
                 "daemon is draining");
      break;
  }
}

void ScoreServer::reader_loop(std::shared_ptr<Connection> conn) {
  // Per-connection hello: the client learns the shapes it must speak.
  {
    char hello[32];
    put_u64_at(hello, static_cast<std::uint64_t>(sample_numel_));
    put_u64_at(hello + 8, static_cast<std::uint64_t>(output_numel_));
    put_u64_at(hello + 16,
               static_cast<std::uint64_t>(config_.batcher.max_batch));
    put_u64_at(hello + 24,
               static_cast<std::uint64_t>(config_.batcher.max_delay_us));
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    write_frame(conn->fd, FrameType::kHello, {hello, sizeof(hello)});
  }

  Frame frame;
  for (;;) {
    try {
      if (read_frame(conn->fd, frame) == ReadStatus::kEof) break;
      if (frame.type != FrameType::kScoreRequest) {
        throw std::runtime_error("unexpected frame type from client");
      }
      handle_request(conn, frame);
    } catch (const std::exception& e) {
      // Malformed traffic of any kind — bad header, over-budget length,
      // truncated frame, wrong type, wrong payload size: count it,
      // answer with a typed error (best effort — the peer may already
      // be gone) carrying the request id when one was parsable, then
      // drop the connection. The daemon itself keeps serving every
      // other client.
      wire_errors_.fetch_add(1, std::memory_order_relaxed);
      const auto* bad = dynamic_cast<const BadRequestError*>(&e);
      send_error(*conn, bad != nullptr ? bad->id : 0, WireError::kBadFrame,
                 e.what());
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
  }

  // Unregister so stop() forgets this connection, then drop the reader's
  // reference. The fd itself is NOT closed here: jobs from this
  // connection may still sit in the batcher, and their deliver/fail
  // callbacks hold Connection references — the descriptor closes (in
  // ~Connection) only after the last of those responses is written, so
  // a worker can never write into a recycled descriptor number. A peer
  // that half-closed its send side with requests in flight still gets
  // every answer.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.erase(
        std::remove(connections_.begin(), connections_.end(), conn),
        connections_.end());
  }
}

void ScoreServer::worker_loop(Scorer* scorer) {
  std::vector<ScoreJob> jobs;
  Tensor batch;
  Tensor out;
  while (batcher_.next_batch(jobs)) {
    const auto n = static_cast<std::int64_t>(jobs.size());
    bool scored_ok = true;
    {
      obs::Span span("serve.batch", n);
      batch.resize({n, sample_numel_});
      for (std::int64_t i = 0; i < n; ++i) {
        std::memcpy(batch.data() + i * sample_numel_,
                    jobs[static_cast<std::size_t>(i)].input.data(),
                    static_cast<std::size_t>(sample_numel_) * sizeof(float));
      }
      // Batch accounting happens before any response leaves the server:
      // a stats() snapshot taken after a client has its answer must
      // already count the batch that produced it.
      batches_counter().add(1);
      batches_.fetch_add(1, std::memory_order_relaxed);
      fill_sum_.fetch_add(n, std::memory_order_relaxed);
      const std::size_t bucket = fill_bucket(n);
      fill_counter(bucket).add(1);
      fill_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
      try {
        scorer->run(batch, out);
      } catch (const std::exception& e) {
        scored_ok = false;
        for (ScoreJob& job : jobs) {
          if (job.fail) job.fail(WireError::kInternal, e.what());
        }
      }
    }
    if (scored_ok) {
      const auto now = std::chrono::steady_clock::now();
      for (std::int64_t i = 0; i < n; ++i) {
        ScoreJob& job = jobs[static_cast<std::size_t>(i)];
        scored_counter().add(1);
        scored_.fetch_add(1, std::memory_order_relaxed);
        record_latency(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           now - job.enqueued)
                           .count());
        if (job.deliver) {
          job.deliver({out.data() + i * output_numel_,
                       static_cast<std::size_t>(output_numel_)});
        }
      }
    }
    jobs.clear();
  }
}

ServerStats ScoreServer::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.scored = scored_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.wire_errors = wire_errors_.load(std::memory_order_relaxed);
  s.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < s.batch_fill.size(); ++b) {
    s.batch_fill[b] = fill_hist_[b].load(std::memory_order_relaxed);
  }
  s.mean_batch_fill =
      s.batches > 0 ? static_cast<double>(
                          fill_sum_.load(std::memory_order_relaxed)) /
                          static_cast<double>(s.batches)
                    : 0.0;
  std::vector<std::int64_t> ns;
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    const auto filled =
        std::min<std::int64_t>(latency_count_,
                               static_cast<std::int64_t>(latency_ns_.size()));
    ns.assign(latency_ns_.begin(), latency_ns_.begin() + filled);
    s.latency_samples = filled;
  }
  if (!ns.empty()) {
    const auto pct = [&ns](double p) {
      const auto k = static_cast<std::size_t>(
          p * static_cast<double>(ns.size() - 1) + 0.5);
      std::nth_element(ns.begin(),
                       ns.begin() + static_cast<std::ptrdiff_t>(k), ns.end());
      return static_cast<double>(ns[k]) / 1e6;
    };
    s.p50_ms = pct(0.50);
    s.p99_ms = pct(0.99);
  }
  return s;
}

}  // namespace sne::serve
