// server.h — ScoreServer: the long-running scoring daemon front end over
// the infer library. It owns the three moving parts: socket listeners
// (Unix and/or TCP) with one reader thread per connection parsing the
// framed wire protocol; the MicroBatcher that coalesces single-cutout
// requests with a size-or-deadline flush; and a worker pool, each worker
// running its own Scorer (one InferenceSession per worker over a shared
// plan — the standard serving concurrency pattern). Telemetry rides the
// obs layer (serve.* counters, queue-depth gauge, serve.batch spans) and
// an exact always-on ServerStats snapshot (request/reject/batch counts,
// batch-fill histogram, p50/p99 latency) backs tests and the CLI's
// shutdown report.
//
// Shutdown contract (stop(), also run by the destructor): stop accepting
// connections, reject new submissions with a typed "shutting down"
// error, drain every request already admitted to the queue — each gets
// its response — then close connections and join all threads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"
#include "serve/scorer.h"

namespace sne::serve {

struct ScoreServerConfig {
  /// Path of the Unix-domain listening socket; empty disables it. A
  /// stale socket file at this path is unlinked before binding.
  std::string unix_path;
  /// TCP listener address; port < 0 disables it, port 0 binds an
  /// ephemeral port (read it back with tcp_port()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// Worker threads, each with its own Scorer from the factory.
  int workers = 1;
  MicroBatcherConfig batcher;
};

/// Exact counters maintained by the server itself (independent of
/// whether obs capture is enabled). Latency percentiles are computed
/// over a bounded reservoir of the most recent completions.
struct ServerStats {
  std::int64_t requests = 0;    ///< admitted to the queue
  std::int64_t rejected = 0;    ///< overload + shutting-down rejections
  std::int64_t scored = 0;      ///< responses delivered
  std::int64_t batches = 0;     ///< batches flushed through a Scorer
  std::int64_t wire_errors = 0;      ///< malformed/mismatched frames
  std::int64_t internal_errors = 0;  ///< scorer exceptions
  std::int64_t max_queue_depth = 0;  ///< high-water of the request queue
  /// Batch-fill histogram, power-of-two buckets:
  /// fill 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+.
  std::array<std::int64_t, 8> batch_fill{};
  double mean_batch_fill = 0.0;
  double p50_ms = 0.0;  ///< request latency: admit → response written
  double p99_ms = 0.0;
  std::int64_t latency_samples = 0;  ///< completions in the reservoir

  std::string to_string() const;  ///< human-readable multi-line report
};

class ScoreServer {
 public:
  /// The factory is invoked `workers` times from start(), serially on
  /// the calling thread (never concurrently). Every scorer must agree
  /// on sample_numel/output_numel.
  ScoreServer(ScoreServerConfig config, ScorerFactory factory);

  /// Spec-driven construction — the uniform path for plan-backed,
  /// joint, and custom (e.g. cascade) scorers. Equivalent to passing
  /// scorer_factory(spec); validates the spec immediately.
  ScoreServer(ScoreServerConfig config, ScorerSpec spec);
  ~ScoreServer();  ///< runs stop()
  ScoreServer(const ScoreServer&) = delete;
  ScoreServer& operator=(const ScoreServer&) = delete;

  /// Binds the configured listeners, builds the per-worker scorers, and
  /// spawns accept/worker threads. Throws on bind failure or when no
  /// listener is configured.
  void start();

  /// Graceful shutdown (see the contract above). Idempotent; safe to
  /// call from a signal-driven control thread while traffic is live.
  void stop();

  /// The TCP port actually bound (useful with tcp_port = 0); -1 when no
  /// TCP listener is active. Valid after start().
  int tcp_port() const noexcept { return bound_tcp_port_; }

  const ScoreServerConfig& config() const noexcept { return config_; }
  std::int64_t queue_depth() const { return batcher_.depth(); }
  ServerStats stats() const;

 private:
  struct Connection;

  void accept_loop(int listen_fd, bool tcp);
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop(Scorer* scorer);
  void send_error(Connection& conn, std::uint64_t id, WireError code,
                  const std::string& what);
  void handle_request(const std::shared_ptr<Connection>& conn,
                      const Frame& frame);
  void record_latency(std::int64_t ns);

  ScoreServerConfig config_;
  ScorerFactory factory_;
  MicroBatcher batcher_;
  std::vector<std::unique_ptr<Scorer>> scorers_;
  std::int64_t sample_numel_ = 0;
  std::int64_t output_numel_ = 0;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> worker_threads_;

  std::mutex conn_mutex_;  ///< guards connections_ and reader_threads_
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> reader_threads_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Exact stats (atomics; see ServerStats).
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> scored_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> wire_errors_{0};
  std::atomic<std::int64_t> internal_errors_{0};
  std::atomic<std::int64_t> max_queue_depth_{0};
  std::atomic<std::int64_t> fill_sum_{0};
  std::array<std::atomic<std::int64_t>, 8> fill_hist_{};

  mutable std::mutex latency_mutex_;
  std::vector<std::int64_t> latency_ns_;  ///< bounded ring
  std::size_t latency_next_ = 0;
  std::int64_t latency_count_ = 0;
};

}  // namespace sne::serve
