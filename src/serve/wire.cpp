#include "serve/wire.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace sne::serve {

namespace {

void put_u32_at(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

std::uint32_t get_u32_at(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

// recv/send wrappers that retry EINTR. MSG_NOSIGNAL keeps a dead peer
// from killing the daemon with SIGPIPE (the error surfaces as EPIPE on
// the write path instead, where it is handled).
bool write_all(int fd, const void* data, std::size_t n) noexcept {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
#ifdef MSG_NOSIGNAL
    const auto sent = ::send(fd, p, n, MSG_NOSIGNAL);
#else
    const auto sent = ::send(fd, p, n, 0);
#endif
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

// Reads exactly n bytes. Returns 1 on success, 0 on clean EOF before the
// first byte, and throws when the stream dies mid-read.
int read_exact(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const auto r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wire: socket read failed: " +
                               std::string(std::strerror(errno)));
    }
    if (r == 0) {
      if (got == 0) return 0;
      throw std::runtime_error("wire: peer closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

const char* wire_error_name(WireError e) noexcept {
  switch (e) {
    case WireError::kOverloaded: return "overloaded";
    case WireError::kShuttingDown: return "shutting down";
    case WireError::kBadFrame: return "bad frame";
    case WireError::kInternal: return "internal error";
  }
  return "unknown";
}

void encode_frame_header(FrameType type, std::uint32_t payload_len,
                         unsigned char out[kFrameHeaderBytes]) {
  std::memcpy(out, kFrameMagic, 4);
  out[4] = kWireVersion;
  out[5] = static_cast<unsigned char>(type);
  out[6] = 0;
  out[7] = 0;
  put_u32_at(out + 8, payload_len);
}

FrameHeader decode_frame_header(const unsigned char in[kFrameHeaderBytes]) {
  if (std::memcmp(in, kFrameMagic, 4) != 0) {
    throw std::runtime_error("wire: bad frame magic");
  }
  if (in[4] != kWireVersion) {
    throw std::runtime_error("wire: unsupported protocol version " +
                             std::to_string(static_cast<int>(in[4])));
  }
  const auto type = static_cast<FrameType>(in[5]);
  if (type != FrameType::kHello && type != FrameType::kScoreRequest &&
      type != FrameType::kScoreOk && type != FrameType::kScoreError) {
    throw std::runtime_error("wire: unknown frame type " +
                             std::to_string(static_cast<int>(in[5])));
  }
  if (in[6] != 0 || in[7] != 0) {
    throw std::runtime_error("wire: nonzero reserved header bytes");
  }
  FrameHeader h;
  h.type = type;
  h.payload_len = get_u32_at(in + 8);
  if (h.payload_len > kMaxFramePayload) {
    throw std::runtime_error("wire: frame payload of " +
                             std::to_string(h.payload_len) +
                             " bytes exceeds the protocol cap");
  }
  return h;
}

void put_u64(std::vector<char>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f32(std::vector<char>& buf, std::span<const float> v) {
  const auto* bytes = reinterpret_cast<const char*>(v.data());
  buf.insert(buf.end(), bytes, bytes + v.size_bytes());
}

std::uint64_t get_u64(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

ReadStatus read_frame(int fd, Frame& out) {
  unsigned char header[kFrameHeaderBytes];
  if (read_exact(fd, header, sizeof(header)) == 0) return ReadStatus::kEof;
  const FrameHeader h = decode_frame_header(header);
  out.type = h.type;
  out.payload.resize(h.payload_len);  // capped by decode_frame_header
  if (h.payload_len > 0 &&
      read_exact(fd, out.payload.data(), h.payload_len) == 0) {
    throw std::runtime_error("wire: peer closed mid-frame");
  }
  return ReadStatus::kOk;
}

bool write_frame(int fd, FrameType type, std::span<const char> a,
                 std::span<const char> b) noexcept {
  if (a.size() + b.size() > kMaxFramePayload) return false;
  unsigned char header[kFrameHeaderBytes];
  encode_frame_header(type, static_cast<std::uint32_t>(a.size() + b.size()),
                      header);
  return write_all(fd, header, sizeof(header)) &&
         (a.empty() || write_all(fd, a.data(), a.size())) &&
         (b.empty() || write_all(fd, b.data(), b.size()));
}

}  // namespace sne::serve
