// wire.h — the byte-level framing of the scoring daemon's socket
// protocol (docs/FORMATS.md, "SNEW wire protocol", has the layout).
// Every message is one length-prefixed frame: a fixed 12-byte header
// (magic, version, type, payload length) followed by the payload. The
// reader applies the same budget discipline as the on-disk formats: the
// length field is validated against a hard cap *before* any allocation,
// and a frame whose payload disagrees with what its type requires is a
// typed error, never undefined behavior. Used by both the server
// (src/serve/server.cpp) and the client library (src/serve/client.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sne::serve {

inline constexpr char kFrameMagic[4] = {'S', 'N', 'E', 'W'};
inline constexpr std::uint8_t kWireVersion = 1;

/// Hard cap on a frame payload. Generous for any plausible cutout batch
/// (a paper-scale joint sample is ~144 KiB) while keeping a lying length
/// field from triggering a speculative multi-gigabyte allocation — the
/// socket analogue of serialize.h's require_stream_bytes.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

inline constexpr std::size_t kFrameHeaderBytes = 12;

enum class FrameType : std::uint8_t {
  kHello = 1,         ///< server → client, once per connection
  kScoreRequest = 2,  ///< client → server: u64 id + sample floats
  kScoreOk = 3,       ///< server → client: u64 id + score floats
  kScoreError = 4,    ///< server → client: u64 id + u64 code + message
};

/// Typed rejection codes carried by kScoreError frames.
enum class WireError : std::uint64_t {
  kOverloaded = 1,    ///< admission control: request queue is full
  kShuttingDown = 2,  ///< daemon is draining; no new work accepted
  kBadFrame = 3,      ///< malformed frame (the connection is closed)
  kInternal = 4,      ///< scoring failed server-side
};

/// Stable name for logs and error messages ("overloaded", ...).
const char* wire_error_name(WireError e) noexcept;

struct FrameHeader {
  FrameType type = FrameType::kHello;
  std::uint32_t payload_len = 0;
};

/// Serializes a header into `out` (little-endian, docs/FORMATS.md).
void encode_frame_header(FrameType type, std::uint32_t payload_len,
                         unsigned char out[kFrameHeaderBytes]);

/// Parses and validates a header. Throws std::runtime_error naming the
/// defect on bad magic, unknown version, unknown type, a nonzero
/// reserved field, or a payload length beyond kMaxFramePayload.
FrameHeader decode_frame_header(const unsigned char in[kFrameHeaderBytes]);

/// Little-endian scalar helpers for payload assembly/parsing.
void put_u64(std::vector<char>& buf, std::uint64_t v);
void put_f32(std::vector<char>& buf, std::span<const float> v);
std::uint64_t get_u64(const char* p) noexcept;

/// One parsed frame.
struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<char> payload;
};

enum class ReadStatus {
  kOk,   ///< frame read and validated
  kEof,  ///< peer closed cleanly before the first header byte
};

/// Reads exactly one frame from `fd` into `out` (payload capacity is
/// reused across calls). Returns kEof on a clean close at a frame
/// boundary. Throws std::runtime_error on a malformed header, an
/// over-budget length, a mid-frame disconnect, or a socket error.
ReadStatus read_frame(int fd, Frame& out);

/// Writes one frame (header + up to two payload segments, sent back to
/// back — the two-segment form lets callers prepend a request id to a
/// float buffer without copying). Returns false when the peer is gone;
/// never raises SIGPIPE. Callers serialize writes per connection.
bool write_frame(int fd, FrameType type, std::span<const char> a,
                 std::span<const char> b = {}) noexcept;

}  // namespace sne::serve
