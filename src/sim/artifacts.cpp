#include "sim/artifacts.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "astro/photometry.h"
#include "sim/image_ops.h"
#include "sim/psf.h"

namespace sne::sim {

void inject_artifact(Tensor& stamp, ArtifactKind kind, double amplitude,
                     Rng& rng) {
  if (stamp.rank() != 2) {
    throw std::invalid_argument("inject_artifact: expected rank-2 stamp");
  }
  if (amplitude <= 0.0) {
    throw std::invalid_argument("inject_artifact: amplitude must be > 0");
  }
  const std::int64_t h = stamp.extent(0);
  const std::int64_t w = stamp.extent(1);
  // Artifacts land near the stamp center, where the detection that cut
  // this stamp out would have been.
  const double cy = 0.5 * h + rng.uniform(-4.0, 4.0);
  const double cx = 0.5 * w + rng.uniform(-4.0, 4.0);

  switch (kind) {
    case ArtifactKind::CosmicRay: {
      // A sharp streak: no PSF, which is exactly what separates it from a
      // real transient for a sufficiently sharp-eyed model.
      const double angle = rng.uniform(0.0, std::numbers::pi);
      const double length = rng.uniform(5.0, 18.0);
      const double per_px = amplitude / length * rng.uniform(1.0, 2.0);
      const double dy = std::sin(angle);
      const double dx = std::cos(angle);
      for (double t = -length / 2; t <= length / 2; t += 0.5) {
        const auto y = static_cast<std::int64_t>(std::lround(cy + t * dy));
        const auto x = static_cast<std::int64_t>(std::lround(cx + t * dx));
        if (y >= 0 && y < h && x >= 0 && x < w) {
          stamp[y * w + x] += static_cast<float>(per_px);
        }
      }
      break;
    }
    case ArtifactKind::Dipole: {
      // Misregistration residual: a PSF-shaped positive lobe next to an
      // equally strong negative lobe ~1 pixel away.
      const GaussianPsf psf(rng.uniform(2.5, 4.5));
      const double shift = rng.uniform(0.8, 1.8);
      const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const Tensor pos = psf.render_point_source(
          h, w, cy, cx, amplitude * rng.uniform(1.0, 2.0));
      const Tensor neg = psf.render_point_source(
          h, w, cy + shift * std::sin(angle), cx + shift * std::cos(angle),
          amplitude * rng.uniform(1.0, 2.0));
      stamp += pos;
      stamp -= neg;
      break;
    }
    case ArtifactKind::HotPixel: {
      const auto y = static_cast<std::int64_t>(std::lround(cy));
      const auto x = static_cast<std::int64_t>(std::lround(cx));
      if (y >= 0 && y < h && x >= 0 && x < w) {
        stamp[y * w + x] += static_cast<float>(amplitude *
                                               rng.uniform(2.0, 5.0));
      }
      break;
    }
    case ArtifactKind::BadColumn: {
      const auto x = static_cast<std::int64_t>(std::lround(cx));
      if (x >= 0 && x < w) {
        const double per_px =
            amplitude / static_cast<double>(h) * rng.uniform(2.0, 6.0);
        const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
        for (std::int64_t y = 0; y < h; ++y) {
          stamp[y * w + x] += static_cast<float>(sign * per_px * h / 8.0);
        }
      }
      break;
    }
  }
}

nn::LazyDataset make_real_bogus_dataset(const SnDataset& data,
                                        std::vector<std::int64_t> samples,
                                        std::int64_t crop,
                                        double max_real_mag,
                                        std::uint64_t seed) {
  if (crop <= 0) {
    throw std::invalid_argument("make_real_bogus_dataset: bad crop");
  }
  struct Item {
    std::int64_t sample;
    astro::Band band;
    std::int64_t epoch;
  };
  // Partition the (sample, band, epoch) space into detectable-SN stamps
  // ("real") and SN-free stamps (bogus hosts).
  std::vector<Item> real_items;
  std::vector<Item> empty_items;
  const std::int64_t epochs = data.config().schedule.epochs_per_band;
  for (const std::int64_t i : samples) {
    for (const astro::Band b : astro::kAllBands) {
      for (std::int64_t e = 0; e < epochs; ++e) {
        const double mag = data.true_magnitude(i, b, e, 31.0);
        if (mag <= max_real_mag) {
          real_items.push_back({i, b, e});
        } else if (mag >= 30.5) {
          empty_items.push_back({i, b, e});
        }
      }
    }
  }
  const auto pairs = static_cast<std::int64_t>(
      std::min(real_items.size(), empty_items.size()));
  if (pairs == 0) {
    throw std::invalid_argument(
        "make_real_bogus_dataset: no usable stamps (dataset too small?)");
  }

  auto generator = [&data, real_items = std::move(real_items),
                    empty_items = std::move(empty_items), crop, seed,
                    max_real_mag](std::int64_t k) -> nn::Sample {
    const bool real = (k % 2 == 0);
    const auto j = static_cast<std::size_t>(k / 2);
    const auto& item = real ? real_items[j] : empty_items[j];

    Tensor diff = center_crop(
        data.difference_image(item.sample, item.band, item.epoch), crop);
    if (!real) {
      // Amplitude comparable to a borderline-real transient, so total
      // flux alone cannot separate the classes.
      Rng rng(seed ^ (static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ULL));
      const double amplitude =
          astro::flux_from_mag(max_real_mag - rng.uniform(0.0, 2.0));
      const auto kind = kAllArtifactKinds[static_cast<std::size_t>(
          rng.uniform_index(kAllArtifactKinds.size()))];
      inject_artifact(diff, kind, amplitude, rng);
    }

    nn::Sample s;
    s.x = Tensor({1, crop, crop});
    for (std::int64_t p = 0; p < diff.size(); ++p) {
      s.x[p] = static_cast<float>(astro::signed_log(diff[p]));
    }
    s.y = Tensor({1}, real ? 1.0f : 0.0f);
    return s;
  };
  // Batch-parallel: difference rendering is stateless and the artifact
  // RNG is derived per index, so batches fan across the shared pool.
  return nn::LazyDataset(2 * pairs, std::move(generator),
                         nn::BatchMode::Parallel);
}

}  // namespace sne::sim
