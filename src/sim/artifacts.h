// artifacts.h — bogus-detection artifacts. The paper's related-work
// section describes step (1) of the survey pipeline: 99.9 % of raw
// difference-image detections are "bogus" — cosmic-ray hits, subtraction
// residuals from imperfect kernel matching or misregistration, detector
// defects — and machine-learned real/bogus classifiers (Bailey 2007,
// Brink 2013, Morii 2016) filter them before any supernova typing
// happens. This module synthesizes those artifact classes so the
// real/bogus stage can be built and evaluated end-to-end.
#pragma once

#include <cstdint>

#include "nn/dataset.h"
#include "sim/dataset_builder.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sne::sim {

enum class ArtifactKind : std::uint8_t {
  CosmicRay = 0,   ///< sharp linear streak, no PSF
  Dipole = 1,      ///< positive/negative pair from misregistration
  HotPixel = 2,    ///< single saturated pixel
  BadColumn = 3,   ///< detector column offset
};

inline constexpr std::array<ArtifactKind, 4> kAllArtifactKinds = {
    ArtifactKind::CosmicRay, ArtifactKind::Dipole, ArtifactKind::HotPixel,
    ArtifactKind::BadColumn};

/// Adds one artifact of the given kind onto a (difference) stamp, with
/// amplitude comparable to a real transient so the classifier cannot
/// separate classes on total flux alone.
void inject_artifact(Tensor& stamp, ArtifactKind kind, double amplitude,
                     Rng& rng);

/// Builds a balanced real/bogus dataset from a survey dataset:
///  label 1 ("real"): difference stamp of a detectable SN epoch
///    (true magnitude ≤ max_real_mag);
///  label 0 ("bogus"): difference stamp of a *supernova-free* epoch
///    (pre-explosion or faded) with a random artifact injected.
/// x = [1, crop, crop] signed-log difference pixels; deterministic in
/// (data, seed).
nn::LazyDataset make_real_bogus_dataset(const SnDataset& data,
                                        std::vector<std::int64_t> samples,
                                        std::int64_t crop,
                                        double max_real_mag = 25.0,
                                        std::uint64_t seed = 4242);

}  // namespace sne::sim
