#include "sim/dataset_builder.h"

#include <algorithm>
#include <stdexcept>

#include "astro/photometry.h"
#include "obs/obs.h"
#include "tensor/thread_pool.h"

namespace sne::sim {

namespace {

// Total stamps produced by the batched renderers below, across all bands
// and epochs — the raw throughput figure for the simulation side.
obs::Counter& stamps_counter() {
  static obs::Counter& c = obs::counter("sim.stamps");
  return c;
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  // SplitMix-style combiner: decorrelates derived streams.
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Purpose tags for derived RNG streams.
constexpr std::int64_t kPurposeReference = 1;
constexpr std::int64_t kPurposeObservation = 2;
constexpr std::int64_t kPurposeMeasurement = 3;

}  // namespace

SnDataset SnDataset::build(const Config& config) {
  if (config.num_samples <= 0) {
    throw std::invalid_argument("SnDataset: num_samples must be positive");
  }
  GalaxyCatalog catalog = GalaxyCatalog::generate(config.catalog);
  astro::Cosmology cosmology;

  Rng rng(config.seed);
  std::vector<SampleSpec> specs;
  specs.reserve(static_cast<std::size_t>(config.num_samples));

  for (std::int64_t i = 0; i < config.num_samples; ++i) {
    SampleSpec s;
    s.galaxy_index =
        static_cast<std::int64_t>(rng.uniform_index(
            static_cast<std::uint64_t>(catalog.size())));
    const Galaxy& host = catalog.galaxy(s.galaxy_index);

    // With the default p_ia = 0.5 the classes are exactly balanced, as in
    // the paper's 6000/6000 dataset; otherwise a Bernoulli draw.
    const bool make_ia =
        config.p_ia == 0.5 ? (i % 2 == 0) : rng.bernoulli(config.p_ia);
    const astro::SnType type =
        make_ia ? astro::SnType::Ia
                : astro::kNonIaTypes[static_cast<std::size_t>(
                      rng.uniform_index(astro::kNonIaTypes.size()))];

    Rng schedule_rng = rng.fork();
    s.schedule = make_schedule(config.schedule, schedule_rng);

    const double peak_lo = config.schedule.start_mjd + config.peak_margin_lo;
    const double peak_hi = config.schedule.start_mjd +
                           config.schedule.season_days -
                           config.peak_margin_hi;
    s.sn = astro::sample_sn_params(type, host.photo_z, peak_lo, peak_hi, rng,
                                   config.population);
    s.offset = sample_sn_offset(host.morphology, rng);
    s.noise_seed = rng.next_u64();
    specs.push_back(std::move(s));
  }
  return SnDataset(config, std::move(catalog), std::move(specs));
}

SnDataset SnDataset::from_parts(const Config& config,
                                std::vector<SampleSpec> specs) {
  if (specs.empty()) {
    throw std::invalid_argument("SnDataset::from_parts: no specs");
  }
  GalaxyCatalog catalog = GalaxyCatalog::generate(config.catalog);
  for (const SampleSpec& s : specs) {
    if (s.galaxy_index < 0 || s.galaxy_index >= catalog.size()) {
      throw std::invalid_argument(
          "SnDataset::from_parts: galaxy index out of catalog range");
    }
  }
  return SnDataset(config, std::move(catalog), std::move(specs));
}

Rng SnDataset::stream(std::int64_t i, std::int64_t purpose, std::int64_t band,
                      std::int64_t epoch) const {
  const std::uint64_t key =
      mix64(spec(i).noise_seed,
            mix64(static_cast<std::uint64_t>(purpose),
                  mix64(static_cast<std::uint64_t>(band),
                        static_cast<std::uint64_t>(epoch))));
  return Rng(key);
}

Observation SnDataset::band_epoch(std::int64_t i, astro::Band b,
                                  std::int64_t e) const {
  const auto epochs = spec(i).schedule.band_observations(b);
  if (e < 0 || e >= static_cast<std::int64_t>(epochs.size())) {
    throw std::out_of_range("SnDataset: epoch index out of range");
  }
  return epochs[static_cast<std::size_t>(e)];
}

Tensor SnDataset::reference_image(std::int64_t i, astro::Band b) const {
  Rng rng = stream(i, kPurposeReference, astro::band_index(b), 0);
  const Observation& ref =
      spec(i).schedule.references[static_cast<std::size_t>(
          astro::band_index(b))];
  return renderer_.render_reference(host(i), ref, rng);
}

Tensor SnDataset::observation_image(std::int64_t i, astro::Band b,
                                    std::int64_t e) const {
  Rng rng = stream(i, kPurposeObservation, astro::band_index(b), e);
  const Observation obs = band_epoch(i, b, e);
  const double flux = light_curve(i).flux(b, obs.mjd);
  return renderer_.render_observation(host(i), obs, flux, spec(i).offset, rng);
}

Tensor SnDataset::matched_reference_image(std::int64_t i, astro::Band b,
                                          std::int64_t e) const {
  const Observation obs = band_epoch(i, b, e);
  const Observation& ref =
      spec(i).schedule.references[static_cast<std::size_t>(
          astro::band_index(b))];
  return match_reference(reference_image(i, b), obs, ref);
}

Tensor SnDataset::difference_image(std::int64_t i, astro::Band b,
                                   std::int64_t e) const {
  const Observation obs = band_epoch(i, b, e);
  const Observation& ref =
      spec(i).schedule.references[static_cast<std::size_t>(
          astro::band_index(b))];
  return psf_matched_difference(observation_image(i, b, e),
                                reference_image(i, b), obs, ref);
}

double SnDataset::true_flux(std::int64_t i, astro::Band b,
                            std::int64_t e) const {
  const Observation obs = band_epoch(i, b, e);
  return light_curve(i).flux(b, obs.mjd);
}

double SnDataset::true_magnitude(std::int64_t i, astro::Band b,
                                 std::int64_t e, double faint_limit) const {
  const double f = true_flux(i, b, e);
  const double floor_flux = astro::flux_from_mag(faint_limit);
  return astro::mag_from_flux(std::max(f, floor_flux));
}

FluxMeasurement SnDataset::measured_point(std::int64_t i, astro::Band b,
                                          std::int64_t e) const {
  Rng rng = stream(i, kPurposeMeasurement, astro::band_index(b), e);
  return sample_measurement(light_curve(i), band_epoch(i, b, e),
                            config_.renderer.noise, rng);
}

std::vector<Tensor> SnDataset::reference_images(
    const std::vector<std::int64_t>& samples, astro::Band b) const {
  obs::Span span("sim.reference_images",
                 static_cast<std::int64_t>(samples.size()));
  stamps_counter().add(static_cast<std::int64_t>(samples.size()));
  std::vector<Tensor> out(samples.size());
  parallel_for(0, static_cast<std::int64_t>(samples.size()),
               [&](std::int64_t k) {
                 out[static_cast<std::size_t>(k)] = reference_image(
                     samples[static_cast<std::size_t>(k)], b);
               });
  return out;
}

std::vector<Tensor> SnDataset::observation_images(
    const std::vector<std::int64_t>& samples, astro::Band b,
    std::int64_t e) const {
  obs::Span span("sim.observation_images",
                 static_cast<std::int64_t>(samples.size()));
  stamps_counter().add(static_cast<std::int64_t>(samples.size()));
  std::vector<Tensor> out(samples.size());
  parallel_for(0, static_cast<std::int64_t>(samples.size()),
               [&](std::int64_t k) {
                 out[static_cast<std::size_t>(k)] = observation_image(
                     samples[static_cast<std::size_t>(k)], b, e);
               });
  return out;
}

std::vector<Tensor> SnDataset::matched_reference_images(
    const std::vector<std::int64_t>& samples, astro::Band b,
    std::int64_t e) const {
  obs::Span span("sim.matched_reference_images",
                 static_cast<std::int64_t>(samples.size()));
  stamps_counter().add(static_cast<std::int64_t>(samples.size()));
  std::vector<Tensor> out(samples.size());
  parallel_for(0, static_cast<std::int64_t>(samples.size()),
               [&](std::int64_t k) {
                 out[static_cast<std::size_t>(k)] = matched_reference_image(
                     samples[static_cast<std::size_t>(k)], b, e);
               });
  return out;
}

std::vector<Tensor> SnDataset::difference_images(
    const std::vector<std::int64_t>& samples, astro::Band b,
    std::int64_t e) const {
  obs::Span span("sim.difference_images",
                 static_cast<std::int64_t>(samples.size()));
  stamps_counter().add(static_cast<std::int64_t>(samples.size()));
  std::vector<Tensor> out(samples.size());
  parallel_for(0, static_cast<std::int64_t>(samples.size()),
               [&](std::int64_t k) {
                 out[static_cast<std::size_t>(k)] = difference_image(
                     samples[static_cast<std::size_t>(k)], b, e);
               });
  return out;
}

std::vector<FluxMeasurement> SnDataset::measured_light_curve(
    std::int64_t i) const {
  std::vector<FluxMeasurement> points;
  points.reserve(spec(i).schedule.observations.size());
  for (const astro::Band b : astro::kAllBands) {
    const auto epochs = spec(i).schedule.band_observations(b);
    for (std::int64_t e = 0; e < static_cast<std::int64_t>(epochs.size());
         ++e) {
      points.push_back(measured_point(i, b, e));
    }
  }
  std::sort(points.begin(), points.end(),
            [](const FluxMeasurement& a, const FluxMeasurement& b) {
              return a.mjd < b.mjd;
            });
  return points;
}

}  // namespace sne::sim
