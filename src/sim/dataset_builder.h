// dataset_builder.h — assembles the paper's synthetic dataset (§3). One
// sample is a host galaxy from the catalog, a supernova drawn from the
// population priors and placed inside the host ellipse, an observation
// schedule (5 bands × 4 epochs, ≤2 bands/day), and the resulting imagery:
// 20 observation stamps + 5 reference stamps + the ground-truth light
// curve. The paper generates 6000 SNIa + 6000 non-SNIa samples.
//
// Samples are stored as compact specs; stamps are rendered lazily and
// deterministically (seeded per sample/band/epoch), so the dataset costs
// kilobytes per sample instead of megabytes and any image can be
// regenerated bit-identically at any time.
#pragma once

#include <cstdint>
#include <vector>

#include "astro/lightcurve.h"
#include "astro/priors.h"
#include "sim/difference.h"
#include "sim/galaxy_catalog.h"
#include "sim/measurement.h"
#include "sim/position_sampler.h"
#include "sim/renderer.h"
#include "sim/scheduler.h"

namespace sne::sim {

/// Compact description of one dataset sample.
struct SampleSpec {
  std::int64_t galaxy_index = 0;
  astro::SnParams sn;
  SnOffset offset;          ///< SN position relative to host center, pixels
  Schedule schedule;        ///< this sample's season (conditions fluctuate)
  std::uint64_t noise_seed = 0;
};

class SnDataset {
 public:
  struct Config {
    std::int64_t num_samples = 1000;  ///< paper scale: 12000
    double p_ia = 0.5;                ///< paper: exactly half SNIa
    std::uint64_t seed = 20171130;
    GalaxyCatalog::Config catalog;
    ScheduleConfig schedule;
    RendererConfig renderer;
    astro::SnPopulation population;
    /// Peak date window inside the season (ensures the SN is bright
    /// during a usable part of the schedule, as the paper arranges).
    double peak_margin_lo = 5.0;
    double peak_margin_hi = 15.0;
  };

  /// Samples all specs (galaxies, SN parameters, schedules). No images
  /// are rendered here.
  static SnDataset build(const Config& config);

  /// Reassembles a dataset from a config and previously sampled specs
  /// (the deserialization path): the catalog regenerates deterministically
  /// from config.catalog, the specs are adopted as-is.
  static SnDataset from_parts(const Config& config,
                              std::vector<SampleSpec> specs);

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(specs_.size());
  }
  const SampleSpec& spec(std::int64_t i) const {
    return specs_.at(static_cast<std::size_t>(i));
  }
  const Galaxy& host(std::int64_t i) const {
    return catalog_.galaxy(spec(i).galaxy_index);
  }
  bool is_ia(std::int64_t i) const {
    return astro::is_type_ia(spec(i).sn.type);
  }
  astro::LightCurve light_curve(std::int64_t i) const {
    return astro::LightCurve(spec(i).sn, cosmology_);
  }
  const GalaxyCatalog& catalog() const noexcept { return catalog_; }
  const astro::Cosmology& cosmology() const noexcept { return cosmology_; }
  const Config& config() const noexcept { return config_; }

  // ---- lazy, deterministic imagery ----

  /// Reference stamp of band `b` for sample `i` (no supernova).
  Tensor reference_image(std::int64_t i, astro::Band b) const;

  /// Observation stamp of epoch `e` (0-based within the band) of band `b`:
  /// host + SN at its light-curve flux for that date + noise.
  Tensor observation_image(std::int64_t i, astro::Band b,
                           std::int64_t e) const;

  /// Reference matched to the observation's image quality — the first
  /// element of the CNN's input pair.
  Tensor matched_reference_image(std::int64_t i, astro::Band b,
                                 std::int64_t e) const;

  /// PSF-matched difference stamp (observation − matched reference).
  Tensor difference_image(std::int64_t i, astro::Band b,
                          std::int64_t e) const;

  // ---- ground truth and measurements ----

  Observation band_epoch(std::int64_t i, astro::Band b, std::int64_t e) const;

  /// True SN flux at that epoch (zero-point 27 units, before transparency).
  double true_flux(std::int64_t i, astro::Band b, std::int64_t e) const;

  /// True SN magnitude, clamped at `faint_limit` for unobservable fluxes.
  double true_magnitude(std::int64_t i, astro::Band b, std::int64_t e,
                        double faint_limit = 32.0) const;

  /// Noisy forced photometry of one epoch (classical pipeline output;
  /// deterministic per (sample, band, epoch)).
  FluxMeasurement measured_point(std::int64_t i, astro::Band b,
                                 std::int64_t e) const;

  /// Noisy forced photometry of all 20 epochs, sorted by date.
  std::vector<FluxMeasurement> measured_light_curve(std::int64_t i) const;

  // ---- batched parallel rendering ----
  //
  // Renders samples[k] → result[k] concurrently on the shared thread pool
  // (tensor/thread_pool.h). Safe and bitwise identical to the per-sample
  // calls for any thread count: every stamp draws from its own
  // mix64-derived RNG stream and the renderer is stateless.

  /// Batched reference_image.
  std::vector<Tensor> reference_images(
      const std::vector<std::int64_t>& samples, astro::Band b) const;

  /// Batched observation_image.
  std::vector<Tensor> observation_images(
      const std::vector<std::int64_t>& samples, astro::Band b,
      std::int64_t e) const;

  /// Batched matched_reference_image.
  std::vector<Tensor> matched_reference_images(
      const std::vector<std::int64_t>& samples, astro::Band b,
      std::int64_t e) const;

  /// Batched difference_image.
  std::vector<Tensor> difference_images(
      const std::vector<std::int64_t>& samples, astro::Band b,
      std::int64_t e) const;

 private:
  SnDataset(Config config, GalaxyCatalog catalog,
            std::vector<SampleSpec> specs)
      : config_(std::move(config)),
        catalog_(std::move(catalog)),
        specs_(std::move(specs)),
        renderer_(config_.renderer) {}

  /// Deterministic per-purpose RNG stream.
  Rng stream(std::int64_t i, std::int64_t purpose, std::int64_t band,
             std::int64_t epoch) const;

  Config config_;
  GalaxyCatalog catalog_;
  astro::Cosmology cosmology_;
  std::vector<SampleSpec> specs_;
  ImageRenderer renderer_;
};

}  // namespace sne::sim
