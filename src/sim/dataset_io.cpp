#include "sim/dataset_io.h"

#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace sne::sim {

namespace {

constexpr char kMagic[4] = {'S', 'N', 'D', 'S'};
constexpr std::uint32_t kVersion = 1;

// On-disk sizes used for stream-budget checks: an Observation record is
// one i64 band index plus four f64 fields; a SampleSpec is at least its
// fixed scalar block plus the per-band reference observations.
constexpr std::uint64_t kObsBytes = 5 * 8;
constexpr std::uint64_t kMinSpecBytes =
    11 * 8 + static_cast<std::uint64_t>(astro::kNumBands) * kObsBytes;

void write_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

std::uint64_t read_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  if (!is) throw std::runtime_error("dataset stream truncated (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

void write_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(os, bits);
}

double read_f64(std::istream& is) {
  const std::uint64_t bits = read_u64(is);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void write_i64(std::ostream& os, std::int64_t v) {
  write_u64(os, static_cast<std::uint64_t>(v));
}

std::int64_t read_i64(std::istream& is) {
  return static_cast<std::int64_t>(read_u64(is));
}

void write_observation(std::ostream& os, const Observation& o) {
  write_i64(os, astro::band_index(o.band));
  write_f64(os, o.mjd);
  write_f64(os, o.seeing_fwhm_px);
  write_f64(os, o.transparency);
  write_f64(os, o.sky_scale);
}

Observation read_observation(std::istream& is) {
  Observation o;
  const std::int64_t band = read_i64(is);
  if (band < 0 || band >= astro::kNumBands) {
    throw std::runtime_error("dataset stream: bad band index");
  }
  o.band = astro::kAllBands[static_cast<std::size_t>(band)];
  o.mjd = read_f64(is);
  o.seeing_fwhm_px = read_f64(is);
  o.transparency = read_f64(is);
  o.sky_scale = read_f64(is);
  return o;
}

void write_config(std::ostream& os, const SnDataset::Config& c) {
  write_i64(os, c.num_samples);
  write_f64(os, c.p_ia);
  write_u64(os, c.seed);
  write_i64(os, c.catalog.count);
  write_u64(os, c.catalog.seed);
  write_f64(os, c.catalog.ra_center_deg);
  write_f64(os, c.catalog.dec_center_deg);
  write_f64(os, c.catalog.field_extent_deg);
  write_f64(os, c.catalog.z_min);
  write_f64(os, c.catalog.z_max);
  write_f64(os, c.catalog.z_gamma_shape);
  write_f64(os, c.catalog.z_gamma_scale);
  write_f64(os, c.schedule.start_mjd);
  write_f64(os, c.schedule.season_days);
  write_i64(os, c.schedule.epochs_per_band);
  write_i64(os, c.schedule.max_bands_per_day);
  write_f64(os, c.schedule.mean_seeing_fwhm_px);
  write_f64(os, c.schedule.seeing_log_sigma);
  write_f64(os, c.schedule.min_transparency);
  write_i64(os, c.renderer.stamp_size);
  write_f64(os, c.renderer.noise.sky_level);
  write_f64(os, c.renderer.noise.gain);
  write_f64(os, c.renderer.noise.read_noise);
  write_f64(os, c.renderer.reference_noise_scale);
  write_f64(os, c.renderer.pointing_jitter_px);
  write_f64(os, c.peak_margin_lo);
  write_f64(os, c.peak_margin_hi);
}

SnDataset::Config read_config(std::istream& is) {
  SnDataset::Config c;
  c.num_samples = read_i64(is);
  c.p_ia = read_f64(is);
  c.seed = read_u64(is);
  c.catalog.count = read_i64(is);
  c.catalog.seed = read_u64(is);
  c.catalog.ra_center_deg = read_f64(is);
  c.catalog.dec_center_deg = read_f64(is);
  c.catalog.field_extent_deg = read_f64(is);
  c.catalog.z_min = read_f64(is);
  c.catalog.z_max = read_f64(is);
  c.catalog.z_gamma_shape = read_f64(is);
  c.catalog.z_gamma_scale = read_f64(is);
  c.schedule.start_mjd = read_f64(is);
  c.schedule.season_days = read_f64(is);
  c.schedule.epochs_per_band = read_i64(is);
  c.schedule.max_bands_per_day = read_i64(is);
  c.schedule.mean_seeing_fwhm_px = read_f64(is);
  c.schedule.seeing_log_sigma = read_f64(is);
  c.schedule.min_transparency = read_f64(is);
  c.renderer.stamp_size = read_i64(is);
  c.renderer.noise.sky_level = read_f64(is);
  c.renderer.noise.gain = read_f64(is);
  c.renderer.noise.read_noise = read_f64(is);
  c.renderer.reference_noise_scale = read_f64(is);
  c.renderer.pointing_jitter_px = read_f64(is);
  c.peak_margin_lo = read_f64(is);
  c.peak_margin_hi = read_f64(is);
  return c;
}

void write_spec(std::ostream& os, const SampleSpec& s) {
  write_i64(os, s.galaxy_index);
  write_i64(os, static_cast<std::int64_t>(s.sn.type));
  write_f64(os, s.sn.redshift);
  write_f64(os, s.sn.stretch);
  write_f64(os, s.sn.color);
  write_f64(os, s.sn.peak_mjd);
  write_f64(os, s.sn.peak_abs_mag);
  write_f64(os, s.offset.dy);
  write_f64(os, s.offset.dx);
  write_u64(os, s.noise_seed);
  write_u64(os, s.schedule.observations.size());
  for (const Observation& o : s.schedule.observations) {
    write_observation(os, o);
  }
  for (const Observation& o : s.schedule.references) {
    write_observation(os, o);
  }
}

SampleSpec read_spec(std::istream& is) {
  SampleSpec s;
  s.galaxy_index = read_i64(is);
  const std::int64_t type = read_i64(is);
  if (type < 0 || type >= static_cast<std::int64_t>(astro::kAllSnTypes.size())) {
    throw std::runtime_error("dataset stream: bad SN type");
  }
  s.sn.type = astro::kAllSnTypes[static_cast<std::size_t>(type)];
  s.sn.redshift = read_f64(is);
  s.sn.stretch = read_f64(is);
  s.sn.color = read_f64(is);
  s.sn.peak_mjd = read_f64(is);
  s.sn.peak_abs_mag = read_f64(is);
  s.offset.dy = read_f64(is);
  s.offset.dx = read_f64(is);
  s.noise_seed = read_u64(is);
  const std::uint64_t n_obs = read_u64(is);
  if (n_obs > 10000) {
    throw std::runtime_error("dataset stream: implausible observation count");
  }
  require_stream_bytes(
      is, (n_obs + static_cast<std::uint64_t>(astro::kNumBands)) * kObsBytes,
      "read_spec");
  s.schedule.observations.reserve(n_obs);
  for (std::uint64_t k = 0; k < n_obs; ++k) {
    s.schedule.observations.push_back(read_observation(is));
  }
  for (auto& ref : s.schedule.references) ref = read_observation(is);
  return s;
}

}  // namespace

void write_dataset(std::ostream& os, const SnDataset& data) {
  os.write(kMagic, 4);
  write_u64(os, kVersion);
  write_config(os, data.config());
  write_u64(os, static_cast<std::uint64_t>(data.size()));
  for (std::int64_t i = 0; i < data.size(); ++i) {
    write_spec(os, data.spec(i));
  }
  if (!os) throw std::runtime_error("write_dataset: stream failure");
}

SnDataset read_dataset(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw std::runtime_error("read_dataset: bad magic");
  }
  if (read_u64(is) != kVersion) {
    throw std::runtime_error("read_dataset: unsupported version");
  }
  const SnDataset::Config config = read_config(is);
  const std::uint64_t count = read_u64(is);
  if (count == 0 || count > 10'000'000) {
    throw std::runtime_error("read_dataset: implausible sample count");
  }
  require_stream_bytes(is, count * kMinSpecBytes, "read_dataset");
  std::vector<SampleSpec> specs;
  specs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    specs.push_back(read_spec(is));
  }
  return SnDataset::from_parts(config, std::move(specs));
}

void save_dataset(const std::string& path, const SnDataset& data) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_dataset: cannot open " + path);
  write_dataset(os, data);
}

SnDataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_dataset: cannot open " + path);
  return read_dataset(is);
}

}  // namespace sne::sim
