// dataset_io.h — persistence for SnDataset sample specs. A dataset is
// fully determined by its Config plus the sampled SampleSpecs (images
// re-render deterministically from those), so the on-disk format stores
// exactly that: a labeled survey season in a few hundred bytes per
// supernova. Lets a trained pipeline be validated later against the
// *identical* dataset without re-running the sampler.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/dataset_builder.h"

namespace sne::sim {

/// Binary format: magic "SNDS", version, config, catalog seed info,
/// spec records. Throws std::runtime_error on malformed streams.
void write_dataset(std::ostream& os, const SnDataset& data);
SnDataset read_dataset(std::istream& is);

/// File wrappers.
void save_dataset(const std::string& path, const SnDataset& data);
SnDataset load_dataset(const std::string& path);

}  // namespace sne::sim
