#include "sim/difference.h"

#include <cmath>

#include "sim/image_ops.h"
#include "sim/psf.h"

namespace sne::sim {

Tensor match_reference(const Tensor& reference,
                       const Observation& obs_conditions,
                       const Observation& ref_conditions) {
  const GaussianPsf obs_psf(obs_conditions.seeing_fwhm_px);
  const GaussianPsf ref_psf(ref_conditions.seeing_fwhm_px);

  // Photometric scaling: the reference was taken at (near-)unit
  // transparency; rescale it to the observation's throughput so the galaxy
  // cancels in the subtraction.
  const double flux_ratio =
      obs_conditions.transparency / ref_conditions.transparency;

  Tensor matched = ref_psf.sigma() <= obs_psf.sigma()
                       ? gaussian_blur(reference,
                                       ref_psf.matching_sigma(obs_psf))
                       : reference;
  matched *= static_cast<float>(flux_ratio);
  return matched;
}

Tensor psf_matched_difference(const Tensor& observation,
                              const Tensor& reference,
                              const Observation& obs_conditions,
                              const Observation& ref_conditions) {
  check_same_shape(observation, reference, "psf_matched_difference");

  const GaussianPsf obs_psf(obs_conditions.seeing_fwhm_px);
  const GaussianPsf ref_psf(ref_conditions.seeing_fwhm_px);

  if (ref_psf.sigma() <= obs_psf.sigma()) {
    return subtract(observation,
                    match_reference(reference, obs_conditions,
                                    ref_conditions));
  }
  // Rare direction: degrade the observation to the reference's PSF.
  const double flux_ratio =
      obs_conditions.transparency / ref_conditions.transparency;
  Tensor matched_obs =
      gaussian_blur(observation, obs_psf.matching_sigma(ref_psf));
  Tensor scaled_ref = reference;
  scaled_ref *= static_cast<float>(flux_ratio);
  return subtract(matched_obs, scaled_ref);
}

}  // namespace sne::sim
