// difference.h — difference imaging. Step (2) of the paper's detection
// pipeline: "transient object candidates are detected by subtracting the
// obtained image from a reference image convoluted with an appropriately
// optimized filter to match the image quality." For Gaussian PSFs the
// optimal matching kernel is itself a Gaussian with σ² = σ_obs² − σ_ref²;
// references are scheduled with better seeing than any epoch, so the match
// direction is fixed.
#pragma once

#include "sim/scheduler.h"
#include "tensor/tensor.h"

namespace sne::sim {

/// PSF-matched difference: blurs `reference` to the observation's seeing
/// (quadrature kernel, scaled by the transparency ratio) and subtracts it
/// from `observation`. When the observation seeing is (unusually) better
/// than the reference's, the observation is blurred instead — the
/// difference then has the reference's PSF; either way the SN survives as
/// a point source.
Tensor psf_matched_difference(const Tensor& observation,
                              const Tensor& reference,
                              const Observation& obs_conditions,
                              const Observation& ref_conditions);

/// The reference convolved/scaled to the observation's image quality —
/// the "(reference) convoluted with an appropriately optimized filter" of
/// the paper's pipeline. This is what the CNN receives as the first image
/// of its (reference, observation) input pair. When the observation's
/// seeing is better than the reference's (no valid blur direction), the
/// reference is only photometrically scaled; the residual PSF mismatch is
/// a realistic pipeline imperfection the network must tolerate.
Tensor match_reference(const Tensor& reference,
                       const Observation& obs_conditions,
                       const Observation& ref_conditions);

}  // namespace sne::sim
