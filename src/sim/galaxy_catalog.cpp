#include "sim/galaxy_catalog.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "astro/photometry.h"

namespace sne::sim {

GalaxyCatalog GalaxyCatalog::generate(const Config& config) {
  if (config.count <= 0) {
    throw std::invalid_argument("GalaxyCatalog: count must be positive");
  }
  if (config.z_min <= 0.0 || config.z_max <= config.z_min) {
    throw std::invalid_argument("GalaxyCatalog: bad redshift range");
  }

  Rng rng(config.seed);
  std::vector<Galaxy> galaxies;
  galaxies.reserve(static_cast<std::size_t>(config.count));

  const double half = 0.5 * config.field_extent_deg;
  for (std::int64_t i = 0; i < config.count; ++i) {
    Galaxy g;
    g.ra_deg = config.ra_center_deg + rng.uniform(-half, half);
    g.dec_deg = config.dec_center_deg + rng.uniform(-half, half);

    // Photo-z: gamma-shaped n(z), redrawn until inside the catalog cut.
    double z = rng.gamma(config.z_gamma_shape, config.z_gamma_scale);
    while (z < config.z_min || z > config.z_max) {
      z = rng.gamma(config.z_gamma_shape, config.z_gamma_scale);
    }
    g.photo_z = z;

    // Apparent magnitude correlates with distance plus population scatter.
    g.apparent_mag = std::clamp(
        21.0 + 5.0 * std::log10(z / 0.5) + rng.normal(0.0, 0.9), 17.5, 24.5);

    // Morphology: angular size shrinks with redshift; Sérsic index spans
    // disks to bulges; axis ratio favors moderately inclined systems.
    SersicProfile& m = g.morphology;
    const double size_arcsec = std::clamp(
        rng.gamma(2.0, 0.35) * (1.0 / (0.6 + z)) + 0.15, 0.15, 2.5);
    m.half_light_radius = size_arcsec / kPixelScaleArcsec;
    m.sersic_n = std::clamp(std::exp(rng.normal(0.2, 0.5)), 0.5, 4.0);
    m.axis_ratio = rng.uniform(0.3, 1.0);
    m.position_angle = rng.uniform(0.0, std::numbers::pi);
    m.total_flux = astro::flux_from_mag(g.apparent_mag);

    galaxies.push_back(g);
  }
  return GalaxyCatalog(config, std::move(galaxies));
}

std::vector<double> GalaxyCatalog::redshift_histogram(
    std::int64_t bins) const {
  if (bins <= 0) throw std::invalid_argument("redshift_histogram: bins <= 0");
  std::vector<double> hist(static_cast<std::size_t>(bins), 0.0);
  const double lo = config_.z_min;
  const double width = (config_.z_max - config_.z_min) /
                       static_cast<double>(bins);
  for (const Galaxy& g : galaxies_) {
    auto bin = static_cast<std::int64_t>((g.photo_z - lo) / width);
    bin = std::clamp<std::int64_t>(bin, 0, bins - 1);
    hist[static_cast<std::size_t>(bin)] += 1.0;
  }
  for (auto& v : hist) v /= static_cast<double>(galaxies_.size());
  return hist;
}

}  // namespace sne::sim
