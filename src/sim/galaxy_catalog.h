// galaxy_catalog.h — synthetic stand-in for the COSMOS galaxy catalog.
// The paper selects hosts from the COSMOS archive with photo-z in
// [0.1, 2.0] (its Fig. 3 shows the sky and redshift coverage). This
// generator reproduces those statistics: uniform coverage of a ~1.4°
// square footprint centred on the COSMOS field, a gamma-shaped photo-z
// distribution peaking near z ≈ 0.7, and morphology/brightness
// distributions that shrink and fade with redshift.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sersic.h"
#include "tensor/rng.h"

namespace sne::sim {

struct Galaxy {
  double ra_deg = 0.0;
  double dec_deg = 0.0;
  double photo_z = 0.5;
  double apparent_mag = 21.0;  ///< integrated host magnitude
  SersicProfile morphology;    ///< pixel units (kPixelScaleArcsec)
};

/// Survey pixel scale (HSC-like), arcsec per pixel.
inline constexpr double kPixelScaleArcsec = 0.2;

class GalaxyCatalog {
 public:
  struct Config {
    std::int64_t count = 5000;
    std::uint64_t seed = 20170915;
    // COSMOS field center and extent.
    double ra_center_deg = 150.12;
    double dec_center_deg = 2.21;
    double field_extent_deg = 1.4;
    double z_min = 0.1;
    double z_max = 2.0;
    // Photo-z gamma shape; defaults reproduce the COSMOS-like n(z)
    // peaking near 0.7 (Fig. 3 right of the paper).
    double z_gamma_shape = 2.6;
    double z_gamma_scale = 0.28;
  };

  /// Generates a catalog; deterministic in config.seed.
  static GalaxyCatalog generate(const Config& config);

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(galaxies_.size());
  }
  const Galaxy& galaxy(std::int64_t index) const {
    return galaxies_.at(static_cast<std::size_t>(index));
  }
  const std::vector<Galaxy>& galaxies() const noexcept { return galaxies_; }

  /// Redshift histogram with `bins` equal bins over [z_min, z_max]
  /// (normalized to fractions); used by the Fig. 3 bench.
  std::vector<double> redshift_histogram(std::int64_t bins) const;

  const Config& config() const noexcept { return config_; }

 private:
  GalaxyCatalog(Config config, std::vector<Galaxy> galaxies)
      : config_(config), galaxies_(std::move(galaxies)) {}

  Config config_;
  std::vector<Galaxy> galaxies_;
};

}  // namespace sne::sim
