#include "sim/image_ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sne::sim {

namespace {

void check_stamp(const Tensor& image, const char* where) {
  if (image.rank() != 2) {
    throw std::invalid_argument(std::string(where) +
                                ": expected rank-2 stamp, got " +
                                image.shape_string());
  }
}

}  // namespace

Tensor center_crop(const Tensor& image, std::int64_t size) {
  check_stamp(image, "center_crop");
  const std::int64_t h = image.extent(0);
  const std::int64_t w = image.extent(1);
  if (size <= 0 || size > h || size > w) {
    throw std::invalid_argument("center_crop: bad crop size");
  }
  const std::int64_t y0 = (h - size) / 2;
  const std::int64_t x0 = (w - size) / 2;
  Tensor out({size, size});
  for (std::int64_t y = 0; y < size; ++y) {
    const float* src = image.data() + (y0 + y) * w + x0;
    std::copy(src, src + size, out.data() + y * size);
  }
  return out;
}

Tensor gaussian_blur(const Tensor& image, double sigma) {
  check_stamp(image, "gaussian_blur");
  if (sigma < 0.0) throw std::invalid_argument("gaussian_blur: sigma < 0");
  if (sigma < 1e-6) return image;

  const auto radius = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(4.0 * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double norm = 0.0;
  for (std::int64_t k = -radius; k <= radius; ++k) {
    const double v = std::exp(-0.5 * (k * k) / (sigma * sigma));
    kernel[static_cast<std::size_t>(k + radius)] = static_cast<float>(v);
    norm += v;
  }
  for (auto& v : kernel) v = static_cast<float>(v / norm);

  const std::int64_t h = image.extent(0);
  const std::int64_t w = image.extent(1);

  // Horizontal pass.
  Tensor tmp({h, w});
  for (std::int64_t y = 0; y < h; ++y) {
    const float* src = image.data() + y * w;
    float* dst = tmp.data() + y * w;
    for (std::int64_t x = 0; x < w; ++x) {
      float acc = 0.0f;
      const std::int64_t k_lo = std::max<std::int64_t>(-radius, -x);
      const std::int64_t k_hi = std::min<std::int64_t>(radius, w - 1 - x);
      for (std::int64_t k = k_lo; k <= k_hi; ++k) {
        acc += src[x + k] * kernel[static_cast<std::size_t>(k + radius)];
      }
      dst[x] = acc;
    }
  }
  // Vertical pass.
  Tensor out({h, w});
  for (std::int64_t x = 0; x < w; ++x) {
    for (std::int64_t y = 0; y < h; ++y) {
      float acc = 0.0f;
      const std::int64_t k_lo = std::max<std::int64_t>(-radius, -y);
      const std::int64_t k_hi = std::min<std::int64_t>(radius, h - 1 - y);
      for (std::int64_t k = k_lo; k <= k_hi; ++k) {
        acc += tmp[(y + k) * w + x] *
               kernel[static_cast<std::size_t>(k + radius)];
      }
      out[y * w + x] = acc;
    }
  }
  return out;
}

Tensor subtract(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

double aperture_sum(const Tensor& image, double cy, double cx, double r) {
  check_stamp(image, "aperture_sum");
  if (r <= 0.0) throw std::invalid_argument("aperture_sum: radius <= 0");
  const std::int64_t h = image.extent(0);
  const std::int64_t w = image.extent(1);
  const auto y_lo = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(std::floor(cy - r)));
  const auto y_hi = std::min<std::int64_t>(
      h - 1, static_cast<std::int64_t>(std::ceil(cy + r)));
  const auto x_lo = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(std::floor(cx - r)));
  const auto x_hi = std::min<std::int64_t>(
      w - 1, static_cast<std::int64_t>(std::ceil(cx + r)));

  double sum = 0.0;
  const double r2 = r * r;
  for (std::int64_t y = y_lo; y <= y_hi; ++y) {
    for (std::int64_t x = x_lo; x <= x_hi; ++x) {
      const double dy = static_cast<double>(y) - cy;
      const double dx = static_cast<double>(x) - cx;
      if (dy * dy + dx * dx <= r2) {
        sum += image[y * w + x];
      }
    }
  }
  return sum;
}

}  // namespace sne::sim
