// image_ops.h — primitive operations on 2-d image stamps. Stamps are
// rank-2 Tensors indexed (y, x); the survey pipeline works on 65×65
// cutouts, cropped to smaller sizes for the CNN input-size sweep
// (Table 1 of the paper).
#pragma once

#include "tensor/tensor.h"

namespace sne::sim {

/// Centered crop of a square region of extent `size`; when the margins are
/// odd the extra row/column is dropped at the bottom/right (deterministic).
/// `size` must not exceed either input extent.
Tensor center_crop(const Tensor& image, std::int64_t size);

/// Separable Gaussian blur with standard deviation `sigma` pixels; kernel
/// truncated at ±4σ and renormalized, edges handled by zero padding
/// (stamps are sky-dominated at the borders, so this matches the data).
Tensor gaussian_blur(const Tensor& image, double sigma);

/// Elementwise a − b (shapes must match): the raw difference image.
Tensor subtract(const Tensor& a, const Tensor& b);

/// Sum of pixel values inside a circular aperture of radius `r` centered
/// at (cy, cx) (pixel centers, fractional allowed).
double aperture_sum(const Tensor& image, double cy, double cx, double r);

}  // namespace sne::sim
