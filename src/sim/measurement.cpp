#include "sim/measurement.h"

#include <cmath>
#include <stdexcept>

#include "sim/psf.h"

namespace sne::sim {

double psf_weighted_flux(const Tensor& difference, double cy, double cx,
                         double psf_sigma) {
  if (difference.rank() != 2) {
    throw std::invalid_argument("psf_weighted_flux: expected rank-2 stamp");
  }
  if (psf_sigma <= 0.0) {
    throw std::invalid_argument("psf_weighted_flux: sigma <= 0");
  }
  const GaussianPsf psf(psf_sigma * kFwhmToSigma);
  const Tensor weights = psf.render_point_source(
      difference.extent(0), difference.extent(1), cy, cx, 1.0);

  double num = 0.0;
  double den = 0.0;
  for (std::int64_t i = 0; i < difference.size(); ++i) {
    num += static_cast<double>(weights[i]) * difference[i];
    den += static_cast<double>(weights[i]) * weights[i];
  }
  if (den <= 0.0) {
    throw std::logic_error("psf_weighted_flux: degenerate weights");
  }
  return num / den;
}

FluxMeasurement sample_measurement(const astro::LightCurve& lc,
                                   const Observation& obs,
                                   const NoiseModel& noise, Rng& rng) {
  const GaussianPsf psf(obs.seeing_fwhm_px);
  const double true_flux = lc.flux(obs.band, obs.mjd) * obs.transparency;
  NoiseModel epoch_noise = noise;
  epoch_noise.sky_level *= obs.sky_scale;
  const double sigma =
      point_source_flux_sigma(epoch_noise, psf.sigma(), true_flux);

  FluxMeasurement m;
  m.band = obs.band;
  m.mjd = obs.mjd;
  // Measured fluxes can scatter negative at low S/N — real difference
  // photometry does; downstream code must not assume positivity.
  m.flux = (true_flux + rng.normal(0.0, sigma)) / obs.transparency;
  m.flux_error = sigma / obs.transparency;
  return m;
}

}  // namespace sne::sim
