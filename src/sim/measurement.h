// measurement.h — classical forced photometry on difference images, and a
// fast noisy-flux sampler. These model the "precise and complex flux
// measurements" of the photometric pipelines the paper compares against:
// the multi-epoch baselines (template fits, Lochner-style features, the
// GRU) consume fluxes measured this way, while the paper's CNN replaces
// the measurement step entirely.
#pragma once

#include "astro/lightcurve.h"
#include "sim/noise.h"
#include "sim/scheduler.h"
#include "tensor/tensor.h"

namespace sne::sim {

/// One photometric point of a light curve.
struct FluxMeasurement {
  astro::Band band = astro::Band::g;
  double mjd = 0.0;
  double flux = 0.0;       ///< measured flux, zero-point 27 units
  double flux_error = 0.0; ///< 1σ uncertainty
};

/// PSF-weighted (optimal for a known Gaussian PSF) point-source flux on a
/// difference image at the known SN position: the matched-filter estimate
/// Σ w·d / Σ w² with w the unit PSF.
double psf_weighted_flux(const Tensor& difference, double cy, double cx,
                         double psf_sigma);

/// Samples a realistic noisy measurement of the light curve at one epoch
/// without rendering images: true flux + N(0, σ) with σ from the noise
/// model (sky-dominated + source shot noise). Faster path used by the
/// feature-level experiments (Figs. 9–10, Table 2 baselines).
FluxMeasurement sample_measurement(const astro::LightCurve& lc,
                                   const Observation& obs,
                                   const NoiseModel& noise, Rng& rng);

}  // namespace sne::sim
