#include "sim/noise.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sne::sim {

Tensor apply_noise(const Tensor& source, const NoiseModel& model, Rng& rng) {
  if (model.gain <= 0.0 || model.sky_level < 0.0 || model.read_noise < 0.0) {
    throw std::invalid_argument("apply_noise: bad noise model");
  }
  Tensor out(source.shape());
  const double inv_gain = 1.0 / model.gain;
  for (std::int64_t i = 0; i < source.size(); ++i) {
    const double electrons =
        std::max(0.0, static_cast<double>(source[i])) * model.gain +
        model.sky_level;
    double counts = static_cast<double>(rng.poisson(electrons));
    counts += rng.normal(0.0, model.read_noise);
    out[i] = static_cast<float>((counts - model.sky_level) * inv_gain);
  }
  return out;
}

double point_source_flux_sigma(const NoiseModel& model, double psf_sigma,
                               double source_flux) {
  if (psf_sigma <= 0.0) {
    throw std::invalid_argument("point_source_flux_sigma: sigma <= 0");
  }
  // Optimal (PSF-weighted) photometry on a Gaussian PSF has an effective
  // background area of 4πσ² pixels.
  const double n_eff = 4.0 * std::numbers::pi * psf_sigma * psf_sigma;
  const double sky_var =
      (model.sky_level + model.read_noise * model.read_noise) * n_eff;
  const double source_var = std::max(0.0, source_flux) * model.gain;
  return std::sqrt(sky_var + source_var) / model.gain;
}

}  // namespace sne::sim
