// noise.h — detector and sky noise model. Observed counts per pixel are
// Poisson in (source + sky) electrons plus Gaussian read noise; stamps are
// then sky-subtracted, so what the pipeline sees is source signal plus a
// zero-mean noise field whose variance is sky-dominated — the regime of
// the paper's faint transient cutouts.
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sne::sim {

struct NoiseModel {
  double sky_level = 400.0;  ///< sky electrons per pixel per exposure
  /// Electrons per zero-point-27 flux unit. The default calibrates the
  /// survey depth: a mag-23 point source reaches S/N ≈ 30 and the 5σ
  /// point-source limiting magnitude lands near 25.2 — an HSC-deep-like
  /// survey, the regime in which the paper's faint high-z supernovae
  /// live (their Fig. 8 magnitudes run out to ≈ 26 with blowing-up
  /// scatter).
  double gain = 100.0;
  double read_noise = 5.0;   ///< electrons RMS per pixel
};

/// Applies the noise model to a noiseless source image (flux units):
/// counts ~ Poisson(gain·source + sky) + N(0, read_noise²), then
/// sky-subtracted and converted back to flux units.
Tensor apply_noise(const Tensor& source, const NoiseModel& model, Rng& rng);

/// 1σ flux uncertainty of a PSF-weighted point-source measurement under
/// this noise model, for a Gaussian PSF with the given sigma:
/// effective noise area is 4π·σ² pixels.
double point_source_flux_sigma(const NoiseModel& model, double psf_sigma,
                               double source_flux);

}  // namespace sne::sim
