#include "sim/pgm.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sne::sim {

std::string encode_pgm(const Tensor& stamp, double stretch, double clip) {
  if (stamp.rank() != 2) {
    throw std::invalid_argument("encode_pgm: expected rank-2 stamp");
  }
  if (stretch <= 0.0 || clip <= 0.0) {
    throw std::invalid_argument("encode_pgm: stretch and clip must be > 0");
  }
  const std::int64_t h = stamp.extent(0);
  const std::int64_t w = stamp.extent(1);

  // Robust scale from the interquartile range (σ ≈ IQR / 1.349).
  std::vector<float> sorted(stamp.data(), stamp.data() + stamp.size());
  std::sort(sorted.begin(), sorted.end());
  const auto q = [&](double f) {
    return sorted[static_cast<std::size_t>(
        f * static_cast<double>(sorted.size() - 1))];
  };
  const double median = q(0.5);
  double sigma = (q(0.75) - q(0.25)) / 1.349;
  if (sigma <= 0.0) sigma = 1.0;  // constant image: render flat gray

  std::ostringstream os;
  os << "P5\n" << w << ' ' << h << "\n255\n";
  const double lo = -clip;
  const double hi = stretch;
  for (std::int64_t i = 0; i < stamp.size(); ++i) {
    const double z = (static_cast<double>(stamp[i]) - median) / sigma;
    // asinh stretch compresses the bright tail, linear near zero.
    const double t =
        (std::asinh(std::clamp(z, lo, hi)) - std::asinh(lo)) /
        (std::asinh(hi) - std::asinh(lo));
    os.put(static_cast<char>(
        std::clamp(static_cast<int>(t * 255.0 + 0.5), 0, 255)));
  }
  return os.str();
}

void write_pgm(const std::string& path, const Tensor& stamp, double stretch,
               double clip) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_pgm: cannot open " + path);
  const std::string bytes = encode_pgm(stamp, stretch, clip);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("write_pgm: write failed");
}

}  // namespace sne::sim
