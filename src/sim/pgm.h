// pgm.h — portable-graymap export of image stamps, so humans can look at
// what the simulator renders and what difference imaging leaves behind
// (any image viewer opens .pgm). Values are robustly stretched with an
// asinh-like mapping, the standard choice for astronomical display.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace sne::sim {

/// Writes a rank-2 stamp as an 8-bit binary PGM. The display stretch maps
/// [−clip·σ, +stretch·σ] (σ = robust scatter via the interquartile range)
/// through an asinh curve; pure noise renders mid-gray, sources bright,
/// negative subtraction residuals dark.
void write_pgm(const std::string& path, const Tensor& stamp,
               double stretch = 12.0, double clip = 3.0);

/// In-memory variant (for tests); returns the PGM bytes.
std::string encode_pgm(const Tensor& stamp, double stretch = 12.0,
                       double clip = 3.0);

}  // namespace sne::sim
