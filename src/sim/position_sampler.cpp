#include "sim/position_sampler.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sne::sim {

double SnOffset::radius() const { return std::sqrt(dy * dy + dx * dx); }

SnOffset sample_sn_offset(const SersicProfile& host, Rng& rng, double max_re) {
  if (max_re <= 0.0) {
    throw std::invalid_argument("sample_sn_offset: max_re <= 0");
  }
  // Exponential radial CDF truncated at max_re·r_e: invert by rejection on
  // the closed form (cheap, a couple of iterations on average).
  const double scale = host.half_light_radius / 1.678;  // exp. disk r_e ratio
  const double r_max = max_re * host.half_light_radius;
  double r = -scale * std::log(1.0 - rng.uniform());
  while (r > r_max) {
    r = -scale * std::log(1.0 - rng.uniform());
  }

  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  // Coordinates in the host's major/minor frame; minor axis compressed by
  // the axis ratio, then rotated by the position angle.
  const double u = r * std::cos(theta);
  const double v = r * std::sin(theta) * host.axis_ratio;
  const double cos_pa = std::cos(host.position_angle);
  const double sin_pa = std::sin(host.position_angle);

  SnOffset offset;
  offset.dx = u * cos_pa - v * sin_pa;
  offset.dy = u * sin_pa + v * cos_pa;
  return offset;
}

}  // namespace sne::sim
