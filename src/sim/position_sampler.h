// position_sampler.h — supernova placement within the host. The paper
// samples the SN position "randomly from an ellipsoidal region fitted to
// the host galaxy" (its Fig. 4 shows the resulting distribution around
// hosts). We draw from the host's elliptical light distribution: uniform
// angle, radius from a light-weighted profile truncated at a few r_e.
#pragma once

#include "sim/sersic.h"
#include "tensor/rng.h"

namespace sne::sim {

/// Offset of the supernova from the host center, stamp pixels.
struct SnOffset {
  double dy = 0.0;
  double dx = 0.0;

  double radius() const;
};

/// Samples an offset inside the host ellipse: the radial coordinate
/// follows the projected light profile (approximated by an exponential
/// with scale r_e/1.68) truncated at `max_re` half-light radii, and the
/// ellipse geometry (axis ratio + position angle) matches the host.
SnOffset sample_sn_offset(const SersicProfile& host, Rng& rng,
                          double max_re = 3.0);

}  // namespace sne::sim
