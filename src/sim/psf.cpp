#include "sim/psf.h"

#include <cmath>
#include <stdexcept>

namespace sne::sim {

GaussianPsf::GaussianPsf(double fwhm_pixels)
    : fwhm_(fwhm_pixels), sigma_(fwhm_pixels / kFwhmToSigma) {
  if (fwhm_pixels <= 0.0) {
    throw std::invalid_argument("GaussianPsf: FWHM must be positive");
  }
}

Tensor GaussianPsf::render_point_source(std::int64_t height,
                                        std::int64_t width, double cy,
                                        double cx, double flux) const {
  if (height <= 0 || width <= 0) {
    throw std::invalid_argument("render_point_source: bad stamp extents");
  }
  Tensor stamp({height, width});
  const double inv = 1.0 / (std::sqrt(2.0) * sigma_);
  // Per-pixel integral of the 2-d Gaussian factorizes into erf differences.
  // Only a ±5σ box contributes above float precision.
  const double reach = 5.0 * sigma_ + 1.0;
  const auto y_lo = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(std::floor(cy - reach)));
  const auto y_hi = std::min<std::int64_t>(
      height - 1, static_cast<std::int64_t>(std::ceil(cy + reach)));
  const auto x_lo = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(std::floor(cx - reach)));
  const auto x_hi = std::min<std::int64_t>(
      width - 1, static_cast<std::int64_t>(std::ceil(cx + reach)));

  for (std::int64_t y = y_lo; y <= y_hi; ++y) {
    const double fy = 0.5 * (std::erf((y + 0.5 - cy) * inv) -
                             std::erf((y - 0.5 - cy) * inv));
    for (std::int64_t x = x_lo; x <= x_hi; ++x) {
      const double fx = 0.5 * (std::erf((x + 0.5 - cx) * inv) -
                               std::erf((x - 0.5 - cx) * inv));
      stamp[y * width + x] = static_cast<float>(flux * fy * fx);
    }
  }
  return stamp;
}

MoffatPsf::MoffatPsf(double fwhm_pixels, double beta)
    : fwhm_(fwhm_pixels), beta_(beta) {
  if (fwhm_pixels <= 0.0 || beta <= 1.0) {
    throw std::invalid_argument(
        "MoffatPsf: FWHM must be positive and beta > 1");
  }
  // FWHM = 2α·sqrt(2^(1/β) − 1).
  alpha_ = fwhm_pixels / (2.0 * std::sqrt(std::pow(2.0, 1.0 / beta) - 1.0));
}

Tensor MoffatPsf::render_point_source(std::int64_t height, std::int64_t width,
                                      double cy, double cx,
                                      double flux) const {
  if (height <= 0 || width <= 0) {
    throw std::invalid_argument("MoffatPsf: bad stamp extents");
  }
  Tensor stamp({height, width});
  const double inv_a2 = 1.0 / (alpha_ * alpha_);
  double sum = 0.0;
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      // 3×3 subpixel sampling: the Moffat core is cuspier than a Gaussian.
      double v = 0.0;
      for (int sy = -1; sy <= 1; ++sy) {
        for (int sx = -1; sx <= 1; ++sx) {
          const double dy = y + sy / 3.0 - cy;
          const double dx = x + sx / 3.0 - cx;
          v += std::pow(1.0 + (dy * dy + dx * dx) * inv_a2, -beta_);
        }
      }
      stamp[y * width + x] = static_cast<float>(v / 9.0);
      sum += v / 9.0;
    }
  }
  if (sum > 0.0) stamp *= static_cast<float>(flux / sum);
  return stamp;
}

double GaussianPsf::matching_sigma(const GaussianPsf& target) const {
  if (target.sigma_ < sigma_) {
    throw std::invalid_argument(
        "matching_sigma: target PSF must be broader than source");
  }
  return std::sqrt(target.sigma_ * target.sigma_ - sigma_ * sigma_);
}

}  // namespace sne::sim
