// psf.h — point-spread-function models. Ground-based seeing varies per
// epoch; the renderer convolves galaxies with the epoch PSF and injects
// the supernova as a PSF-shaped point source, so a seeing mismatch between
// the reference and the observation leaves realistic subtraction
// residuals for the CNN to cope with.
#pragma once

#include "tensor/tensor.h"

namespace sne::sim {

/// Circular Gaussian PSF parametrized by FWHM in pixels.
class GaussianPsf {
 public:
  explicit GaussianPsf(double fwhm_pixels);

  double fwhm() const noexcept { return fwhm_; }
  double sigma() const noexcept { return sigma_; }

  /// Renders a unit-flux point source at fractional pixel position
  /// (cy, cx) into a stamp of the given extents. Pixel (y, x) integrates
  /// the Gaussian via the error function (exact per-pixel flux, so
  /// aperture photometry on the stamp recovers the injected flux).
  Tensor render_point_source(std::int64_t height, std::int64_t width,
                             double cy, double cx, double flux) const;

  /// Quadrature "seeing match": the Gaussian blur sigma that degrades this
  /// PSF to `target` (which must be broader). Used by difference imaging.
  double matching_sigma(const GaussianPsf& target) const;

 private:
  double fwhm_;
  double sigma_;
};

/// FWHM → Gaussian sigma conversion factor (2·sqrt(2·ln 2)).
inline constexpr double kFwhmToSigma = 2.3548200450309493;

/// Moffat PSF: I(r) ∝ (1 + (r/α)²)^(−β) — the standard model of real
/// ground-based seeing, whose power-law wings a Gaussian underestimates.
/// Used by the artifact/bogus simulations (PSF-mismatch residuals) and
/// available for extension studies; the difference-imaging kernel match
/// assumes Gaussian PSFs, so the survey renderer defaults to those.
class MoffatPsf {
 public:
  /// β defaults to 3.5 (typical atmospheric turbulence value).
  explicit MoffatPsf(double fwhm_pixels, double beta = 3.5);

  double fwhm() const noexcept { return fwhm_; }
  double beta() const noexcept { return beta_; }
  double alpha() const noexcept { return alpha_; }

  /// Unit-flux point source at fractional position (cy, cx); pixel values
  /// by 3×3 subpixel sampling, renormalized to `flux` on the stamp.
  Tensor render_point_source(std::int64_t height, std::int64_t width,
                             double cy, double cx, double flux) const;

 private:
  double fwhm_;
  double beta_;
  double alpha_;
};

}  // namespace sne::sim
