#include "sim/renderer.h"

#include <stdexcept>

#include "sim/image_ops.h"
#include "sim/psf.h"

namespace sne::sim {

ImageRenderer::ImageRenderer(const RendererConfig& config) : config_(config) {
  if (config.stamp_size <= 0) {
    throw std::invalid_argument("ImageRenderer: stamp_size <= 0");
  }
  if (config.reference_noise_scale < 0.0) {
    throw std::invalid_argument("ImageRenderer: bad reference_noise_scale");
  }
}

Tensor ImageRenderer::render_host(const Galaxy& galaxy,
                                  const Observation& conditions, double cy,
                                  double cx) const {
  Tensor host = render_sersic(galaxy.morphology, config_.stamp_size,
                              config_.stamp_size, cy, cx);
  host *= static_cast<float>(conditions.transparency);
  const GaussianPsf psf(conditions.seeing_fwhm_px);
  return gaussian_blur(host, psf.sigma());
}

Tensor ImageRenderer::render_reference(const Galaxy& galaxy,
                                       const Observation& reference,
                                       Rng& rng) const {
  const double c = center();
  Tensor clean = render_host(galaxy, reference, c, c);

  // A stacked reference: same Poisson machinery, then the *excess* noise
  // relative to the clean image is shrunk by the stack factor. This keeps
  // the noise correlated with the source (bright cores noisier) while
  // matching the deep-stack variance.
  NoiseModel epoch_noise = config_.noise;
  epoch_noise.sky_level *= reference.sky_scale;
  Tensor noisy = apply_noise(clean, epoch_noise, rng);
  Tensor out(clean.shape());
  const auto s = static_cast<float>(config_.reference_noise_scale);
  for (std::int64_t i = 0; i < out.size(); ++i) {
    out[i] = clean[i] + s * (noisy[i] - clean[i]);
  }
  return out;
}

Tensor ImageRenderer::render_observation(const Galaxy& galaxy,
                                         const Observation& conditions,
                                         double sn_flux,
                                         const SnOffset& sn_offset,
                                         Rng& rng) const {
  if (sn_flux < 0.0) {
    throw std::invalid_argument("render_observation: negative SN flux");
  }
  const double jitter = config_.pointing_jitter_px;
  const double cy = center() + rng.uniform(-jitter, jitter);
  const double cx = center() + rng.uniform(-jitter, jitter);

  Tensor frame = render_host(galaxy, conditions, cy, cx);

  if (sn_flux > 0.0) {
    const GaussianPsf psf(conditions.seeing_fwhm_px);
    const Tensor sn = psf.render_point_source(
        config_.stamp_size, config_.stamp_size, cy + sn_offset.dy,
        cx + sn_offset.dx, sn_flux * conditions.transparency);
    frame += sn;
  }
  NoiseModel epoch_noise = config_.noise;
  epoch_noise.sky_level *= conditions.sky_scale;
  return apply_noise(frame, epoch_noise, rng);
}

}  // namespace sne::sim
