// renderer.h — produces the 65×65 survey cutouts. A reference stamp is
// the host galaxy under reference conditions (deep stack: good seeing,
// reduced noise); an observation stamp is the host plus the PSF-shaped
// supernova under that epoch's seeing/transparency, with full pixel noise.
// The supernova's flux enters in observed (zero-point 27) units before the
// transparency factor, exactly how the light-curve model reports it.
#pragma once

#include "sim/galaxy_catalog.h"
#include "sim/noise.h"
#include "sim/position_sampler.h"
#include "sim/scheduler.h"
#include "tensor/tensor.h"

namespace sne::sim {

/// Stamp extent used by the paper ("a 65×65 region is cropped").
inline constexpr std::int64_t kStampSize = 65;

struct RendererConfig {
  std::int64_t stamp_size = kStampSize;
  NoiseModel noise;
  /// Reference stacks average many exposures; their pixel noise is
  /// suppressed by this factor (≈ sqrt of the number of stacked frames).
  double reference_noise_scale = 0.35;
  /// Sub-pixel dither of the host center between epochs (pointing jitter).
  double pointing_jitter_px = 0.3;
};

class ImageRenderer {
 public:
  explicit ImageRenderer(const RendererConfig& config = {});

  /// Noiseless host image under the given conditions (galaxy convolved
  /// with the epoch PSF), centered at (cy, cx).
  Tensor render_host(const Galaxy& galaxy, const Observation& conditions,
                     double cy, double cx) const;

  /// Reference stamp: host + suppressed noise, reference conditions.
  Tensor render_reference(const Galaxy& galaxy, const Observation& reference,
                          Rng& rng) const;

  /// Observation stamp: host + supernova point source (flux in zero-point
  /// units, scaled by the epoch transparency) + full noise.
  /// `sn_offset` is relative to the host center.
  Tensor render_observation(const Galaxy& galaxy,
                            const Observation& conditions, double sn_flux,
                            const SnOffset& sn_offset, Rng& rng) const;

  const RendererConfig& config() const noexcept { return config_; }

  /// Host center in stamp coordinates (the stamp is centered on the host).
  double center() const noexcept {
    return 0.5 * static_cast<double>(config_.stamp_size - 1);
  }

 private:
  RendererConfig config_;
};

}  // namespace sne::sim
