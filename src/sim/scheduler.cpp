#include "sim/scheduler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace sne::sim {

std::vector<Observation> Schedule::band_observations(astro::Band b) const {
  std::vector<Observation> out;
  for (const Observation& obs : observations) {
    if (obs.band == b) out.push_back(obs);
  }
  return out;
}

double Schedule::first_mjd() const {
  if (observations.empty()) throw std::logic_error("Schedule: empty");
  return observations.front().mjd;
}

double Schedule::last_mjd() const {
  if (observations.empty()) throw std::logic_error("Schedule: empty");
  return observations.back().mjd;
}

Schedule make_schedule(const ScheduleConfig& config, Rng& rng) {
  if (config.epochs_per_band <= 0 || config.season_days <= 0.0 ||
      config.max_bands_per_day <= 0) {
    throw std::invalid_argument("make_schedule: bad configuration");
  }

  auto draw_seeing = [&]() {
    return config.mean_seeing_fwhm_px *
           std::exp(rng.normal(0.0, config.seeing_log_sigma));
  };
  auto draw_transparency = [&]() {
    return rng.uniform(config.min_transparency, 1.0);
  };
  auto draw_sky_scale = [&]() {
    return std::clamp(std::exp(rng.normal(0.0, config.sky_log_sigma)), 0.4,
                      3.0);
  };

  Schedule schedule;

  // References: deep pre-season stacks with better-than-median seeing
  // (a stack of many exposures; the difference-imaging convention).
  for (std::size_t b = 0; b < astro::kNumBands; ++b) {
    Observation ref;
    ref.band = astro::kAllBands[b];
    ref.mjd = config.start_mjd - 180.0;
    ref.seeing_fwhm_px = 0.85 * config.mean_seeing_fwhm_px;
    ref.transparency = 1.0;
    ref.sky_scale = 1.0;  // deep stacks average many sky conditions
    schedule.references[b] = ref;
  }

  // Observations: band b epoch e targets day ≈ (e + phase_b)·Δ with a
  // ±2-day jitter, then greedily shifts to honor the bands-per-day cap.
  const double interval =
      config.season_days / static_cast<double>(config.epochs_per_band);
  std::map<std::int64_t, std::int64_t> per_day_count;

  for (std::size_t b = 0; b < astro::kNumBands; ++b) {
    const double phase =
        static_cast<double>(b) / static_cast<double>(astro::kNumBands);
    for (std::int64_t e = 0; e < config.epochs_per_band; ++e) {
      double day = (static_cast<double>(e) + phase) * interval +
                   rng.uniform(-2.0, 2.0);
      day = std::clamp(day, 0.0, config.season_days);
      auto day_key = static_cast<std::int64_t>(std::floor(day));
      // Shift forward (wrapping once at season end) until a free day.
      for (std::int64_t tries = 0;
           per_day_count[day_key] >= config.max_bands_per_day &&
           tries < static_cast<std::int64_t>(config.season_days) + 2;
           ++tries) {
        day += 1.0;
        if (day > config.season_days) day = 0.0;
        day_key = static_cast<std::int64_t>(std::floor(day));
      }
      ++per_day_count[day_key];

      Observation obs;
      obs.band = astro::kAllBands[b];
      obs.mjd = config.start_mjd + day;
      obs.seeing_fwhm_px = draw_seeing();
      obs.transparency = draw_transparency();
      obs.sky_scale = draw_sky_scale();
      schedule.observations.push_back(obs);
    }
  }

  std::sort(schedule.observations.begin(), schedule.observations.end(),
            [](const Observation& a, const Observation& b) {
              return a.mjd < b.mjd;
            });
  return schedule;
}

}  // namespace sne::sim
