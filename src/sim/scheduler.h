// scheduler.h — broad-band observation scheduling. The paper's dataset
// section fixes the survey cadence in advance: every band gets exactly
// four observation epochs, no more than two band images are taken on the
// same day, and per-epoch observing conditions (seeing, transparency)
// fluctuate. References are deep, good-seeing stacks taken before the
// season.
#pragma once

#include <cstdint>
#include <vector>

#include "astro/bands.h"
#include "tensor/rng.h"

namespace sne::sim {

/// One scheduled exposure of one band.
struct Observation {
  astro::Band band = astro::Band::g;
  double mjd = 0.0;
  double seeing_fwhm_px = 3.5;   ///< epoch seeing, pixels
  double transparency = 1.0;     ///< atmospheric throughput ∈ (0, 1]
  /// Per-epoch sky-background multiplier (moonlight, airglow). The CNN
  /// can only calibrate the local noise floor from background pixels
  /// because this varies — the mechanism behind the paper's Table 1
  /// finding that larger input stamps estimate fluxes better.
  double sky_scale = 1.0;
};

/// Full schedule of one season: per-band reference conditions plus the
/// interleaved observation epochs.
struct Schedule {
  std::vector<Observation> observations;              ///< sorted by mjd
  std::array<Observation, astro::kNumBands> references;

  /// Observations of one band, in time order.
  std::vector<Observation> band_observations(astro::Band b) const;

  /// Earliest / latest observation epoch.
  double first_mjd() const;
  double last_mjd() const;
};

struct ScheduleConfig {
  double start_mjd = 0.0;
  double season_days = 60.0;        ///< SNe stay bright ≲ 2 months (paper §1)
  std::int64_t epochs_per_band = 4; ///< paper: "every band has 4 observations"
  std::int64_t max_bands_per_day = 2;
  double mean_seeing_fwhm_px = 3.5; ///< ≈ 0.7″ at 0.2″/px
  double seeing_log_sigma = 0.18;
  double min_transparency = 0.7;
  double sky_log_sigma = 0.35;      ///< lognormal spread of the sky level
};

/// Generates a schedule honoring the per-day band cap. Deterministic in
/// the RNG state passed in.
Schedule make_schedule(const ScheduleConfig& config, Rng& rng);

}  // namespace sne::sim
