#include "sim/sersic.h"

#include <cmath>
#include <stdexcept>

namespace sne::sim {

double sersic_bn(double n) {
  if (n < 0.2) throw std::invalid_argument("sersic_bn: n too small");
  return 2.0 * n - 1.0 / 3.0 + 4.0 / (405.0 * n);
}

Tensor render_sersic(const SersicProfile& profile, std::int64_t height,
                     std::int64_t width, double cy, double cx) {
  if (height <= 0 || width <= 0) {
    throw std::invalid_argument("render_sersic: bad stamp extents");
  }
  if (profile.half_light_radius <= 0.0 || profile.axis_ratio <= 0.0 ||
      profile.axis_ratio > 1.0 || profile.total_flux < 0.0) {
    throw std::invalid_argument("render_sersic: bad profile parameters");
  }

  const double bn = sersic_bn(profile.sersic_n);
  const double inv_n = 1.0 / profile.sersic_n;
  const double cos_pa = std::cos(profile.position_angle);
  const double sin_pa = std::sin(profile.position_angle);
  const double inv_q = 1.0 / profile.axis_ratio;
  const double inv_re = 1.0 / profile.half_light_radius;

  auto intensity = [&](double y, double x) {
    const double dy = y - cy;
    const double dx = x - cx;
    // Rotate into the major/minor frame, stretch the minor axis.
    const double u = dx * cos_pa + dy * sin_pa;
    const double v = (-dx * sin_pa + dy * cos_pa) * inv_q;
    const double r = std::sqrt(u * u + v * v) * inv_re;
    return std::exp(-bn * (std::pow(r, inv_n) - 1.0));
  };

  Tensor stamp({height, width});
  // Subpixel sampling within 3 r_e of the center, where steep profiles
  // (n ≳ 2) alias on a unit grid.
  const double core_reach = 3.0 * profile.half_light_radius;
  double sum = 0.0;
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      const double dy = static_cast<double>(y) - cy;
      const double dx = static_cast<double>(x) - cx;
      double value;
      if (dy * dy + dx * dx < core_reach * core_reach) {
        value = 0.25 * (intensity(y - 0.25, x - 0.25) +
                        intensity(y - 0.25, x + 0.25) +
                        intensity(y + 0.25, x - 0.25) +
                        intensity(y + 0.25, x + 0.25));
      } else {
        value = intensity(y, x);
      }
      stamp[y * width + x] = static_cast<float>(value);
      sum += value;
    }
  }

  if (sum > 0.0) {
    const auto scale = static_cast<float>(profile.total_flux / sum);
    stamp *= scale;
  }
  return stamp;
}

}  // namespace sne::sim
