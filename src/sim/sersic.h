// sersic.h — galaxy surface-brightness rendering. Hosts are modelled as
// elliptical Sérsic profiles (n = 1 exponential disks through n = 4
// de Vaucouleurs bulges), the standard parametric family fitted to COSMOS
// galaxies. The rendered stamp is normalized on the discrete grid so that
// its pixel sum equals the requested total flux exactly.
#pragma once

#include "tensor/tensor.h"

namespace sne::sim {

/// Morphological parameters of a host galaxy, in stamp pixel units.
struct SersicProfile {
  double sersic_n = 1.0;          ///< profile index, 0.5 … 4
  double half_light_radius = 4.0; ///< r_e along the major axis, pixels
  double axis_ratio = 0.7;        ///< b/a ∈ (0, 1]
  double position_angle = 0.0;    ///< radians, major axis vs +x
  double total_flux = 1000.0;     ///< zero-point-27 flux units
};

/// Renders the profile centered at fractional pixel (cy, cx) into a stamp
/// of the given extents. The profile is evaluated with 2×2 subpixel
/// sampling near the center (where the cusp would otherwise alias) and
/// renormalized so the stamp sums to total_flux.
Tensor render_sersic(const SersicProfile& profile, std::int64_t height,
                     std::int64_t width, double cy, double cx);

/// Approximation of the Sérsic b_n coefficient (Ciotti & Bertin 1999):
/// b_n ≈ 2n − 1/3 + 4/(405n); accurate to <1e-3 for n ≥ 0.5.
double sersic_bn(double n);

}  // namespace sne::sim
