#include "stream/cascade.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace sne::stream {

namespace {

constexpr std::uint8_t kAllBandsMask =
    static_cast<std::uint8_t>((1u << astro::kNumBands) - 1);

}  // namespace

FilterCascade::FilterCascade(const CascadeConfig& config)
    : joint_([&] {
        if (!config.joint) {
          throw std::invalid_argument(
              "FilterCascade: a joint-session builder is required");
        }
        return config.joint();
      }()),
      joint_threshold_(config.joint_threshold),
      joint_batch_(config.joint_batch),
      max_pending_(config.max_pending),
      joint_survivors_(&obs::counter("stream.joint.survivors")),
      pending_gauge_(&obs::gauge("stream.gate.pending")) {
  if (joint_batch_ <= 0 || max_pending_ <= 0) {
    throw std::invalid_argument(
        "FilterCascade: joint_batch/max_pending must be positive");
  }
  const infer::JointGlue& glue = joint_.glue();
  stamp_ = glue.stamp;
  joint_dim_ = glue.num_bands * (2 * stamp_ * stamp_) + glue.num_bands;

  tiers_.reserve(config.stages.size());
  for (const CascadeStage& stage : config.stages) {
    if (!stage.plan) {
      throw std::invalid_argument("FilterCascade: stage '" + stage.name +
                                  "' has no plan");
    }
    tiers_.push_back(Tier{
        stage, infer::InferenceSession(stage.plan),
        &obs::counter("stream." + stage.name + ".survivors")});
    counts_.tiers.push_back({stage.name, 0, 0, 0, 0});
  }
  counts_.tiers.push_back({"joint", 0, 0, 0, 0});
  counts_.end_to_end.name = "night";
  flush_rows_ = Tensor({joint_batch_, joint_dim_});
  flush_truth_.resize(static_cast<std::size_t>(joint_batch_));
}

void FilterCascade::push(const AlertBatch& batch) {
  if (finished_) {
    throw std::logic_error("FilterCascade: push() after finish()");
  }
  const std::int64_t n = batch.size();
  if (n == 0) return;

  // Candidate-level universe for the end-to-end row: every candidate
  // contributes exactly one band-g alert over the night, so counting
  // those counts candidates once without tracking a candidate set.
  for (std::int64_t a = 0; a < n; ++a) {
    const float* m = batch.meta.data() + a * meta::kColumns;
    if (m[meta::kBand] == 0.0f) {
      ++counts_.end_to_end.in;
      if (m[meta::kReal] != 0.0f && m[meta::kIsIa] != 0.0f) {
        ++counts_.end_to_end.positives_in;
      }
    }
  }

  survivors_.resize(static_cast<std::size_t>(n));
  for (std::int64_t a = 0; a < n; ++a) survivors_[a] = a;

  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    Tier& tier = tiers_[t];
    eval::CascadeTierCounts& tally = counts_.tiers[t];
    next_survivors_.clear();

    tally.in += static_cast<std::int64_t>(survivors_.size());
    for (const std::int64_t a : survivors_) {
      if (batch.meta.data()[a * meta::kColumns + meta::kReal] != 0.0f) {
        ++tally.positives_in;
      }
    }

    // Score survivors run by run: each maximal contiguous index run is
    // a zero-copy row slice of the original batch tensor.
    const Tensor& input =
        tier.stage.input == AlertInput::Tier1 ? batch.tier1 : batch.pair;
    std::size_t k = 0;
    while (k < survivors_.size()) {
      std::size_t end = k + 1;
      while (end < survivors_.size() &&
             survivors_[end] == survivors_[end - 1] + 1) {
        ++end;
      }
      const std::int64_t lo = survivors_[k];
      const std::int64_t hi = survivors_[end - 1] + 1;
      tier.session.run(input.view().slice(0, lo, hi), scores_);
      for (std::int64_t r = 0; r < hi - lo; ++r) {
        const float score = scores_[r];
        const bool pass = tier.stage.pass_below ? score < tier.stage.threshold
                                                : score > tier.stage.threshold;
        if (pass) next_survivors_.push_back(lo + r);
      }
      k = end;
    }

    tally.passed += static_cast<std::int64_t>(next_survivors_.size());
    for (const std::int64_t a : next_survivors_) {
      if (batch.meta.data()[a * meta::kColumns + meta::kReal] != 0.0f) {
        ++tally.positives_passed;
      }
    }
    tier.survivors->add(static_cast<std::int64_t>(next_survivors_.size()));
    survivors_.swap(next_survivors_);
    if (survivors_.empty()) return;
  }

  for (const std::int64_t a : survivors_) gate_add(batch, a);
}

void FilterCascade::gate_add(const AlertBatch& batch, std::int64_t alert) {
  const float* m = batch.meta.data() + alert * meta::kColumns;
  const auto candidate = static_cast<std::int64_t>(m[meta::kCandidate]);
  const auto band = static_cast<std::int64_t>(m[meta::kBand]);

  auto it = pending_.find(candidate);
  if (it == pending_.end()) {
    PendingRow fresh;
    if (!row_free_list_.empty()) {
      fresh.row = std::move(row_free_list_.back());
      row_free_list_.pop_back();
    } else {
      fresh.row = Tensor({joint_dim_});
    }
    fresh.real = m[meta::kReal] != 0.0f;
    fresh.is_ia = m[meta::kIsIa] != 0.0f;
    it = pending_.emplace(candidate, std::move(fresh)).first;
    pending_order_.push_back(candidate);
  }
  PendingRow& row = it->second;

  // Band-major (reference, observation) block plus this band's date —
  // exactly the joint model's flat sample layout.
  const std::int64_t per_band = 2 * stamp_ * stamp_;
  const float* src = batch.pair.data() + alert * per_band;
  std::memcpy(row.row.data() + band * per_band, src,
              static_cast<std::size_t>(per_band) * sizeof(float));
  row.row[astro::kNumBands * per_band + band] = m[meta::kDate];
  row.seen_mask |= static_cast<std::uint8_t>(1u << band);

  if (row.seen_mask == kAllBandsMask) {
    submit(candidate, row);
    row_free_list_.push_back(std::move(row.row));
    pending_.erase(it);
  }
  evict_to_bound();
  pending_gauge_->set(static_cast<std::int64_t>(pending_.size()));
}

void FilterCascade::evict_to_bound() {
  while (static_cast<std::int64_t>(pending_.size()) > max_pending_) {
    // Oldest first; ids already completed (erased) just fall out of the
    // FIFO here.
    while (!pending_order_.empty()) {
      const std::int64_t victim = pending_order_.front();
      pending_order_.pop_front();
      auto it = pending_.find(victim);
      if (it != pending_.end()) {
        row_free_list_.push_back(std::move(it->second.row));
        pending_.erase(it);
        ++counts_.evicted;
        break;
      }
    }
  }
}

void FilterCascade::submit(std::int64_t candidate, PendingRow& row) {
  eval::CascadeTierCounts& tally = counts_.tiers.back();
  ++tally.in;
  if (row.is_ia) ++tally.positives_in;

  std::memcpy(flush_rows_.data() + flush_count_ * joint_dim_, row.row.data(),
              static_cast<std::size_t>(joint_dim_) * sizeof(float));
  Verdict& truth = flush_truth_[static_cast<std::size_t>(flush_count_)];
  truth.candidate = candidate;
  truth.real = row.real;
  truth.is_ia = row.is_ia;
  if (++flush_count_ == joint_batch_) flush_joint(false);
}

void FilterCascade::flush_joint(bool force) {
  if (flush_count_ == 0) return;
  if (!force && flush_count_ < joint_batch_) return;
  if (flush_count_ < joint_batch_) {
    flush_rows_.resize({flush_count_, joint_dim_});
  }
  joint_.run(flush_rows_, joint_out_);

  eval::CascadeTierCounts& tally = counts_.tiers.back();
  std::int64_t accepted = 0;
  for (std::int64_t r = 0; r < flush_count_; ++r) {
    Verdict v = flush_truth_[static_cast<std::size_t>(r)];
    v.score = joint_out_[r];
    v.accepted = v.score > joint_threshold_;
    if (v.accepted) {
      ++accepted;
      ++tally.passed;
      if (v.is_ia) ++tally.positives_passed;
      ++counts_.end_to_end.passed;
      if (v.real && v.is_ia) ++counts_.end_to_end.positives_passed;
    }
    verdicts_.push_back(v);
  }
  joint_survivors_->add(accepted);
  flush_count_ = 0;
  flush_rows_.resize({joint_batch_, joint_dim_});
}

void FilterCascade::finish() {
  if (finished_) return;
  finished_ = true;
  flush_joint(true);
  counts_.incomplete += static_cast<std::int64_t>(pending_.size());
  for (auto& [candidate, row] : pending_) {
    row_free_list_.push_back(std::move(row.row));
  }
  pending_.clear();
  pending_order_.clear();
  pending_gauge_->set(0);
}

FilterCascade run_night(NightStream& night, const CascadeConfig& config) {
  FilterCascade cascade(config);
  AlertBatch batch;
  while (night.next(batch)) cascade.push(batch);
  cascade.finish();
  return cascade;
}

}  // namespace sne::stream
