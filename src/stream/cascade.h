// cascade.h — FilterCascade: ordered tiered filtering over an alert
// stream, the survey-night counterpart of scoring every alert with the
// joint model. Alerts flow through cheap per-alert tiers first; only
// survivors reach the next tier, and only candidates whose alerts
// survived in *all five bands* reach the expensive joint image→type
// model:
//
//   AlertBatch ──▶ tier 0 ──▶ … ──▶ tier k ──▶ completion gate ──▶ joint
//                  (per-alert stages)          (candidate-level)   tier
//
// Mechanics:
//   * Per-alert stages score zero-copy where possible: survivors of the
//     previous tier are partitioned into contiguous runs and each run is
//     forwarded as a TensorView slice of the original batch — rows are
//     never gathered or copied between tiers.
//   * The completion gate assembles surviving alerts into joint-model
//     rows (band-major image pairs + dates). A candidate's row is
//     submitted once all five bands arrived; rows park in a bounded
//     pending set (≤ max_pending, FIFO eviction) whose buffers recycle
//     through a free list. Completed rows batch up to joint_batch
//     before each joint evaluation.
//   * Everything runs on the thread that calls push()/finish(), so
//     verdicts and per-tier counts are bitwise independent of the
//     night stream's prefetch depth and of the pool's thread count.
//
// Accounting lands in eval::CascadeCounts (per-tier + candidate-level
// end-to-end), and telemetry in obs: stream.<stage>.survivors counters
// and the stream.gate.pending gauge.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/cascade.h"
#include "infer/session.h"
#include "obs/obs.h"
#include "stream/night.h"

namespace sne::stream {

/// Which slice of the alert a per-alert stage consumes.
enum class AlertInput : std::uint8_t {
  Tier1,  ///< [n, 1, crop, crop] signed-log difference crops
  Pair,   ///< [n, 2, S, S] matched reference/observation pairs
};

/// One per-alert tier: a single-output plan plus a threshold. The plan
/// is shared (the cascade builds its own private session); `pass_below`
/// inverts the gate for tiers whose score is a cost (e.g. an estimated
/// magnitude tier passing only bright alerts).
struct CascadeStage {
  std::string name;
  std::shared_ptr<const infer::InferencePlan> plan;
  AlertInput input = AlertInput::Tier1;
  float threshold = 0.0f;
  bool pass_below = false;
};

struct CascadeConfig {
  std::vector<CascadeStage> stages;  ///< per-alert tiers, in order
  /// Builder of the final joint tier's session (invoked once). Required.
  std::function<infer::JointSession()> joint;
  float joint_threshold = 0.0f;  ///< accept candidates with logit > this
  std::int64_t joint_batch = 32;  ///< completed rows per joint evaluation
  /// Completion-gate bound: most pending (incomplete) candidates held at
  /// once; the oldest is evicted beyond this. With the field-blocked
  /// night schedule a bound of ~2 fields never evicts.
  std::int64_t max_pending = 1024;
};

/// Final candidate-level outcome of the joint tier, with the ground
/// truth carried along for evaluation.
struct Verdict {
  std::int64_t candidate = 0;
  float score = 0.0f;  ///< joint SNIa logit
  bool accepted = false;
  bool real = false;
  bool is_ia = false;
};

class FilterCascade {
 public:
  explicit FilterCascade(const CascadeConfig& config);

  /// Streams one chunk of the night through every tier. Survivor rows
  /// are forwarded as views of `batch`, which only needs to stay alive
  /// for the duration of the call.
  void push(const AlertBatch& batch);

  /// Ends the night: evaluates the partially filled joint batch and
  /// books still-incomplete candidates as `incomplete`. The cascade is
  /// one-shot — build a fresh one per night; push() after finish()
  /// throws.
  void finish();

  const eval::CascadeCounts& counts() const noexcept { return counts_; }
  const std::vector<Verdict>& verdicts() const noexcept { return verdicts_; }
  std::int64_t pending() const noexcept {
    return static_cast<std::int64_t>(pending_.size());
  }

 private:
  struct Tier {
    CascadeStage stage;
    infer::InferenceSession session;
    obs::Counter* survivors;
  };
  struct PendingRow {
    Tensor row;  ///< [bands·2·S·S + bands] joint-model sample layout
    std::uint8_t seen_mask = 0;
    bool real = false;
    bool is_ia = false;
  };

  void gate_add(const AlertBatch& batch, std::int64_t alert);
  void submit(std::int64_t candidate, PendingRow& row);
  void evict_to_bound();
  void flush_joint(bool force);

  std::vector<Tier> tiers_;
  infer::JointSession joint_;
  float joint_threshold_;
  std::int64_t joint_batch_;
  std::int64_t max_pending_;
  std::int64_t stamp_ = 0;      ///< from the joint session's glue
  std::int64_t joint_dim_ = 0;
  obs::Counter* joint_survivors_;
  obs::Gauge* pending_gauge_;

  std::unordered_map<std::int64_t, PendingRow> pending_;
  std::deque<std::int64_t> pending_order_;  ///< FIFO for eviction
  std::vector<Tensor> row_free_list_;
  /// Completed rows awaiting the joint tier, plus their ground truth.
  Tensor flush_rows_;  ///< [joint_batch, joint_dim]
  std::vector<Verdict> flush_truth_;
  std::int64_t flush_count_ = 0;
  Tensor joint_out_;  ///< reused joint-output buffer

  // Per-push scratch (member so steady state stays allocation-free).
  std::vector<std::int64_t> survivors_;
  std::vector<std::int64_t> next_survivors_;
  Tensor scores_;

  eval::CascadeCounts counts_;
  std::vector<Verdict> verdicts_;
  bool finished_ = false;
};

/// Convenience over NightStream + FilterCascade: pulls the whole night
/// through a fresh cascade and returns it (counts + verdicts inside).
FilterCascade run_night(NightStream& night, const CascadeConfig& config);

}  // namespace sne::stream
