#include "stream/cascade_scorer.h"

#include <cstring>
#include <stdexcept>

namespace sne::stream {

CascadeScorer::CascadeScorer(const CascadeScorerConfig& config)
    : joint_([&] {
        if (!config.joint) {
          throw std::invalid_argument(
              "CascadeScorer: a joint-session builder is required");
        }
        return config.joint();
      }()),
      crop_(config.crop) {
  if (crop_ <= 0) {
    throw std::invalid_argument("CascadeScorer: crop must be positive");
  }
  const infer::JointGlue& glue = joint_.glue();
  stamp_ = glue.stamp;
  joint_dim_ = glue.num_bands * (2 * stamp_ * stamp_) + glue.num_bands;
  sample_numel_ = joint_dim_ + glue.num_bands * crop_ * crop_;
  tiers_.reserve(config.stages.size());
  for (const CascadeStage& stage : config.stages) {
    if (!stage.plan) {
      throw std::invalid_argument("CascadeScorer: stage '" + stage.name +
                                  "' has no plan");
    }
    tiers_.push_back(Tier{stage, infer::InferenceSession(stage.plan)});
  }
}

void CascadeScorer::run(const Tensor& batch, Tensor& out) {
  const std::int64_t n = batch.extent(0);
  const std::int64_t c2 = crop_ * crop_;
  const std::int64_t per_band = 2 * stamp_ * stamp_;
  out.resize({n, 1});

  alive_.clear();
  for (std::int64_t r = 0; r < n; ++r) {
    const float* row = batch.data() + r * sample_numel_;
    bool pass = true;
    for (Tier& tier : tiers_) {
      // Per-band replay of the streaming tier: every band's alert must
      // survive for the candidate to stay complete at the gate.
      for (std::int64_t b = 0; pass && b < astro::kNumBands; ++b) {
        ConstTensorView input =
            tier.stage.input == AlertInput::Tier1
                ? ConstTensorView(row + joint_dim_ + b * c2,
                                  {1, 1, crop_, crop_})
                : ConstTensorView(row + b * per_band, {1, 2, stamp_, stamp_});
        tier.session.run(input, tier_out_);
        const float score = tier_out_[0];
        pass = tier.stage.pass_below ? score < tier.stage.threshold
                                     : score > tier.stage.threshold;
      }
      if (!pass) break;
    }
    if (pass) {
      alive_.push_back(r);
    } else {
      out[r] = kRejectLogit;
    }
  }

  if (alive_.empty()) return;
  const auto rows = static_cast<std::int64_t>(alive_.size());
  joint_rows_.resize({rows, joint_dim_});
  for (std::int64_t k = 0; k < rows; ++k) {
    std::memcpy(joint_rows_.data() + k * joint_dim_,
                batch.data() + alive_[static_cast<std::size_t>(k)] *
                                   sample_numel_,
                static_cast<std::size_t>(joint_dim_) * sizeof(float));
  }
  joint_.run(joint_rows_, joint_out_);
  for (std::int64_t k = 0; k < rows; ++k) {
    out[alive_[static_cast<std::size_t>(k)]] = joint_out_[k];
  }
}

serve::ScorerSpec make_cascade_scorer_spec(
    const CascadeScorerConfig& config) {
  serve::ScorerSpec spec;
  spec.custom = [config] { return std::make_unique<CascadeScorer>(config); };
  return spec;
}

}  // namespace sne::stream
