// cascade_scorer.h — hosts a filter cascade behind the scoring daemon.
// The wire protocol is batch-of-flat-rows, so the streaming gate logic
// does not apply; instead each request row carries one complete
// candidate: the joint-model sample followed by the five tier-1 crops,
//
//   [ bands·2·S·S image pairs, bands dates | bands · crop² t1 crops ]
//
// and the scorer replays the cascade per row: every band must pass
// every per-alert tier for the row to reach the joint model; rows cut
// earlier return kRejectLogit so the response stays one score per row.
// Survivor rows are gathered into one batch per request for the joint
// evaluation.
//
// Plug into a server with make_cascade_scorer_spec (ScorerSpec::custom):
//
//   serve::ScoreServer server(cfg, stream::make_cascade_scorer_spec(sc));
#pragma once

#include <memory>

#include "serve/scorer.h"
#include "stream/cascade.h"

namespace sne::stream {

struct CascadeScorerConfig {
  std::vector<CascadeStage> stages;  ///< per-alert tiers, in order
  std::function<infer::JointSession()> joint;  ///< required
  std::int64_t crop = 21;  ///< tier-1 crop extent of the wire layout
};

/// Logit returned for rows cut before the joint tier: certainly-bogus
/// on any reasonable sigmoid scale, and distinguishable from any score
/// the joint model produces in practice.
inline constexpr float kRejectLogit = -30.0f;

class CascadeScorer final : public serve::Scorer {
 public:
  explicit CascadeScorer(const CascadeScorerConfig& config);

  std::int64_t sample_numel() const override { return sample_numel_; }
  std::int64_t output_numel() const override { return 1; }
  void run(const Tensor& batch, Tensor& out) override;

 private:
  struct Tier {
    CascadeStage stage;
    infer::InferenceSession session;
  };

  std::vector<Tier> tiers_;
  infer::JointSession joint_;
  std::int64_t crop_;
  std::int64_t stamp_ = 0;
  std::int64_t joint_dim_ = 0;
  std::int64_t sample_numel_ = 0;
  Tensor joint_rows_;  ///< gathered survivor rows, reused
  Tensor joint_out_;
  Tensor tier_out_;
  std::vector<std::int64_t> alive_;  ///< survivor row indices, reused
};

/// ScorerSpec wrapper (ScorerSpec::custom) for ScoreServer/scorer_factory.
serve::ScorerSpec make_cascade_scorer_spec(const CascadeScorerConfig& config);

}  // namespace sne::stream
