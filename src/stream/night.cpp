#include "stream/night.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "astro/photometry.h"
#include "sim/artifacts.h"
#include "sim/image_ops.h"
#include "tensor/runtime.h"

namespace sne::stream {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

NightStream::NightStream(const sim::SnDataset& data,
                         std::vector<std::int64_t> samples,
                         const NightConfig& config)
    : data_(&data), samples_(std::move(samples)), config_(config) {
  if (samples_.empty()) {
    throw std::invalid_argument("NightStream: no samples");
  }
  if (config_.candidates <= 0 || config_.pool <= 0 || config_.field <= 0 ||
      config_.batch <= 0) {
    throw std::invalid_argument(
        "NightStream: candidates/pool/field/batch must be positive");
  }
  if (config_.stamp <= 0 || config_.crop <= 0) {
    throw std::invalid_argument("NightStream: stamp/crop must be positive");
  }
  prefetch_ = RuntimeConfig::current().prefetch;
  if (prefetch_ < 0) prefetch_ = 1;

  // Real/bogus is a per-slot property: the slot's epoch choice (bright
  // vs SN-free) must match the label, and every candidate tiling onto
  // the slot inherits it.
  slot_real_.resize(static_cast<std::size_t>(config_.pool));
  for (std::int64_t s = 0; s < config_.pool; ++s) {
    Rng rng(config_.seed ^ mix(static_cast<std::uint64_t>(s) + 1));
    slot_real_[static_cast<std::size_t>(s)] =
        rng.bernoulli(config_.real_fraction);
  }
  pool_.resize(static_cast<std::size_t>(config_.pool * astro::kNumBands));
  reset();
}

void NightStream::reset() {
  // Tear down the previous pipeline first: its worker thread reads the
  // cursor through produce(), so it must be joined before the rewind.
  pipeline_.reset();
  cursor_ = Cursor{};
  load_sweep();
  pipeline_ = std::make_unique<nn::BatchPipeline<AlertBatch>>(
      [this](AlertBatch& out) { return produce(out); }, prefetch_, "stream");
}

bool NightStream::next(AlertBatch& out) { return pipeline_->next(out); }

// Regenerates the permutation of the cursor's current (field, sweep).
void NightStream::load_sweep() {
  const std::int64_t lo = cursor_.field * config_.field;
  const std::int64_t hi =
      std::min(config_.candidates, lo + config_.field);
  cursor_.perm.resize(static_cast<std::size_t>(hi - lo));
  for (std::int64_t c = lo; c < hi; ++c) {
    cursor_.perm[static_cast<std::size_t>(c - lo)] = c;
  }
  // Fisher–Yates under a per-(field, sweep) stream: arrival order within
  // a visit is independent of every other visit.
  Rng rng(config_.seed ^
          mix(0xF1E1DULL + static_cast<std::uint64_t>(
                               cursor_.field * astro::kNumBands +
                               cursor_.sweep)));
  for (std::size_t i = cursor_.perm.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform_index(static_cast<std::uint64_t>(i)));
    std::swap(cursor_.perm[i - 1], cursor_.perm[j]);
  }
}

bool NightStream::next_alert(std::int64_t& candidate, astro::Band& band) {
  const std::int64_t fields =
      (config_.candidates + config_.field - 1) / config_.field;
  if (cursor_.field >= fields) return false;
  candidate = cursor_.perm[static_cast<std::size_t>(cursor_.k)];
  // Band order rotates with the field so no band is systematically
  // first across the night.
  band = astro::kAllBands[static_cast<std::size_t>(
      (cursor_.sweep + cursor_.field) % astro::kNumBands)];
  if (++cursor_.k >= static_cast<std::int64_t>(cursor_.perm.size())) {
    cursor_.k = 0;
    if (++cursor_.sweep >= astro::kNumBands) {
      cursor_.sweep = 0;
      ++cursor_.field;
    }
    if (cursor_.field < fields) load_sweep();
  }
  return true;
}

std::int64_t NightStream::pick_epoch(std::int64_t sample, astro::Band band,
                                     bool real) const {
  const std::int64_t epochs = data_->config().schedule.epochs_per_band;
  // Real slots want a detectable epoch (brightest wins); bogus slots
  // want a supernova-free one (faintest wins) so the only transient in
  // the stamp is the injected artifact. Magnitude scans are spec-only —
  // nothing renders here.
  std::int64_t best = std::clamp(config_.epoch, std::int64_t{0}, epochs - 1);
  double best_mag = real ? 1e9 : -1e9;
  for (std::int64_t e = 0; e < epochs; ++e) {
    const double mag = data_->true_magnitude(sample, band, e, 31.0);
    if (real ? mag < best_mag : mag > best_mag) {
      best_mag = mag;
      best = e;
    }
  }
  return best;
}

const NightStream::PoolEntry& NightStream::pooled(std::int64_t slot,
                                                  astro::Band band) {
  auto& entry = pool_[static_cast<std::size_t>(
      slot * astro::kNumBands + astro::band_index(band))];
  if (!entry.has_value()) {
    const std::int64_t i = samples_[static_cast<std::size_t>(slot) %
                                    samples_.size()];
    const bool real = slot_real_[static_cast<std::size_t>(slot)];
    const std::int64_t e = pick_epoch(i, band, real);

    PoolEntry fresh;
    const Tensor ref = sim::center_crop(
        data_->matched_reference_image(i, band, e), config_.stamp);
    const Tensor obs = sim::center_crop(
        data_->observation_image(i, band, e), config_.stamp);
    fresh.pair = Tensor({2, config_.stamp, config_.stamp});
    std::copy(ref.data(), ref.data() + ref.size(), fresh.pair.data());
    std::copy(obs.data(), obs.data() + obs.size(),
              fresh.pair.data() + ref.size());
    fresh.diff_crop = sim::center_crop(
        data_->difference_image(i, band, e), config_.crop);
    fresh.date = static_cast<float>(core::normalize_date(
        data_->band_epoch(i, band, e).mjd,
        data_->config().schedule.start_mjd, config_.features));
    entry = std::move(fresh);
  }
  return *entry;
}

bool NightStream::produce(AlertBatch& out) {
  const std::int64_t c2 = config_.crop * config_.crop;
  const std::int64_t s2 = config_.stamp * config_.stamp;

  std::int64_t n = 0;
  out.tier1.resize({config_.batch, 1, config_.crop, config_.crop});
  out.pair.resize({config_.batch, 2, config_.stamp, config_.stamp});
  out.meta.resize({config_.batch, meta::kColumns});

  std::int64_t candidate = 0;
  astro::Band band = astro::Band::g;
  Tensor bogus_diff;  // reused injection scratch
  while (n < config_.batch && next_alert(candidate, band)) {
    const std::int64_t slot = candidate % config_.pool;
    const bool real = slot_real_[static_cast<std::size_t>(slot)];
    const PoolEntry& entry = pooled(slot, band);

    const float* diff = entry.diff_crop.data();
    if (!real) {
      // Mint this alert's artifact on a copy of the pooled difference:
      // candidates sharing a slot still produce distinct bogus stamps.
      bogus_diff = entry.diff_crop;
      Rng rng(config_.seed ^
              mix(0xB06B5ULL +
                  static_cast<std::uint64_t>(candidate * astro::kNumBands +
                                             astro::band_index(band))));
      const double amplitude = astro::flux_from_mag(
          config_.max_real_mag - rng.uniform(0.0, 2.0));
      const auto kind = sim::kAllArtifactKinds[static_cast<std::size_t>(
          rng.uniform_index(sim::kAllArtifactKinds.size()))];
      sim::inject_artifact(bogus_diff, kind, amplitude, rng);
      diff = bogus_diff.data();
    }
    float* tier1_row = out.tier1.data() + n * c2;
    for (std::int64_t p = 0; p < c2; ++p) {
      tier1_row[p] = static_cast<float>(astro::signed_log(diff[p]));
    }

    std::copy(entry.pair.data(), entry.pair.data() + 2 * s2,
              out.pair.data() + n * 2 * s2);

    const std::int64_t i =
        samples_[static_cast<std::size_t>(slot) % samples_.size()];
    float* m = out.meta.data() + n * meta::kColumns;
    m[meta::kCandidate] = static_cast<float>(candidate);
    m[meta::kBand] = static_cast<float>(astro::band_index(band));
    m[meta::kReal] = real ? 1.0f : 0.0f;
    m[meta::kDate] = entry.date;
    m[meta::kIsIa] = (real && data_->is_ia(i)) ? 1.0f : 0.0f;
    ++n;
  }
  if (n == 0) return false;
  if (n < config_.batch) {
    out.tier1.resize({n, 1, config_.crop, config_.crop});
    out.pair.resize({n, 2, config_.stamp, config_.stamp});
    out.meta.resize({n, meta::kColumns});
  }
  return true;
}

}  // namespace sne::stream
