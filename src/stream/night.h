// night.h — NightStream: a pull-based generator that synthesizes one
// survey night of alerts over the simulator without ever materializing
// the night. A "candidate" is one detection followed up in all five
// bands; each (candidate, band) visit becomes one alert carrying the
// two inputs the cascade tiers consume:
//
//   tier1  [n, 1, crop, crop]   signed-log difference crop (real/bogus)
//   pair   [n, 2, S, S]         matched reference + observation (typing)
//   meta   [n, 5]               candidate, band, real, date, is_ia
//
// Memory model — the night is streamed, never stored:
//   * imagery comes from a bounded pool of `pool` rendered candidates
//     (the simulator's renderers are ~10³× slower than replay, so the
//     night tiles candidates over the pool); entries render lazily on
//     the producer thread and stay cached for the stream's lifetime →
//     peak RSS is O(pool + batch·depth), independent of night length;
//   * bogus candidates are minted per-alert by injecting a seeded
//     artifact into a copy of the pooled difference crop, so two
//     candidates sharing a pool slot still differ.
//
// Arrival schedule — field-blocked band sweep, the way a survey scans:
// candidates are partitioned into fields of `field`, and each field is
// visited band after band (band order rotated per field, candidate
// order independently shuffled per (field, band)). All five alerts of a
// candidate therefore land within one field block, which bounds the
// cascade's multi-band completion gate to O(field) pending candidates.
//
// Delivery rides nn::BatchPipeline (obs prefix "stream"): depth 0 pulls
// synchronously, depth > 0 renders ahead on one worker thread. The
// depth is latched from sne::RuntimeConfig::current().prefetch at
// construction, and batches are bitwise identical for any depth or
// thread count (single-producer order + deterministic renderers).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/lc_features.h"
#include "nn/batch_pipeline.h"
#include "sim/dataset_builder.h"
#include "tensor/tensor.h"

namespace sne::stream {

struct NightConfig {
  std::int64_t candidates = 256;  ///< alerts = candidates × 5 bands
  std::int64_t pool = 64;         ///< rendered candidate pool (RSS bound)
  std::int64_t field = 32;        ///< candidates per field block
  std::int64_t batch = 64;        ///< alerts per AlertBatch
  std::int64_t stamp = 44;        ///< pair crop extent S (≥ the joint CNN's)
  std::int64_t crop = 21;         ///< tier-1 difference-crop extent
  std::int64_t epoch = 1;         ///< observation epoch used for imagery
  double real_fraction = 0.5;     ///< fraction of pool slots holding a SN
  double max_real_mag = 25.0;     ///< detectability cut for "real" epochs
  std::uint64_t seed = 2026;
  core::FeatureConfig features;   ///< date normalization for the joint tier
};

/// One chunk of the night. Meta columns: 0 candidate id, 1 band index,
/// 2 real flag (1 = transient, 0 = artifact), 3 normalized observation
/// date, 4 is_ia flag (SNIa ground truth; always 0 for bogus).
struct AlertBatch {
  Tensor tier1;  ///< [n, 1, crop, crop]
  Tensor pair;   ///< [n, 2, S, S]
  Tensor meta;   ///< [n, 5]

  std::int64_t size() const { return meta.rank() > 0 ? meta.extent(0) : 0; }
};

namespace meta {
inline constexpr std::int64_t kCandidate = 0;
inline constexpr std::int64_t kBand = 1;
inline constexpr std::int64_t kReal = 2;
inline constexpr std::int64_t kDate = 3;
inline constexpr std::int64_t kIsIa = 4;
inline constexpr std::int64_t kColumns = 5;
}  // namespace meta

class NightStream {
 public:
  /// Streams a night synthesized from the given samples of `data`
  /// (pool slot s draws imagery from samples[s mod samples.size()]).
  /// Borrows `data`; it must outlive the stream.
  NightStream(const sim::SnDataset& data, std::vector<std::int64_t> samples,
              const NightConfig& config);

  /// Fills `out` with the next chunk of alerts; false once the night is
  /// over. Chunks are config.batch alerts except possibly the last.
  bool next(AlertBatch& out);

  /// Restarts the night from the first alert (the rendered pool is
  /// kept). Any in-flight prefetch of the previous pass is discarded.
  void reset();

  std::int64_t total_alerts() const noexcept {
    return config_.candidates * astro::kNumBands;
  }
  std::int64_t prefetch_depth() const noexcept { return prefetch_; }
  const NightConfig& config() const noexcept { return config_; }

 private:
  struct PoolEntry {
    Tensor pair;       ///< [2, S, S]
    Tensor diff_crop;  ///< [crop, crop] raw difference pixels
    float date = 0.0f;
  };

  /// Cursor over the field-blocked band-sweep order; owned by the
  /// producer (single-threaded whatever the prefetch depth).
  struct Cursor {
    std::int64_t field = 0;
    std::int64_t sweep = 0;  ///< band-sweep index j within the field
    std::int64_t k = 0;      ///< position within the sweep's permutation
    std::vector<std::int64_t> perm;  ///< candidate order of this sweep
  };

  bool produce(AlertBatch& out);
  bool next_alert(std::int64_t& candidate, astro::Band& band);
  void load_sweep();
  const PoolEntry& pooled(std::int64_t slot, astro::Band band);
  std::int64_t pick_epoch(std::int64_t sample, astro::Band band,
                          bool real) const;

  const sim::SnDataset* data_;
  std::vector<std::int64_t> samples_;
  NightConfig config_;
  std::int64_t prefetch_;
  std::vector<bool> slot_real_;                 ///< per pool slot
  std::vector<std::optional<PoolEntry>> pool_;  ///< slot-major × band
  Cursor cursor_;
  std::unique_ptr<nn::BatchPipeline<AlertBatch>> pipeline_;
};

}  // namespace sne::stream
