#include "stream/tier1.h"

#include <stdexcept>
#include <string>

#include "nn/trainer.h"

namespace sne::stream {

std::int64_t Tier1Cnn::trunk_output_extent(std::int64_t crop,
                                           std::int64_t kernel) {
  std::int64_t e = crop;
  for (int stage = 0; stage < 2; ++stage) {
    e = e - kernel + 1;  // valid convolution
    if (e < 2) {
      throw std::invalid_argument(
          "Tier1Cnn: crop too small for two conv/pool stages");
    }
    e /= 2;  // 2×2 pooling
  }
  return e;
}

Tier1Cnn::Tier1Cnn(const Tier1Config& config, Rng& rng) : config_(config) {
  const std::int64_t out_extent =
      trunk_output_extent(config.crop, config.kernel);

  std::int64_t in_ch = 1;
  for (std::size_t stage = 0; stage < config.conv_channels.size(); ++stage) {
    const std::int64_t out_ch = config.conv_channels[stage];
    const std::string tag = "tier1.conv" + std::to_string(stage + 1);
    net_.emplace<nn::Conv2d>(in_ch, out_ch, config.kernel, rng, 1, 0, tag);
    net_.emplace<nn::BatchNorm2d>(out_ch, 0.1f, 1e-5f, tag + ".bn");
    net_.emplace<nn::PReLU>(out_ch, 0.25f, tag + ".prelu");
    net_.emplace<nn::MaxPool2d>(2);
    in_ch = out_ch;
  }
  net_.emplace<nn::Flatten>();
  net_.emplace<nn::Linear>(in_ch * out_extent * out_extent, config.fc_hidden,
                           rng, "tier1.fc1");
  net_.emplace<nn::PReLU>(config.fc_hidden, 0.25f, "tier1.fc1.prelu");
  net_.emplace<nn::Linear>(config.fc_hidden, 1, rng, "tier1.out");
}

std::unique_ptr<Tier1Cnn> train_tier1(const sim::SnDataset& data,
                                      const std::vector<std::int64_t>& samples,
                                      const Tier1Config& model_config,
                                      const Tier1TrainConfig& train_config) {
  Rng rng(train_config.seed);
  auto cnn = std::make_unique<Tier1Cnn>(model_config, rng);

  const nn::LazyDataset pairs = sim::make_real_bogus_dataset(
      data, samples, model_config.crop, train_config.max_real_mag,
      train_config.seed ^ 0xB0605ULL);

  nn::Adam adam(cnn->params(), train_config.lr);
  nn::Trainer trainer(*cnn, adam, nn::bce_with_logits_loss,
                      nn::binary_accuracy);
  nn::TrainConfig tc;
  tc.epochs = train_config.epochs;
  tc.batch_size = train_config.batch_size;
  tc.shuffle_seed = train_config.seed + 1;
  std::vector<nn::EpochStats> history = trainer.fit(pairs, nullptr, tc);
  if (train_config.history != nullptr) {
    *train_config.history = std::move(history);
  }
  cnn->set_training(false);
  return cnn;
}

std::shared_ptr<const infer::InferencePlan> compile_tier1_plan(
    const Tier1Cnn& cnn, const core::SessionOptions& options) {
  const std::int64_t c = cnn.config().crop;
  return std::make_shared<const infer::InferencePlan>(
      cnn.net(), Shape{1, c, c}, core::plan_options(options));
}

infer::InferenceSession make_tier1_session(
    const Tier1Cnn& cnn, const core::SessionOptions& options) {
  return infer::InferenceSession(compile_tier1_plan(cnn, options));
}

}  // namespace sne::stream
