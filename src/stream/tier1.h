// tier1.h — the cascade's cheap front tier: a small real/bogus CNN over
// single-band signed-log difference crops. This is the survey pipeline's
// step (1) (Bailey 2007, Brink 2013): kill the 99%+ of alerts that are
// cosmic rays, dipoles and detector defects before the expensive joint
// image→type model ever sees them. The network is deliberately tiny —
// two conv/pool stages and a 32-unit head over a 21-pixel crop — so the
// per-alert cost is a small fraction of one joint-model evaluation.
//
// Training data comes from sim::make_real_bogus_dataset; serving plans
// compile through the same core::SessionOptions surface as every other
// model (fp32 or int8 with a calibration table).
#pragma once

#include <memory>

#include "core/inference.h"
#include "infer/session.h"
#include "nn/nn.h"
#include "sim/artifacts.h"

namespace sne::stream {

struct Tier1Config {
  std::int64_t crop = 21;  ///< difference-crop extent (must be ≥ 12)
  std::array<std::int64_t, 2> conv_channels = {8, 16};
  std::int64_t kernel = 5;
  std::int64_t fc_hidden = 32;
};

/// Input [N, 1, crop, crop] signed-log difference pixels; output [N, 1]
/// real-vs-bogus logit (positive = real transient).
class Tier1Cnn final : public nn::Module {
 public:
  Tier1Cnn(const Tier1Config& config, Rng& rng);

  Tensor forward(const Tensor& x) override { return net_.forward(x); }
  Tensor backward(const Tensor& grad_output) override {
    return net_.backward(grad_output);
  }
  void infer_into(ConstTensorView x, Tensor& out) const override {
    net_.infer_into(x, out);
  }
  Shape infer_shape(const Shape& in) const override {
    return net_.infer_shape(in);
  }
  std::vector<nn::Param*> params() override { return net_.params(); }
  std::vector<const nn::Param*> params() const override {
    return net_.params();
  }
  std::vector<nn::Param*> buffers() override { return net_.buffers(); }
  std::vector<const nn::Param*> buffers() const override {
    return net_.buffers();
  }
  void set_training(bool training) override { net_.set_training(training); }

  const Tier1Config& config() const noexcept { return config_; }
  const nn::Sequential& net() const noexcept { return net_; }

  /// Spatial extent after the two conv/pool stages (sizes the FC head;
  /// throws if `crop` is too small to survive them).
  static std::int64_t trunk_output_extent(std::int64_t crop,
                                          std::int64_t kernel);

 private:
  Tier1Config config_;
  nn::Sequential net_;
};

struct Tier1TrainConfig {
  std::int64_t epochs = 4;
  std::int64_t batch_size = 32;
  float lr = 2e-3f;
  double max_real_mag = 25.0;  ///< "real" faint cut for the training set
  std::uint64_t seed = 97;
  std::vector<nn::EpochStats>* history = nullptr;  ///< optional sink
};

/// Trains a fresh Tier1Cnn on a balanced real/bogus set cut from the
/// given samples of `data` (sim::make_real_bogus_dataset with the
/// model's crop). Deterministic in (data, samples, config). Returned by
/// pointer because modules are pinned in memory (plans borrow them).
std::unique_ptr<Tier1Cnn> train_tier1(
    const sim::SnDataset& data, const std::vector<std::int64_t>& samples,
    const Tier1Config& model_config = {},
    const Tier1TrainConfig& train_config = {});

/// Serving plan over [N, 1, crop, crop] crops; same options surface as
/// the core model factories (int8 uses options.calibration). The model
/// must outlive the plan.
std::shared_ptr<const infer::InferencePlan> compile_tier1_plan(
    const Tier1Cnn& cnn, const core::SessionOptions& options = {});

/// One-call session builder over compile_tier1_plan.
infer::InferenceSession make_tier1_session(
    const Tier1Cnn& cnn, const core::SessionOptions& options = {});

}  // namespace sne::stream
