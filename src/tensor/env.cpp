#include "tensor/env.h"

#include <cerrno>
#include <cstdlib>

namespace sne::env {

std::int64_t int64(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(("SNE_" + name).c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) return fallback;
  return static_cast<std::int64_t>(v);
}

double float64(const std::string& name, double fallback) {
  const char* raw = std::getenv(("SNE_" + name).c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || errno == ERANGE) return fallback;
  return v;
}

std::string string(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(("SNE_" + name).c_str());
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace sne::env
