#include "tensor/env.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace sne::env {

std::optional<std::int64_t> parse_int64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(v);
}

std::optional<double> parse_float64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return std::nullopt;
  }
  // strtod reports ERANGE for underflow too, where it already returns
  // the nearest representable value (a subnormal or zero) — accept that;
  // only overflow to ±HUGE_VAL is an unrepresentable input.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return std::nullopt;
  }
  return v;
}

std::int64_t int64(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(("SNE_" + name).c_str());
  if (raw == nullptr) return fallback;
  return parse_int64(raw).value_or(fallback);
}

double float64(const std::string& name, double fallback) {
  const char* raw = std::getenv(("SNE_" + name).c_str());
  if (raw == nullptr) return fallback;
  return parse_float64(raw).value_or(fallback);
}

std::string string(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(("SNE_" + name).c_str());
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace sne::env
