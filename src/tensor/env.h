// env.h — the one place `SNE_*` environment overrides are parsed. Used
// by the thread pool (SNE_NUM_THREADS), RuntimeConfig (SNE_PREFETCH,
// SNE_TRACE), the bench binaries' scale knobs, and the eval library's
// deprecated forwarding wrappers. Values that fail to parse — including
// out-of-range ones (ERANGE), which strtoll/strtod would otherwise
// silently clamp to LLONG_MAX/HUGE_VAL — fall back.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sne::env {

/// Strict scalar parse: the whole string must be one base-10 integer —
/// no trailing junk, no empty input, no silent clamp on overflow
/// (ERANGE is a failure, unlike bare strtoll/std::stoll). This is the
/// single parsing routine behind both the SNE_* overrides below and the
/// CLI's flag values (tools/sne_cli.cpp), so "12abc" and "1e99" are
/// rejected everywhere the same way.
std::optional<std::int64_t> parse_int64(const std::string& text);

/// Strict float parse with the same whole-string / no-clamp rules.
std::optional<double> parse_float64(const std::string& text);

/// Integer override: reads SNE_<name>; returns `fallback` when the
/// variable is unset, unparsable, has trailing junk, or overflows.
std::int64_t int64(const std::string& name, std::int64_t fallback);

/// Floating-point override with the same fallback rules.
double float64(const std::string& name, double fallback);

/// String override: reads SNE_<name>; returns `fallback` when unset.
std::string string(const std::string& name, const std::string& fallback);

}  // namespace sne::env
