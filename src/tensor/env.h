// env.h — the one place `SNE_*` environment overrides are parsed. Used
// by the thread pool (SNE_NUM_THREADS), RuntimeConfig (SNE_PREFETCH,
// SNE_TRACE), the bench binaries' scale knobs, and the eval library's
// deprecated forwarding wrappers. Values that fail to parse — including
// out-of-range ones (ERANGE), which strtoll/strtod would otherwise
// silently clamp to LLONG_MAX/HUGE_VAL — fall back.
#pragma once

#include <cstdint>
#include <string>

namespace sne::env {

/// Integer override: reads SNE_<name>; returns `fallback` when the
/// variable is unset, unparsable, has trailing junk, or overflows.
std::int64_t int64(const std::string& name, std::int64_t fallback);

/// Floating-point override with the same fallback rules.
double float64(const std::string& name, double fallback);

/// String override: reads SNE_<name>; returns `fallback` when unset.
std::string string(const std::string& name, const std::string& fallback);

}  // namespace sne::env
