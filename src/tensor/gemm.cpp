#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/env.h"
#include "tensor/thread_pool.h"

#if defined(__x86_64__) || defined(__i386__)
#define SNE_GEMM_X86 1
#include <immintrin.h>
#else
#define SNE_GEMM_X86 0
#endif

namespace sne {

namespace {

// Block sizes tuned for a ~32 KiB L1 / 256 KiB L2 single-core target.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

// Scalar inner kernel: C[mb×nb] += A[mb×k_len] · B[k_len×nb], with B rows
// contiguous so the compiler can vectorize the n loop. This kernel is the
// determinism bit-reference: its accumulation order must never change.
void gemm_block(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                const float* a, std::int64_t lda, const float* b,
                std::int64_t ldb, float* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < mb; ++i) {
    float* ci = c + i * ldc;
    std::int64_t p = 0;
    // Unroll the reduction by 4: each step streams 4 rows of B through the
    // vectorized n loop with a single pass over C.
    for (; p + 4 <= kb; p += 4) {
      const float a0 = a[i * lda + p + 0];
      const float a1 = a[i * lda + p + 1];
      const float a2 = a[i * lda + p + 2];
      const float a3 = a[i * lda + p + 3];
      const float* b0 = b + (p + 0) * ldb;
      const float* b1 = b + (p + 1) * ldb;
      const float* b2 = b + (p + 2) * ldb;
      const float* b3 = b + (p + 3) * ldb;
      for (std::int64_t j = 0; j < nb; ++j) {
        ci[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; p < kb; ++p) {
      const float ap = a[i * lda + p];
      const float* bp = b + p * ldb;
      for (std::int64_t j = 0; j < nb; ++j) ci[j] += ap * bp[j];
    }
  }
}

#if SNE_GEMM_X86

// AVX2+FMA inner kernel: 6×16 register tiles of C held in twelve ymm
// accumulators across the whole k reduction (12 accumulators + 2 B
// vectors + 1 broadcast = 15 of the 16 ymm registers), so C is read and
// written once per block instead of once per four k steps. Ragged
// rows/columns fall back to narrower tiles and finally scalar loops;
// every path has a fixed accumulation order, so the tier stays bitwise
// deterministic (it just differs from the scalar tier by reassociation of
// the k sum).
__attribute__((target("avx2,fma"))) void gemm_block_avx2(
    std::int64_t mb, std::int64_t nb, std::int64_t kb, const float* a,
    std::int64_t lda, const float* b, std::int64_t ldb, float* c,
    std::int64_t ldc) {
  std::int64_t i = 0;
  for (; i + 6 <= mb; i += 6) {
    const float* a0 = a + (i + 0) * lda;
    const float* a1 = a + (i + 1) * lda;
    const float* a2 = a + (i + 2) * lda;
    const float* a3 = a + (i + 3) * lda;
    const float* a4 = a + (i + 4) * lda;
    const float* a5 = a + (i + 5) * lda;
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    float* c4 = c + (i + 4) * ldc;
    float* c5 = c + (i + 5) * ldc;
    std::int64_t j = 0;
    for (; j + 16 <= nb; j += 16) {
      __m256 acc0l = _mm256_loadu_ps(c0 + j);
      __m256 acc0h = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc1l = _mm256_loadu_ps(c1 + j);
      __m256 acc1h = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc2l = _mm256_loadu_ps(c2 + j);
      __m256 acc2h = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc3l = _mm256_loadu_ps(c3 + j);
      __m256 acc3h = _mm256_loadu_ps(c3 + j + 8);
      __m256 acc4l = _mm256_loadu_ps(c4 + j);
      __m256 acc4h = _mm256_loadu_ps(c4 + j + 8);
      __m256 acc5l = _mm256_loadu_ps(c5 + j);
      __m256 acc5h = _mm256_loadu_ps(c5 + j + 8);
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* bp = b + p * ldb + j;
        const __m256 bl = _mm256_loadu_ps(bp);
        const __m256 bh = _mm256_loadu_ps(bp + 8);
        __m256 av = _mm256_set1_ps(a0[p]);
        acc0l = _mm256_fmadd_ps(av, bl, acc0l);
        acc0h = _mm256_fmadd_ps(av, bh, acc0h);
        av = _mm256_set1_ps(a1[p]);
        acc1l = _mm256_fmadd_ps(av, bl, acc1l);
        acc1h = _mm256_fmadd_ps(av, bh, acc1h);
        av = _mm256_set1_ps(a2[p]);
        acc2l = _mm256_fmadd_ps(av, bl, acc2l);
        acc2h = _mm256_fmadd_ps(av, bh, acc2h);
        av = _mm256_set1_ps(a3[p]);
        acc3l = _mm256_fmadd_ps(av, bl, acc3l);
        acc3h = _mm256_fmadd_ps(av, bh, acc3h);
        av = _mm256_set1_ps(a4[p]);
        acc4l = _mm256_fmadd_ps(av, bl, acc4l);
        acc4h = _mm256_fmadd_ps(av, bh, acc4h);
        av = _mm256_set1_ps(a5[p]);
        acc5l = _mm256_fmadd_ps(av, bl, acc5l);
        acc5h = _mm256_fmadd_ps(av, bh, acc5h);
      }
      _mm256_storeu_ps(c0 + j, acc0l);
      _mm256_storeu_ps(c0 + j + 8, acc0h);
      _mm256_storeu_ps(c1 + j, acc1l);
      _mm256_storeu_ps(c1 + j + 8, acc1h);
      _mm256_storeu_ps(c2 + j, acc2l);
      _mm256_storeu_ps(c2 + j + 8, acc2h);
      _mm256_storeu_ps(c3 + j, acc3l);
      _mm256_storeu_ps(c3 + j + 8, acc3h);
      _mm256_storeu_ps(c4 + j, acc4l);
      _mm256_storeu_ps(c4 + j + 8, acc4h);
      _mm256_storeu_ps(c5 + j, acc5l);
      _mm256_storeu_ps(c5 + j + 8, acc5h);
    }
    for (; j + 8 <= nb; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      __m256 acc4 = _mm256_loadu_ps(c4 + j);
      __m256 acc5 = _mm256_loadu_ps(c5 + j);
      for (std::int64_t p = 0; p < kb; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * ldb + j);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[p]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[p]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[p]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[p]), bv, acc3);
        acc4 = _mm256_fmadd_ps(_mm256_set1_ps(a4[p]), bv, acc4);
        acc5 = _mm256_fmadd_ps(_mm256_set1_ps(a5[p]), bv, acc5);
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
      _mm256_storeu_ps(c4 + j, acc4);
      _mm256_storeu_ps(c5 + j, acc5);
    }
    for (; j < nb; ++j) {
      float s0 = c0[j], s1 = c1[j], s2 = c2[j];
      float s3 = c3[j], s4 = c4[j], s5 = c5[j];
      for (std::int64_t p = 0; p < kb; ++p) {
        const float bv = b[p * ldb + j];
        s0 += a0[p] * bv;
        s1 += a1[p] * bv;
        s2 += a2[p] * bv;
        s3 += a3[p] * bv;
        s4 += a4[p] * bv;
        s5 += a5[p] * bv;
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
      c4[j] = s4;
      c5[j] = s5;
    }
  }
  for (; i + 4 <= mb; i += 4) {
    const float* a0 = a + (i + 0) * lda;
    const float* a1 = a + (i + 1) * lda;
    const float* a2 = a + (i + 2) * lda;
    const float* a3 = a + (i + 3) * lda;
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    std::int64_t j = 0;
    for (; j + 16 <= nb; j += 16) {
      __m256 acc0l = _mm256_loadu_ps(c0 + j);
      __m256 acc0h = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc1l = _mm256_loadu_ps(c1 + j);
      __m256 acc1h = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc2l = _mm256_loadu_ps(c2 + j);
      __m256 acc2h = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc3l = _mm256_loadu_ps(c3 + j);
      __m256 acc3h = _mm256_loadu_ps(c3 + j + 8);
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* bp = b + p * ldb + j;
        const __m256 bl = _mm256_loadu_ps(bp);
        const __m256 bh = _mm256_loadu_ps(bp + 8);
        __m256 av = _mm256_set1_ps(a0[p]);
        acc0l = _mm256_fmadd_ps(av, bl, acc0l);
        acc0h = _mm256_fmadd_ps(av, bh, acc0h);
        av = _mm256_set1_ps(a1[p]);
        acc1l = _mm256_fmadd_ps(av, bl, acc1l);
        acc1h = _mm256_fmadd_ps(av, bh, acc1h);
        av = _mm256_set1_ps(a2[p]);
        acc2l = _mm256_fmadd_ps(av, bl, acc2l);
        acc2h = _mm256_fmadd_ps(av, bh, acc2h);
        av = _mm256_set1_ps(a3[p]);
        acc3l = _mm256_fmadd_ps(av, bl, acc3l);
        acc3h = _mm256_fmadd_ps(av, bh, acc3h);
      }
      _mm256_storeu_ps(c0 + j, acc0l);
      _mm256_storeu_ps(c0 + j + 8, acc0h);
      _mm256_storeu_ps(c1 + j, acc1l);
      _mm256_storeu_ps(c1 + j + 8, acc1h);
      _mm256_storeu_ps(c2 + j, acc2l);
      _mm256_storeu_ps(c2 + j + 8, acc2h);
      _mm256_storeu_ps(c3 + j, acc3l);
      _mm256_storeu_ps(c3 + j + 8, acc3h);
    }
    for (; j + 8 <= nb; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      for (std::int64_t p = 0; p < kb; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * ldb + j);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[p]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[p]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[p]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[p]), bv, acc3);
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
    }
    for (; j < nb; ++j) {
      float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
      for (std::int64_t p = 0; p < kb; ++p) {
        const float bv = b[p * ldb + j];
        s0 += a0[p] * bv;
        s1 += a1[p] * bv;
        s2 += a2[p] * bv;
        s3 += a3[p] * bv;
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
    }
  }
  for (; i < mb; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    std::int64_t j = 0;
    for (; j + 16 <= nb; j += 16) {
      __m256 accl = _mm256_loadu_ps(ci + j);
      __m256 acch = _mm256_loadu_ps(ci + j + 8);
      for (std::int64_t p = 0; p < kb; ++p) {
        const __m256 av = _mm256_set1_ps(ai[p]);
        accl = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + p * ldb + j), accl);
        acch = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + p * ldb + j + 8), acch);
      }
      _mm256_storeu_ps(ci + j, accl);
      _mm256_storeu_ps(ci + j + 8, acch);
    }
    for (; j + 8 <= nb; j += 8) {
      __m256 acc = _mm256_loadu_ps(ci + j);
      for (std::int64_t p = 0; p < kb; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(ai[p]),
                              _mm256_loadu_ps(b + p * ldb + j), acc);
      }
      _mm256_storeu_ps(ci + j, acc);
    }
    for (; j < nb; ++j) {
      float s = ci[j];
      for (std::int64_t p = 0; p < kb; ++p) s += ai[p] * b[p * ldb + j];
      ci[j] = s;
    }
  }
}

#endif  // SNE_GEMM_X86

bool cpu_has_avx2_fma() noexcept {
#if SNE_GEMM_X86
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// -1 = unresolved; otherwise a GemmTier value. Resolution happens at most
// once per process unless set_gemm_tier overrides it.
std::atomic<int> g_gemm_tier{-1};

GemmTier clamp_to_supported(GemmTier tier) noexcept {
  return gemm_tier_supported(tier) ? tier : GemmTier::Scalar;
}

GemmTier resolve_default_tier() {
  const std::string v = env::string("GEMM_KERNEL", "auto");
  if (v == "scalar") return GemmTier::Scalar;
  if (v == "avx2") return clamp_to_supported(GemmTier::Avx2Fma);
  // "auto" (and anything unrecognized, which falls back like the other
  // SNE_* env knobs): best supported tier.
  return clamp_to_supported(GemmTier::Avx2Fma);
}

using BlockKernel = void (*)(std::int64_t, std::int64_t, std::int64_t,
                             const float*, std::int64_t, const float*,
                             std::int64_t, float*, std::int64_t);

BlockKernel active_block_kernel() {
#if SNE_GEMM_X86
  if (gemm_tier() == GemmTier::Avx2Fma) return gemm_block_avx2;
#endif
  return gemm_block;
}

void scale_c(std::int64_t m, std::int64_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return;
  }
  for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
}

// Per-row bias add and PReLU over rows [i0, i0+mb) of C. Runs right after
// a row panel's k accumulation finishes (C still cache-hot), in the same
// element order and with the same operations as the separate passes it
// replaces — fusing the epilogue changes no bits.
void apply_epilogue(std::int64_t i0, std::int64_t mb, std::int64_t n,
                    float* c, const GemmEpilogue& ep) {
  for (std::int64_t i = i0; i < i0 + mb; ++i) {
    float* row = c + i * n;
    if (ep.bias != nullptr) {
      const float bv = ep.bias[i];
      for (std::int64_t j = 0; j < n; ++j) row[j] += bv;
    }
    if (ep.prelu != nullptr) {
      const float s = ep.prelu[i];
      for (std::int64_t j = 0; j < n; ++j) {
        row[j] = row[j] > 0.0f ? row[j] : s * row[j];
      }
    }
  }
}

// One row panel of C: the k/n-blocked accumulation for rows [i0, i0+mb),
// then the epilogue for those rows. Shared by the parallel and serial
// drivers so their math (and bits) are identical; `a_panel` is
// caller-provided scratch, reused across calls. `kernel` is the dispatched
// inner kernel, captured once per driver call.
void sgemm_panel(std::int64_t i0, std::int64_t mb, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, const float* b,
                 float* c, std::vector<float>& a_panel, BlockKernel kernel,
                 const GemmEpilogue& epilogue) {
  for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::int64_t kb = std::min(kBlockK, k - p0);
    a_panel.assign(static_cast<std::size_t>(mb * kb), 0.0f);
    for (std::int64_t i = 0; i < mb; ++i) {
      const float* src = a + (i0 + i) * k + p0;
      float* dst = a_panel.data() + i * kb;
      for (std::int64_t p = 0; p < kb; ++p) dst[p] = alpha * src[p];
    }
    for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::int64_t nb = std::min(kBlockN, n - j0);
      kernel(mb, nb, kb, a_panel.data(), kb, b + p0 * n + j0, n,
             c + i0 * n + j0, n);
    }
  }
  if (!epilogue.empty()) apply_epilogue(i0, mb, n, c, epilogue);
}

}  // namespace

GemmTier gemm_tier() {
  int t = g_gemm_tier.load(std::memory_order_acquire);
  if (t < 0) {
    int expected = -1;
    const int resolved = static_cast<int>(resolve_default_tier());
    if (!g_gemm_tier.compare_exchange_strong(expected, resolved,
                                             std::memory_order_acq_rel)) {
      return static_cast<GemmTier>(expected);
    }
    t = resolved;
  }
  return static_cast<GemmTier>(t);
}

void set_gemm_tier(GemmTier tier) {
  g_gemm_tier.store(static_cast<int>(clamp_to_supported(tier)),
                    std::memory_order_release);
}

bool gemm_tier_supported(GemmTier tier) noexcept {
  switch (tier) {
    case GemmTier::Scalar:
      return true;
    case GemmTier::Avx2Fma: {
      static const bool supported = cpu_has_avx2_fma();
      return supported;
    }
  }
  return false;
}

const char* gemm_tier_name(GemmTier tier) noexcept {
  return tier == GemmTier::Avx2Fma ? "avx2" : "scalar";
}

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c,
           const GemmEpilogue& epilogue) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) {
    // No accumulation, but the epilogue still applies to the scaled C.
    if (!epilogue.empty() && m > 0 && n > 0) apply_epilogue(0, m, n, c,
                                                            epilogue);
    return;
  }

  // Row panels are independent (each writes a disjoint row range of C and
  // applies the epilogue to its own rows), so they distribute across the
  // pool; the k/n blocking inside one panel stays serial, which keeps each
  // C element's accumulation order — and therefore the result bits —
  // independent of the thread count. alpha is folded into a scaled copy of
  // the A panel so the inner kernel stays a pure FMA loop; the scratch
  // panel is per-thread and reused. The inner kernel is resolved once per
  // call, so a concurrent set_gemm_tier cannot mix tiers within one GEMM.
  const BlockKernel kernel = active_block_kernel();
  const std::int64_t num_panels = (m + kBlockM - 1) / kBlockM;
  parallel_for(0, num_panels, [&](std::int64_t panel) {
    thread_local std::vector<float> a_panel;
    const std::int64_t i0 = panel * kBlockM;
    sgemm_panel(i0, std::min(kBlockM, m - i0), n, k, alpha, a, b, c, a_panel,
                kernel, epilogue);
  });
}

void sgemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const float* a, const float* b, float beta, float* c,
                  const GemmEpilogue& epilogue) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) {
    if (!epilogue.empty() && m > 0 && n > 0) apply_epilogue(0, m, n, c,
                                                            epilogue);
    return;
  }

  // Same panels as sgemm, walked on the calling thread. The scratch panel
  // grows once per thread and is then reused, so steady-state calls do not
  // touch the allocator (the std::function conversion inside parallel_for
  // would; that is why this is not just sgemm with a 1-wide pool).
  const BlockKernel kernel = active_block_kernel();
  thread_local std::vector<float> a_panel;
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    sgemm_panel(i0, std::min(kBlockM, m - i0), n, k, alpha, a, b, c, a_panel,
                kernel, epilogue);
  }
}

void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // A is stored k×m; transpose blocks of A into a row-major panel, then
  // reuse the same inner kernel.
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  // Same parallel decomposition as sgemm: independent row panels of C,
  // per-thread transpose scratch, serial k accumulation within a panel.
  const BlockKernel kernel = active_block_kernel();
  const std::int64_t num_panels = (m + kBlockM - 1) / kBlockM;
  parallel_for(0, num_panels, [&](std::int64_t panel) {
    thread_local std::vector<float> a_panel;
    const std::int64_t i0 = panel * kBlockM;
    const std::int64_t mb = std::min(kBlockM, m - i0);
    for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::int64_t kb = std::min(kBlockK, k - p0);
      a_panel.assign(static_cast<std::size_t>(mb * kb), 0.0f);
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* src = a + (p0 + p) * m + i0;
        for (std::int64_t i = 0; i < mb; ++i) {
          a_panel[static_cast<std::size_t>(i * kb + p)] = alpha * src[i];
        }
      }
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t nb = std::min(kBlockN, n - j0);
        kernel(mb, nb, kb, a_panel.data(), kb, b + p0 * n + j0, n,
               c + i0 * n + j0, n);
      }
    }
  });
}

void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // B is stored n×k; with B transposed both operands stream along k, so a
  // dot-product kernel is the cache-friendly choice.
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      double acc0 = 0.0, acc1 = 0.0;
      std::int64_t p = 0;
      for (; p + 2 <= k; p += 2) {
        acc0 += static_cast<double>(ai[p]) * bj[p];
        acc1 += static_cast<double>(ai[p + 1]) * bj[p + 1];
      }
      if (p < k) acc0 += static_cast<double>(ai[p]) * bj[p];
      c[i * n + j] += alpha * static_cast<float>(acc0 + acc1);
    }
  }
}

void im2col(const float* image, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* columns) {
  const std::int64_t out_h = conv_out_extent(height, kh, pad, stride);
  const std::int64_t out_w = conv_out_extent(width, kw, pad, stride);
  const std::int64_t out_hw = out_h * out_w;

  for (std::int64_t c = 0; c < channels; ++c) {
    const float* img_c = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx) {
        float* col_row = columns + ((c * kh + ky) * kw + kx) * out_hw;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride + ky - pad;
          float* dst = col_row + oy * out_w;
          if (iy < 0 || iy >= height) {
            std::fill(dst, dst + out_w, 0.0f);
            continue;
          }
          const float* src_row = img_c + iy * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride + kx - pad;
            dst[ox] = (ix >= 0 && ix < width) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* image) {
  const std::int64_t out_h = conv_out_extent(height, kh, pad, stride);
  const std::int64_t out_w = conv_out_extent(width, kw, pad, stride);
  const std::int64_t out_hw = out_h * out_w;

  for (std::int64_t c = 0; c < channels; ++c) {
    float* img_c = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx) {
        const float* col_row = columns + ((c * kh + ky) * kw + kx) * out_hw;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= height) continue;
          const float* src = col_row + oy * out_w;
          float* dst_row = img_c + iy * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride + kx - pad;
            if (ix >= 0 && ix < width) dst_row[ix] += src[ox];
          }
        }
      }
    }
  }
}

}  // namespace sne
