#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/env.h"
#include "tensor/thread_pool.h"

#if defined(__x86_64__) || defined(__i386__)
#define SNE_GEMM_X86 1
#include <immintrin.h>
#else
#define SNE_GEMM_X86 0
#endif

namespace sne {

namespace {

// Block sizes tuned for a ~32 KiB L1 / 256 KiB L2 single-core target.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

// Scalar inner kernel: C[mb×nb] += A[mb×k_len] · B[k_len×nb], with B rows
// contiguous so the compiler can vectorize the n loop. This kernel is the
// determinism bit-reference: its accumulation order must never change.
void gemm_block(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                const float* a, std::int64_t lda, const float* b,
                std::int64_t ldb, float* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < mb; ++i) {
    float* ci = c + i * ldc;
    std::int64_t p = 0;
    // Unroll the reduction by 4: each step streams 4 rows of B through the
    // vectorized n loop with a single pass over C.
    for (; p + 4 <= kb; p += 4) {
      const float a0 = a[i * lda + p + 0];
      const float a1 = a[i * lda + p + 1];
      const float a2 = a[i * lda + p + 2];
      const float a3 = a[i * lda + p + 3];
      const float* b0 = b + (p + 0) * ldb;
      const float* b1 = b + (p + 1) * ldb;
      const float* b2 = b + (p + 2) * ldb;
      const float* b3 = b + (p + 3) * ldb;
      for (std::int64_t j = 0; j < nb; ++j) {
        ci[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; p < kb; ++p) {
      const float ap = a[i * lda + p];
      const float* bp = b + p * ldb;
      for (std::int64_t j = 0; j < nb; ++j) ci[j] += ap * bp[j];
    }
  }
}

#if SNE_GEMM_X86

// AVX2+FMA inner kernel: 6×16 register tiles of C held in twelve ymm
// accumulators across the whole k reduction (12 accumulators + 2 B
// vectors + 1 broadcast = 15 of the 16 ymm registers), so C is read and
// written once per block instead of once per four k steps. Ragged
// rows/columns fall back to narrower tiles and finally scalar loops;
// every path has a fixed accumulation order, so the tier stays bitwise
// deterministic (it just differs from the scalar tier by reassociation of
// the k sum).
__attribute__((target("avx2,fma"))) void gemm_block_avx2(
    std::int64_t mb, std::int64_t nb, std::int64_t kb, const float* a,
    std::int64_t lda, const float* b, std::int64_t ldb, float* c,
    std::int64_t ldc) {
  std::int64_t i = 0;
  for (; i + 6 <= mb; i += 6) {
    const float* a0 = a + (i + 0) * lda;
    const float* a1 = a + (i + 1) * lda;
    const float* a2 = a + (i + 2) * lda;
    const float* a3 = a + (i + 3) * lda;
    const float* a4 = a + (i + 4) * lda;
    const float* a5 = a + (i + 5) * lda;
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    float* c4 = c + (i + 4) * ldc;
    float* c5 = c + (i + 5) * ldc;
    std::int64_t j = 0;
    for (; j + 16 <= nb; j += 16) {
      __m256 acc0l = _mm256_loadu_ps(c0 + j);
      __m256 acc0h = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc1l = _mm256_loadu_ps(c1 + j);
      __m256 acc1h = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc2l = _mm256_loadu_ps(c2 + j);
      __m256 acc2h = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc3l = _mm256_loadu_ps(c3 + j);
      __m256 acc3h = _mm256_loadu_ps(c3 + j + 8);
      __m256 acc4l = _mm256_loadu_ps(c4 + j);
      __m256 acc4h = _mm256_loadu_ps(c4 + j + 8);
      __m256 acc5l = _mm256_loadu_ps(c5 + j);
      __m256 acc5h = _mm256_loadu_ps(c5 + j + 8);
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* bp = b + p * ldb + j;
        const __m256 bl = _mm256_loadu_ps(bp);
        const __m256 bh = _mm256_loadu_ps(bp + 8);
        __m256 av = _mm256_set1_ps(a0[p]);
        acc0l = _mm256_fmadd_ps(av, bl, acc0l);
        acc0h = _mm256_fmadd_ps(av, bh, acc0h);
        av = _mm256_set1_ps(a1[p]);
        acc1l = _mm256_fmadd_ps(av, bl, acc1l);
        acc1h = _mm256_fmadd_ps(av, bh, acc1h);
        av = _mm256_set1_ps(a2[p]);
        acc2l = _mm256_fmadd_ps(av, bl, acc2l);
        acc2h = _mm256_fmadd_ps(av, bh, acc2h);
        av = _mm256_set1_ps(a3[p]);
        acc3l = _mm256_fmadd_ps(av, bl, acc3l);
        acc3h = _mm256_fmadd_ps(av, bh, acc3h);
        av = _mm256_set1_ps(a4[p]);
        acc4l = _mm256_fmadd_ps(av, bl, acc4l);
        acc4h = _mm256_fmadd_ps(av, bh, acc4h);
        av = _mm256_set1_ps(a5[p]);
        acc5l = _mm256_fmadd_ps(av, bl, acc5l);
        acc5h = _mm256_fmadd_ps(av, bh, acc5h);
      }
      _mm256_storeu_ps(c0 + j, acc0l);
      _mm256_storeu_ps(c0 + j + 8, acc0h);
      _mm256_storeu_ps(c1 + j, acc1l);
      _mm256_storeu_ps(c1 + j + 8, acc1h);
      _mm256_storeu_ps(c2 + j, acc2l);
      _mm256_storeu_ps(c2 + j + 8, acc2h);
      _mm256_storeu_ps(c3 + j, acc3l);
      _mm256_storeu_ps(c3 + j + 8, acc3h);
      _mm256_storeu_ps(c4 + j, acc4l);
      _mm256_storeu_ps(c4 + j + 8, acc4h);
      _mm256_storeu_ps(c5 + j, acc5l);
      _mm256_storeu_ps(c5 + j + 8, acc5h);
    }
    for (; j + 8 <= nb; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      __m256 acc4 = _mm256_loadu_ps(c4 + j);
      __m256 acc5 = _mm256_loadu_ps(c5 + j);
      for (std::int64_t p = 0; p < kb; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * ldb + j);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[p]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[p]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[p]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[p]), bv, acc3);
        acc4 = _mm256_fmadd_ps(_mm256_set1_ps(a4[p]), bv, acc4);
        acc5 = _mm256_fmadd_ps(_mm256_set1_ps(a5[p]), bv, acc5);
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
      _mm256_storeu_ps(c4 + j, acc4);
      _mm256_storeu_ps(c5 + j, acc5);
    }
    for (; j < nb; ++j) {
      float s0 = c0[j], s1 = c1[j], s2 = c2[j];
      float s3 = c3[j], s4 = c4[j], s5 = c5[j];
      for (std::int64_t p = 0; p < kb; ++p) {
        const float bv = b[p * ldb + j];
        s0 += a0[p] * bv;
        s1 += a1[p] * bv;
        s2 += a2[p] * bv;
        s3 += a3[p] * bv;
        s4 += a4[p] * bv;
        s5 += a5[p] * bv;
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
      c4[j] = s4;
      c5[j] = s5;
    }
  }
  for (; i + 4 <= mb; i += 4) {
    const float* a0 = a + (i + 0) * lda;
    const float* a1 = a + (i + 1) * lda;
    const float* a2 = a + (i + 2) * lda;
    const float* a3 = a + (i + 3) * lda;
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    std::int64_t j = 0;
    for (; j + 16 <= nb; j += 16) {
      __m256 acc0l = _mm256_loadu_ps(c0 + j);
      __m256 acc0h = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc1l = _mm256_loadu_ps(c1 + j);
      __m256 acc1h = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc2l = _mm256_loadu_ps(c2 + j);
      __m256 acc2h = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc3l = _mm256_loadu_ps(c3 + j);
      __m256 acc3h = _mm256_loadu_ps(c3 + j + 8);
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* bp = b + p * ldb + j;
        const __m256 bl = _mm256_loadu_ps(bp);
        const __m256 bh = _mm256_loadu_ps(bp + 8);
        __m256 av = _mm256_set1_ps(a0[p]);
        acc0l = _mm256_fmadd_ps(av, bl, acc0l);
        acc0h = _mm256_fmadd_ps(av, bh, acc0h);
        av = _mm256_set1_ps(a1[p]);
        acc1l = _mm256_fmadd_ps(av, bl, acc1l);
        acc1h = _mm256_fmadd_ps(av, bh, acc1h);
        av = _mm256_set1_ps(a2[p]);
        acc2l = _mm256_fmadd_ps(av, bl, acc2l);
        acc2h = _mm256_fmadd_ps(av, bh, acc2h);
        av = _mm256_set1_ps(a3[p]);
        acc3l = _mm256_fmadd_ps(av, bl, acc3l);
        acc3h = _mm256_fmadd_ps(av, bh, acc3h);
      }
      _mm256_storeu_ps(c0 + j, acc0l);
      _mm256_storeu_ps(c0 + j + 8, acc0h);
      _mm256_storeu_ps(c1 + j, acc1l);
      _mm256_storeu_ps(c1 + j + 8, acc1h);
      _mm256_storeu_ps(c2 + j, acc2l);
      _mm256_storeu_ps(c2 + j + 8, acc2h);
      _mm256_storeu_ps(c3 + j, acc3l);
      _mm256_storeu_ps(c3 + j + 8, acc3h);
    }
    for (; j + 8 <= nb; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      for (std::int64_t p = 0; p < kb; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * ldb + j);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[p]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[p]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[p]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[p]), bv, acc3);
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
    }
    for (; j < nb; ++j) {
      float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
      for (std::int64_t p = 0; p < kb; ++p) {
        const float bv = b[p * ldb + j];
        s0 += a0[p] * bv;
        s1 += a1[p] * bv;
        s2 += a2[p] * bv;
        s3 += a3[p] * bv;
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
    }
  }
  for (; i < mb; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    std::int64_t j = 0;
    for (; j + 16 <= nb; j += 16) {
      __m256 accl = _mm256_loadu_ps(ci + j);
      __m256 acch = _mm256_loadu_ps(ci + j + 8);
      for (std::int64_t p = 0; p < kb; ++p) {
        const __m256 av = _mm256_set1_ps(ai[p]);
        accl = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + p * ldb + j), accl);
        acch = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + p * ldb + j + 8), acch);
      }
      _mm256_storeu_ps(ci + j, accl);
      _mm256_storeu_ps(ci + j + 8, acch);
    }
    for (; j + 8 <= nb; j += 8) {
      __m256 acc = _mm256_loadu_ps(ci + j);
      for (std::int64_t p = 0; p < kb; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(ai[p]),
                              _mm256_loadu_ps(b + p * ldb + j), acc);
      }
      _mm256_storeu_ps(ci + j, acc);
    }
    for (; j < nb; ++j) {
      float s = ci[j];
      for (std::int64_t p = 0; p < kb; ++p) s += ai[p] * b[p * ldb + j];
      ci[j] = s;
    }
  }
}

#endif  // SNE_GEMM_X86

bool cpu_has_avx2_fma() noexcept {
#if SNE_GEMM_X86
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// -1 = unresolved; otherwise a GemmTier value. Resolution happens at most
// once per process unless set_gemm_tier overrides it.
std::atomic<int> g_gemm_tier{-1};

GemmTier clamp_to_supported(GemmTier tier) noexcept {
  return gemm_tier_supported(tier) ? tier : GemmTier::Scalar;
}

GemmTier resolve_default_tier() {
  const std::string v = env::string("GEMM_KERNEL", "auto");
  if (v == "scalar") return GemmTier::Scalar;
  if (v == "avx2") return clamp_to_supported(GemmTier::Avx2Fma);
  if (v != "auto") {
    // Resolution happens at most once per process, so this warns once. A
    // typo'd kernel request silently running a different kernel is much
    // harder to notice than one stderr line.
    std::fprintf(stderr,
                 "sne: ignoring invalid SNE_GEMM_KERNEL=\"%s\" "
                 "(expected scalar|avx2|auto); using auto\n",
                 v.c_str());
  }
  return clamp_to_supported(GemmTier::Avx2Fma);
}

using BlockKernel = void (*)(std::int64_t, std::int64_t, std::int64_t,
                             const float*, std::int64_t, const float*,
                             std::int64_t, float*, std::int64_t);

BlockKernel active_block_kernel() {
#if SNE_GEMM_X86
  if (gemm_tier() == GemmTier::Avx2Fma) return gemm_block_avx2;
#endif
  return gemm_block;
}

void scale_c(std::int64_t m, std::int64_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return;
  }
  for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
}

// Per-row bias add and PReLU over rows [i0, i0+mb) of C. Runs right after
// a row panel's k accumulation finishes (C still cache-hot), in the same
// element order and with the same operations as the separate passes it
// replaces — fusing the epilogue changes no bits.
void apply_epilogue(std::int64_t i0, std::int64_t mb, std::int64_t n,
                    float* c, const GemmEpilogue& ep) {
  for (std::int64_t i = i0; i < i0 + mb; ++i) {
    float* row = c + i * n;
    if (ep.bias != nullptr) {
      const float bv = ep.bias[i];
      for (std::int64_t j = 0; j < n; ++j) row[j] += bv;
    }
    if (ep.prelu != nullptr) {
      const float s = ep.prelu[i];
      for (std::int64_t j = 0; j < n; ++j) {
        row[j] = row[j] > 0.0f ? row[j] : s * row[j];
      }
    }
  }
}

// One row panel of C: the k/n-blocked accumulation for rows [i0, i0+mb),
// then the epilogue for those rows. Shared by the parallel and serial
// drivers so their math (and bits) are identical; `a_panel` is
// caller-provided scratch, reused across calls. `kernel` is the dispatched
// inner kernel, captured once per driver call.
void sgemm_panel(std::int64_t i0, std::int64_t mb, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, const float* b,
                 float* c, std::vector<float>& a_panel, BlockKernel kernel,
                 const GemmEpilogue& epilogue) {
  for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::int64_t kb = std::min(kBlockK, k - p0);
    a_panel.assign(static_cast<std::size_t>(mb * kb), 0.0f);
    for (std::int64_t i = 0; i < mb; ++i) {
      const float* src = a + (i0 + i) * k + p0;
      float* dst = a_panel.data() + i * kb;
      for (std::int64_t p = 0; p < kb; ++p) dst[p] = alpha * src[p];
    }
    for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::int64_t nb = std::min(kBlockN, n - j0);
      kernel(mb, nb, kb, a_panel.data(), kb, b + p0 * n + j0, n,
             c + i0 * n + j0, n);
    }
  }
  if (!epilogue.empty()) apply_epilogue(i0, mb, n, c, epilogue);
}

// ---------------------------------------------------------------------------
// int8 GEMM. Both tiers accumulate each output tile exactly in int32 over
// the full k extent (no k blocking — int32 partial sums would otherwise
// need a spill buffer, and kIgemmMaxK bounds the exact range), then
// requantize the finished tile. Integer accumulation is exact and
// order-independent, and the scalar and AVX2 requant epilogues run the
// same per-element IEEE operation sequence (convert, fused
// multiply-add via fmaf/vfmaddps — one rounding, stated in source so it
// cannot drift with -ffp-contract — then PReLU select), so igemm
// results are bitwise identical across
// tiers, thread counts and reruns; the dispatch test pins the tier
// equality exactly.

// Tile geometry: up to 6 rows × 16 int32 accumulators, mirroring the f32
// kernel's register blocking (12 ymm accumulators + 2 B vectors + 1
// broadcast on the AVX2 tier).
constexpr std::int64_t kIgemmTileM = 6;
constexpr std::int64_t kIgemmTileN = 16;

// The shared requant epilogue: tile holds rows×cols finished int32
// accumulators (row stride kIgemmTileN) for C rows [i0, i0+rows), columns
// [j0, j0+cols). Scale → bias → PReLU, in the same element order at every
// call site.
void igemm_requant_tile(const std::int32_t* tile, std::int64_t i0,
                        std::int64_t rows, std::int64_t j0, std::int64_t cols,
                        std::int64_t n, float* c, const IgemmEpilogue& ep) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const float scale = ep.scale[i0 + i];
    const float bias = ep.bias != nullptr ? ep.bias[i0 + i] : 0.0f;
    const std::int32_t* t = tile + i * kIgemmTileN;
    float* row = c + (i0 + i) * n + j0;
    // Explicit fmaf: the requant contract is the FUSED multiply-add (one
    // rounding), stated in source rather than left to -ffp-contract, so
    // the vector epilogue (vfmaddps) matches bit for bit on any build.
    if (ep.prelu != nullptr) {
      const float slope = ep.prelu[i0 + i];
      for (std::int64_t j = 0; j < cols; ++j) {
        const float v = std::fmaf(static_cast<float>(t[j]), scale, bias);
        row[j] = v > 0.0f ? v : slope * v;
      }
    } else {
      for (std::int64_t j = 0; j < cols; ++j) {
        row[j] = std::fmaf(static_cast<float>(t[j]), scale, bias);
      }
    }
  }
}

// Scalar accumulation of one ragged tile (also the full scalar tier).
void igemm_tile_scalar(std::int64_t rows, std::int64_t cols, std::int64_t k,
                       const std::int8_t* a, std::int64_t lda,
                       const std::int8_t* b, std::int64_t ldb,
                       std::int32_t* tile) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int8_t* ai = a + i * lda;
    for (std::int64_t j = 0; j < cols; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(ai[p]) *
               static_cast<std::int32_t>(b[p * ldb + j]);
      }
      tile[i * kIgemmTileN + j] = acc;
    }
  }
}

void igemm_rows_scalar(std::int64_t i0, std::int64_t i1, std::int64_t n,
                       std::int64_t k, const std::int8_t* a,
                       const std::int8_t* b, float* c,
                       const IgemmEpilogue& ep) {
  std::int32_t tile[kIgemmTileM * kIgemmTileN];
  for (std::int64_t i = i0; i < i1; i += kIgemmTileM) {
    const std::int64_t rows = std::min(kIgemmTileM, i1 - i);
    for (std::int64_t j = 0; j < n; j += kIgemmTileN) {
      const std::int64_t cols = std::min(kIgemmTileN, n - j);
      igemm_tile_scalar(rows, cols, k, a + i * k, k, b + j, n, tile);
      igemm_requant_tile(tile, i, rows, j, cols, n, c, ep);
    }
  }
}

#if SNE_GEMM_X86

// Two adjacent k values of one A row, packed as the (lo, hi) i16 halves
// of an i32 — the broadcast operand madd_epi16 pairs against the
// interleaved B rows.
inline std::int32_t pack_a_pair(std::int8_t a0, std::int8_t a1) noexcept {
  const auto lo = static_cast<std::uint16_t>(static_cast<std::int16_t>(a0));
  const auto hi = static_cast<std::uint16_t>(static_cast<std::int16_t>(a1));
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(lo) |
                                   (static_cast<std::uint32_t>(hi) << 16));
}

// Vectorized requant for full-width (16-column) tiles on the AVX2 tier.
// Every element runs the same IEEE operation sequence as
// igemm_requant_tile — int32→float convert, FUSED multiply-add (vfmaddps,
// matching the scalar epilogue's fmaf), per-element PReLU select — so the
// two epilogues are bitwise
// identical and the cross-tier identity of igemm survives; the dispatch
// test pins scalar-vs-AVX2 exact equality.
__attribute__((target("avx2,fma"))) void igemm_requant_tile16_avx2(
    const std::int32_t* tile, std::int64_t i0, std::int64_t rows,
    std::int64_t j0, std::int64_t n, float* c, const IgemmEpilogue& ep) {
  const __m256 zero = _mm256_setzero_ps();
  for (std::int64_t i = 0; i < rows; ++i) {
    const __m256 scale = _mm256_set1_ps(ep.scale[i0 + i]);
    const __m256 bias =
        _mm256_set1_ps(ep.bias != nullptr ? ep.bias[i0 + i] : 0.0f);
    const std::int32_t* t = tile + i * kIgemmTileN;
    float* row = c + (i0 + i) * n + j0;
    for (int h = 0; h < kIgemmTileN; h += 8) {
      __m256 v = _mm256_cvtepi32_ps(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + h)));
      v = _mm256_fmadd_ps(v, scale, bias);
      if (ep.prelu != nullptr) {
        const __m256 slope = _mm256_set1_ps(ep.prelu[i0 + i]);
        const __m256 scaled = _mm256_mul_ps(v, slope);
        v = _mm256_blendv_ps(scaled, v, _mm256_cmp_ps(v, zero, _CMP_GT_OQ));
      }
      _mm256_storeu_ps(row + h, v);
    }
  }
}

// Packs B columns [j, j+16) into interleaved i16 k-pairs: for each pair,
// rows 2p and 2p+1 are sign-extended to i16 and interleaved
// (unpacklo/hi), ready for madd_epi16 against a broadcast A pair. Done
// ONCE per column block and reused by every row tile — keeping the
// conversion in the tile kernel costs two extra live vectors (which
// spills the 12 accumulators) and redoes the shuffle work m/6 times.
__attribute__((target("avx2"))) void igemm_pack_b_avx2(
    const std::int8_t* b, std::int64_t ldb, std::int64_t j, std::int64_t kp,
    std::int16_t* dst) {
  for (std::int64_t p = 0; p < kp; ++p) {
    const __m256i b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b + (2 * p) * ldb + j)));
    const __m256i b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b + (2 * p + 1) * ldb + j)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + p * 32),
                        _mm256_unpacklo_epi16(b0, b1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + p * 32 + 16),
                        _mm256_unpackhi_epi16(b0, b1));
  }
}

// R rows × 16 columns over kp k-PAIRS of pre-packed B: the packed A pair
// is broadcast and madd_epi16 produces the exact a0·b0 + a1·b1 int32 per
// column — s8×s8 products fit i16 and their pairwise sums fit i32, so
// nothing can saturate (unlike maddubs, whose i16 pair sums can). The
// loop carries 12 accumulators + 2 B vectors + 1 broadcast, the same
// 15-register budget as the f32 kernel. After the loop the unpack
// interleave is undone with two cross-lane permutes per row. An odd
// trailing k element is NOT handled here — the caller adds it scalar,
// which costs nothing and keeps this loop branch-free.
template <int R>
__attribute__((target("avx2"))) void igemm_tile16_avx2(
    const std::int32_t* apack, std::int64_t lda_pack, std::int64_t kp,
    const std::int16_t* bpack, std::int32_t* tile) {
  __m256i acc_lo[R];
  __m256i acc_hi[R];
  for (int r = 0; r < R; ++r) {
    acc_lo[r] = _mm256_setzero_si256();
    acc_hi[r] = _mm256_setzero_si256();
  }
  for (std::int64_t p = 0; p < kp; ++p) {
    const __m256i blo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bpack + p * 32));
    const __m256i bhi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bpack + p * 32 + 16));
    for (int r = 0; r < R; ++r) {
      const __m256i av = _mm256_set1_epi32(apack[r * lda_pack + p]);
      acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(av, blo));
      acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(av, bhi));
    }
  }
  for (int r = 0; r < R; ++r) {
    // unpack put columns [0-3, 8-11] in acc_lo and [4-7, 12-15] in
    // acc_hi; the two permutes restore linear column order.
    const __m256i first =
        _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20);
    const __m256i second =
        _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(tile + r * kIgemmTileN), first);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(tile + r * kIgemmTileN + 8), second);
  }
}

void igemm_rows_avx2(std::int64_t i0, std::int64_t i1, std::int64_t n,
                     std::int64_t k, const std::int8_t* a,
                     const std::int8_t* b, float* c, const IgemmEpilogue& ep,
                     std::vector<std::int32_t>& apack,
                     std::vector<std::int16_t>& bpack) {
  // Pre-pack every A row of this panel into k-pairs once; the inner loop
  // then broadcasts straight from memory instead of re-packing per tile.
  const std::int64_t kp = k / 2;
  const std::int64_t rows_total = i1 - i0;
  apack.resize(static_cast<std::size_t>(std::max<std::int64_t>(
      rows_total * kp, 1)));
  for (std::int64_t r = 0; r < rows_total; ++r) {
    const std::int8_t* ar = a + (i0 + r) * k;
    std::int32_t* dst = apack.data() + r * kp;
    for (std::int64_t p = 0; p < kp; ++p) {
      dst[p] = pack_a_pair(ar[2 * p], ar[2 * p + 1]);
    }
  }
  bpack.resize(static_cast<std::size_t>(std::max<std::int64_t>(kp * 32, 1)));

  // Column blocks outermost: each 16-column strip of B is converted to
  // interleaved i16 once (≤ 32·k bytes, L1/L2-resident for real conv
  // shapes) and reused by every row tile of the panel. With parallel
  // igemm each row panel repacks its strips — for conv shapes m fits one
  // panel, and the pack is O(n·k) against O(m·n·k) accumulation anyway.
  alignas(32) std::int32_t tile[kIgemmTileM * kIgemmTileN];
  std::int64_t j = 0;
  for (; j + kIgemmTileN <= n; j += kIgemmTileN) {
    igemm_pack_b_avx2(b, n, j, kp, bpack.data());
    for (std::int64_t i = i0; i < i1; i += kIgemmTileM) {
      const std::int64_t rows = std::min(kIgemmTileM, i1 - i);
      const std::int32_t* ap = apack.data() + (i - i0) * kp;
      const std::int16_t* bp = bpack.data();
      switch (rows) {
        case 1: igemm_tile16_avx2<1>(ap, kp, kp, bp, tile); break;
        case 2: igemm_tile16_avx2<2>(ap, kp, kp, bp, tile); break;
        case 3: igemm_tile16_avx2<3>(ap, kp, kp, bp, tile); break;
        case 4: igemm_tile16_avx2<4>(ap, kp, kp, bp, tile); break;
        case 5: igemm_tile16_avx2<5>(ap, kp, kp, bp, tile); break;
        default: igemm_tile16_avx2<6>(ap, kp, kp, bp, tile); break;
      }
      if ((k & 1) != 0) {
        // Odd trailing k element, added exactly like any other product.
        const std::int8_t* btail = b + (k - 1) * n + j;
        for (std::int64_t r = 0; r < rows; ++r) {
          const std::int32_t av = a[(i + r) * k + (k - 1)];
          std::int32_t* trow = tile + r * kIgemmTileN;
          for (std::int64_t jj = 0; jj < kIgemmTileN; ++jj) {
            trow[jj] += av * static_cast<std::int32_t>(btail[jj]);
          }
        }
      }
      igemm_requant_tile16_avx2(tile, i, rows, j, n, c, ep);
    }
  }
  if (j < n) {
    // Ragged column tail (< 16 columns): scalar accumulation. Exact
    // integer math, so mixing paths cannot change any bit.
    for (std::int64_t i = i0; i < i1; i += kIgemmTileM) {
      const std::int64_t rows = std::min(kIgemmTileM, i1 - i);
      igemm_tile_scalar(rows, n - j, k, a + i * k, k, b + j, n, tile);
      igemm_requant_tile(tile, i, rows, j, n - j, n, c, ep);
    }
  }
}

#endif  // SNE_GEMM_X86

// Shared panel driver of igemm/igemm_serial: rows [i0, i1) of C at the
// given tier. `apack`/`bpack` are caller-owned (per-thread) scratch for
// the AVX2 pre-packs; the scalar tier does not touch them.
void igemm_rows(GemmTier tier, std::int64_t i0, std::int64_t i1,
                std::int64_t n, std::int64_t k, const std::int8_t* a,
                const std::int8_t* b, float* c, const IgemmEpilogue& ep,
                std::vector<std::int32_t>& apack,
                std::vector<std::int16_t>& bpack) {
#if SNE_GEMM_X86
  if (tier == GemmTier::Avx2Fma) {
    igemm_rows_avx2(i0, i1, n, k, a, b, c, ep, apack, bpack);
    return;
  }
#else
  (void)tier;
#endif
  (void)apack;
  (void)bpack;
  igemm_rows_scalar(i0, i1, n, k, a, b, c, ep);
}

void igemm_check(std::int64_t k, const IgemmEpilogue& ep) {
  if (ep.scale == nullptr) {
    throw std::invalid_argument("igemm: epilogue requires a requant scale");
  }
  if (k > kIgemmMaxK) {
    throw std::invalid_argument(
        "igemm: k = " + std::to_string(k) +
        " exceeds the exact int32 accumulation bound (" +
        std::to_string(kIgemmMaxK) + ")");
  }
}

}  // namespace

GemmTier gemm_tier() {
  int t = g_gemm_tier.load(std::memory_order_acquire);
  if (t < 0) {
    int expected = -1;
    const int resolved = static_cast<int>(resolve_default_tier());
    if (!g_gemm_tier.compare_exchange_strong(expected, resolved,
                                             std::memory_order_acq_rel)) {
      return static_cast<GemmTier>(expected);
    }
    t = resolved;
  }
  return static_cast<GemmTier>(t);
}

void set_gemm_tier(GemmTier tier) {
  g_gemm_tier.store(static_cast<int>(clamp_to_supported(tier)),
                    std::memory_order_release);
}

bool gemm_tier_supported(GemmTier tier) noexcept {
  switch (tier) {
    case GemmTier::Scalar:
      return true;
    case GemmTier::Avx2Fma: {
      static const bool supported = cpu_has_avx2_fma();
      return supported;
    }
  }
  return false;
}

const char* gemm_tier_name(GemmTier tier) noexcept {
  return tier == GemmTier::Avx2Fma ? "avx2" : "scalar";
}

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c,
           const GemmEpilogue& epilogue) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) {
    // No accumulation, but the epilogue still applies to the scaled C.
    if (!epilogue.empty() && m > 0 && n > 0) apply_epilogue(0, m, n, c,
                                                            epilogue);
    return;
  }

  // Row panels are independent (each writes a disjoint row range of C and
  // applies the epilogue to its own rows), so they distribute across the
  // pool; the k/n blocking inside one panel stays serial, which keeps each
  // C element's accumulation order — and therefore the result bits —
  // independent of the thread count. alpha is folded into a scaled copy of
  // the A panel so the inner kernel stays a pure FMA loop; the scratch
  // panel is per-thread and reused. The inner kernel is resolved once per
  // call, so a concurrent set_gemm_tier cannot mix tiers within one GEMM.
  const BlockKernel kernel = active_block_kernel();
  const std::int64_t num_panels = (m + kBlockM - 1) / kBlockM;
  parallel_for(0, num_panels, [&](std::int64_t panel) {
    thread_local std::vector<float> a_panel;
    const std::int64_t i0 = panel * kBlockM;
    sgemm_panel(i0, std::min(kBlockM, m - i0), n, k, alpha, a, b, c, a_panel,
                kernel, epilogue);
  });
}

void sgemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const float* a, const float* b, float beta, float* c,
                  const GemmEpilogue& epilogue) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) {
    if (!epilogue.empty() && m > 0 && n > 0) apply_epilogue(0, m, n, c,
                                                            epilogue);
    return;
  }

  // Same panels as sgemm, walked on the calling thread. The scratch panel
  // grows once per thread and is then reused, so steady-state calls do not
  // touch the allocator (the std::function conversion inside parallel_for
  // would; that is why this is not just sgemm with a 1-wide pool).
  const BlockKernel kernel = active_block_kernel();
  thread_local std::vector<float> a_panel;
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    sgemm_panel(i0, std::min(kBlockM, m - i0), n, k, alpha, a, b, c, a_panel,
                kernel, epilogue);
  }
}

void igemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, const std::int8_t* b, float* c,
           const IgemmEpilogue& epilogue) {
  igemm_check(k, epilogue);
  if (m == 0 || n == 0) return;

  // Same decomposition as sgemm: independent row panels of C distributed
  // across the pool. Unlike the f32 path there is no bitwise caveat to
  // document per tier — integer accumulation makes any split exact.
  const GemmTier tier = gemm_tier();
  const std::int64_t num_panels = (m + kBlockM - 1) / kBlockM;
  parallel_for(0, num_panels, [&](std::int64_t panel) {
    thread_local std::vector<std::int32_t> apack;
    thread_local std::vector<std::int16_t> bpack;
    const std::int64_t i0 = panel * kBlockM;
    igemm_rows(tier, i0, std::min(m, i0 + kBlockM), n, k, a, b, c, epilogue,
               apack, bpack);
  });
}

void igemm_serial(std::int64_t m, std::int64_t n, std::int64_t k,
                  const std::int8_t* a, const std::int8_t* b, float* c,
                  const IgemmEpilogue& epilogue) {
  igemm_check(k, epilogue);
  if (m == 0 || n == 0) return;

  const GemmTier tier = gemm_tier();
  thread_local std::vector<std::int32_t> apack;
  thread_local std::vector<std::int16_t> bpack;
  igemm_rows(tier, 0, m, n, k, a, b, c, epilogue, apack, bpack);
}

void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // A is stored k×m; transpose blocks of A into a row-major panel, then
  // reuse the same inner kernel.
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  // Same parallel decomposition as sgemm: independent row panels of C,
  // per-thread transpose scratch, serial k accumulation within a panel.
  const BlockKernel kernel = active_block_kernel();
  const std::int64_t num_panels = (m + kBlockM - 1) / kBlockM;
  parallel_for(0, num_panels, [&](std::int64_t panel) {
    thread_local std::vector<float> a_panel;
    const std::int64_t i0 = panel * kBlockM;
    const std::int64_t mb = std::min(kBlockM, m - i0);
    for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::int64_t kb = std::min(kBlockK, k - p0);
      a_panel.assign(static_cast<std::size_t>(mb * kb), 0.0f);
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* src = a + (p0 + p) * m + i0;
        for (std::int64_t i = 0; i < mb; ++i) {
          a_panel[static_cast<std::size_t>(i * kb + p)] = alpha * src[i];
        }
      }
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t nb = std::min(kBlockN, n - j0);
        kernel(mb, nb, kb, a_panel.data(), kb, b + p0 * n + j0, n,
               c + i0 * n + j0, n);
      }
    }
  });
}

void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // B is stored n×k; with B transposed both operands stream along k, so a
  // dot-product kernel is the cache-friendly choice.
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      double acc0 = 0.0, acc1 = 0.0;
      std::int64_t p = 0;
      for (; p + 2 <= k; p += 2) {
        acc0 += static_cast<double>(ai[p]) * bj[p];
        acc1 += static_cast<double>(ai[p + 1]) * bj[p + 1];
      }
      if (p < k) acc0 += static_cast<double>(ai[p]) * bj[p];
      c[i * n + j] += alpha * static_cast<float>(acc0 + acc1);
    }
  }
}

namespace {

// The deepest serving stamps lower to runs of ~16 elements per output
// row; for byte elements the libcall overhead of memmove/memset swamps
// the copy itself, so route short byte runs through inline word-sized
// chunks. Fixed-size memcpy compiles to plain loads/stores.
inline void copy_run(const std::int8_t* src, std::int64_t len,
                     std::int8_t* dst) {
  while (len >= 8) {
    std::uint64_t v;
    std::memcpy(&v, src, 8);
    std::memcpy(dst, &v, 8);
    src += 8;
    dst += 8;
    len -= 8;
  }
  while (len > 0) {
    *dst++ = *src++;
    --len;
  }
}

inline void copy_run(const float* src, std::int64_t len, float* dst) {
  std::copy(src, src + len, dst);
}

// One traversal for both element types: the f32 instantiation is the
// historical im2col unchanged (same loops, same zero padding — the fp32
// path's bytes may not move), the int8 instantiation is the quantized
// serving variant.
template <typename T>
void im2col_impl(const T* image, std::int64_t channels, std::int64_t height,
                 std::int64_t width, std::int64_t kh, std::int64_t kw,
                 std::int64_t pad, std::int64_t stride, T* columns) {
  const std::int64_t out_h = conv_out_extent(height, kh, pad, stride);
  const std::int64_t out_w = conv_out_extent(width, kw, pad, stride);
  const std::int64_t out_hw = out_h * out_w;

  for (std::int64_t c = 0; c < channels; ++c) {
    const T* img_c = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx) {
        T* col_row = columns + ((c * kh + ky) * kw + kx) * out_hw;
        if (stride == 1) {
          // ix = ox + kx - pad is monotone: the in-bounds span is one
          // contiguous run, so each row is fill / copy / fill — the
          // same values the generic loop writes, minus the per-element
          // bounds checks (which the compiler cannot elide for narrow
          // element types). The run bounds do not depend on the output
          // row, so they hoist out of the row loop.
          const std::int64_t x0 = std::max<std::int64_t>(0, pad - kx);
          const std::int64_t x1 =
              std::min<std::int64_t>(out_w, width + pad - kx);
          const std::int64_t lead = std::min(x0, out_w);
          const std::int64_t run = x0 < x1 ? x1 - x0 : 0;
          const std::int64_t tail0 = std::max(x1, x0);
          for (std::int64_t oy = 0; oy < out_h; ++oy) {
            const std::int64_t iy = oy + ky - pad;
            T* dst = col_row + oy * out_w;
            if (iy < 0 || iy >= height) {
              std::fill(dst, dst + out_w, T{0});
              continue;
            }
            if (lead > 0) std::fill(dst, dst + lead, T{0});
            if (run > 0) copy_run(img_c + iy * width + x0 + kx - pad, run,
                                  dst + x0);
            if (tail0 < out_w) std::fill(dst + tail0, dst + out_w, T{0});
          }
          continue;
        }
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride + ky - pad;
          T* dst = col_row + oy * out_w;
          if (iy < 0 || iy >= height) {
            std::fill(dst, dst + out_w, T{0});
            continue;
          }
          const T* src_row = img_c + iy * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride + kx - pad;
            dst[ox] = (ix >= 0 && ix < width) ? src_row[ix] : T{0};
          }
        }
      }
    }
  }
}

}  // namespace

void im2col(const float* image, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* columns) {
  im2col_impl(image, channels, height, width, kh, kw, pad, stride, columns);
}

void im2col_i8(const std::int8_t* image, std::int64_t channels,
               std::int64_t height, std::int64_t width, std::int64_t kh,
               std::int64_t kw, std::int64_t pad, std::int64_t stride,
               std::int8_t* columns) {
  im2col_impl(image, channels, height, width, kh, kw, pad, stride, columns);
}

void col2im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* image) {
  const std::int64_t out_h = conv_out_extent(height, kh, pad, stride);
  const std::int64_t out_w = conv_out_extent(width, kw, pad, stride);
  const std::int64_t out_hw = out_h * out_w;

  for (std::int64_t c = 0; c < channels; ++c) {
    float* img_c = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx) {
        const float* col_row = columns + ((c * kh + ky) * kw + kx) * out_hw;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= height) continue;
          const float* src = col_row + oy * out_w;
          float* dst_row = img_c + iy * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride + kx - pad;
            if (ix >= 0 && ix < width) dst_row[ix] += src[ox];
          }
        }
      }
    }
  }
}

}  // namespace sne
