#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/thread_pool.h"

namespace sne {

namespace {

// Block sizes tuned for a ~32 KiB L1 / 256 KiB L2 single-core target.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

// Inner kernel: C[mb×nb] += A[mb×k_len] · B[k_len×nb], with B rows
// contiguous so the compiler can vectorize the n loop.
void gemm_block(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                const float* a, std::int64_t lda, const float* b,
                std::int64_t ldb, float* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < mb; ++i) {
    float* ci = c + i * ldc;
    std::int64_t p = 0;
    // Unroll the reduction by 4: each step streams 4 rows of B through the
    // vectorized n loop with a single pass over C.
    for (; p + 4 <= kb; p += 4) {
      const float a0 = a[i * lda + p + 0];
      const float a1 = a[i * lda + p + 1];
      const float a2 = a[i * lda + p + 2];
      const float a3 = a[i * lda + p + 3];
      const float* b0 = b + (p + 0) * ldb;
      const float* b1 = b + (p + 1) * ldb;
      const float* b2 = b + (p + 2) * ldb;
      const float* b3 = b + (p + 3) * ldb;
      for (std::int64_t j = 0; j < nb; ++j) {
        ci[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; p < kb; ++p) {
      const float ap = a[i * lda + p];
      const float* bp = b + p * ldb;
      for (std::int64_t j = 0; j < nb; ++j) ci[j] += ap * bp[j];
    }
  }
}

void scale_c(std::int64_t m, std::int64_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return;
  }
  for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
}

// One row panel of C: the k/n-blocked accumulation for rows [i0, i0+mb).
// Shared by the parallel and serial drivers so their math (and bits) are
// identical; `a_panel` is caller-provided scratch, reused across calls.
void sgemm_panel(std::int64_t i0, std::int64_t mb, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, const float* b,
                 float* c, std::vector<float>& a_panel) {
  for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::int64_t kb = std::min(kBlockK, k - p0);
    a_panel.assign(static_cast<std::size_t>(mb * kb), 0.0f);
    for (std::int64_t i = 0; i < mb; ++i) {
      const float* src = a + (i0 + i) * k + p0;
      float* dst = a_panel.data() + i * kb;
      for (std::int64_t p = 0; p < kb; ++p) dst[p] = alpha * src[p];
    }
    for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::int64_t nb = std::min(kBlockN, n - j0);
      gemm_block(mb, nb, kb, a_panel.data(), kb, b + p0 * n + j0, n,
                 c + i0 * n + j0, n);
    }
  }
}

}  // namespace

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  // Row panels are independent (each writes a disjoint row range of C), so
  // they distribute across the pool; the k/n blocking inside one panel
  // stays serial, which keeps each C element's accumulation order — and
  // therefore the result bits — independent of the thread count. alpha is
  // folded into a scaled copy of the A panel so the inner kernel stays a
  // pure FMA loop; the scratch panel is per-thread and reused.
  const std::int64_t num_panels = (m + kBlockM - 1) / kBlockM;
  parallel_for(0, num_panels, [&](std::int64_t panel) {
    thread_local std::vector<float> a_panel;
    const std::int64_t i0 = panel * kBlockM;
    sgemm_panel(i0, std::min(kBlockM, m - i0), n, k, alpha, a, b, c, a_panel);
  });
}

void sgemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  // Same panels as sgemm, walked on the calling thread. The scratch panel
  // grows once per thread and is then reused, so steady-state calls do not
  // touch the allocator (the std::function conversion inside parallel_for
  // would; that is why this is not just sgemm with a 1-wide pool).
  thread_local std::vector<float> a_panel;
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    sgemm_panel(i0, std::min(kBlockM, m - i0), n, k, alpha, a, b, c, a_panel);
  }
}

void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // A is stored k×m; transpose blocks of A into a row-major panel, then
  // reuse the same inner kernel.
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  // Same parallel decomposition as sgemm: independent row panels of C,
  // per-thread transpose scratch, serial k accumulation within a panel.
  const std::int64_t num_panels = (m + kBlockM - 1) / kBlockM;
  parallel_for(0, num_panels, [&](std::int64_t panel) {
    thread_local std::vector<float> a_panel;
    const std::int64_t i0 = panel * kBlockM;
    const std::int64_t mb = std::min(kBlockM, m - i0);
    for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::int64_t kb = std::min(kBlockK, k - p0);
      a_panel.assign(static_cast<std::size_t>(mb * kb), 0.0f);
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* src = a + (p0 + p) * m + i0;
        for (std::int64_t i = 0; i < mb; ++i) {
          a_panel[static_cast<std::size_t>(i * kb + p)] = alpha * src[i];
        }
      }
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t nb = std::min(kBlockN, n - j0);
        gemm_block(mb, nb, kb, a_panel.data(), kb, b + p0 * n + j0, n,
                   c + i0 * n + j0, n);
      }
    }
  });
}

void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // B is stored n×k; with B transposed both operands stream along k, so a
  // dot-product kernel is the cache-friendly choice.
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      double acc0 = 0.0, acc1 = 0.0;
      std::int64_t p = 0;
      for (; p + 2 <= k; p += 2) {
        acc0 += static_cast<double>(ai[p]) * bj[p];
        acc1 += static_cast<double>(ai[p + 1]) * bj[p + 1];
      }
      if (p < k) acc0 += static_cast<double>(ai[p]) * bj[p];
      c[i * n + j] += alpha * static_cast<float>(acc0 + acc1);
    }
  }
}

void im2col(const float* image, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* columns) {
  const std::int64_t out_h = conv_out_extent(height, kh, pad, stride);
  const std::int64_t out_w = conv_out_extent(width, kw, pad, stride);
  const std::int64_t out_hw = out_h * out_w;

  for (std::int64_t c = 0; c < channels; ++c) {
    const float* img_c = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx) {
        float* col_row = columns + ((c * kh + ky) * kw + kx) * out_hw;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride + ky - pad;
          float* dst = col_row + oy * out_w;
          if (iy < 0 || iy >= height) {
            std::fill(dst, dst + out_w, 0.0f);
            continue;
          }
          const float* src_row = img_c + iy * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride + kx - pad;
            dst[ox] = (ix >= 0 && ix < width) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* image) {
  const std::int64_t out_h = conv_out_extent(height, kh, pad, stride);
  const std::int64_t out_w = conv_out_extent(width, kw, pad, stride);
  const std::int64_t out_hw = out_h * out_w;

  for (std::int64_t c = 0; c < channels; ++c) {
    float* img_c = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx) {
        const float* col_row = columns + ((c * kh + ky) * kw + kx) * out_hw;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= height) continue;
          const float* src = col_row + oy * out_w;
          float* dst_row = img_c + iy * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride + kx - pad;
            if (ix >= 0 && ix < width) dst_row[ix] += src[ox];
          }
        }
      }
    }
  }
}

}  // namespace sne
