// gemm.h — matrix multiply kernels and the im2col/col2im lowering used by
// the convolution layers. These are the hot loops of the whole training
// pipeline; everything else in the nn library reduces to calls into this
// file. Two precisions live here: the f32 sgemm family (training and the
// fp32 serving path) and the s8×s8→s32 igemm family (the quantized
// serving path; see tensor/qtensor.h for how operands are produced).
//
// The inner panel kernel is runtime-dispatched: a portable scalar kernel
// (the bit-reference — its accumulation order has never changed and the
// determinism tests pin it) and an AVX2+FMA register-blocked kernel picked
// by CPUID at first use. Within either tier results are bitwise identical
// across thread counts and repeated runs; across tiers the f32 kernels
// agree only to float tolerance (the vector kernel re-associates the k
// reduction), while igemm is bitwise identical even ACROSS tiers — its
// accumulation is exact integer arithmetic, and the scalar and AVX2
// requantization epilogues run the same per-element IEEE operation
// sequence (convert, fused multiply-add, PReLU select), so they produce
// the same bits.
// Force a tier with SNE_GEMM_KERNEL=scalar|avx2|auto or set_gemm_tier();
// an unrecognized value warns once on stderr and resolves like "auto".
#pragma once

#include <cstdint>

namespace sne {

/// Kernel tier for the GEMM panel micro-kernel.
enum class GemmTier {
  Scalar = 0,   ///< portable unrolled kernel; the determinism bit-reference
  Avx2Fma = 1,  ///< 6×16 register-blocked AVX2+FMA micro-kernel
};

/// The tier all GEMM calls currently dispatch to. Resolved once on first
/// use: SNE_GEMM_KERNEL if set ("scalar" | "avx2" | "auto"), otherwise the
/// best tier the CPU supports. An unsupported request falls back to Scalar.
GemmTier gemm_tier();

/// Overrides the dispatch tier for the whole process (test/bench hook).
/// Requests for an unsupported tier are clamped to Scalar. Not intended to
/// be raced against in-flight GEMM calls: switch tiers only at quiescence.
void set_gemm_tier(GemmTier tier);

/// True when the running CPU can execute `tier`.
bool gemm_tier_supported(GemmTier tier) noexcept;

/// "scalar" / "avx2" — stable names, matching the SNE_GEMM_KERNEL values.
const char* gemm_tier_name(GemmTier tier) noexcept;

/// Optional per-row epilogue fused into the GEMM drivers: applied to each
/// finished row panel of C while it is still cache-hot, after the full k
/// accumulation (and after beta scaling). Element order and operations are
/// identical to running the equivalent separate passes over C, so fusing
/// changes no bits — only memory traffic. Pointers are borrowed and must
/// cover [0, m).
struct GemmEpilogue {
  /// Per-row additive bias: C[i][j] += bias[i]. Null to skip.
  const float* bias = nullptr;
  /// Per-row PReLU negative slope, applied after the bias:
  /// C[i][j] = C[i][j] > 0 ? C[i][j] : prelu[i] * C[i][j]. Null to skip.
  const float* prelu = nullptr;

  bool empty() const noexcept { return bias == nullptr && prelu == nullptr; }
};

/// C[m×n] = alpha * A[m×k] · B[k×n] + beta * C, then the epilogue (if any).
/// Row-major, contiguous. Cache-blocked with a runtime-dispatched inner
/// kernel and parallelized across row panels of C on the shared thread pool
/// (see tensor/thread_pool.h). Each panel's accumulation stays serial, so
/// within a dispatch tier the result is bitwise identical for any thread
/// count — determinism of accumulation order is a test invariant.
void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c,
           const GemmEpilogue& epilogue = {});

/// sgemm with the identical blocking and accumulation order, but guaranteed
/// never to dispatch to the thread pool and heap-allocation-free after its
/// per-thread scratch panel has warmed up. Bitwise identical to sgemm at
/// the same tier (the parallel version keeps each panel's accumulation
/// serial). This is the GEMM substrate of the inference path, whose run()
/// contract is zero allocations after warmup; parallelism there comes from
/// running whole sessions on separate pool workers instead.
void sgemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const float* a, const float* b, float beta, float* c,
                  const GemmEpilogue& epilogue = {});

/// C[m×n] = alpha * Aᵀ (A is k×m) · B[k×n] + beta * C.
///
/// Epilogue fusion is a FORWARD-ONLY contract: the transpose variants
/// serve the backward pass, where the bias gradient is a reduction of
/// grad_output (not a broadcast add) and the activation gradient is a
/// masked scale applied by the activation layer itself — there is no
/// per-row (bias, PReLU) pass to fuse. The deleted overloads below make
/// a future backward path that tries to hand one an epilogue fail to
/// compile instead of silently dropping the bias+PReLU.
void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);
void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c,
              const GemmEpilogue&) = delete;

/// C[m×n] = alpha * A[m×k] · Bᵀ (B is n×k) + beta * C. Same forward-only
/// epilogue contract as sgemm_at.
void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);
void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c,
              const GemmEpilogue&) = delete;

/// Requantization epilogue of the int8 GEMM: maps each finished int32
/// accumulator row back to f32 while it is still cache-hot,
///   C[i][j] = acc[i][j] · scale[i] + bias[i], then PReLU — exactly the
/// per-row (bias, PReLU) contract of GemmEpilogue with a per-row scale in
/// front. `scale` is required (it carries the input-scale × per-channel
/// weight-scale product); `bias`/`prelu` are optional. All pointers are
/// borrowed and must cover [0, m). The scalar and vector routines that
/// apply this run the identical per-element IEEE operation sequence
/// (int32→f32 convert, fused multiply-add — fmaf in the scalar routine,
/// vfmaddps in the vector one — then PReLU select), so
/// requantized outputs are bitwise identical across tiers, thread counts
/// and reruns — the dispatch test pins the tier equality exactly.
struct IgemmEpilogue {
  const float* scale = nullptr;  ///< per-row requant scale (required)
  const float* bias = nullptr;   ///< per-row additive bias, after scaling
  const float* prelu = nullptr;  ///< per-row PReLU negative slope, last
};

/// Accumulator-overflow bound of the int8 GEMM: |acc| ≤ k · 127² must fit
/// int32, so k may not exceed this. Far above any conv lowering in the
/// paper's models (their largest k is Cin·kh·kw = 750); igemm throws
/// std::invalid_argument beyond it rather than wrapping silently.
constexpr std::int64_t kIgemmMaxK = (std::int64_t{1} << 31) / (127 * 127) - 1;

/// C[m×n] = epilogue(A[m×k] · B[k×n]) with A, B int8 and the accumulation
/// exact in int32 (saturation can only happen in quantize_into when the
/// operands are produced — never inside the GEMM). C is fully
/// overwritten. Parallelized across row panels on the shared thread pool;
/// accumulation order is irrelevant to the result (integer arithmetic is
/// exact), so the output is bitwise invariant across tiers, thread counts
/// and reruns — a strictly stronger guarantee than the f32 within-tier
/// contract. The AVX2 tier deliberately avoids the classic `maddubs`
/// u8×s8 path: its pairwise i16 sums saturate (2·127·255 > 2¹⁵), which
/// would silently break exactness; it sign-extends to i16 and uses
/// madd_epi16 on k-pairs instead, which cannot overflow.
void igemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, const std::int8_t* b, float* c,
           const IgemmEpilogue& epilogue);

/// igemm guaranteed never to dispatch to the thread pool and
/// heap-allocation-free after its per-thread scratch has warmed up —
/// the quantized-serving analogue of sgemm_serial, bitwise identical to
/// igemm (at any tier).
void igemm_serial(std::int64_t m, std::int64_t n, std::int64_t k,
                  const std::int8_t* a, const std::int8_t* b, float* c,
                  const IgemmEpilogue& epilogue);

/// Lowers one image (C×H×W, row-major) into a column matrix of shape
/// [C·kh·kw] × [out_h·out_w] for convolution-as-GEMM. `pad` is zero padding
/// applied on all sides, `stride` the convolution stride.
void im2col(const float* image, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* columns);

/// im2col over an already-quantized int8 image, for the igemm conv path.
/// Identical traversal and zero padding; ¼ of the byte traffic.
void im2col_i8(const std::int8_t* image, std::int64_t channels,
               std::int64_t height, std::int64_t width, std::int64_t kh,
               std::int64_t kw, std::int64_t pad, std::int64_t stride,
               std::int8_t* columns);

/// Adjoint of im2col: scatters a column matrix back into (and accumulates
/// onto) an image buffer. Used for the convolution input gradient.
void col2im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* image);

/// Output spatial extent of a convolution along one axis.
constexpr std::int64_t conv_out_extent(std::int64_t in, std::int64_t kernel,
                                       std::int64_t pad,
                                       std::int64_t stride) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace sne
