// gemm.h — single-precision matrix multiply kernels and the im2col/col2im
// lowering used by the convolution layers. These are the hot loops of the
// whole training pipeline; everything else in the nn library reduces to
// calls into this file.
#pragma once

#include <cstdint>

namespace sne {

/// C[m×n] = alpha * A[m×k] · B[k×n] + beta * C.
/// Row-major, contiguous. Cache-blocked with an unrolled inner kernel and
/// parallelized across row panels of C on the shared thread pool (see
/// tensor/thread_pool.h). Each panel's accumulation stays serial, so the
/// result is bitwise identical for any thread count — determinism of
/// accumulation order is a test invariant.
void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c);

/// sgemm with the identical blocking and accumulation order, but guaranteed
/// never to dispatch to the thread pool and heap-allocation-free after its
/// per-thread scratch panel has warmed up. Bitwise identical to sgemm (the
/// parallel version keeps each panel's accumulation serial). This is the
/// GEMM substrate of the inference path, whose run() contract is zero
/// allocations after warmup; parallelism there comes from running whole
/// sessions on separate pool workers instead.
void sgemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const float* a, const float* b, float beta, float* c);

/// C[m×n] = alpha * Aᵀ (A is k×m) · B[k×n] + beta * C.
void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C[m×n] = alpha * A[m×k] · Bᵀ (B is n×k) + beta * C.
void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// Lowers one image (C×H×W, row-major) into a column matrix of shape
/// [C·kh·kw] × [out_h·out_w] for convolution-as-GEMM. `pad` is zero padding
/// applied on all sides, `stride` the convolution stride.
void im2col(const float* image, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* columns);

/// Adjoint of im2col: scatters a column matrix back into (and accumulates
/// onto) an image buffer. Used for the convolution input gradient.
void col2im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* image);

/// Output spatial extent of a convolution along one axis.
constexpr std::int64_t conv_out_extent(std::int64_t in, std::int64_t kernel,
                                       std::int64_t pad,
                                       std::int64_t stride) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace sne
