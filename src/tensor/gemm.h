// gemm.h — single-precision matrix multiply kernels and the im2col/col2im
// lowering used by the convolution layers. These are the hot loops of the
// whole training pipeline; everything else in the nn library reduces to
// calls into this file.
//
// The inner panel kernel is runtime-dispatched: a portable scalar kernel
// (the bit-reference — its accumulation order has never changed and the
// determinism tests pin it) and an AVX2+FMA register-blocked kernel picked
// by CPUID at first use. Within either tier results are bitwise identical
// across thread counts and repeated runs; across tiers they agree only to
// float tolerance (the vector kernel re-associates the k reduction).
// Force a tier with SNE_GEMM_KERNEL=scalar|avx2|auto or set_gemm_tier().
#pragma once

#include <cstdint>

namespace sne {

/// Kernel tier for the GEMM panel micro-kernel.
enum class GemmTier {
  Scalar = 0,   ///< portable unrolled kernel; the determinism bit-reference
  Avx2Fma = 1,  ///< 6×16 register-blocked AVX2+FMA micro-kernel
};

/// The tier all GEMM calls currently dispatch to. Resolved once on first
/// use: SNE_GEMM_KERNEL if set ("scalar" | "avx2" | "auto"), otherwise the
/// best tier the CPU supports. An unsupported request falls back to Scalar.
GemmTier gemm_tier();

/// Overrides the dispatch tier for the whole process (test/bench hook).
/// Requests for an unsupported tier are clamped to Scalar. Not intended to
/// be raced against in-flight GEMM calls: switch tiers only at quiescence.
void set_gemm_tier(GemmTier tier);

/// True when the running CPU can execute `tier`.
bool gemm_tier_supported(GemmTier tier) noexcept;

/// "scalar" / "avx2" — stable names, matching the SNE_GEMM_KERNEL values.
const char* gemm_tier_name(GemmTier tier) noexcept;

/// Optional per-row epilogue fused into the GEMM drivers: applied to each
/// finished row panel of C while it is still cache-hot, after the full k
/// accumulation (and after beta scaling). Element order and operations are
/// identical to running the equivalent separate passes over C, so fusing
/// changes no bits — only memory traffic. Pointers are borrowed and must
/// cover [0, m).
struct GemmEpilogue {
  /// Per-row additive bias: C[i][j] += bias[i]. Null to skip.
  const float* bias = nullptr;
  /// Per-row PReLU negative slope, applied after the bias:
  /// C[i][j] = C[i][j] > 0 ? C[i][j] : prelu[i] * C[i][j]. Null to skip.
  const float* prelu = nullptr;

  bool empty() const noexcept { return bias == nullptr && prelu == nullptr; }
};

/// C[m×n] = alpha * A[m×k] · B[k×n] + beta * C, then the epilogue (if any).
/// Row-major, contiguous. Cache-blocked with a runtime-dispatched inner
/// kernel and parallelized across row panels of C on the shared thread pool
/// (see tensor/thread_pool.h). Each panel's accumulation stays serial, so
/// within a dispatch tier the result is bitwise identical for any thread
/// count — determinism of accumulation order is a test invariant.
void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c,
           const GemmEpilogue& epilogue = {});

/// sgemm with the identical blocking and accumulation order, but guaranteed
/// never to dispatch to the thread pool and heap-allocation-free after its
/// per-thread scratch panel has warmed up. Bitwise identical to sgemm at
/// the same tier (the parallel version keeps each panel's accumulation
/// serial). This is the GEMM substrate of the inference path, whose run()
/// contract is zero allocations after warmup; parallelism there comes from
/// running whole sessions on separate pool workers instead.
void sgemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const float* a, const float* b, float beta, float* c,
                  const GemmEpilogue& epilogue = {});

/// C[m×n] = alpha * Aᵀ (A is k×m) · B[k×n] + beta * C.
void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C[m×n] = alpha * A[m×k] · Bᵀ (B is n×k) + beta * C.
void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// Lowers one image (C×H×W, row-major) into a column matrix of shape
/// [C·kh·kw] × [out_h·out_w] for convolution-as-GEMM. `pad` is zero padding
/// applied on all sides, `stride` the convolution stride.
void im2col(const float* image, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* columns);

/// Adjoint of im2col: scatters a column matrix back into (and accumulates
/// onto) an image buffer. Used for the convolution input gradient.
void col2im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t pad, std::int64_t stride, float* image);

/// Output spatial extent of a convolution along one axis.
constexpr std::int64_t conv_out_extent(std::int64_t in, std::int64_t kernel,
                                       std::int64_t pad,
                                       std::int64_t stride) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace sne
