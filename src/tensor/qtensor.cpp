#include "tensor/qtensor.h"

#include <cmath>
#include <stdexcept>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SNE_QUANT_X86 1
#else
#define SNE_QUANT_X86 0
#endif

namespace sne {

float max_abs(const float* x, std::int64_t n) noexcept {
  float m = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (std::isnan(a)) return a;  // propagate: a NaN range must not look empty
    if (a > m) m = a;
  }
  return m;
}

namespace {

// The element contract both implementations below honour exactly:
// multiply by inv_scale, saturate in float space (the conversion of an
// out-of-range float is UB-adjacent territory we never enter), round to
// nearest even, NaN → 0.
inline std::int8_t quantize_one(float x, float inv_scale) noexcept {
  const float v = x * inv_scale;
  const float clamped = v > 127.0f ? 127.0f : (v < -127.0f ? -127.0f : v);
  // NaN fails both compares above and reaches lrintf; map it to 0
  // explicitly rather than relying on the platform's NaN conversion.
  return std::isnan(clamped)
             ? std::int8_t{0}
             : static_cast<std::int8_t>(std::lrintf(clamped));
}

#if SNE_QUANT_X86

// 32 elements per iteration: multiply, clamp via min/max (minps maps a
// NaN lane to 127, but the ordered-compare mask zeroes it afterwards —
// same result as the scalar NaN → 0 rule), round with cvtps2dq (nearest
// even, exactly lrintf under the default rounding mode), narrow through
// the saturating packs (values are already within ±127) and restore
// order with one cross-lane permute. Bitwise identical to quantize_one
// on every input.
__attribute__((target("avx2"))) void quantize_avx2(const float* x,
                                                   std::int64_t n,
                                                   float inv_scale,
                                                   std::int8_t* out) noexcept {
  const __m256 scale = _mm256_set1_ps(inv_scale);
  const __m256 hi = _mm256_set1_ps(127.0f);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i q[4];
    for (int h = 0; h < 4; ++h) {
      const __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * h), scale);
      const __m256 c = _mm256_max_ps(_mm256_min_ps(v, hi), lo);
      const __m256 ord = _mm256_cmp_ps(v, v, _CMP_ORD_Q);
      q[h] = _mm256_and_si256(_mm256_cvtps_epi32(c),
                              _mm256_castps_si256(ord));
    }
    const __m256i p01 = _mm256_packs_epi32(q[0], q[1]);
    const __m256i p23 = _mm256_packs_epi32(q[2], q[3]);
    const __m256i packed = _mm256_packs_epi16(p01, p23);
    const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_permutevar8x32_epi32(packed, order));
  }
  for (; i < n; ++i) out[i] = quantize_one(x[i], inv_scale);
}

#endif  // SNE_QUANT_X86

}  // namespace

void quantize_into(const float* x, std::int64_t n, float inv_scale,
                   std::int8_t* out) noexcept {
#if SNE_QUANT_X86
  if (__builtin_cpu_supports("avx2")) {
    quantize_avx2(x, n, inv_scale, out);
    return;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) out[i] = quantize_one(x[i], inv_scale);
}

void dequantize_into(const std::int8_t* q, std::int64_t n, float scale,
                     float* out) noexcept {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(q[i]) * scale;
  }
}

QTensor quantize_per_channel(const Tensor& t) {
  if (t.rank() == 0) {
    throw std::invalid_argument("quantize_per_channel: rank-0 tensor");
  }
  const std::int64_t channels = t.extent(0);
  const std::int64_t per_channel = t.size() / channels;

  QTensor q;
  q.shape = t.shape();
  q.data.resize(static_cast<std::size_t>(t.size()));
  q.scales = Tensor({channels});
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* src = t.data() + c * per_channel;
    const float m = max_abs(src, per_channel);
    if (!std::isfinite(m)) {
      throw std::invalid_argument(
          "quantize_per_channel: non-finite values in channel " +
          std::to_string(c));
    }
    // An all-zero channel quantizes to zeros under any scale; 1.0 keeps
    // the dequantization map well-defined.
    const float scale = m > 0.0f ? m / 127.0f : 1.0f;
    q.scales[c] = scale;
    quantize_into(src, per_channel, m > 0.0f ? 127.0f / m : 0.0f,
                  q.data.data() + c * per_channel);
  }
  return q;
}

Tensor dequantize(const QTensor& q) {
  if (q.shape.empty()) return Tensor();
  Tensor t(q.shape);
  const std::int64_t channels = q.channels();
  const std::int64_t per_channel = t.size() / channels;
  for (std::int64_t c = 0; c < channels; ++c) {
    dequantize_into(q.data.data() + c * per_channel, per_channel,
                    q.scales[c], t.data() + c * per_channel);
  }
  return t;
}

}  // namespace sne
