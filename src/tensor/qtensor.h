// qtensor.h — the int8 side of the tensor layer. A QTensor is the
// minimal dtype break from the f32-only Tensor: a row-major int8 payload
// plus one f32 dequantization scale per leading-axis slice ("channel").
// Quantization is symmetric (no zero point): q = round(x / scale)
// saturated to [-127, 127], x ≈ q · scale, with scale chosen per channel
// as max|x_c| / 127 so the representable range exactly covers the data.
// Symmetric quantization keeps the s8×s8 GEMM a plain integer dot
// product (no zero-point correction terms), which is what makes the
// igemm kernels in gemm.h bitwise reproducible.
//
// -127 (not -128) is deliberate: the range stays symmetric, so
// quantizing -x always yields -q(x) and the AVX2 kernel never needs the
// asymmetric-corner special case.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sne {

/// Largest-magnitude element of x[0..n). 0 for n == 0. NaNs propagate
/// (the caller decides how to treat a non-finite range).
float max_abs(const float* x, std::int64_t n) noexcept;

/// Quantizes n floats with a fixed scale: out[i] = clamp(round(x[i] *
/// inv_scale), -127, 127). Round is to-nearest-even (lrintf under the
/// default rounding mode); the same scalar loop serves every tier, so
/// quantized bytes never depend on the kernel dispatch. Non-finite
/// inputs saturate (NaN quantizes to 0).
void quantize_into(const float* x, std::int64_t n, float inv_scale,
                   std::int8_t* out) noexcept;

/// Dequantizes n int8 values with a fixed scale: out[i] = q[i] * scale.
void dequantize_into(const std::int8_t* q, std::int64_t n, float scale,
                     float* out) noexcept;

/// Dense row-major int8 tensor with per-channel (axis 0) dequantization
/// scales. `data.size() == numel(shape)` and `scales` is [shape[0]].
/// Like Tensor it owns its storage; unlike Tensor it is a plain struct —
/// the int8 path needs exactly "bytes plus scales", nothing more.
struct QTensor {
  Shape shape;
  std::vector<std::int8_t> data;
  Tensor scales;  ///< [shape[0]] f32 dequant scales, one per channel

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(data.size());
  }
  bool empty() const noexcept { return data.empty(); }
  std::int64_t channels() const noexcept {
    return shape.empty() ? 0 : shape[0];
  }
};

/// Symmetric per-channel quantization along axis 0. For each channel c,
/// scale_c = max|t[c, ...]| / 127 (1.0 for an all-zero channel so
/// dequantization stays well-defined) and the payload is
/// quantize_into(t[c, ...], 127 / max|t[c, ...]|). Throws on rank 0 and
/// on non-finite input (a NaN/Inf weight has no meaningful int8 image).
QTensor quantize_per_channel(const Tensor& t);

/// Inverse map (up to rounding): out[c, ...] = q.data[c, ...] * scale_c.
Tensor dequantize(const QTensor& q);

}  // namespace sne
