#include "tensor/rng.h"

#include <cmath>
#include <numbers>

namespace sne {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // A state of all zeros would be a fixed point; SplitMix64 cannot produce
  // four zero outputs from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and division-free.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::gamma(double k, double theta) noexcept {
  if (k < 1.0) {
    // Boost to shape k+1 and correct with the standard power-of-uniform
    // transform (Marsaglia–Tsang, section 6).
    const double u = uniform();
    return gamma(k + 1.0, theta) * std::pow(u, 1.0 / k);
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * theta;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * theta;
    }
  }
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 256.0) {
    // Normal approximation with continuity correction; per-pixel photon
    // counts in the renderer are typically in this regime.
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  // Knuth inversion.
  const double limit = std::exp(-mean);
  double p = 1.0;
  std::uint64_t n = 0;
  do {
    p *= uniform();
    ++n;
  } while (p > limit);
  return n - 1;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::truncated_normal(double mean, double stddev, double lo,
                             double hi) noexcept {
  for (int i = 0; i < 1000; ++i) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  // Pathological bounds (interval far in the tail): fall back to clamping
  // so callers always get a value inside [lo, hi].
  const double x = normal(mean, stddev);
  return x < lo ? lo : (x > hi ? hi : x);
}

void Rng::shuffle(std::vector<std::size_t>& v) noexcept {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(v[i - 1], v[j]);
  }
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace sne
