// rng.h — deterministic pseudo-random number generation for the whole
// project. Every stochastic component (catalog sampling, light-curve priors,
// noise realization, weight init, data shuffling) draws from an explicitly
// seeded sne::Rng so that experiments are bit-reproducible across runs.
#pragma once

#include <cstdint>
#include <vector>

namespace sne {

/// xoshiro256++ PRNG with SplitMix64 seeding.
///
/// Chosen over std::mt19937 because its stream is identical across
/// standard-library implementations, it is trivially copyable (cheap to
/// fork into per-component sub-streams), and it is fast enough to sit in
/// the per-pixel noise path of the image renderer.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Gamma(shape k, scale theta), k > 0 — Marsaglia–Tsang method.
  double gamma(double k, double theta) noexcept;

  /// Poisson with the given mean; switches to a normal approximation for
  /// large means (> 256) where the exact inversion would be slow.
  std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Truncated normal: redraws until the variate lies in [lo, hi].
  double truncated_normal(double mean, double stddev, double lo,
                          double hi) noexcept;

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v) noexcept;

  /// Derives an independent child stream; used to give each subsystem its
  /// own stream so adding draws in one place never perturbs another.
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sne
