#include "tensor/runtime.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/obs.h"
#include "tensor/env.h"
#include "tensor/thread_pool.h"

namespace sne {

namespace {

RuntimeConfig& storage();

// atexit hook behind SNE_TRACE=<path>: the whole process run exports on
// exit, so any binary — benches, tests, examples — traces without code
// changes. The obs registry is a leaked singleton, so it is still alive
// here.
void write_trace_at_exit() {
  const std::string& path = storage().trace_path;
  if (!path.empty()) obs::write_chrome_trace(path);
}

RuntimeConfig& storage() {
  // First touch reads the environment and switches capture on when the
  // environment asked for it — so SNE_TRACE=trace.json works in any
  // binary without per-tool plumbing. Pool width is NOT applied here:
  // the pool itself consults current().threads on first use, and eager
  // application would recurse into it.
  static RuntimeConfig config = [] {
    RuntimeConfig c = RuntimeConfig::from_env();
    if (c.trace) {
      obs::enable();
      if (!c.trace_path.empty()) std::atexit(write_trace_at_exit);
    }
    return c;
  }();
  return config;
}

}  // namespace

const char* precision_name(Precision p) noexcept {
  return p == Precision::Int8 ? "int8" : "fp32";
}

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig c;
  c.threads = static_cast<int>(env::int64("NUM_THREADS", c.threads));
  c.prefetch = env::int64("PREFETCH", c.prefetch);
  const std::string trace = env::string("TRACE", "");
  if (!trace.empty() && trace != "0") {
    c.trace = true;
    if (trace != "1") c.trace_path = trace;
  }
  const std::string precision = env::string("PRECISION", "fp32");
  if (precision == "int8") {
    c.precision = Precision::Int8;
  } else if (precision != "fp32") {
    // A typo'd precision silently serving fp32 would defeat the point of
    // asking for int8; one stderr line makes the fallback visible.
    std::fprintf(stderr,
                 "sne: ignoring invalid SNE_PRECISION=\"%s\" "
                 "(expected fp32|int8); using fp32\n",
                 precision.c_str());
  }
  return c;
}

const RuntimeConfig& RuntimeConfig::current() { return storage(); }

void RuntimeConfig::set_current(RuntimeConfig config) {
  storage() = std::move(config);
  const RuntimeConfig& c = storage();
  set_num_threads(c.threads);  // <= 0 restores the auto default
  if (c.trace) {
    obs::enable();
  } else {
    obs::disable();
  }
}

std::int64_t RuntimeConfig::resolve_prefetch(std::int64_t requested) {
  if (requested >= 0) return requested;
  const std::int64_t depth = current().prefetch;
  return depth >= 0 ? depth : 1;
}

}  // namespace sne
