// runtime.h — sne::RuntimeConfig: the one surface for process-wide
// runtime knobs (pool width, DataLoader prefetch depth, tracing) and the
// one place their SNE_* environment overrides are resolved. Before this
// existed the prefetch depth was plumbed separately through
// TrainConfig::prefetch, SnePipelineConfig::prefetch,
// DataLoaderConfig::prefetch and an ad-hoc PREFETCH env hook in the
// joint benches; those fields survive as deprecated aliases whose
// sentinel default (-1) defers to RuntimeConfig::current().
#pragma once

#include <cstdint>
#include <string>

namespace sne {

/// Serving-path numeric precision. Fp32 is the reference; Int8 runs
/// calibrated per-channel-quantized kernels where a plan step has one
/// (conv steps), falling back to fp32 per step everywhere else. Training
/// is always fp32 — this knob only affects InferencePlan lowering.
enum class Precision {
  Fp32 = 0,
  Int8 = 1,
};

/// "fp32" / "int8" — stable names, matching the SNE_PRECISION values.
const char* precision_name(Precision p) noexcept;

struct RuntimeConfig {
  /// Thread-pool width. <= 0 means auto (hardware_concurrency). Env:
  /// SNE_NUM_THREADS.
  int threads = 0;

  /// Default DataLoader prefetch depth (batches rendered ahead on the
  /// background thread; 0 = synchronous). Any config whose prefetch
  /// field is left at its -1 sentinel resolves to this. Env:
  /// SNE_PREFETCH.
  std::int64_t prefetch = 1;

  /// Telemetry capture (obs::enable()) on/off. Env: SNE_TRACE — unset,
  /// "" or "0" leaves tracing off; "1" enables capture; any other value
  /// enables capture AND names the chrome-trace output path.
  bool trace = false;

  /// Where sne_cli (and anything else that calls
  /// obs::write_chrome_trace(current().trace_path)) writes the trace.
  /// Empty = no file.
  std::string trace_path;

  /// Default serving precision for call sites that defer to the runtime
  /// (SnePipeline scoring, sne_cli without --precision). Env:
  /// SNE_PRECISION = "fp32" | "int8"; an unrecognized value warns once on
  /// stderr and keeps fp32. Int8 only takes effect where a calibrated
  /// model is available — it never silently changes uncalibrated scoring.
  Precision precision = Precision::Fp32;

  /// Reads every SNE_* override on top of the defaults above.
  static RuntimeConfig from_env();

  /// The process-wide active config. First access initializes it from
  /// the environment and, when trace is requested there, enables
  /// telemetry capture. Mutate through set_current() (main thread,
  /// outside parallel regions).
  static const RuntimeConfig& current();

  /// Replaces the active config and applies it: resizes the thread pool
  /// and enables/disables telemetry capture.
  static void set_current(RuntimeConfig config);

  /// Resolves a possibly-sentinel prefetch knob: `requested` >= 0 wins,
  /// anything negative defers to current().prefetch.
  static std::int64_t resolve_prefetch(std::int64_t requested);
};

}  // namespace sne
