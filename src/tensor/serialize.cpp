#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace sne {

namespace {

constexpr char kMagic[4] = {'S', 'N', 'E', 'T'};
constexpr std::uint32_t kVersion = 1;       // untagged f32 records
constexpr std::uint32_t kVersionQuant = 2;  // dtype-tagged records

void write_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

std::uint64_t read_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  if (!is) throw std::runtime_error("tensor stream truncated (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace


std::int64_t stream_bytes_remaining(std::istream& is) {
  const std::istream::pos_type cur = is.tellg();
  if (cur == std::istream::pos_type(-1)) return -1;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(cur);
  if (end == std::istream::pos_type(-1) || end < cur) return -1;
  return static_cast<std::int64_t>(end - cur);
}

void require_stream_bytes(std::istream& is, std::uint64_t needed,
                          const char* who) {
  const std::int64_t rem = stream_bytes_remaining(is);
  if (rem >= 0 && static_cast<std::uint64_t>(rem) < needed) {
    throw std::runtime_error(std::string(who) + ": truncated stream (need " +
                             std::to_string(needed) + " bytes, have " +
                             std::to_string(rem) + ")");
  }
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_u64(os, static_cast<std::uint64_t>(t.rank()));
  for (std::int64_t a = 0; a < t.rank(); ++a) {
    write_u64(os, static_cast<std::uint64_t>(t.extent(a)));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!os) throw std::runtime_error("write_tensor: stream failure");
}

Tensor read_tensor(std::istream& is) {
  const std::uint64_t rank = read_u64(is);
  if (rank > 8) throw std::runtime_error("read_tensor: implausible rank");
  Shape shape;
  shape.reserve(rank);
  std::uint64_t numel = 1;
  for (std::uint64_t a = 0; a < rank; ++a) {
    const std::uint64_t e = read_u64(is);
    if (e == 0 || e > std::numeric_limits<std::int64_t>::max() ||
        numel > (1ULL << 40) / (e ? e : 1)) {
      throw std::runtime_error("read_tensor: implausible extent");
    }
    numel *= e;
    shape.push_back(static_cast<std::int64_t>(e));
  }
  if (rank == 0) {
    return Tensor();
  }
  require_stream_bytes(is, numel * sizeof(float), "read_tensor");
  Tensor t(std::move(shape));
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!is) throw std::runtime_error("read_tensor: stream truncated (data)");
  return t;
}

namespace {

// Version-2 int8 record body (after the name and dtype tag): rank,
// extents, extent(0) f32 scales, then the raw int8 payload.
void write_qtensor(std::ostream& os, const QTensor& q) {
  write_u64(os, q.shape.size());
  for (const std::int64_t e : q.shape) {
    write_u64(os, static_cast<std::uint64_t>(e));
  }
  os.write(reinterpret_cast<const char*>(q.scales.data()),
           static_cast<std::streamsize>(q.scales.size() * sizeof(float)));
  os.write(reinterpret_cast<const char*>(q.data.data()),
           static_cast<std::streamsize>(q.data.size()));
  if (!os) throw std::runtime_error("write_qtensor: stream failure");
}

QTensor read_qtensor(std::istream& is) {
  const std::uint64_t rank = read_u64(is);
  if (rank == 0 || rank > 8) {
    throw std::runtime_error("read_qtensor: implausible rank");
  }
  Shape shape;
  shape.reserve(rank);
  std::uint64_t numel = 1;
  for (std::uint64_t a = 0; a < rank; ++a) {
    const std::uint64_t e = read_u64(is);
    if (e == 0 || e > std::numeric_limits<std::int64_t>::max() ||
        numel > (1ULL << 40) / e) {
      throw std::runtime_error("read_qtensor: implausible extent");
    }
    numel *= e;
    shape.push_back(static_cast<std::int64_t>(e));
  }
  const std::uint64_t channels = static_cast<std::uint64_t>(shape[0]);
  require_stream_bytes(is, channels * sizeof(float) + numel, "read_qtensor");
  QTensor q;
  q.shape = std::move(shape);
  q.scales = Tensor({static_cast<std::int64_t>(channels)});
  is.read(reinterpret_cast<char*>(q.scales.data()),
          static_cast<std::streamsize>(channels * sizeof(float)));
  q.data.resize(numel);
  is.read(reinterpret_cast<char*>(q.data.data()),
          static_cast<std::streamsize>(numel));
  if (!is) throw std::runtime_error("read_qtensor: stream truncated (data)");
  return q;
}

std::string read_record_name(std::istream& is) {
  const std::uint64_t len = read_u64(is);
  if (len > 4096) throw std::runtime_error("read_tensor_map: name too long");
  std::string name(len, '\0');
  is.read(name.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("read_tensor_map: truncated name");
  return name;
}

std::uint64_t read_map_header(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw std::runtime_error("read_tensor_map: bad magic");
  }
  return read_u64(is);
}

std::uint64_t read_record_count(std::istream& is) {
  const std::uint64_t count = read_u64(is);
  if (count > 1'000'000) {
    throw std::runtime_error("read_tensor_map: implausible entry count");
  }
  require_stream_bytes(is, count * 16, "read_tensor_map");
  return count;
}

// Shared core of both public readers. `quantized == nullptr` means the
// caller cannot accept int8 records (the legacy single-output API).
void read_tensor_map_impl(std::istream& is, TensorMap& tensors,
                          QTensorMap* quantized) {
  const std::uint64_t version = read_map_header(is);
  if (version != kVersion && version != kVersionQuant) {
    throw std::runtime_error("read_tensor_map: unsupported version");
  }
  const std::uint64_t count = read_record_count(is);
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_record_name(is);
    if (version == kVersion) {
      tensors.emplace_back(std::move(name), read_tensor(is));
      continue;
    }
    const std::uint64_t dtype = read_u64(is);
    if (dtype == static_cast<std::uint64_t>(TensorDtype::F32)) {
      tensors.emplace_back(std::move(name), read_tensor(is));
    } else if (dtype == static_cast<std::uint64_t>(TensorDtype::I8)) {
      if (quantized == nullptr) {
        throw std::runtime_error(
            "read_tensor_map: stream holds quantized records; use the "
            "(TensorMap, QTensorMap) overload");
      }
      quantized->emplace_back(std::move(name), read_qtensor(is));
    } else {
      throw std::runtime_error("read_tensor_map: unknown record dtype " +
                               std::to_string(dtype));
    }
  }
}

}  // namespace

void write_tensor_map(std::ostream& os, const TensorMap& map) {
  os.write(kMagic, 4);
  write_u64(os, kVersion);
  write_u64(os, map.size());
  for (const auto& [name, tensor] : map) {
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_tensor(os, tensor);
  }
  if (!os) throw std::runtime_error("write_tensor_map: stream failure");
}

void write_tensor_map(std::ostream& os, const TensorMap& map,
                      const QTensorMap& quantized) {
  if (quantized.empty()) {
    // Pure-f32 maps keep writing version 1, byte-identical to every
    // checkpoint that predates quantization.
    write_tensor_map(os, map);
    return;
  }
  os.write(kMagic, 4);
  write_u64(os, kVersionQuant);
  write_u64(os, map.size() + quantized.size());
  for (const auto& [name, tensor] : map) {
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(os, static_cast<std::uint64_t>(TensorDtype::F32));
    write_tensor(os, tensor);
  }
  for (const auto& [name, qt] : quantized) {
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(os, static_cast<std::uint64_t>(TensorDtype::I8));
    write_qtensor(os, qt);
  }
  if (!os) throw std::runtime_error("write_tensor_map: stream failure");
}

TensorMap read_tensor_map(std::istream& is) {
  TensorMap map;
  read_tensor_map_impl(is, map, nullptr);
  return map;
}

void read_tensor_map(std::istream& is, TensorMap& tensors,
                     QTensorMap& quantized) {
  tensors.clear();
  quantized.clear();
  read_tensor_map_impl(is, tensors, &quantized);
}

void save_tensor_map(const std::string& path, const TensorMap& map) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_tensor_map: cannot open " + path);
  write_tensor_map(os, map);
}

void save_tensor_map(const std::string& path, const TensorMap& map,
                     const QTensorMap& quantized) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_tensor_map: cannot open " + path);
  write_tensor_map(os, map, quantized);
}

TensorMap load_tensor_map(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_tensor_map: cannot open " + path);
  return read_tensor_map(is);
}

void load_tensor_map(const std::string& path, TensorMap& tensors,
                     QTensorMap& quantized) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_tensor_map: cannot open " + path);
  read_tensor_map(is, tensors, quantized);
}

}  // namespace sne
