#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace sne {

namespace {

constexpr char kMagic[4] = {'S', 'N', 'E', 'T'};
constexpr std::uint32_t kVersion = 1;

void write_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

std::uint64_t read_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  if (!is) throw std::runtime_error("tensor stream truncated (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace


std::int64_t stream_bytes_remaining(std::istream& is) {
  const std::istream::pos_type cur = is.tellg();
  if (cur == std::istream::pos_type(-1)) return -1;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(cur);
  if (end == std::istream::pos_type(-1) || end < cur) return -1;
  return static_cast<std::int64_t>(end - cur);
}

void require_stream_bytes(std::istream& is, std::uint64_t needed,
                          const char* who) {
  const std::int64_t rem = stream_bytes_remaining(is);
  if (rem >= 0 && static_cast<std::uint64_t>(rem) < needed) {
    throw std::runtime_error(std::string(who) + ": truncated stream (need " +
                             std::to_string(needed) + " bytes, have " +
                             std::to_string(rem) + ")");
  }
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_u64(os, static_cast<std::uint64_t>(t.rank()));
  for (std::int64_t a = 0; a < t.rank(); ++a) {
    write_u64(os, static_cast<std::uint64_t>(t.extent(a)));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!os) throw std::runtime_error("write_tensor: stream failure");
}

Tensor read_tensor(std::istream& is) {
  const std::uint64_t rank = read_u64(is);
  if (rank > 8) throw std::runtime_error("read_tensor: implausible rank");
  Shape shape;
  shape.reserve(rank);
  std::uint64_t numel = 1;
  for (std::uint64_t a = 0; a < rank; ++a) {
    const std::uint64_t e = read_u64(is);
    if (e == 0 || e > std::numeric_limits<std::int64_t>::max() ||
        numel > (1ULL << 40) / (e ? e : 1)) {
      throw std::runtime_error("read_tensor: implausible extent");
    }
    numel *= e;
    shape.push_back(static_cast<std::int64_t>(e));
  }
  if (rank == 0) {
    return Tensor();
  }
  require_stream_bytes(is, numel * sizeof(float), "read_tensor");
  Tensor t(std::move(shape));
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!is) throw std::runtime_error("read_tensor: stream truncated (data)");
  return t;
}

void write_tensor_map(std::ostream& os, const TensorMap& map) {
  os.write(kMagic, 4);
  write_u64(os, kVersion);
  write_u64(os, map.size());
  for (const auto& [name, tensor] : map) {
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_tensor(os, tensor);
  }
  if (!os) throw std::runtime_error("write_tensor_map: stream failure");
}

TensorMap read_tensor_map(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw std::runtime_error("read_tensor_map: bad magic");
  }
  const std::uint64_t version = read_u64(is);
  if (version != kVersion) {
    throw std::runtime_error("read_tensor_map: unsupported version");
  }
  const std::uint64_t count = read_u64(is);
  if (count > 1'000'000) {
    throw std::runtime_error("read_tensor_map: implausible entry count");
  }
  require_stream_bytes(is, count * 16, "read_tensor_map");
  TensorMap map;
  map.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = read_u64(is);
    if (len > 4096) throw std::runtime_error("read_tensor_map: name too long");
    std::string name(len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(len));
    if (!is) throw std::runtime_error("read_tensor_map: truncated name");
    map.emplace_back(std::move(name), read_tensor(is));
  }
  return map;
}

void save_tensor_map(const std::string& path, const TensorMap& map) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_tensor_map: cannot open " + path);
  write_tensor_map(os, map);
}

TensorMap load_tensor_map(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_tensor_map: cannot open " + path);
  return read_tensor_map(is);
}

}  // namespace sne
