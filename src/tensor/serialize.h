// serialize.h — minimal binary serialization for tensors and named tensor
// maps. Used by nn::save_model / nn::load_model so that pre-trained
// component networks (the band-wise CNN and the light-curve classifier)
// can be stitched into the joint model for fine-tuning, exactly as the
// paper's training recipe requires.
//
// The .snet container has two versions (docs/FORMATS.md has the byte
// layout). Version 1 records are untagged f32 tensors; it is what every
// pre-existing checkpoint uses, and a map with no quantized records still
// writes version 1 byte-for-byte — old files and old readers stay valid.
// Version 2 tags each record with a dtype so calibrated pipelines can
// carry int8 per-channel-quantized weights next to their f32 state.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "tensor/qtensor.h"
#include "tensor/tensor.h"

namespace sne {

/// Bytes remaining from the stream's current read position to its end, or
/// -1 for a non-seekable stream. The read position is restored.
std::int64_t stream_bytes_remaining(std::istream& is);

/// Throws std::runtime_error("<who>: truncated stream ...") when the
/// stream is seekable and fewer than `needed` bytes remain. Call before
/// sizing containers from counts read out of the stream, so a corrupt or
/// truncated header can never trigger a huge speculative allocation.
/// Non-seekable streams skip the check (the per-record reads still catch
/// truncation, just after allocating).
void require_stream_bytes(std::istream& is, std::uint64_t needed,
                          const char* who);

/// Writes a tensor: rank, extents (int64 little-endian), then raw float32.
void write_tensor(std::ostream& os, const Tensor& t);

/// Reads a tensor written by write_tensor. Throws std::runtime_error on a
/// malformed or truncated stream.
Tensor read_tensor(std::istream& is);

/// Named collection of tensors (parameter snapshot of a network).
using TensorMap = std::vector<std::pair<std::string, Tensor>>;

/// Named collection of int8 per-channel-quantized tensors.
using QTensorMap = std::vector<std::pair<std::string, QTensor>>;

/// Record dtype tags of the version-2 container.
enum class TensorDtype : std::uint64_t {
  F32 = 1,  ///< rank, extents, f32 payload
  I8 = 2,   ///< rank, extents, extent(0) f32 scales, int8 payload
};

/// File format: magic "SNET", version, count, then (name, tensor)
/// records. Writes version 1 — byte-identical to every checkpoint written
/// before quantization existed.
void write_tensor_map(std::ostream& os, const TensorMap& map);

/// Mixed-precision writer: with `quantized` empty this is exactly the
/// version-1 writer above; otherwise it writes a version-2 container with
/// dtype-tagged records, f32 records first.
void write_tensor_map(std::ostream& os, const TensorMap& map,
                      const QTensorMap& quantized);

/// Reads version 1 or version 2. Throws std::runtime_error if the stream
/// holds int8 records (use the two-output overload for those).
TensorMap read_tensor_map(std::istream& is);

/// Full reader: f32 records append to `tensors`, int8 records to
/// `quantized` (both are cleared first). Accepts version 1 (in which case
/// `quantized` stays empty) and version 2.
void read_tensor_map(std::istream& is, TensorMap& tensors,
                     QTensorMap& quantized);

/// Convenience wrappers over std::fstream; throw on I/O failure.
void save_tensor_map(const std::string& path, const TensorMap& map);
void save_tensor_map(const std::string& path, const TensorMap& map,
                     const QTensorMap& quantized);
TensorMap load_tensor_map(const std::string& path);
void load_tensor_map(const std::string& path, TensorMap& tensors,
                     QTensorMap& quantized);

}  // namespace sne
