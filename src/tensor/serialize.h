// serialize.h — minimal binary serialization for tensors and named tensor
// maps. Used by nn::save_model / nn::load_model so that pre-trained
// component networks (the band-wise CNN and the light-curve classifier)
// can be stitched into the joint model for fine-tuning, exactly as the
// paper's training recipe requires.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace sne {

/// Bytes remaining from the stream's current read position to its end, or
/// -1 for a non-seekable stream. The read position is restored.
std::int64_t stream_bytes_remaining(std::istream& is);

/// Throws std::runtime_error("<who>: truncated stream ...") when the
/// stream is seekable and fewer than `needed` bytes remain. Call before
/// sizing containers from counts read out of the stream, so a corrupt or
/// truncated header can never trigger a huge speculative allocation.
/// Non-seekable streams skip the check (the per-record reads still catch
/// truncation, just after allocating).
void require_stream_bytes(std::istream& is, std::uint64_t needed,
                          const char* who);

/// Writes a tensor: rank, extents (int64 little-endian), then raw float32.
void write_tensor(std::ostream& os, const Tensor& t);

/// Reads a tensor written by write_tensor. Throws std::runtime_error on a
/// malformed or truncated stream.
Tensor read_tensor(std::istream& is);

/// Named collection of tensors (parameter snapshot of a network).
using TensorMap = std::vector<std::pair<std::string, Tensor>>;

/// File format: magic "SNET", version, count, then (name, tensor) records.
void write_tensor_map(std::ostream& os, const TensorMap& map);
TensorMap read_tensor_map(std::istream& is);

/// Convenience wrappers over std::fstream; throw on I/O failure.
void save_tensor_map(const std::string& path, const TensorMap& map);
TensorMap load_tensor_map(const std::string& path);

}  // namespace sne
