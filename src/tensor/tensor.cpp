#include "tensor/tensor.h"

#include "tensor/view.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace sne {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto e : shape) {
    if (e <= 0) {
      throw std::invalid_argument("Tensor shape extents must be positive");
    }
    n *= e;
  }
  return n;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_string() + " vs " + b.shape_string());
  }
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({static_cast<std::int64_t>(values.size())},
                std::vector<float>(values));
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

std::int64_t Tensor::extent(std::int64_t axis) const {
  if (axis < 0 || axis >= rank()) {
    throw std::out_of_range("Tensor::extent: axis out of range");
  }
  return shape_[static_cast<std::size_t>(axis)];
}

std::int64_t Tensor::flat_index(std::span<const std::int64_t> idx) const {
  if (static_cast<std::int64_t>(idx.size()) != rank()) {
    throw std::invalid_argument("Tensor: index rank mismatch");
  }
  std::int64_t flat = 0;
  for (std::size_t a = 0; a < idx.size(); ++a) {
    if (idx[a] < 0 || idx[a] >= shape_[a]) {
      throw std::out_of_range("Tensor: index out of range");
    }
    flat = flat * shape_[a] + idx[a];
  }
  return flat;
}

float& Tensor::at(std::int64_t i0) {
  const std::int64_t idx[] = {i0};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::at(std::int64_t i0, std::int64_t i1) {
  const std::int64_t idx[] = {i0, i1};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
  const std::int64_t idx[] = {i0, i1, i2};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                  std::int64_t i3) {
  const std::int64_t idx[] = {i0, i1, i2, i3};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::at(std::int64_t i0) const {
  const std::int64_t idx[] = {i0};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::at(std::int64_t i0, std::int64_t i1) const {
  const std::int64_t idx[] = {i0, i1};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const {
  const std::int64_t idx[] = {i0, i1, i2};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                 std::int64_t i3) const {
  const std::int64_t idx[] = {i0, i1, i2, i3};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

Shape resolve_reshape_shape(Shape new_shape, std::int64_t size) {
  std::int64_t inferred_axis = -1;
  std::int64_t known = 1;
  for (std::size_t a = 0; a < new_shape.size(); ++a) {
    if (new_shape[a] == -1) {
      if (inferred_axis != -1) {
        throw std::invalid_argument("reshaped: at most one -1 extent");
      }
      inferred_axis = static_cast<std::int64_t>(a);
    } else {
      if (new_shape[a] <= 0) {
        throw std::invalid_argument("reshaped: extents must be positive");
      }
      known *= new_shape[a];
    }
  }
  if (inferred_axis >= 0) {
    if (known == 0 || size % known != 0) {
      throw std::invalid_argument("reshaped: cannot infer -1 extent");
    }
    new_shape[static_cast<std::size_t>(inferred_axis)] = size / known;
  }
  if (shape_numel(new_shape) != size) {
    throw std::invalid_argument("reshaped: element count mismatch");
  }
  return new_shape;
}

Tensor Tensor::reshaped(Shape new_shape) const& {
  Tensor out;
  out.shape_ = resolve_reshape_shape(std::move(new_shape), size());
  out.data_ = data_;
  return out;
}

Tensor Tensor::reshaped(Shape new_shape) && {
  Tensor out;
  out.shape_ = resolve_reshape_shape(std::move(new_shape), size());
  out.data_ = std::move(data_);
  shape_.clear();
  return out;
}

TensorView Tensor::view() { return TensorView(*this); }
ConstTensorView Tensor::view() const { return ConstTensorView(*this); }
ConstTensorView Tensor::cview() const { return ConstTensorView(*this); }

TensorView Tensor::slice(std::int64_t axis, std::int64_t begin,
                         std::int64_t end) {
  return view().slice(axis, begin, end);
}
ConstTensorView Tensor::slice(std::int64_t axis, std::int64_t begin,
                              std::int64_t end) const {
  return view().slice(axis, begin, end);
}

void Tensor::resize(const Shape& new_shape) {
  const std::int64_t n = shape_numel(new_shape);
  shape_.assign(new_shape.begin(), new_shape.end());
  data_.resize(static_cast<std::size_t>(n));
}

void Tensor::resize(std::span<const std::int64_t> new_shape) {
  std::int64_t n = 1;
  for (const std::int64_t e : new_shape) {
    if (e <= 0) throw std::invalid_argument("resize: extents must be positive");
    n *= e;
  }
  shape_.assign(new_shape.begin(), new_shape.end());
  data_.resize(static_cast<std::size_t>(n));
}

void Tensor::resize(std::initializer_list<std::int64_t> new_shape) {
  std::int64_t n = 1;
  for (const std::int64_t e : new_shape) {
    if (e <= 0) throw std::invalid_argument("resize: extents must be positive");
    n *= e;
  }
  shape_.assign(new_shape.begin(), new_shape.end());
  data_.resize(static_cast<std::size_t>(n));
}

void Tensor::fill(float v) noexcept {
  std::fill(data_.begin(), data_.end(), v);
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  check_same_shape(*this, rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  check_same_shape(*this, rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& rhs) {
  check_same_shape(*this, rhs, "operator*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator+=(float rhs) noexcept {
  for (auto& v : data_) v += rhs;
  return *this;
}

Tensor& Tensor::operator*=(float rhs) noexcept {
  for (auto& v : data_) v *= rhs;
  return *this;
}

void Tensor::axpy(float alpha, const Tensor& rhs) {
  check_same_shape(*this, rhs, "axpy");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * rhs.data_[i];
  }
}

float Tensor::sum() const noexcept {
  // Kahan summation: activation/gradient buffers can hold millions of
  // similarly-signed values, where naive accumulation loses precision.
  double s = 0.0;
  for (const auto v : data_) s += static_cast<double>(v);
  return static_cast<float>(s);
}

float Tensor::mean() const noexcept {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("Tensor::min on empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("Tensor::max on empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::int64_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("Tensor::argmax on empty tensor");
  return std::distance(data_.begin(),
                       std::max_element(data_.begin(), data_.end()));
}

float Tensor::l2_norm() const noexcept {
  double s = 0.0;
  for (const auto v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t a = 0; a < shape_.size(); ++a) {
    if (a) os << ", ";
    os << shape_[a];
  }
  os << ']';
  return os.str();
}

bool Tensor::equals(const Tensor& other) const noexcept {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::allclose(const Tensor& other, float tol) const noexcept {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace sne
