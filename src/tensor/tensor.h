// tensor.h — dense row-major float32 tensor used throughout the neural
// network library and the image simulator. Value-semantic: copying a Tensor
// deep-copies its buffer, which keeps ownership trivial to reason about
// (the network layers hold their parameters and activation caches by value).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace sne {

/// Shape of a tensor; at most 4 axes are used in practice (NCHW).
using Shape = std::vector<std::int64_t>;

class TensorView;
class ConstTensorView;

/// Dense row-major float tensor.
class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. Every extent must be > 0.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor wrapping a copy of existing data; data.size() must equal the
  /// product of extents.
  Tensor(Shape shape, std::vector<float> data);

  /// 1-d tensor from an initializer list (convenience for tests).
  static Tensor from(std::initializer_list<float> values);

  /// Factory: elements drawn i.i.d. from N(mean, stddev).
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);

  /// Factory: elements drawn i.i.d. from U[lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);

  const Shape& shape() const noexcept { return shape_; }
  std::int64_t rank() const noexcept {
    return static_cast<std::int64_t>(shape_.size());
  }
  std::int64_t extent(std::int64_t axis) const;
  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> flat() noexcept { return data_; }
  std::span<const float> flat() const noexcept { return data_; }

  /// Flat element access (bounds-checked in debug builds only).
  float& operator[](std::int64_t i) noexcept { return data_[i]; }
  float operator[](std::int64_t i) const noexcept { return data_[i]; }

  /// Multi-axis access; rank must match the number of indices.
  float& at(std::int64_t i0);
  float& at(std::int64_t i0, std::int64_t i1);
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2);
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
            std::int64_t i3);
  float at(std::int64_t i0) const;
  float at(std::int64_t i0, std::int64_t i1) const;
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const;
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
           std::int64_t i3) const;

  /// Returns a tensor with the same data and a new shape; element counts
  /// must match. A -1 extent is inferred from the remaining extents.
  /// The rvalue overload moves the buffer instead of deep-copying it, so
  /// `std::move(t).reshaped(...)` is free — used when feeding an owned
  /// sample into a model as a batch of one, and at the conv→FC flatten
  /// boundary of the inference path.
  Tensor reshaped(Shape new_shape) const&;
  Tensor reshaped(Shape new_shape) &&;

  /// Non-owning views over this tensor's buffer (tensor/view.h). A view
  /// is invalidated by anything that can reallocate or retag the buffer:
  /// resize, assignment, move-from, destruction.
  TensorView view();
  ConstTensorView view() const;
  /// Explicitly-const spelling for use on mutable tensors.
  ConstTensorView cview() const;

  /// Convenience: view().slice(axis, begin, end).
  TensorView slice(std::int64_t axis, std::int64_t begin, std::int64_t end);
  ConstTensorView slice(std::int64_t axis, std::int64_t begin,
                        std::int64_t end) const;

  /// In-place reshape/resize: sets the shape and grows or shrinks the
  /// buffer to match. Existing capacity is reused, so repeated resizes to
  /// shapes that fit do not allocate — the contract the inference arena
  /// relies on. When the element count is unchanged the data is preserved
  /// (a pure reshape); grown elements are zero-initialized.
  void resize(const Shape& new_shape);
  void resize(std::initializer_list<std::int64_t> new_shape);
  /// Span overload so `out.resize(view.shape())` works; reuses the shape
  /// vector's capacity, so same-rank resizes stay allocation-free.
  void resize(std::span<const std::int64_t> new_shape);

  /// In-place fills.
  void fill(float v) noexcept;
  void zero() noexcept { fill(0.0f); }

  // ---- elementwise arithmetic (shapes must match exactly) ----
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(const Tensor& rhs);
  Tensor& operator+=(float rhs) noexcept;
  Tensor& operator*=(float rhs) noexcept;
  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
  friend Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
  friend Tensor operator*(Tensor lhs, float rhs) { return lhs *= rhs; }
  friend Tensor operator*(float lhs, Tensor rhs) { return rhs *= lhs; }

  /// out += alpha * rhs (fused multiply-accumulate over the buffer).
  void axpy(float alpha, const Tensor& rhs);

  // ---- reductions ----
  float sum() const noexcept;
  float mean() const noexcept;
  float min() const;
  float max() const;
  /// Index of the maximum element (first on ties). Requires size() > 0.
  std::int64_t argmax() const;
  /// Square root of the sum of squared elements.
  float l2_norm() const noexcept;

  /// Human-readable "[2, 3, 4]" shape string for error messages and logs.
  std::string shape_string() const;

  /// True when both shape and every element match exactly.
  bool equals(const Tensor& other) const noexcept;

  /// True when shapes match and elements agree within `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const noexcept;

 private:
  std::int64_t flat_index(std::span<const std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Throws std::invalid_argument with a descriptive message when the two
/// shapes differ. Used by the arithmetic operators and the nn library.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);

/// Product of extents; validates that every extent is positive.
std::int64_t shape_numel(const Shape& shape);

/// Resolves a requested reshape target against an element count: at most
/// one -1 extent is inferred from the rest, and the resolved shape's
/// element count must equal `size`. Shared by Tensor::reshaped and
/// TensorView::reshaped.
Shape resolve_reshape_shape(Shape new_shape, std::int64_t size);

}  // namespace sne
