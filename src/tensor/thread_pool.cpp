#include "tensor/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "tensor/runtime.h"

namespace sne {

namespace {

// Set while a thread is executing pool work; nested parallel regions run
// inline on the worker that encounters them instead of re-entering the
// pool (which would deadlock the region they are part of).
thread_local bool tls_in_parallel_region = false;

// Pool telemetry: jobs submitted to the pool and the summed time every
// participating thread (workers + caller) spent draining them. Idle time
// of a worker over a window is width × wall − busy. Counters only move
// while obs::enabled(), so the disabled hot path stays a branch.
obs::Counter& pool_jobs_counter() {
  static obs::Counter& c = obs::counter("pool.jobs");
  return c;
}

obs::Counter& pool_busy_counter() {
  static obs::Counter& c = obs::counter("pool.busy_ns");
  return c;
}

int default_num_threads() {
  // SNE_NUM_THREADS arrives through the unified RuntimeConfig surface.
  const int configured = RuntimeConfig::current().threads;
  if (configured >= 1) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// One parallel_for invocation. Heap-allocated and shared_ptr-owned so a
// worker that wakes late — or is still draining when the next job is
// submitted — only ever sees one internally consistent job: its cursor is
// exhausted, so it exits without touching the new job's state. (A previous
// design kept the job fields inline in the pool; a straggler could then
// observe the cursor reset for job N+1 while still holding job N's
// function pointer — a use-after-free.)
struct Job {
  std::function<void(std::int64_t)> fn;  // index-shifted body
  std::int64_t end = 0;
  std::atomic<std::int64_t> cursor{0};
  std::atomic<std::int64_t> remaining{0};  // indices whose fn hasn't returned
  std::mutex error_mutex;
  std::exception_ptr first_error;
};

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable wake;      // signals workers: new job or shutdown
  std::condition_variable finished;  // signals the caller: job complete

  std::mutex submit_mutex;  // serializes whole jobs from external callers
  std::shared_ptr<Job> current_job;
  std::uint64_t job_id = 0;  // generation counter workers wait on
  bool shutting_down = false;

  // Claims and runs indices until the job's range is exhausted. Indices
  // drain through an atomic cursor so load imbalance self-corrects;
  // `remaining` reaches zero only after every index has fully executed,
  // and that transition releases the caller.
  void drain(Job& job) {
    tls_in_parallel_region = true;
    const bool timed = obs::enabled();
    const std::int64_t t0 = timed ? obs::now_ns() : 0;
    for (;;) {
      const std::int64_t i =
          job.cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.end) break;
      try {
        job.fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.first_error) job.first_error = std::current_exception();
      }
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last index done; wake the caller if it is already waiting.
        std::lock_guard<std::mutex> lock(mutex);
        finished.notify_all();
      }
    }
    if (timed) pool_busy_counter().add(obs::now_ns() - t0);
    tls_in_parallel_region = false;
  }

  void worker_loop() {
    std::uint64_t seen_job = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return shutting_down || job_id != seen_job; });
        if (shutting_down) return;
        seen_job = job_id;
        job = current_job;
      }
      if (job) drain(*job);
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutting_down = true;
    }
    wake.notify_all();
    for (std::thread& t : workers) t.join();
    workers.clear();
    shutting_down = false;
  }

  void start_workers(int count) {
    for (int i = 1; i < count; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) {
  num_threads_ = default_num_threads();
  impl_->start_workers(num_threads_);
}

ThreadPool::~ThreadPool() {
  impl_->stop_workers();
  delete impl_;
}

void ThreadPool::set_num_threads(int n) {
  if (n <= 0) n = default_num_threads();
  if (n == num_threads_) return;
  impl_->stop_workers();
  num_threads_ = n;
  impl_->start_workers(num_threads_);
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn) {
  if (begin >= end) return;
  const std::int64_t count = end - begin;
  // Serial fast paths: a 1-wide pool, a single index, or a nested region.
  if (num_threads_ == 1 || count == 1 || tls_in_parallel_region) {
    const bool was_nested = tls_in_parallel_region;
    tls_in_parallel_region = true;
    std::exception_ptr error;
    for (std::int64_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    tls_in_parallel_region = was_nested;
    if (error) std::rethrow_exception(error);
    return;
  }

  // One job at a time: a second external caller waits for the first job
  // to finish rather than interleaving with its state.
  std::lock_guard<std::mutex> submit_lock(impl_->submit_mutex);
  pool_jobs_counter().add(1);

  auto job = std::make_shared<Job>();
  // The job's cursor runs over [0, count); the wrapper adds `begin` back.
  job->fn = [&fn, begin](std::int64_t i) { fn(begin + i); };
  job->end = count;
  job->remaining.store(count, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->current_job = job;
    ++impl_->job_id;
  }
  impl_->wake.notify_all();

  // The caller drains alongside the workers, then waits for stragglers
  // still inside an index they claimed.
  impl_->drain(*job);
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->finished.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    impl_->current_job.reset();
  }
  if (job->first_error) std::rethrow_exception(job->first_error);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, fn);
}

int num_threads() { return ThreadPool::instance().num_threads(); }

void set_num_threads(int n) { ThreadPool::instance().set_num_threads(n); }

}  // namespace sne
