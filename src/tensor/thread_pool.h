// thread_pool.h — the process-wide worker pool behind every parallel hot
// path (GEMM row panels, convolution batches, batch-norm channels, batched
// stamp rendering). One pool is shared by the whole process; its size is
// taken from SNE_NUM_THREADS at first use (default: hardware_concurrency)
// and can be changed at runtime with set_num_threads().
//
// Determinism contract: parallel_for only distributes *which thread* runs
// each index — callers keep all writes disjoint per index, or accumulate
// into per-index scratch that is reduced on the calling thread in fixed
// index order. Under that discipline results are bitwise identical for any
// thread count, which the test suite asserts (1 thread vs 4 threads).
#pragma once

#include <cstdint>
#include <functional>

namespace sne {

class ThreadPool {
 public:
  /// The shared process-wide pool. Created on first use.
  static ThreadPool& instance();

  /// Number of threads the pool currently uses (≥ 1; includes the caller,
  /// which participates in every parallel region).
  int num_threads() const noexcept { return num_threads_; }

  /// Resizes the pool. n ≤ 0 resets to the default (SNE_NUM_THREADS env
  /// var if set, else hardware_concurrency). Must not be called from
  /// inside a parallel region.
  void set_num_threads(int n);

  /// Runs fn(i) for every i in [begin, end), distributing indices across
  /// the pool, and blocks until all complete. The calling thread
  /// participates. Exceptions thrown by fn are captured and the first one
  /// (in completion order) is rethrown on the calling thread after the
  /// region finishes. Nested calls from inside a worker run inline
  /// (serially) to avoid deadlock.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn);

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  struct Impl;
  Impl* impl_;
  int num_threads_ = 1;
};

/// Convenience wrappers over ThreadPool::instance().

/// fn(i) for i in [begin, end), in parallel. See ThreadPool::parallel_for.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn);

/// Current pool width.
int num_threads();

/// Runtime override of the pool width (n ≤ 0 restores the default).
void set_num_threads(int n);

}  // namespace sne
