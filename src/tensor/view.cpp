#include "tensor/view.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace sne {

namespace {

using Extents = ConstTensorView::Extents;

// Everything below stays off the heap: views are built and copied on the
// zero-allocation inference and batch-stacking paths, so the helpers work
// on spans over the views' inline extent arrays.

// Dense row-major strides for `shape`, written into `out`.
void dense_strides(Extents shape, std::int64_t* out) {
  std::int64_t run = 1;
  for (std::size_t a = shape.size(); a-- > 0;) {
    out[a] = run;
    run *= shape[a];
  }
}

std::int64_t numel(Extents shape) {
  std::int64_t n = 1;
  for (const std::int64_t e : shape) n *= e;
  return n;
}

void check_extents(Extents shape) {
  if (shape.size() > static_cast<std::size_t>(ConstTensorView::kMaxRank)) {
    throw std::invalid_argument("TensorView: rank " +
                                std::to_string(shape.size()) +
                                " exceeds the view limit of " +
                                std::to_string(ConstTensorView::kMaxRank));
  }
  for (const std::int64_t e : shape) {
    if (e <= 0) {
      throw std::invalid_argument("TensorView: extents must be positive");
    }
  }
}

// Dense row-major check; axes of extent 1 contribute no layout freedom,
// so their strides are ignored (a [1, ...] row slice of a batch stays on
// the fast path).
bool compute_contiguous(Extents shape, Extents strides) {
  if (shape.size() != strides.size()) return false;
  std::int64_t expected = 1;
  for (std::size_t a = shape.size(); a-- > 0;) {
    if (shape[a] != 1 && strides[a] != expected) return false;
    expected *= shape[a];
  }
  return true;
}

std::int64_t strided_offset_1(Extents shape, Extents strides, std::int64_t i0,
                              const char* who) {
  if (shape.size() != 1) {
    throw std::invalid_argument(std::string(who) + ": rank-1 access on rank-" +
                                std::to_string(shape.size()) + " view");
  }
  if (i0 < 0 || i0 >= shape[0]) {
    throw std::out_of_range(std::string(who) + ": index out of range");
  }
  return i0 * strides[0];
}

std::int64_t strided_offset(Extents shape, Extents strides,
                            const std::int64_t* idx, std::size_t n,
                            const char* who) {
  if (shape.size() != n) {
    throw std::invalid_argument(std::string(who) + ": rank-" +
                                std::to_string(n) + " access on rank-" +
                                std::to_string(shape.size()) + " view");
  }
  std::int64_t off = 0;
  for (std::size_t a = 0; a < n; ++a) {
    if (idx[a] < 0 || idx[a] >= shape[a]) {
      throw std::out_of_range(std::string(who) + ": index out of range");
    }
    off += idx[a] * strides[a];
  }
  return off;
}

// Recursive strided gather/scatter; the trailing axis degrades to memcpy
// whenever both sides step by 1 there.
void copy_rec(const float* src, Extents src_strides, float* dst,
              Extents dst_strides, Extents shape, std::size_t axis) {
  if (axis + 1 == shape.size()) {
    const std::int64_t n = shape[axis];
    if (src_strides[axis] == 1 && dst_strides[axis] == 1) {
      std::memcpy(dst, src, static_cast<std::size_t>(n) * sizeof(float));
    } else {
      for (std::int64_t i = 0; i < n; ++i) {
        dst[i * dst_strides[axis]] = src[i * src_strides[axis]];
      }
    }
    return;
  }
  for (std::int64_t i = 0; i < shape[axis]; ++i) {
    copy_rec(src + i * src_strides[axis], src_strides,
             dst + i * dst_strides[axis], dst_strides, shape, axis + 1);
  }
}

void fill_rec(float* base, Extents shape, Extents strides, std::size_t axis,
              float v) {
  if (axis + 1 == shape.size()) {
    for (std::int64_t i = 0; i < shape[axis]; ++i) {
      base[i * strides[axis]] = v;
    }
    return;
  }
  for (std::int64_t i = 0; i < shape[axis]; ++i) {
    fill_rec(base + i * strides[axis], shape, strides, axis + 1, v);
  }
}

// Resolves a reshape request (at most one -1 extent inferred) against a
// fixed element count, writing the concrete extents into `out`. Returns
// the resolved rank. Allocation-free twin of resolve_reshape_shape.
std::size_t resolve_reshape(Extents request, std::int64_t size,
                            std::int64_t* out) {
  if (request.size() > static_cast<std::size_t>(ConstTensorView::kMaxRank)) {
    throw std::invalid_argument("reshaped: rank exceeds the view limit of " +
                                std::to_string(ConstTensorView::kMaxRank));
  }
  std::int64_t known = 1;
  std::size_t infer_axis = request.size();
  for (std::size_t a = 0; a < request.size(); ++a) {
    const std::int64_t e = request[a];
    if (e == -1) {
      if (infer_axis != request.size()) {
        throw std::invalid_argument("reshaped: more than one -1 extent");
      }
      infer_axis = a;
    } else if (e <= 0) {
      throw std::invalid_argument("reshaped: extents must be positive or -1");
    } else {
      known *= e;
    }
    out[a] = e;
  }
  if (infer_axis != request.size()) {
    if (known == 0 || size % known != 0) {
      throw std::invalid_argument("reshaped: cannot infer the -1 extent");
    }
    out[infer_axis] = size / known;
    known *= out[infer_axis];
  }
  if (known != size) {
    throw std::invalid_argument(
        "reshaped: element count mismatch (view holds " +
        std::to_string(size) + ", shape wants " + std::to_string(known) + ")");
  }
  return request.size();
}

}  // namespace

ConstTensorView::ConstTensorView(const float* data, Extents shape)
    : data_(data) {
  check_extents(shape);
  nrank_ = shape.size();
  std::copy(shape.begin(), shape.end(), shape_.begin());
  dense_strides(this->shape(), strides_.data());
  size_ = nrank_ == 0 ? 0 : numel(this->shape());
  contiguous_ = true;
}

ConstTensorView::ConstTensorView(const float* data,
                                 std::initializer_list<std::int64_t> shape)
    : ConstTensorView(data, Extents(shape.begin(), shape.size())) {}

ConstTensorView::ConstTensorView(const float* data, Extents shape,
                                 Extents strides)
    : data_(data) {
  check_extents(shape);
  if (shape.size() != strides.size()) {
    throw std::invalid_argument(
        "TensorView: shape and strides must have the same rank");
  }
  nrank_ = shape.size();
  std::copy(shape.begin(), shape.end(), shape_.begin());
  std::copy(strides.begin(), strides.end(), strides_.begin());
  size_ = nrank_ == 0 ? 0 : numel(this->shape());
  contiguous_ = compute_contiguous(this->shape(), this->strides());
}

std::int64_t ConstTensorView::extent(std::int64_t axis) const {
  if (axis < 0 || axis >= rank()) {
    throw std::out_of_range("extent: axis out of range");
  }
  return shape_[static_cast<std::size_t>(axis)];
}

const float* ConstTensorView::data() const {
  if (!contiguous_) {
    throw std::logic_error(
        "TensorView::data: view is not contiguous; use copy_to/at instead");
  }
  return data_;
}

float ConstTensorView::at(std::int64_t i0) const {
  return data_[strided_offset_1(shape(), strides(), i0, "at")];
}

float ConstTensorView::at(std::int64_t i0, std::int64_t i1) const {
  const std::int64_t idx[] = {i0, i1};
  return data_[strided_offset(shape(), strides(), idx, 2, "at")];
}

float ConstTensorView::at(std::int64_t i0, std::int64_t i1,
                          std::int64_t i2) const {
  const std::int64_t idx[] = {i0, i1, i2};
  return data_[strided_offset(shape(), strides(), idx, 3, "at")];
}

float ConstTensorView::at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                          std::int64_t i3) const {
  const std::int64_t idx[] = {i0, i1, i2, i3};
  return data_[strided_offset(shape(), strides(), idx, 4, "at")];
}

ConstTensorView ConstTensorView::slice(std::int64_t axis, std::int64_t begin,
                                       std::int64_t end) const {
  if (axis < 0 || axis >= rank()) {
    throw std::out_of_range("slice: axis out of range");
  }
  const auto a = static_cast<std::size_t>(axis);
  if (begin < 0 || end > shape_[a] || begin >= end) {
    throw std::out_of_range("slice: range [" + std::to_string(begin) + ", " +
                            std::to_string(end) + ") invalid for extent " +
                            std::to_string(shape_[a]));
  }
  ConstTensorView s(*this);
  s.data_ = data_ + begin * strides_[a];
  s.shape_[a] = end - begin;
  s.size_ = numel(s.shape());
  s.contiguous_ = compute_contiguous(s.shape(), s.strides());
  return s;
}

ConstTensorView ConstTensorView::reshaped(Extents new_shape) const {
  if (!contiguous_) {
    throw std::logic_error("reshaped: view is not contiguous");
  }
  ConstTensorView s;
  s.data_ = data_;
  s.nrank_ = resolve_reshape(new_shape, size_, s.shape_.data());
  dense_strides(s.shape(), s.strides_.data());
  s.size_ = size_;
  s.contiguous_ = true;
  return s;
}

void ConstTensorView::copy_to(float* dst) const {
  if (empty()) return;
  if (contiguous_) {
    std::memcpy(dst, data_, static_cast<std::size_t>(size_) * sizeof(float));
    return;
  }
  // Gather: the destination is dense row-major over this view's shape.
  std::array<std::int64_t, kMaxRank> dst_strides;
  dense_strides(shape(), dst_strides.data());
  copy_rec(data_, strides(), dst, Extents(dst_strides.data(), nrank_), shape(),
           0);
}

void ConstTensorView::copy_to(Tensor& dst) const {
  dst.resize(shape());
  copy_to(dst.data());
}

Tensor ConstTensorView::to_tensor() const {
  Tensor t(Shape(shape().begin(), shape().end()));
  copy_to(t.data());
  return t;
}

std::string ConstTensorView::shape_string() const {
  std::string s = "[";
  for (std::size_t a = 0; a < nrank_; ++a) {
    if (a != 0) s += ", ";
    s += std::to_string(shape_[a]);
  }
  return s + "]";
}

float& TensorView::at(std::int64_t i0) const {
  return const_cast<float*>(
      data_)[strided_offset_1(shape(), strides(), i0, "at")];
}

float& TensorView::at(std::int64_t i0, std::int64_t i1) const {
  const std::int64_t idx[] = {i0, i1};
  return const_cast<float*>(
      data_)[strided_offset(shape(), strides(), idx, 2, "at")];
}

float& TensorView::at(std::int64_t i0, std::int64_t i1,
                      std::int64_t i2) const {
  const std::int64_t idx[] = {i0, i1, i2};
  return const_cast<float*>(
      data_)[strided_offset(shape(), strides(), idx, 3, "at")];
}

float& TensorView::at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                      std::int64_t i3) const {
  const std::int64_t idx[] = {i0, i1, i2, i3};
  return const_cast<float*>(
      data_)[strided_offset(shape(), strides(), idx, 4, "at")];
}

TensorView TensorView::slice(std::int64_t axis, std::int64_t begin,
                             std::int64_t end) const {
  const ConstTensorView s = ConstTensorView::slice(axis, begin, end);
  return TensorView(const_cast<float*>(raw(s)), s.shape(), s.strides());
}

TensorView TensorView::reshaped(Extents new_shape) const {
  const ConstTensorView s = ConstTensorView::reshaped(new_shape);
  return TensorView(const_cast<float*>(raw(s)), s.shape(), s.strides());
}

void TensorView::copy_from(ConstTensorView src) const {
  // Exact shape match — copy_from is assignment between equal windows, not
  // a broadcast; reshape explicitly when staging a sample into a batch row.
  const Extents a = shape();
  const Extents b = src.shape();
  if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
    throw std::invalid_argument("copy_from: shape mismatch (" +
                                src.shape_string() + " into " +
                                shape_string() + ")");
  }
  if (empty()) return;
  float* dst = const_cast<float*>(data_);
  if (is_contiguous() && src.is_contiguous()) {
    std::memcpy(dst, raw(src),
                static_cast<std::size_t>(size()) * sizeof(float));
    return;
  }
  copy_rec(raw(src), src.strides(), dst, strides(), shape(), 0);
}

void TensorView::fill(float v) const {
  if (empty()) return;
  fill_rec(const_cast<float*>(data_), shape(), strides(), 0, v);
}

}  // namespace sne
