// view.h — non-owning shape+stride views over Tensor storage. A view is a
// borrowed window into someone else's buffer: slicing, reshaping, and
// batch-row stacking become pointer arithmetic instead of memcpy. Views
// never allocate and never own; the underlying buffer must outlive every
// view of it, and any operation that reallocates or resizes the parent
// Tensor (resize, assignment, move-from, destruction) invalidates all
// views into it. See docs/API.md ("View semantics") for the full rules.
//
// Views are allocation-free by construction: shape and strides live in
// fixed inline arrays (rank ≤ kMaxRank), exposed as std::span — so the
// serving arena and the batch stacking path can mint views per step
// without touching the allocator (the zero-alloc inference pins count
// every operator new).
//
// Contiguity is the fast-path contract: data() and the flat operator[]
// require a contiguous (dense row-major) layout and data() throws when the
// view is strided, so a kernel that grabs the raw pointer can never read a
// strided view as if it were dense. Strided views are accessed through
// at()/copy_to()/copy_from(), whose inner loops degrade to per-row memcpy
// whenever the trailing axes are dense.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

#include "tensor/tensor.h"

namespace sne {

/// Read-only view. Implicitly constructible from a (const) Tensor, so any
/// API taking a ConstTensorView accepts a Tensor with zero ceremony and
/// zero copies.
class ConstTensorView {
 public:
  /// Maximum rank a view can carry (NCHW plus headroom).
  static constexpr std::int64_t kMaxRank = 6;

  /// Lightweight extents reference; a Shape (std::vector) converts
  /// implicitly, as does an inline array.
  using Extents = std::span<const std::int64_t>;

  /// Empty view (rank 0, no elements, null data).
  ConstTensorView() = default;

  /// Contiguous view over a whole tensor.
  ConstTensorView(const Tensor& t)  // NOLINT(runtime/explicit): by design
      : ConstTensorView(t.data(), t.shape()) {}

  /// Contiguous view over `data` with the given shape (dense row-major
  /// strides are derived). `data` must hold the product of extents.
  ConstTensorView(const float* data, Extents shape);
  ConstTensorView(const float* data,
                  std::initializer_list<std::int64_t> shape);

  /// Fully general strided view. `strides` are in elements and must have
  /// the same rank as `shape`.
  ConstTensorView(const float* data, Extents shape, Extents strides);

  Extents shape() const noexcept { return {shape_.data(), nrank_}; }
  Extents strides() const noexcept { return {strides_.data(), nrank_}; }
  std::int64_t rank() const noexcept {
    return static_cast<std::int64_t>(nrank_);
  }
  std::int64_t extent(std::int64_t axis) const;
  /// Logical element count (product of extents; 0 for the empty view).
  std::int64_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// True when the elements are dense row-major over [base, base+size).
  /// Axes of extent 1 are layout-neutral and ignored by the check.
  bool is_contiguous() const noexcept { return contiguous_; }

  /// Raw pointer to the dense element run. Throws std::logic_error when
  /// the view is strided — the guard that keeps flat-pointer kernels from
  /// silently misreading sliced data.
  const float* data() const;

  /// Flat element access. Only meaningful on contiguous views (unchecked,
  /// like Tensor::operator[]); kernels should prefer data(), which does
  /// enforce contiguity.
  float operator[](std::int64_t i) const noexcept { return data_[i]; }

  /// Multi-axis strided access; rank must match, indices bounds-checked.
  float at(std::int64_t i0) const;
  float at(std::int64_t i0, std::int64_t i1) const;
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const;
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
           std::int64_t i3) const;

  /// Sub-view of rows [begin, end) along `axis`; shape and offset change,
  /// strides do not. Throws std::out_of_range on a bad axis or range.
  ConstTensorView slice(std::int64_t axis, std::int64_t begin,
                        std::int64_t end) const;

  /// Same elements, new shape (one -1 extent is inferred). Requires a
  /// contiguous view — a reshape of strided data would need a gather.
  ConstTensorView reshaped(Extents new_shape) const;
  ConstTensorView reshaped(std::initializer_list<std::int64_t> s) const {
    return reshaped(Extents(s.begin(), s.size()));
  }

  /// Gathers the elements into dense row-major order at `dst` (which must
  /// hold size() floats). Contiguous views are a single memcpy.
  void copy_to(float* dst) const;

  /// Resizes `dst` to this view's shape and gathers into it. Reuses
  /// dst's capacity, so a warm destination makes this allocation-free.
  void copy_to(Tensor& dst) const;

  /// Materializes an owning Tensor with this view's shape and data.
  Tensor to_tensor() const;

  std::string shape_string() const;

 protected:
  /// Raw base pointer of any view regardless of layout — for the copy
  /// machinery, which walks strides itself. Static so derived classes can
  /// reach the base pointer of views other than *this.
  static const float* raw(const ConstTensorView& v) noexcept {
    return v.data_;
  }

  const float* data_ = nullptr;
  std::array<std::int64_t, kMaxRank> shape_{};
  std::array<std::int64_t, kMaxRank> strides_{};
  std::size_t nrank_ = 0;
  std::int64_t size_ = 0;
  bool contiguous_ = true;
};

/// Mutable view; everything ConstTensorView offers plus write access.
/// Converts implicitly to ConstTensorView (by slicing the base class),
/// so mutable views flow into read-only APIs for free.
class TensorView : public ConstTensorView {
 public:
  TensorView() = default;

  /// Contiguous view over a whole (mutable) tensor.
  TensorView(Tensor& t)  // NOLINT(runtime/explicit): by design
      : ConstTensorView(t.data(), t.shape()) {}

  TensorView(float* data, Extents shape) : ConstTensorView(data, shape) {}
  TensorView(float* data, std::initializer_list<std::int64_t> shape)
      : ConstTensorView(data, shape) {}
  TensorView(float* data, Extents shape, Extents strides)
      : ConstTensorView(data, shape, strides) {}

  /// Mutable raw pointer; throws std::logic_error when strided. The
  /// const_cast is sound: every TensorView constructor takes float*.
  float* data() const { return const_cast<float*>(ConstTensorView::data()); }

  float& operator[](std::int64_t i) const noexcept {
    return const_cast<float*>(data_)[i];
  }

  float& at(std::int64_t i0) const;
  float& at(std::int64_t i0, std::int64_t i1) const;
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const;
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
            std::int64_t i3) const;

  TensorView slice(std::int64_t axis, std::int64_t begin,
                   std::int64_t end) const;
  TensorView reshaped(Extents new_shape) const;
  TensorView reshaped(std::initializer_list<std::int64_t> s) const {
    return reshaped(Extents(s.begin(), s.size()));
  }

  /// Scatters `src` (shape must match exactly) into this view. Both sides
  /// contiguous is a single memcpy — the get_batch stacking fast path.
  void copy_from(ConstTensorView src) const;

  void fill(float v) const;
};

}  // namespace sne
