// astro_test.cpp — photometry conversions, cosmological distances,
// light-curve template physics, and population priors.
#include <gtest/gtest.h>

#include <cmath>

#include "astro/cosmology.h"
#include "astro/lightcurve.h"
#include "astro/photometry.h"
#include "astro/priors.h"

namespace sne::astro {
namespace {

TEST(Photometry, MagFluxRoundTrip) {
  for (const double mag : {18.0, 22.5, 27.0, 31.0}) {
    EXPECT_NEAR(mag_from_flux(flux_from_mag(mag)), mag, 1e-12);
  }
}

TEST(Photometry, ZeroPointConvention) {
  // mag = 27 ⇔ flux = 1 (the paper's zero point).
  EXPECT_NEAR(flux_from_mag(27.0), 1.0, 1e-12);
  EXPECT_NEAR(mag_from_flux(1.0), 27.0, 1e-12);
  // 2.5 mag brighter = ×10 flux.
  EXPECT_NEAR(flux_from_mag(24.5), 10.0, 1e-10);
}

TEST(Photometry, MagRejectsNonPositiveFlux) {
  EXPECT_THROW(mag_from_flux(0.0), std::domain_error);
  EXPECT_THROW(mag_from_flux(-3.0), std::domain_error);
}

TEST(Photometry, SignedLogOddAndInvertible) {
  for (const double x : {-500.0, -1.0, -0.1, 0.0, 0.1, 1.0, 500.0}) {
    EXPECT_NEAR(signed_log(-x), -signed_log(x), 1e-12);
    EXPECT_NEAR(signed_log_inverse(signed_log(x)), x,
                1e-9 * std::max(1.0, std::abs(x)));
  }
  EXPECT_EQ(signed_log(0.0), 0.0);
  EXPECT_NEAR(signed_log(9.0), 1.0, 1e-12);
}

TEST(Photometry, SignedLogMonotone) {
  double prev = signed_log(-100.0);
  for (double x = -99.0; x <= 100.0; x += 1.0) {
    const double cur = signed_log(x);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Cosmology, KnownDistanceModuli) {
  const Cosmology cosmo;  // H0=70, Om=0.3
  // Reference values from standard astropy FlatLambdaCDM(H0=70, Om0=0.3).
  EXPECT_NEAR(cosmo.distance_modulus(0.1), 38.31, 0.05);
  EXPECT_NEAR(cosmo.distance_modulus(0.5), 42.27, 0.05);
  EXPECT_NEAR(cosmo.distance_modulus(1.0), 44.10, 0.05);
  EXPECT_NEAR(cosmo.distance_modulus(2.0), 45.95, 0.05);
}

TEST(Cosmology, DistancesMonotoneInRedshift) {
  const Cosmology cosmo;
  double prev = 0.0;
  for (double z = 0.05; z <= 2.0; z += 0.05) {
    const double d = cosmo.luminosity_distance_mpc(z);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Cosmology, RejectsBadInputs) {
  EXPECT_THROW(Cosmology(-70.0, 0.3), std::invalid_argument);
  EXPECT_THROW(Cosmology(70.0, 1.5), std::invalid_argument);
  const Cosmology cosmo;
  EXPECT_THROW(cosmo.comoving_distance_mpc(-0.1), std::domain_error);
}

// ---- light-curve templates ----

class TemplatePeak : public ::testing::TestWithParam<SnType> {};

TEST_P(TemplatePeak, NormalizedAtPeakRestB) {
  const SnType type = GetParam();
  const double peak = template_relative_flux(type, 0.0, 440.0);
  EXPECT_NEAR(peak, 1.0, 0.05);
  // Away from peak the template is fainter (long after, much fainter).
  EXPECT_LT(template_relative_flux(type, 150.0, 440.0), peak);
}

TEST_P(TemplatePeak, ZeroBeforeExplosion) {
  EXPECT_EQ(template_relative_flux(GetParam(), -60.0, 440.0), 0.0);
}

TEST_P(TemplatePeak, NonNegativeEverywhere) {
  for (double p = -40.0; p < 200.0; p += 3.0) {
    for (double wl = 150.0; wl <= 1000.0; wl += 100.0) {
      EXPECT_GE(template_relative_flux(GetParam(), p, wl), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, TemplatePeak,
                         ::testing::ValuesIn(kAllSnTypes),
                         [](const auto& info) {
                           return std::string(sn_type_name(info.param));
                         });

TEST(Templates, IaDeclinesFasterThanIIn) {
  const double ia_30 = template_relative_flux(SnType::Ia, 30.0, 440.0);
  const double iin_30 = template_relative_flux(SnType::IIn, 30.0, 440.0);
  EXPECT_LT(ia_30, iin_30);
}

TEST(Templates, IaSecondaryBumpOnlyRedward) {
  // The NIR secondary maximum: in z band the +25 d flux should exceed a
  // smooth Bazin decline; compare to the blue band's ratio.
  const double z_ratio = template_relative_flux(SnType::Ia, 25.0, 900.0) /
                         template_relative_flux(SnType::Ia, 10.0, 900.0);
  const double g_ratio = template_relative_flux(SnType::Ia, 25.0, 450.0) /
                         template_relative_flux(SnType::Ia, 10.0, 450.0);
  EXPECT_GT(z_ratio, g_ratio);
}

TEST(Templates, IaUvSuppressed) {
  // Rest-frame 200 nm (observer g at z ≈ 1.4) is strongly suppressed.
  const double uv = template_relative_flux(SnType::Ia, 0.0, 200.0);
  const double optical = template_relative_flux(SnType::Ia, 0.0, 440.0);
  EXPECT_LT(uv, 0.05 * optical);
}

TEST(Templates, IIPHasPlateau) {
  // Flux at +30 d and +70 d should be within ~0.4 mag of each other
  // (the plateau), then drop steeply by +120 d.
  const double f30 = template_relative_flux(SnType::IIP, 30.0, 620.0);
  const double f70 = template_relative_flux(SnType::IIP, 70.0, 620.0);
  const double f120 = template_relative_flux(SnType::IIP, 120.0, 620.0);
  EXPECT_LT(std::abs(-2.5 * std::log10(f70 / f30)), 0.45);
  EXPECT_GT(-2.5 * std::log10(f120 / f70), 1.0);
}

TEST(Templates, IILLinearDecline) {
  // Magnitude decline should be ~0.045 mag/day after peak.
  const double f0 = template_relative_flux(SnType::IIL, 10.0, 620.0);
  const double f1 = template_relative_flux(SnType::IIL, 11.0, 620.0);
  EXPECT_NEAR(-2.5 * std::log10(f1 / f0), 0.045, 1e-3);
}

TEST(ColorLaw, NormalizedAtRestB) {
  EXPECT_NEAR(color_law(440.0), 0.0, 1e-12);
  EXPECT_GT(color_law(370.0), 0.0);   // UV: positive (redder = fainter)
  EXPECT_LT(color_law(800.0), 0.0);   // NIR: negative
}

// ---- observer-frame light curves ----

TEST(LightCurve, PeakApparentMagnitudeMatchesDistanceModulus) {
  const Cosmology cosmo;
  SnParams p;
  p.type = SnType::Ia;
  p.redshift = 0.5;
  p.peak_mjd = 30.0;
  p.peak_abs_mag = -19.3;
  p.color = 0.0;
  const LightCurve lc(p, cosmo);
  // Observer r band at z = 0.5 is rest ~413 nm ≈ rest B: the apparent
  // peak magnitude should be close to M + μ.
  const double expected = -19.3 + cosmo.distance_modulus(0.5);
  const double peak_date = lc.peak_mjd_in_band(Band::r);
  EXPECT_NEAR(lc.magnitude(Band::r, peak_date), expected, 0.3);
}

TEST(LightCurve, TimeDilationStretchesObservedCurve) {
  const Cosmology cosmo;
  SnParams lo = {SnType::Ia, 0.2, 1.0, 0.0, 0.0, -19.3};
  SnParams hi = {SnType::Ia, 1.2, 1.0, 0.0, 0.0, -19.3};
  const LightCurve lc_lo(lo, cosmo);
  const LightCurve lc_hi(hi, cosmo);
  // Normalized decline after 20 observer days is slower at high z.
  const double drop_lo =
      lc_lo.flux(Band::i, 20.0) / lc_lo.flux(Band::i, 0.0);
  const double drop_hi =
      lc_hi.flux(Band::i, 20.0) / lc_hi.flux(Band::i, 0.0);
  EXPECT_LT(drop_lo, drop_hi);
}

TEST(LightCurve, StretchSlowsIaDecline) {
  const Cosmology cosmo;
  SnParams narrow = {SnType::Ia, 0.5, 0.8, 0.0, 0.0, -19.3};
  SnParams wide = {SnType::Ia, 0.5, 1.3, 0.0, 0.0, -19.3};
  const LightCurve lc_n(narrow, cosmo);
  const LightCurve lc_w(wide, cosmo);
  const double r_n = lc_n.flux(Band::r, 25.0) / lc_n.flux(Band::r, 0.0);
  const double r_w = lc_w.flux(Band::r, 25.0) / lc_w.flux(Band::r, 0.0);
  EXPECT_LT(r_n, r_w);
}

TEST(LightCurve, PositiveColorDimsBlueBands) {
  const Cosmology cosmo;
  SnParams neutral = {SnType::Ia, 0.3, 1.0, 0.0, 10.0, -19.3};
  SnParams red = {SnType::Ia, 0.3, 1.0, 0.3, 10.0, -19.3};
  const LightCurve lc_neutral(neutral, cosmo);
  const LightCurve lc_red(red, cosmo);
  // g band (rest ~369 nm at z=0.3): red SN is fainter.
  EXPECT_LT(lc_red.flux(Band::g, 10.0), lc_neutral.flux(Band::g, 10.0));
  // y band (rest ~769 nm): color law is negative, so red SN is brighter.
  EXPECT_GT(lc_red.flux(Band::y, 10.0), lc_neutral.flux(Band::y, 10.0));
}

TEST(LightCurve, MagnitudeClampsAtFaintLimit) {
  const Cosmology cosmo;
  SnParams p = {SnType::Ia, 0.5, 1.0, 0.0, 100.0, -19.3};
  const LightCurve lc(p, cosmo);
  // Long before explosion: flux 0 → clamped magnitude.
  EXPECT_DOUBLE_EQ(lc.magnitude(Band::g, 0.0, 35.0), 35.0);
  EXPECT_EQ(lc.flux(Band::g, 0.0), 0.0);
}

TEST(LightCurve, RejectsBadParams) {
  const Cosmology cosmo;
  SnParams p;
  p.redshift = 0.0;
  EXPECT_THROW(LightCurve(p, cosmo), std::invalid_argument);
  p.redshift = 0.5;
  p.stretch = 0.0;
  EXPECT_THROW(LightCurve(p, cosmo), std::invalid_argument);
}

// ---- priors ----

TEST(Priors, IaParametersWithinPhysicalRanges) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const SnParams p = sample_sn_params(SnType::Ia, 0.6, 0.0, 60.0, rng);
    EXPECT_GE(p.stretch, 0.6);
    EXPECT_LE(p.stretch, 1.4);
    EXPECT_GE(p.color, -0.3);
    EXPECT_LE(p.color, 0.5);
    EXPECT_GE(p.peak_mjd, 0.0);
    EXPECT_LE(p.peak_mjd, 60.0);
    EXPECT_NEAR(p.peak_abs_mag, -19.3, 2.0);
  }
}

TEST(Priors, IaScatterIsSmall) {
  Rng rng(2);
  double s = 0.0, s2 = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const SnParams p = sample_sn_params(SnType::Ia, 0.6, 0.0, 60.0, rng);
    s += p.peak_abs_mag;
    s2 += p.peak_abs_mag * p.peak_abs_mag;
  }
  const double mean = s / n;
  const double sd = std::sqrt(s2 / n - mean * mean);
  EXPECT_NEAR(mean, -19.36, 0.1);
  // Tripp-corrected scatter: α·σ_x1 ⊕ β·σ_c ⊕ σ_int ≈ 0.36 mag.
  EXPECT_LT(sd, 0.6);
  EXPECT_GT(sd, 0.15);
}

TEST(Priors, CoreCollapseFainterThanIaOnAverage) {
  Rng rng(3);
  double ia = 0.0, cc = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ia += sample_sn_params(SnType::Ia, 0.6, 0.0, 60.0, rng).peak_abs_mag;
    cc += sample_sn_params(SnType::IIP, 0.6, 0.0, 60.0, rng).peak_abs_mag;
  }
  EXPECT_LT(ia / n, cc / n);  // more negative = brighter
}

TEST(Priors, TypeSamplerBalanced) {
  Rng rng(4);
  int n_ia = 0;
  const int n = 10000;
  std::array<int, 6> counts{};
  for (int i = 0; i < n; ++i) {
    const SnType t = sample_sn_type(rng, 0.5);
    if (is_type_ia(t)) ++n_ia;
    ++counts[static_cast<std::size_t>(t)];
  }
  EXPECT_NEAR(static_cast<double>(n_ia) / n, 0.5, 0.02);
  // The five CC types should be roughly uniform among non-Ia draws.
  for (const SnType t : kNonIaTypes) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(t)] / (n * 0.5), 0.2, 0.03);
  }
}

TEST(Priors, NonIaHasNoStretchOrColor) {
  Rng rng(5);
  const SnParams p = sample_sn_params(SnType::Ib, 0.4, 0.0, 60.0, rng);
  EXPECT_EQ(p.stretch, 1.0);
  EXPECT_EQ(p.color, 0.0);
}

}  // namespace
}  // namespace sne::astro
