// baselines_test.cpp — the re-implemented comparison methods: template
// grids, the Poznanski Bayesian classifier, multi-epoch χ² fitting, the
// Lochner-style feature extractor + random forest, and the Charnock GRU.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/chi2fit.h"
#include "baselines/features.h"
#include "baselines/forest.h"
#include "baselines/poznanski.h"
#include "baselines/rnn.h"
#include "baselines/template_grid.h"
#include "eval/roc.h"
#include "nn/gradcheck.h"

namespace sne::baselines {
namespace {

sim::SnDataset::Config small_config(std::int64_t n = 60,
                                    std::uint64_t seed = 314) {
  sim::SnDataset::Config cfg;
  cfg.num_samples = n;
  cfg.seed = seed;
  cfg.catalog.count = 300;
  return cfg;
}

TemplateGridConfig coarse_grid() {
  TemplateGridConfig g;
  g.z_step = 0.2;
  g.peak_step = 8.0;
  g.ia_stretches = {1.0};
  return g;
}

std::vector<std::int64_t> all_indices(const sim::SnDataset& data) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(data.size()));
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<std::int64_t>(i);
  }
  return idx;
}

std::vector<float> labels_of(const sim::SnDataset& data,
                             const std::vector<std::int64_t>& idx) {
  std::vector<float> y;
  y.reserve(idx.size());
  for (const std::int64_t i : idx) y.push_back(data.is_ia(i) ? 1.0f : 0.0f);
  return y;
}

TEST(TemplateGrid, EnumeratesAllClasses) {
  const TemplateGrid grid(coarse_grid());
  bool has_ia = false;
  bool has_cc = false;
  for (const GridEntry& e : grid.entries()) {
    (astro::is_type_ia(e.type) ? has_ia : has_cc) = true;
  }
  EXPECT_TRUE(has_ia);
  EXPECT_TRUE(has_cc);
  EXPECT_GT(grid.entries().size(), 100u);
}

TEST(TemplateGrid, RecoversAmplitudeOnNoiselessData) {
  const TemplateGrid grid(coarse_grid());
  // Generate noiseless fluxes from a model that is exactly on the grid.
  GridEntry truth{astro::SnType::Ia, 0.5, 30.0, 1.0};
  astro::SnParams p;
  p.type = truth.type;
  p.redshift = truth.redshift;
  p.peak_mjd = truth.peak_mjd;
  p.stretch = truth.stretch;
  p.peak_abs_mag = -19.0;  // grid reference magnitude → amplitude 1
  const astro::LightCurve lc(p, grid.cosmology());

  std::vector<sim::FluxMeasurement> data;
  for (const astro::Band b : astro::kAllBands) {
    for (double mjd = 10.0; mjd <= 60.0; mjd += 15.0) {
      sim::FluxMeasurement m;
      m.band = b;
      m.mjd = mjd;
      m.flux = lc.flux(b, mjd);
      m.flux_error = 1.0;
      data.push_back(m);
    }
  }
  const GridFit fit = grid.fit(truth, data);
  EXPECT_NEAR(fit.amplitude, 1.0, 1e-3);
  EXPECT_NEAR(fit.chi2, 0.0, 1e-3);

  // The true entry must be the best Ia fit.
  GridEntry best;
  const GridFit best_fit = grid.best_fit_of_class(true, data, &best);
  EXPECT_NEAR(best_fit.chi2, 0.0, 1e-3);
  EXPECT_EQ(best.redshift, truth.redshift);
}

TEST(TemplateGrid, AmplitudeClampedNonNegative) {
  const TemplateGrid grid(coarse_grid());
  // All-negative fluxes: best amplitude must clamp at 0.
  std::vector<sim::FluxMeasurement> data;
  for (const astro::Band b : astro::kAllBands) {
    sim::FluxMeasurement m;
    m.band = b;
    m.mjd = 30.0;
    m.flux = -50.0;
    m.flux_error = 5.0;
    data.push_back(m);
  }
  const GridFit fit = grid.fit(grid.entries().front(), data);
  EXPECT_EQ(fit.amplitude, 0.0);
}

TEST(TemplateGrid, LogEvidenceRedshiftWindowRestricts) {
  const TemplateGrid grid(coarse_grid());
  std::vector<sim::FluxMeasurement> data;
  for (const astro::Band b : astro::kAllBands) {
    sim::FluxMeasurement m;
    m.band = b;
    m.mjd = 30.0;
    m.flux = 40.0;
    m.flux_error = 5.0;
    data.push_back(m);
  }
  const double unrestricted = grid.log_evidence(true, data);
  const double restricted = grid.log_evidence(true, data, 0.5, 0.05);
  EXPECT_TRUE(std::isfinite(unrestricted));
  EXPECT_TRUE(std::isfinite(restricted));
}

TEST(Chi2Fit, MultiEpochSeparatesClasses) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(60));
  Chi2FitConfig cfg;
  cfg.grid = coarse_grid();
  const Chi2FitClassifier clf(cfg);
  const auto idx = all_indices(data);
  const auto scores = clf.score(data, idx);
  const double a = eval::auc(scores, labels_of(data, idx));
  EXPECT_GT(a, 0.75);  // multi-epoch template fitting should work well
}

TEST(Chi2Fit, RedshiftPriorHelpsOrTies) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(50, 81));
  const auto idx = all_indices(data);
  Chi2FitConfig no_z;
  no_z.grid = coarse_grid();
  Chi2FitConfig with_z = no_z;
  with_z.use_redshift = true;
  with_z.z_window = 0.2;
  const double auc_no_z =
      eval::auc(Chi2FitClassifier(no_z).score(data, idx),
                labels_of(data, idx));
  const double auc_with_z =
      eval::auc(Chi2FitClassifier(with_z).score(data, idx),
                labels_of(data, idx));
  EXPECT_GT(auc_with_z, auc_no_z - 0.08);
}

TEST(Chi2Fit, BestIaEntryRedshiftReasonable) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(30, 7));
  Chi2FitConfig cfg;
  cfg.grid = coarse_grid();
  cfg.use_redshift = false;
  const Chi2FitClassifier clf(cfg);
  // For true Ia samples the fitted z should correlate with the truth;
  // check it stays inside the grid at least.
  for (std::int64_t i = 0; i < 5; ++i) {
    const GridEntry e = clf.best_ia_entry(data, i);
    EXPECT_GE(e.redshift, 0.1);
    EXPECT_LE(e.redshift, 2.0);
  }
}

TEST(Poznanski, ScoreIsProbability) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(20));
  PoznanskiConfig cfg;
  cfg.grid = coarse_grid();
  const PoznanskiClassifier clf(cfg);
  for (std::int64_t i = 0; i < data.size(); ++i) {
    const double s = clf.score_sample(data, i);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Poznanski, RedshiftPriorImprovesSingleEpoch) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(80, 99));
  const auto idx = all_indices(data);
  PoznanskiConfig no_z;
  no_z.grid = coarse_grid();
  PoznanskiConfig with_z = no_z;
  with_z.use_redshift = true;

  const double auc_no_z = eval::auc(
      PoznanskiClassifier(no_z).score(data, idx), labels_of(data, idx));
  const double auc_with_z = eval::auc(
      PoznanskiClassifier(with_z).score(data, idx), labels_of(data, idx));
  // The paper's central claim about this baseline: without redshift,
  // single-epoch template classification degrades badly.
  EXPECT_GT(auc_with_z, auc_no_z);
}

TEST(Features, DimMatchesExtraction) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(10));
  LcFeatureExtractor extractor;
  EXPECT_EQ(static_cast<std::int64_t>(extractor.extract(data, 0).size()),
            extractor.dim());

  LcFeatureExtractorConfig with_z;
  with_z.include_redshift = true;
  LcFeatureExtractor extractor_z(with_z);
  EXPECT_EQ(extractor_z.dim(), extractor.dim() + 1);
}

TEST(Features, FiniteValues) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(20));
  LcFeatureExtractor extractor;
  for (std::int64_t i = 0; i < data.size(); ++i) {
    for (const float v : extractor.extract(data, i)) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(Forest, LearnsSeparableProblem) {
  Rng rng(1);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 600; ++i) {
    const bool pos = rng.bernoulli(0.5);
    x.push_back({static_cast<float>(rng.normal(pos ? 1.0 : -1.0, 0.5)),
                 static_cast<float>(rng.normal(0.0, 1.0))});
    y.push_back(pos ? 1 : 0);
  }
  ForestConfig cfg;
  cfg.num_trees = 30;
  RandomForest forest(cfg);
  forest.fit(x, y);

  int correct = 0;
  for (int i = 0; i < 600; ++i) {
    const bool predicted =
        forest.predict_proba(x[static_cast<std::size_t>(i)]) > 0.5;
    if (predicted == (y[static_cast<std::size_t>(i)] == 1)) ++correct;
  }
  EXPECT_GT(correct, 540);  // > 90 %
}

TEST(Forest, LearnsXor) {
  // A single split cannot solve XOR; a depth-≥2 forest can.
  Rng rng(2);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 800; ++i) {
    const bool a = rng.bernoulli(0.5);
    const bool b = rng.bernoulli(0.5);
    x.push_back({static_cast<float>((a ? 1.0 : -1.0) + rng.normal(0, 0.2)),
                 static_cast<float>((b ? 1.0 : -1.0) + rng.normal(0, 0.2))});
    y.push_back(a != b ? 1 : 0);
  }
  ForestConfig cfg;
  cfg.num_trees = 40;
  cfg.feature_fraction = 1.0;
  RandomForest forest(cfg);
  forest.fit(x, y);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if ((forest.predict_proba(x[i]) > 0.5) == (y[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, 720);
}

TEST(Forest, PurityLeafProbabilities) {
  // Perfectly separable one-feature data → probabilities near 0/1.
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<float>(i)});
    y.push_back(i < 50 ? 0 : 1);
  }
  ForestConfig cfg;
  cfg.num_trees = 15;
  RandomForest forest(cfg);
  forest.fit(x, y);
  EXPECT_LT(forest.predict_proba(std::vector<float>{10.0f}), 0.2);
  EXPECT_GT(forest.predict_proba(std::vector<float>{90.0f}), 0.8);
}

TEST(Forest, RejectsMisuse) {
  RandomForest forest;
  EXPECT_THROW(forest.predict_proba(std::vector<float>{1.0f}), std::logic_error);
  EXPECT_THROW(forest.fit({}, {}), std::invalid_argument);
}

TEST(Rnn, EncodingLayout) {
  sim::FluxMeasurement m;
  m.band = astro::Band::i;
  m.mjd = 30.0;
  m.flux = 99.0;
  m.flux_error = 10.0;
  const auto enc = encode_measurement(m, 0.0, 60.0, 0.7, true);
  ASSERT_EQ(enc.size(), 3u + 5u + 1u);
  EXPECT_FLOAT_EQ(enc[0], 0.5f);  // date
  EXPECT_FLOAT_EQ(enc[5], 1.0f);  // one-hot for band i (index 3+2)
  EXPECT_FLOAT_EQ(enc[8], 0.35f); // photo-z / 2
}

TEST(Rnn, SequenceDatasetShapes) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(8));
  CharnockRnnConfig cfg;
  const nn::LazyDataset ds = make_sequence_dataset(data, {0, 1, 2}, cfg);
  const nn::Sample s = ds.get(0);
  EXPECT_EQ(s.x.shape(), (Shape{20, 8}));
}

TEST(Rnn, ForwardShapeAndGradcheck) {
  Rng rng(3);
  CharnockRnnConfig cfg;
  cfg.hidden = 5;
  cfg.epochs_per_band = 1;
  CharnockRnn model(cfg, rng);
  const Tensor x = Tensor::randn({2, model.sequence_length(),
                                  model.input_dim()}, rng);
  EXPECT_EQ(model.forward(x).shape(), (Shape{2, 1}));
  Rng check_rng(4);
  const nn::GradCheckResult r =
      nn::check_gradients(model, x, check_rng, 1e-2f, 3e-2f);
  EXPECT_TRUE(r.passed) << r.worst_param << " rel=" << r.max_rel_error;
}

TEST(Rnn, LstmVariantForwardAndGradcheck) {
  Rng rng(5);
  CharnockRnnConfig cfg;
  cfg.hidden = 5;
  cfg.epochs_per_band = 1;
  cfg.unit = RecurrentUnit::Lstm;
  CharnockRnn model(cfg, rng);
  const Tensor x = Tensor::randn({2, model.sequence_length(),
                                  model.input_dim()}, rng);
  EXPECT_EQ(model.forward(x).shape(), (Shape{2, 1}));
  Rng check_rng(6);
  const nn::GradCheckResult r =
      nn::check_gradients(model, x, check_rng, 1e-2f, 3e-2f);
  EXPECT_TRUE(r.passed) << r.worst_param << " rel=" << r.max_rel_error;
}

TEST(Rnn, GruAndLstmDisagreeButBothRun) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(6, 44));
  Rng rng_g(7);
  Rng rng_l(7);
  CharnockRnnConfig gru_cfg;
  gru_cfg.hidden = 8;
  CharnockRnnConfig lstm_cfg = gru_cfg;
  lstm_cfg.unit = RecurrentUnit::Lstm;
  CharnockRnn gru_model(gru_cfg, rng_g);
  CharnockRnn lstm_model(lstm_cfg, rng_l);
  const nn::LazyDataset ds = make_sequence_dataset(data, {0, 1}, gru_cfg);
  const nn::Sample s = ds.get(0);
  const Tensor x = s.x.reshaped({1, s.x.extent(0), s.x.extent(1)});
  const Tensor a = gru_model.forward(x);
  const Tensor b = lstm_model.forward(x);
  EXPECT_NE(a[0], b[0]);
}

}  // namespace
}  // namespace sne::baselines
