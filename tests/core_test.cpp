// core_test.cpp — the paper's models: pixel transform, band CNN,
// light-curve features, classifier, joint model, and the pipeline glue.
#include <gtest/gtest.h>

#include <cmath>

#include "astro/photometry.h"
#include "core/band_cnn.h"
#include "core/joint_model.h"
#include "core/lc_classifier.h"
#include "core/lc_features.h"
#include "core/pipeline.h"
#include "core/pixel_transform.h"

namespace sne::core {
namespace {

sim::SnDataset::Config small_config(std::int64_t n = 8) {
  sim::SnDataset::Config cfg;
  cfg.num_samples = n;
  cfg.seed = 77;
  cfg.catalog.count = 100;
  return cfg;
}

TEST(PixelTransform, ComputesSignedLogDifference) {
  DiffSignedLogCrop t(2);
  Tensor x({1, 2, 2, 2});
  // ref = [[1,2],[3,4]], obs = [[10, 2],[3, -5]]
  x[0] = 1; x[1] = 2; x[2] = 3; x[3] = 4;
  x[4] = 10; x[5] = 2; x[6] = 3; x[7] = -5;
  const Tensor y = t.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_NEAR(y[0], std::log10(9.0 + 1.0), 1e-6);   // diff = 9
  EXPECT_NEAR(y[1], 0.0, 1e-6);                      // diff = 0
  EXPECT_NEAR(y[3], -std::log10(9.0 + 1.0), 1e-6);   // diff = −9
}

TEST(PixelTransform, CropIsCentered) {
  DiffSignedLogCrop t(1);
  Tensor x({1, 2, 3, 3});
  // obs − ref = 0 except center (obs channel index: 9 + 4).
  x[9 + 4] = 99.0f;
  const Tensor y = t.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_NEAR(y[0], std::log10(100.0), 1e-5);
}

TEST(PixelTransform, RejectsWrongChannels) {
  DiffSignedLogCrop t(2);
  EXPECT_THROW(t.forward(Tensor({1, 3, 4, 4})), std::invalid_argument);
  EXPECT_THROW(t.forward(Tensor({1, 2, 1, 1})), std::invalid_argument);
}

TEST(BandCnn, TrunkExtentFormula) {
  // 60 → (56/2=28) → (24/2=12) → (8/2=4).
  EXPECT_EQ(BandCnn::trunk_output_extent(60, 5), 4);
  EXPECT_EQ(BandCnn::trunk_output_extent(65, 5), 4);  // 61/2=30, 26/2=13, 9/2=4
  EXPECT_EQ(BandCnn::trunk_output_extent(36, 5), 1);
  EXPECT_THROW(BandCnn::trunk_output_extent(20, 5), std::invalid_argument);
}

class BandCnnSizes : public ::testing::TestWithParam<int> {};

TEST_P(BandCnnSizes, ForwardShapeAcrossPaperSizes) {
  const std::int64_t size = GetParam();
  Rng rng(size);
  BandCnnConfig cfg;
  cfg.input_size = size;
  BandCnn cnn(cfg, rng);
  const Tensor y = cnn.forward(Tensor::randn({2, 2, 65, 65}, rng));
  EXPECT_EQ(y.shape(), (Shape{2, 1}));
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, BandCnnSizes,
                         ::testing::Values(36, 44, 52, 60, 65));

TEST(BandCnn, OutputNearBiasInitAtStart) {
  Rng rng(3);
  BandCnnConfig cfg;
  cfg.input_size = 36;
  cfg.output_bias_init = 25.5f;
  BandCnn cnn(cfg, rng);
  cnn.set_training(false);
  const Tensor y = cnn.forward(Tensor::randn({4, 2, 36, 36}, rng));
  for (std::int64_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], 25.5f, 6.0f);
  }
}

TEST(BandCnn, AvgPoolVariantRuns) {
  Rng rng(4);
  BandCnnConfig cfg;
  cfg.input_size = 36;
  cfg.pool = PoolKind::Average;
  cfg.signed_log = false;
  BandCnn cnn(cfg, rng);
  const Tensor y = cnn.forward(Tensor::randn({1, 2, 36, 36}, rng));
  EXPECT_EQ(y.shape(), (Shape{1, 1}));
}

TEST(LcFeatures, DimAndLayout) {
  const sim::SnDataset data = sim::SnDataset::build(small_config());
  FeatureConfig fc;
  fc.epochs = 1;
  EXPECT_EQ(feature_dim(fc), 10);
  const Tensor f = lc_features(data, 0, fc);
  ASSERT_EQ(f.size(), 10);
  // Even slots are magnitudes (normalized, plausible range), odd slots are
  // dates in [0, ~1.1].
  for (std::int64_t b = 0; b < astro::kNumBands; ++b) {
    EXPECT_GE(f[2 * b + 1], -0.1f);
    EXPECT_LE(f[2 * b + 1], 1.2f);
    EXPECT_GE(f[2 * b], -3.0f);
    EXPECT_LE(f[2 * b], 3.0f);
  }
}

TEST(LcFeatures, MultiEpochStacksEpochMajor) {
  const sim::SnDataset data = sim::SnDataset::build(small_config());
  FeatureConfig f1;
  f1.epochs = 1;
  FeatureConfig f4;
  f4.epochs = 4;
  EXPECT_EQ(feature_dim(f4), 40);
  const Tensor a = lc_features(data, 2, f1);
  const Tensor b = lc_features(data, 2, f4);
  // First 10 dims of the 4-epoch features equal the single-epoch features.
  for (std::int64_t k = 0; k < 10; ++k) EXPECT_EQ(a[k], b[k]);
}

TEST(LcFeatures, NoisyFeaturesDifferButCorrelate) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(20));
  FeatureConfig clean;
  FeatureConfig noisy;
  noisy.noisy = true;
  int differing = 0;
  for (std::int64_t i = 0; i < data.size(); ++i) {
    const Tensor a = lc_features(data, i, clean);
    const Tensor b = lc_features(data, i, noisy);
    if (!a.allclose(b, 1e-6f)) ++differing;
    // Dates are identical; only magnitudes move.
    for (std::int64_t k = 1; k < 10; k += 2) EXPECT_EQ(a[k], b[k]);
  }
  EXPECT_GT(differing, 10);
}

TEST(LcFeatures, MagFromMeasuredFluxHandlesNegatives) {
  FeatureConfig fc;
  EXPECT_DOUBLE_EQ(mag_from_measured_flux(-50.0, fc), fc.faint_mag);
  EXPECT_NEAR(mag_from_measured_flux(astro::flux_from_mag(22.0), fc), 22.0,
              1e-9);
}

TEST(LcFeatures, DatasetAdapterLabels) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(10));
  std::vector<std::int64_t> indices{0, 1, 2, 3};
  const nn::LazyDataset ds = make_lc_feature_dataset(data, indices, {});
  EXPECT_EQ(ds.size(), 4);
  for (std::int64_t k = 0; k < 4; ++k) {
    const nn::Sample s = ds.get(k);
    EXPECT_EQ(s.x.size(), 10);
    EXPECT_EQ(s.y[0], data.is_ia(k) ? 1.0f : 0.0f);
  }
}

TEST(LcClassifier, ShapesAndVariants) {
  Rng rng(5);
  LcClassifierConfig cfg;
  cfg.input_dim = 10;
  cfg.hidden_units = 32;
  LcClassifier highway(cfg, rng);
  EXPECT_EQ(highway.forward(Tensor::randn({6, 10}, rng)).shape(),
            (Shape{6, 1}));

  cfg.use_highway = false;
  LcClassifier plain(cfg, rng);
  EXPECT_EQ(plain.forward(Tensor::randn({6, 10}, rng)).shape(),
            (Shape{6, 1}));
  // Highway variant has twice the per-layer parameters of the plain one
  // in its hidden blocks.
  EXPECT_GT(highway.num_params(), plain.num_params());
}

TEST(JointModel, InputDimFormula) {
  EXPECT_EQ(JointModel::input_dim(44), 5 * 2 * 44 * 44 + 5);
}

TEST(JointModel, ForwardMatchesManualComposition) {
  // The joint model must equal: classifier(normalize(cnn(pairs)), dates).
  Rng rng(6);
  JointModelConfig cfg;
  cfg.cnn.input_size = 36;
  cfg.classifier.input_dim = 10;
  cfg.classifier.hidden_units = 16;
  JointModel joint(cfg, rng);
  joint.set_training(false);

  const std::int64_t s = 36;
  Rng data_rng(7);
  const Tensor x = Tensor::rand_uniform({1, JointModel::input_dim(s)},
                                        data_rng, -1.0f, 1.0f);
  const Tensor logit = joint.forward(x);

  // Manual path.
  Tensor images({5, 2, s, s});
  std::copy(x.data(), x.data() + 5 * 2 * s * s, images.data());
  const Tensor mags = joint.band_cnn().forward(images);
  Tensor features({1, 10});
  for (std::int64_t b = 0; b < 5; ++b) {
    features[2 * b] = (mags[b] - 25.0f) / 5.0f;
    features[2 * b + 1] = x[5 * 2 * s * s + b];
  }
  const Tensor manual = joint.classifier().forward(features);
  EXPECT_NEAR(logit[0], manual[0], 1e-4f);
}

TEST(JointModel, RejectsWrongInputDim) {
  Rng rng(8);
  JointModelConfig cfg;
  cfg.cnn.input_size = 36;
  JointModel joint(cfg, rng);
  EXPECT_THROW(joint.forward(Tensor({1, 100})), std::invalid_argument);
}

TEST(JointModel, ClassifierDimMustBeTen) {
  Rng rng(9);
  JointModelConfig cfg;
  cfg.cnn.input_size = 36;
  cfg.classifier.input_dim = 12;
  EXPECT_THROW(JointModel(cfg, rng), std::invalid_argument);
}

TEST(Pipeline, EnumerateFluxPairsCountsBandsTimesEpochs) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(3));
  const auto items = enumerate_flux_pairs(data, {0, 1, 2});
  EXPECT_EQ(items.size(), 3u * 5u * 4u);
}

TEST(Pipeline, FluxPairDatasetShapesAndTarget) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(4));
  auto items = enumerate_flux_pairs(data, {0});
  const nn::LazyDataset ds = make_flux_pair_dataset(data, items, 0);
  const nn::Sample s = ds.get(0);
  EXPECT_EQ(s.x.shape(), (Shape{2, 65, 65}));
  EXPECT_EQ(s.y.size(), 1);
  EXPECT_NEAR(s.y[0], data.true_magnitude(0, astro::Band::g, 0), 1e-5);
}

TEST(Pipeline, FluxPairDatasetCrops) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(4));
  auto items = enumerate_flux_pairs(data, {1});
  const nn::LazyDataset ds = make_flux_pair_dataset(data, items, 44);
  EXPECT_EQ(ds.get(0).x.shape(), (Shape{2, 44, 44}));
}

TEST(Pipeline, JointDatasetShape) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(4));
  const nn::LazyDataset ds =
      make_joint_dataset(data, {0, 1}, 0, 36, {});
  const nn::Sample s = ds.get(1);
  EXPECT_EQ(s.x.size(), JointModel::input_dim(36));
  EXPECT_EQ(s.y[0], data.is_ia(1) ? 1.0f : 0.0f);
}

TEST(Pipeline, ZeroPointCalibrationRemovesBias) {
  const sim::SnDataset data = sim::SnDataset::build(small_config(4));
  auto items = enumerate_flux_pairs(data, {0, 1}, 27.0);
  ASSERT_FALSE(items.empty());
  const nn::LazyDataset pairs = make_flux_pair_dataset(data, items, 36);

  Rng rng(44);
  BandCnnConfig cfg;
  cfg.input_size = 36;
  cfg.output_bias_init = 28.0f;  // deliberately offset from the targets
  BandCnn cnn(cfg, rng);

  const double removed = calibrate_flux_zero_point(cnn, pairs);

  // After calibration, the mean residual on the same pairs is ~zero.
  cnn.set_training(false);
  double residual = 0.0;
  const std::int64_t n = std::min<std::int64_t>(pairs.size(), 64);
  for (std::int64_t k = 0; k < n; ++k) {
    const nn::Sample s = pairs.get(k);
    const Tensor pred = cnn.forward(s.x.reshaped({1, 2, 36, 36}));
    residual += pred[0] - s.y[0];
  }
  EXPECT_NEAR(residual / n, 0.0, 0.05);
  EXPECT_NE(removed, 0.0);
}

TEST(Pipeline, PretrainedTransplantPreservesOutputs) {
  Rng rng(10);
  BandCnnConfig ccfg;
  ccfg.input_size = 36;
  BandCnn cnn(ccfg, rng);
  LcClassifierConfig lcfg;
  lcfg.hidden_units = 16;
  LcClassifier clf(lcfg, rng);

  JointModelConfig jcfg;
  jcfg.cnn = ccfg;
  jcfg.classifier = lcfg;
  Rng rng2(11);
  JointModel joint(jcfg, rng2);
  init_joint_from_pretrained(joint, cnn, clf);

  cnn.set_training(false);
  joint.set_training(false);
  Rng data_rng(12);
  const Tensor pair = Tensor::randn({1, 2, 36, 36}, data_rng);
  EXPECT_TRUE(cnn.forward(pair).allclose(joint.band_cnn().forward(pair),
                                         1e-5f));
}

}  // namespace
}  // namespace sne::core
