// data_loader_test.cpp — the batch-native data path: Dataset::get_batch
// (serial default, parallel overrides, full-shape ragged check) and the
// prefetching DataLoader. The core guarantee under test: training
// statistics and predictions are bitwise identical to the pre-refactor
// serial loop for every prefetch depth × thread count combination.
// Carries the `threaded` ctest label so the tsan/asan presets exercise
// the background prefetch thread and the pool-parallel batch synthesis.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/band_cnn.h"
#include "core/pipeline.h"
#include "data/snapshot.h"
#include "nn/nn.h"
#include "obs/obs.h"
#include "sim/dataset_builder.h"
#include "tensor/runtime.h"
#include "tensor/thread_pool.h"

namespace sne {
namespace {

// Pool width and prefetch depth are both process-wide runtime knobs
// now (DataLoaderConfig::prefetch is gone); tests sweep them through
// RuntimeConfig. Loaders latch the depth at construction, so a sweep
// sets the knobs, builds the loader, and moves on.
void set_runtime(int threads, std::int64_t prefetch, bool trace = false) {
  RuntimeConfig rc = RuntimeConfig::current();
  rc.threads = threads;
  rc.prefetch = prefetch;
  rc.trace = trace;
  RuntimeConfig::set_current(rc);
}

// Restores a 1-wide pool and the default prefetch when a test exits,
// however it exits.
struct RuntimeGuard {
  ~RuntimeGuard() { set_runtime(1, 1); }
};

bool same_bits(float a, float b) {
  return std::memcmp(&a, &b, sizeof(float)) == 0;
}

bool same_bytes(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

// x = [index, 2·index], y = [index] — recognizable per-row content.
nn::LazyDataset make_indexed_dataset(std::int64_t n,
                                     nn::BatchMode mode = nn::BatchMode::Serial) {
  return nn::LazyDataset(
      n,
      [](std::int64_t i) {
        const auto v = static_cast<float>(i);
        return nn::Sample{Tensor({2}, {v, 2.0f * v}), Tensor({1}, v)};
      },
      mode);
}

TEST(DataLoader, CoversEpochInOrderWithPartialFinalBatch) {
  RuntimeGuard guard;
  set_runtime(1, 0);
  const nn::LazyDataset data = make_indexed_dataset(10);
  nn::DataLoaderConfig cfg;
  cfg.batch_size = 4;
  nn::DataLoader loader(data, cfg);
  EXPECT_EQ(loader.size(), 10);
  EXPECT_EQ(loader.num_batches(), 3);

  loader.start_epoch();
  nn::Sample batch;
  std::vector<float> seen;
  std::vector<std::int64_t> batch_counts;
  while (loader.next(batch)) {
    batch_counts.push_back(batch.x.extent(0));
    for (std::int64_t k = 0; k < batch.y.size(); ++k) {
      seen.push_back(batch.y[k]);
    }
  }
  EXPECT_EQ(batch_counts, (std::vector<std::int64_t>{4, 4, 2}));
  ASSERT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_FLOAT_EQ(seen[i], static_cast<float>(i));
  }
  // A fresh epoch without shuffle replays the same order.
  loader.start_epoch();
  ASSERT_TRUE(loader.next(batch));
  EXPECT_FLOAT_EQ(batch.y[0], 0.0f);
}

TEST(DataLoader, PrefetchedBatchesIdenticalToSynchronous) {
  RuntimeGuard guard;
  const nn::LazyDataset data =
      make_indexed_dataset(23, nn::BatchMode::Parallel);
  for (const std::int64_t depth : {1, 4}) {
    nn::DataLoaderConfig cfg;
    cfg.batch_size = 5;
    cfg.shuffle = true;
    cfg.shuffle_seed = 99;

    set_runtime(4, 0);
    nn::DataLoader sync_loader(data, cfg);
    set_runtime(4, depth);
    nn::DataLoader pre_loader(data, cfg);
    EXPECT_EQ(sync_loader.prefetch_depth(), 0);
    EXPECT_EQ(pre_loader.prefetch_depth(), depth);
    for (int epoch = 0; epoch < 3; ++epoch) {
      sync_loader.start_epoch();
      pre_loader.start_epoch();
      nn::Sample a, b;
      for (;;) {
        const bool more_a = sync_loader.next(a);
        const bool more_b = pre_loader.next(b);
        ASSERT_EQ(more_a, more_b) << "depth " << depth << " epoch " << epoch;
        if (!more_a) break;
        EXPECT_TRUE(same_bytes(a.x, b.x));
        EXPECT_TRUE(same_bytes(a.y, b.y));
      }
    }
  }
}

TEST(DataLoader, AbandonedEpochRestartsCleanly) {
  RuntimeGuard guard;
  set_runtime(1, 2);
  const nn::LazyDataset data = make_indexed_dataset(16);
  nn::DataLoaderConfig cfg;
  cfg.batch_size = 4;
  nn::DataLoader loader(data, cfg);
  loader.start_epoch();
  nn::Sample batch;
  ASSERT_TRUE(loader.next(batch));  // leave the epoch unfinished
  loader.start_epoch();
  std::int64_t count = 0;
  while (loader.next(batch)) count += batch.x.extent(0);
  EXPECT_EQ(count, 16);
}

TEST(DataLoader, NextWithoutStartEpochThrows) {
  const nn::LazyDataset data = make_indexed_dataset(4);
  nn::DataLoader loader(data, {});
  nn::Sample batch;
  EXPECT_THROW(loader.next(batch), std::logic_error);
}

TEST(DataLoader, PropagatesRendererExceptions) {
  const nn::LazyDataset data(8, [](std::int64_t i) {
    if (i == 5) throw std::runtime_error("render failed");
    return nn::Sample{Tensor({1}, static_cast<float>(i)), Tensor({1})};
  });
  RuntimeGuard guard;
  for (const std::int64_t depth : {0, 2}) {
    set_runtime(1, depth);
    nn::DataLoaderConfig cfg;
    cfg.batch_size = 4;
    nn::DataLoader loader(data, cfg);
    loader.start_epoch();
    nn::Sample batch;
    EXPECT_THROW(
        {
          while (loader.next(batch)) {
          }
        },
        std::runtime_error)
        << "prefetch depth " << depth;
  }
}

// Shutdown-semantics pins for the prefetcher. The three states a
// DataLoader can be torn down from: producer blocked on a full queue,
// producer finished with an undelivered error, and mid-epoch after an
// error already surfaced. None may deadlock or leak the worker thread
// (the `threaded` label runs these under tsan).

TEST(DataLoader, DestroyWhileProducerBlockedOnFullQueue) {
  std::atomic<std::int64_t> rendered{0};
  const nn::LazyDataset data(64, [&](std::int64_t i) {
    rendered.fetch_add(1);
    return nn::Sample{Tensor({1}, static_cast<float>(i)), Tensor({1})};
  });
  RuntimeGuard guard;
  set_runtime(1, 1);
  nn::DataLoaderConfig cfg;
  cfg.batch_size = 4;
  {
    nn::DataLoader loader(data, cfg);
    loader.start_epoch();
    // With depth 1 the producer pushes one batch then stalls on the full
    // queue before rendering the next. Wait until that first batch has
    // definitely been rendered, give the producer a beat to reach the
    // not-full wait, then destroy the loader mid-stall. The destructor
    // must cancel the wait and join — never deadlock.
    while (rendered.load() < 4) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LT(rendered.load(), 64);  // the epoch was genuinely cut short
}

TEST(DataLoader, DestroyWithUndeliveredErrorPending) {
  std::atomic<bool> threw{false};
  const nn::LazyDataset data(8, [&](std::int64_t i) {
    if (i == 0) {
      threw.store(true);
      throw std::runtime_error("render failed");
    }
    return nn::Sample{Tensor({1}, static_cast<float>(i)), Tensor({1})};
  });
  RuntimeGuard guard;
  set_runtime(1, 2);
  nn::DataLoaderConfig cfg;
  cfg.batch_size = 4;
  {
    nn::DataLoader loader(data, cfg);
    loader.start_epoch();
    // Never call next(): the producer parks its exception in error_ and
    // finishes. Destruction with the error still undelivered must be
    // clean (the stored exception_ptr is simply dropped).
    while (!threw.load()) std::this_thread::yield();
  }
  SUCCEED();
}

// Regression: a producer error surfacing from next() must close the
// epoch. Before the fix, prefetcher_/epoch_active_ were left set, so a
// caller that caught the error and probed the loader again got the same
// stale exception rethrown instead of the "no active epoch" contract —
// and start_epoch() was the only way out.
TEST(DataLoader, EpochIsClosedAfterPrefetchErrorSurfaces) {
  std::atomic<bool> fail_once{true};
  const nn::LazyDataset data(8, [&](std::int64_t i) {
    if (i == 5 && fail_once.exchange(false)) {
      throw std::runtime_error("render failed");
    }
    return nn::Sample{Tensor({1}, static_cast<float>(i)), Tensor({1})};
  });
  RuntimeGuard guard;
  set_runtime(1, 2);
  nn::DataLoaderConfig cfg;
  cfg.batch_size = 4;
  nn::DataLoader loader(data, cfg);
  loader.start_epoch();
  nn::Sample batch;
  EXPECT_THROW(
      {
        while (loader.next(batch)) {
        }
      },
      std::runtime_error);
  // The failed epoch is over: next() reports the closed-epoch contract
  // violation, not a stale rethrow of the producer error.
  EXPECT_THROW(loader.next(batch), std::logic_error);
  // And the loader is reusable: a fresh epoch covers the dataset.
  loader.start_epoch();
  std::int64_t count = 0;
  while (loader.next(batch)) count += batch.x.extent(0);
  EXPECT_EQ(count, 8);
}

TEST(Dataset, GetBatchRejectsTransposedSampleShapes) {
  // Same element count, different shape — the element-count check the
  // seed make_batch used would wave this through.
  std::vector<nn::Sample> samples;
  samples.push_back({Tensor({2, 3}), Tensor({1})});
  samples.push_back({Tensor({3, 2}), Tensor({1})});
  const nn::VectorDataset vec(std::move(samples));
  EXPECT_THROW(vec.get_batch({0, 1}, 0, 2), std::runtime_error);

  const nn::LazyDataset lazy(
      2,
      [](std::int64_t i) {
        return nn::Sample{i == 0 ? Tensor({2, 3}) : Tensor({3, 2}),
                          Tensor({1})};
      },
      nn::BatchMode::Parallel);
  EXPECT_THROW(lazy.get_batch({0, 1}, 0, 2), std::runtime_error);
}

TEST(Dataset, ParallelGetBatchMatchesSerial) {
  RuntimeGuard guard;
  const nn::LazyDataset serial = make_indexed_dataset(12);
  const nn::LazyDataset parallel =
      make_indexed_dataset(12, nn::BatchMode::Parallel);
  const std::vector<std::int64_t> indices = {7, 2, 11, 0, 5, 9, 3};
  set_num_threads(4);
  const nn::Sample threaded = parallel.get_batch(indices, 1, 5);
  set_num_threads(1);
  const nn::Sample reference = serial.get_batch(indices, 1, 5);
  EXPECT_TRUE(same_bytes(reference.x, threaded.x));
  EXPECT_TRUE(same_bytes(reference.y, threaded.y));
}

TEST(Dataset, SubsetDelegatesBatchToBase) {
  const nn::LazyDataset base = make_indexed_dataset(20, nn::BatchMode::Parallel);
  const nn::SubsetDataset subset(base, {19, 3, 8, 14, 1});
  const nn::Sample batch = subset.get_batch({0, 1, 2, 3, 4}, 1, 3);
  ASSERT_EQ(batch.x.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(batch.y[0], 3.0f);
  EXPECT_FLOAT_EQ(batch.y[1], 8.0f);
  EXPECT_FLOAT_EQ(batch.y[2], 14.0f);
}

TEST(Dataset, MaterializeUsesChunkedLoader) {
  RuntimeGuard guard;
  set_num_threads(4);
  // More samples than one loader chunk (64) to cross a chunk boundary.
  const nn::LazyDataset lazy = make_indexed_dataset(130, nn::BatchMode::Parallel);
  const nn::VectorDataset dense = nn::materialize(lazy);
  ASSERT_EQ(dense.size(), 130);
  for (std::int64_t i = 0; i < dense.size(); ++i) {
    const nn::Sample s = dense.get(i);
    ASSERT_EQ(s.x.shape(), (Shape{2}));
    EXPECT_FLOAT_EQ(s.x[0], static_cast<float>(i));
    EXPECT_FLOAT_EQ(s.x[1], 2.0f * static_cast<float>(i));
    EXPECT_FLOAT_EQ(s.y[0], static_cast<float>(i));
  }
}

// ---- bitwise parity with the pre-refactor serial training loop ----

// The seed Trainer::fit, inlined: identity order reshuffled per epoch
// with one persistent Rng, batches assembled one get() at a time on the
// training thread, every batch through Trainer::train_batch.
std::vector<nn::EpochStats> reference_fit(nn::Trainer& trainer,
                                          const nn::Dataset& train,
                                          const nn::TrainConfig& config) {
  Rng shuffle_rng(config.shuffle_seed);
  std::vector<nn::EpochStats> history;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<std::size_t> order(static_cast<std::size_t>(train.size()));
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    shuffle_rng.shuffle(order);

    double loss_sum = 0.0;
    std::int64_t seen = 0;
    for (std::size_t first = 0; first < order.size();
         first += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t count = std::min(
          static_cast<std::size_t>(config.batch_size), order.size() - first);
      // Serial stacking, exactly as the seed make_batch did it.
      nn::Sample proto = train.get(static_cast<std::int64_t>(order[first]));
      Shape x_shape = proto.x.shape();
      Shape y_shape = proto.y.shape();
      x_shape.insert(x_shape.begin(), static_cast<std::int64_t>(count));
      y_shape.insert(y_shape.begin(), static_cast<std::int64_t>(count));
      nn::Sample batch{Tensor(std::move(x_shape)), Tensor(std::move(y_shape))};
      const std::int64_t x_stride = proto.x.size();
      const std::int64_t y_stride = proto.y.size();
      for (std::size_t k = 0; k < count; ++k) {
        const nn::Sample s =
            k == 0 ? std::move(proto)
                   : train.get(static_cast<std::int64_t>(order[first + k]));
        std::copy(s.x.data(), s.x.data() + x_stride,
                  batch.x.data() + static_cast<std::int64_t>(k) * x_stride);
        std::copy(s.y.data(), s.y.data() + y_stride,
                  batch.y.data() + static_cast<std::int64_t>(k) * y_stride);
      }
      const float batch_loss = trainer.train_batch(batch, config.grad_clip);
      loss_sum += static_cast<double>(batch_loss) * static_cast<double>(count);
      seen += static_cast<std::int64_t>(count);
    }
    nn::EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = static_cast<float>(loss_sum / seen);
    history.push_back(stats);
  }
  return history;
}

struct FluxFixture {
  sim::SnDataset data;
  std::vector<core::FluxPairItem> items;

  FluxFixture() : data(build_data()) {
    items = core::enumerate_flux_pairs(data, {0, 1, 2, 3, 4, 5, 6, 7}, 27.5);
    if (items.size() > 20) items.resize(20);
  }

  static sim::SnDataset build_data() {
    sim::SnDataset::Config cfg;
    cfg.num_samples = 8;
    cfg.catalog.count = 50;
    return sim::SnDataset::build(cfg);
  }

  nn::LazyDataset pairs() const {
    return core::make_flux_pair_dataset(data, items, 36);
  }
};

struct TrainOutcome {
  std::vector<nn::EpochStats> history;
  std::vector<float> params;
  Tensor predictions;
};

// Trains a freshly seeded flux CNN on the fixture's pairs. use_loader
// selects Trainer::fit (DataLoader path) vs the inlined seed loop.
// `override_data` substitutes another dataset (e.g. a snapshot replay of
// the same pairs) for the live-rendered one.
TrainOutcome run_training(const FluxFixture& fx, bool use_loader,
                          std::int64_t prefetch, int threads,
                          const nn::Dataset* override_data = nullptr,
                          bool traced = false) {
  set_runtime(threads, prefetch, traced);
  core::BandCnnConfig cfg;
  cfg.input_size = 36;
  Rng model_rng(21);
  core::BandCnn cnn(cfg, model_rng);
  nn::Adam opt(cnn.params(), 1e-3f);
  nn::Trainer trainer(cnn, opt, nn::mse_loss);

  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  tc.grad_clip = 5.0f;
  tc.shuffle_seed = 31;

  const nn::LazyDataset pairs = fx.pairs();
  const nn::Dataset& train = override_data ? *override_data : pairs;
  TrainOutcome out;
  out.history = use_loader ? trainer.fit(train, nullptr, tc)
                           : reference_fit(trainer, train, tc);
  for (nn::Param* p : cnn.params()) {
    for (std::int64_t i = 0; i < p->value.size(); ++i) {
      out.params.push_back(p->value[i]);
    }
  }
  out.predictions = trainer.predict(train, 8);
  set_runtime(1, 1, traced);
  return out;
}

// A snapshot written from the live pair dataset must replay epochs that
// are bitwise-identical to re-rendering every sample — same epoch
// statistics, same final parameters, same predictions — for every
// prefetch depth × thread count combination. This is the contract that
// lets long training runs swap the simulator out for the mmap cache.
TEST(DataLoaderDeterminism, SnapshotReplayFitBitwiseIdenticalToLiveRender) {
  RuntimeGuard guard;
  const FluxFixture fx;
  const std::string path = testing::TempDir() + "flux_pairs.snap";
  {
    const nn::LazyDataset pairs = fx.pairs();
    data::write_snapshot(path, pairs, 8);
  }
  const data::SnapshotDataset snap(path);

  const TrainOutcome live = run_training(fx, /*use_loader=*/true, 0, 1);
  for (const std::int64_t prefetch : {std::int64_t{0}, std::int64_t{4}}) {
    for (const int threads : {1, 4}) {
      const TrainOutcome replay =
          run_training(fx, /*use_loader=*/true, prefetch, threads, &snap);
      ASSERT_EQ(replay.history.size(), live.history.size());
      for (std::size_t e = 0; e < live.history.size(); ++e) {
        EXPECT_TRUE(same_bits(replay.history[e].train_loss,
                              live.history[e].train_loss))
            << "prefetch " << prefetch << " threads " << threads
            << " epoch " << e;
      }
      ASSERT_EQ(replay.params.size(), live.params.size());
      for (std::size_t i = 0; i < live.params.size(); ++i) {
        ASSERT_TRUE(same_bits(replay.params[i], live.params[i]))
            << "prefetch " << prefetch << " threads " << threads
            << " param element " << i;
      }
      EXPECT_TRUE(same_bytes(replay.predictions, live.predictions))
          << "prefetch " << prefetch << " threads " << threads;
    }
  }
}

TEST(DataLoaderDeterminism, FitBitwiseIdenticalAcrossPrefetchAndThreads) {
  RuntimeGuard guard;
  const FluxFixture fx;
  const TrainOutcome seed = run_training(fx, /*use_loader=*/false, 0, 1);

  for (const std::int64_t prefetch : {std::int64_t{0}, std::int64_t{1},
                                      std::int64_t{4}}) {
    for (const int threads : {1, 4}) {
      const TrainOutcome loader =
          run_training(fx, /*use_loader=*/true, prefetch, threads);
      ASSERT_EQ(loader.history.size(), seed.history.size());
      for (std::size_t e = 0; e < seed.history.size(); ++e) {
        EXPECT_TRUE(same_bits(loader.history[e].train_loss,
                              seed.history[e].train_loss))
            << "prefetch " << prefetch << " threads " << threads
            << " epoch " << e;
      }
      ASSERT_EQ(loader.params.size(), seed.params.size());
      for (std::size_t i = 0; i < seed.params.size(); ++i) {
        ASSERT_TRUE(same_bits(loader.params[i], seed.params[i]))
            << "prefetch " << prefetch << " threads " << threads
            << " param element " << i;
      }
      EXPECT_TRUE(same_bytes(loader.predictions, seed.predictions))
          << "prefetch " << prefetch << " threads " << threads;
    }
  }

  // Telemetry capture must be a pure observer: the traced run reproduces
  // the seed statistics bit for bit, and the spans it records cover the
  // training phases.
  obs::enable();
  const TrainOutcome traced = run_training(fx, /*use_loader=*/true, 2, 4,
                                           nullptr, /*traced=*/true);
  obs::disable();
  ASSERT_EQ(traced.history.size(), seed.history.size());
  for (std::size_t e = 0; e < seed.history.size(); ++e) {
    EXPECT_TRUE(
        same_bits(traced.history[e].train_loss, seed.history[e].train_loss))
        << "traced epoch " << e;
  }
  ASSERT_EQ(traced.params.size(), seed.params.size());
  for (std::size_t i = 0; i < seed.params.size(); ++i) {
    ASSERT_TRUE(same_bits(traced.params[i], seed.params[i]))
        << "traced param element " << i;
  }
  EXPECT_TRUE(same_bytes(traced.predictions, seed.predictions));
  bool saw_forward = false, saw_render = false;
  for (const obs::SpanRecord& s : obs::snapshot_spans()) {
    if (std::strcmp(s.name, "train.forward") == 0) saw_forward = true;
    if (std::strcmp(s.name, "loader.render") == 0) saw_render = true;
  }
  EXPECT_TRUE(saw_forward);
  EXPECT_TRUE(saw_render);
  obs::reset();
}

}  // namespace
}  // namespace sne
