// eval_test.cpp — ROC/AUC machinery, regression metrics, and the table
// emitters.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "eval/metrics.h"
#include "eval/parity.h"
#include "eval/roc.h"
#include "eval/tables.h"
#include "tensor/rng.h"

namespace sne::eval {
namespace {

TEST(Roc, PerfectClassifier) {
  const std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  const std::vector<float> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 1.0);
  EXPECT_DOUBLE_EQ(best_accuracy(scores, labels), 1.0);
}

TEST(Roc, AntiPerfectClassifier) {
  const std::vector<float> scores{0.1f, 0.2f, 0.8f, 0.9f};
  const std::vector<float> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.0);
}

TEST(Roc, AllTiedScoresGiveHalf) {
  const std::vector<float> scores{0.5f, 0.5f, 0.5f, 0.5f};
  const std::vector<float> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.5);
}

TEST(Roc, KnownHandComputedCase) {
  // scores: pos {3, 1}, neg {2, 0} → pairs: (3>2),(3>0),(1<2),(1>0) = 3/4.
  const std::vector<float> scores{3, 1, 2, 0};
  const std::vector<float> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.75);
}

TEST(Roc, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<float> scores, labels;
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(static_cast<float>(rng.uniform()));
    labels.push_back(rng.bernoulli(0.5) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(auc(scores, labels), 0.5, 0.03);
}

TEST(Roc, CurveEndpointsAndMonotonicity) {
  Rng rng(2);
  std::vector<float> scores, labels;
  for (int i = 0; i < 500; ++i) {
    const bool pos = rng.bernoulli(0.5);
    scores.push_back(static_cast<float>(rng.normal(pos ? 1.0 : 0.0, 1.0)));
    labels.push_back(pos ? 1.0f : 0.0f);
  }
  const RocCurve curve = compute_roc(scores, labels);
  EXPECT_DOUBLE_EQ(curve.points.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.points.back().tpr, 1.0);
  for (std::size_t k = 1; k < curve.points.size(); ++k) {
    EXPECT_GE(curve.points[k].fpr, curve.points[k - 1].fpr);
    EXPECT_GE(curve.points[k].tpr, curve.points[k - 1].tpr);
  }
  EXPECT_GT(curve.auc, 0.5);
  EXPECT_LT(curve.auc, 1.0);
}

TEST(Roc, AucInvariantUnderMonotoneTransform) {
  Rng rng(3);
  std::vector<float> scores, transformed, labels;
  for (int i = 0; i < 300; ++i) {
    const bool pos = rng.bernoulli(0.4);
    const float s = static_cast<float>(rng.normal(pos ? 0.5 : 0.0, 1.0));
    scores.push_back(s);
    transformed.push_back(std::tanh(s) * 100.0f);
    labels.push_back(pos ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(auc(scores, labels), auc(transformed, labels), 1e-9);
}

TEST(Roc, RejectsDegenerateInputs) {
  EXPECT_THROW(auc({}, {}), std::invalid_argument);
  const std::vector<float> s{1.0f, 2.0f};
  const std::vector<float> one_class{1.0f, 1.0f};
  EXPECT_THROW(auc(s, one_class), std::invalid_argument);
}

TEST(Roc, RejectsNonFiniteScores) {
  // Regression: a NaN score used to hang compute_roc — NaN compares
  // unequal to itself, so the tie-group cursor never advanced and the
  // sweep spun forever. The fix rejects non-finite inputs up front; this
  // test completing at all (instead of timing out) is the point.
  const std::vector<float> nan_scores{0.9f, std::nanf(""), 0.2f};
  const std::vector<float> labels{1, 0, 0};
  EXPECT_THROW(auc(nan_scores, labels), std::invalid_argument);
  EXPECT_THROW(compute_roc(nan_scores, labels), std::invalid_argument);
  EXPECT_THROW(best_accuracy(nan_scores, labels), std::invalid_argument);
  EXPECT_THROW(bootstrap_auc(nan_scores, labels, 50, 0.95, 1),
               std::invalid_argument);

  const std::vector<float> inf_scores{
      0.9f, std::numeric_limits<float>::infinity(), 0.2f};
  EXPECT_THROW(auc(inf_scores, labels), std::invalid_argument);

  const std::vector<float> scores{0.9f, 0.5f, 0.2f};
  const std::vector<float> nan_labels{1.0f, std::nanf(""), 0.0f};
  EXPECT_THROW(auc(scores, nan_labels), std::invalid_argument);
}

TEST(Roc, AccuracyAtThreshold) {
  const std::vector<float> scores{0.9f, 0.4f, 0.6f, 0.1f};
  const std::vector<float> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(accuracy_at(scores, labels, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(accuracy_at(scores, labels, 0.05), 0.5);
}

TEST(Roc, TprAtFprOperatingPoint) {
  const std::vector<float> scores{0.9f, 0.8f, 0.7f, 0.6f, 0.5f, 0.4f};
  const std::vector<float> labels{1, 1, 0, 1, 0, 0};
  const RocCurve curve = compute_roc(scores, labels);
  EXPECT_NEAR(tpr_at_fpr(curve, 0.0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(tpr_at_fpr(curve, 1.0), 1.0, 1e-9);
}

TEST(Roc, TprAtFprInterpolatesBetweenVertices) {
  // A big tie group makes the curve coarse: its vertices are
  // (0,0) → (0,1/3) → (2/3,1) → (1,1). An FPR budget of 1/3 lands in the
  // middle of the diagonal segment, where the achievable operating point
  // (randomized thresholding between the bracketing cuts) has TPR 2/3.
  // The old best-vertex-below rule reported only 1/3.
  const std::vector<float> scores{0.9f, 0.5f, 0.5f, 0.5f, 0.5f, 0.3f};
  const std::vector<float> labels{1, 1, 1, 0, 0, 0};
  const RocCurve curve = compute_roc(scores, labels);
  EXPECT_NEAR(tpr_at_fpr(curve, 1.0 / 3.0), 2.0 / 3.0, 1e-9);
  // At a vertex the interpolation must coincide with the vertex itself.
  EXPECT_NEAR(tpr_at_fpr(curve, 2.0 / 3.0), 1.0, 1e-9);
  EXPECT_NEAR(tpr_at_fpr(curve, 0.0), 1.0 / 3.0, 1e-9);
}

TEST(Metrics, MseMaeBias) {
  const std::vector<float> pred{1.0f, 2.0f, 3.0f};
  const std::vector<float> target{1.0f, 1.0f, 5.0f};
  EXPECT_NEAR(mse(pred, target), (0.0 + 1.0 + 4.0) / 3.0, 1e-9);
  EXPECT_NEAR(mae(pred, target), (0.0 + 1.0 + 2.0) / 3.0, 1e-9);
  EXPECT_NEAR(bias(pred, target), (0.0 + 1.0 - 2.0) / 3.0, 1e-9);
}

TEST(Metrics, PearsonPerfectAndInverse) {
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{2, 4, 6, 8};
  const std::vector<float> c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-9);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-9);
}

TEST(Metrics, MeanStd) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const MeanStd ms = mean_std(v);
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.stddev, 2.0);
}

TEST(BootstrapAuc, IntervalContainsPointEstimate) {
  Rng rng(5);
  std::vector<float> scores, labels;
  for (int i = 0; i < 400; ++i) {
    const bool pos = rng.bernoulli(0.5);
    scores.push_back(static_cast<float>(rng.normal(pos ? 1.0 : 0.0, 1.0)));
    labels.push_back(pos ? 1.0f : 0.0f);
  }
  const AucInterval ci = bootstrap_auc(scores, labels, 100);
  EXPECT_LE(ci.lo, ci.auc);
  EXPECT_GE(ci.hi, ci.auc);
  EXPECT_GT(ci.hi - ci.lo, 0.0);
  EXPECT_LT(ci.hi - ci.lo, 0.2);  // 400 samples: reasonably tight
}

TEST(BootstrapAuc, PerfectScoresHaveDegenerateInterval) {
  const std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  const std::vector<float> labels{1, 1, 0, 0};
  const AucInterval ci = bootstrap_auc(scores, labels, 50);
  EXPECT_DOUBLE_EQ(ci.auc, 1.0);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(BootstrapAuc, DeterministicInSeed) {
  Rng rng(6);
  std::vector<float> scores, labels;
  for (int i = 0; i < 100; ++i) {
    const bool pos = i % 2 == 0;
    scores.push_back(static_cast<float>(rng.normal(pos ? 0.5 : 0.0, 1.0)));
    labels.push_back(pos ? 1.0f : 0.0f);
  }
  const AucInterval a = bootstrap_auc(scores, labels, 50, 0.95, 3);
  const AucInterval b = bootstrap_auc(scores, labels, 50, 0.95, 3);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

TEST(BootstrapAuc, RejectsBadParameters) {
  const std::vector<float> s{1.0f, 0.0f};
  const std::vector<float> y{1.0f, 0.0f};
  EXPECT_THROW(bootstrap_auc(s, y, 5), std::invalid_argument);
  EXPECT_THROW(bootstrap_auc(s, y, 100, 1.5), std::invalid_argument);
}

TEST(Calibration, BrierScoreKnownCases) {
  const std::vector<float> perfect{1.0f, 0.0f, 1.0f};
  const std::vector<float> labels{1, 0, 1};
  EXPECT_DOUBLE_EQ(brier_score(perfect, labels), 0.0);
  const std::vector<float> coin{0.5f, 0.5f, 0.5f};
  EXPECT_DOUBLE_EQ(brier_score(coin, labels), 0.25);
}

TEST(Calibration, ReliabilityOfCalibratedScores) {
  // Scores drawn so P(y=1 | p) = p: the curve should hug the diagonal.
  Rng rng(9);
  std::vector<float> p, y;
  for (int i = 0; i < 20000; ++i) {
    const float prob = static_cast<float>(rng.uniform());
    p.push_back(prob);
    y.push_back(rng.bernoulli(prob) ? 1.0f : 0.0f);
  }
  for (const ReliabilityPoint& point : reliability_curve(p, y, 10)) {
    EXPECT_NEAR(point.empirical_rate, point.mean_predicted, 0.05);
  }
  EXPECT_LT(expected_calibration_error(p, y, 10), 0.03);
}

TEST(Calibration, MiscalibratedScoresShowLargeEce) {
  // Constant 0.9 predictions on balanced labels: ECE ≈ |0.9 − 0.5|.
  std::vector<float> p(1000, 0.9f);
  std::vector<float> y;
  for (int i = 0; i < 1000; ++i) y.push_back(i % 2 == 0 ? 1.0f : 0.0f);
  EXPECT_NEAR(expected_calibration_error(p, y, 10), 0.4, 1e-6);
}

TEST(Calibration, EmptyBinsOmitted) {
  const std::vector<float> p{0.05f, 0.95f};
  const std::vector<float> y{0.0f, 1.0f};
  const auto curve = reliability_curve(p, y, 10);
  EXPECT_EQ(curve.size(), 2u);
}

TEST(Tables, AlignedRendering) {
  TextTable t({"name", "auc"});
  t.add_row({"proposed", "0.958"});
  t.add_row({"poznanski-no-z", "0.60"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("proposed"), std::string::npos);
  EXPECT_NE(s.find("0.958"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Tables, MarkdownAndCsv) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
  EXPECT_NE(t.to_markdown().find("| 1 | 2 |"), std::string::npos);
}

TEST(Tables, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Tables, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pm(1.5, 0.25, 2), "1.50 ± 0.25");
}

TEST(Tables, SeriesTsv) {
  EXPECT_EQ(series_to_tsv({1.0, 2.0}, {3.0, 4.0}), "1\t3\n2\t4\n");
  EXPECT_THROW(series_to_tsv({1.0}, {}), std::invalid_argument);
}

// ---- quantization parity metrics ----

TEST(Parity, IdenticalScoresGiveZeroDrift) {
  const std::vector<float> scores{0.9f, 0.7f, 0.3f, 0.1f};
  const std::vector<float> labels{1, 1, 0, 0};
  const PrecisionParity p = precision_parity(scores, scores, labels);
  EXPECT_DOUBLE_EQ(p.auc_reference, 1.0);
  EXPECT_DOUBLE_EQ(p.auc_quantized, 1.0);
  EXPECT_DOUBLE_EQ(p.auc_delta, 0.0);
  EXPECT_DOUBLE_EQ(p.max_abs_diff, 0.0);
  EXPECT_DOUBLE_EQ(p.mean_abs_diff, 0.0);
}

TEST(Parity, RankPreservingDriftLeavesAucUntouched) {
  // A monotone distortion (here a uniform +0.05 shift) moves every score
  // but no pairwise ordering: AUC must not budge while the drift stats do.
  const std::vector<float> ref{0.9f, 0.4f, 0.6f, 0.1f};
  std::vector<float> quant = ref;
  for (float& s : quant) s += 0.05f;
  const std::vector<float> labels{1, 0, 1, 0};
  const PrecisionParity p = precision_parity(ref, quant, labels);
  EXPECT_DOUBLE_EQ(p.auc_delta, 0.0);
  EXPECT_NEAR(p.max_abs_diff, 0.05, 1e-7);
  EXPECT_NEAR(p.mean_abs_diff, 0.05, 1e-7);
}

TEST(Parity, RankSwapShowsUpAsSignedAucDelta) {
  // ref: pos {3, 1}, neg {2, 0} → 3 of 4 pairs ordered, AUC .75. The
  // "quantized" run lifts the weak positive above the strong negative
  // (1 → 2.5), fixing the one inversion: AUC 1.0, delta +0.25.
  const std::vector<float> ref{3, 1, 2, 0};
  const std::vector<float> quant{3, 2.5f, 2, 0};
  const std::vector<float> labels{1, 1, 0, 0};
  const PrecisionParity p = precision_parity(ref, quant, labels);
  EXPECT_DOUBLE_EQ(p.auc_reference, 0.75);
  EXPECT_DOUBLE_EQ(p.auc_quantized, 1.0);
  EXPECT_DOUBLE_EQ(p.auc_delta, 0.25);
  EXPECT_DOUBLE_EQ(p.max_abs_diff, 1.5);
  EXPECT_DOUBLE_EQ(p.mean_abs_diff, 1.5 / 4.0);
}

TEST(Parity, RejectsMismatchedSpans) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{1, 2};
  const std::vector<float> labels{1, 0, 1};
  EXPECT_THROW(precision_parity(a, b, labels), std::invalid_argument);
  EXPECT_THROW(precision_parity(b, b, labels), std::invalid_argument);
  EXPECT_THROW(precision_parity({}, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace sne::eval
