// gemm_dispatch_test.cpp — the runtime-dispatched GEMM kernel tiers. The
// scalar kernel is the determinism bit-reference; the AVX2+FMA tier must
// agree with it to float tolerance on arbitrary shapes (including ragged
// register-tile tails), be bitwise deterministic within itself (repeated
// runs, thread-count sweeps, serial-vs-pooled drivers), and the fused
// epilogue (bias + PReLU) must change no bits relative to the separate
// passes it replaces. Also pins the 1×1 conv fast path: bitwise equal to
// the im2col lowering and free of column-buffer allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <tuple>
#include <vector>

#include "nn/conv2d.h"
#include "nn/pooling.h"
#include "tensor/gemm.h"
#include "tensor/qtensor.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/thread_pool.h"

// Allocation counter for the no-column-buffer pin; armed only inside the
// measured window so gtest bookkeeping stays invisible.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sne {
namespace {

// Restores the process-wide tier on scope exit so test order cannot leak.
class TierGuard {
 public:
  TierGuard() : prev_(gemm_tier()) {}
  ~TierGuard() { set_gemm_tier(prev_); }

 private:
  GemmTier prev_;
};

bool vector_tier_available() {
  return gemm_tier_supported(GemmTier::Avx2Fma);
}

TEST(GemmDispatch, TierNamesAreStable) {
  EXPECT_STREQ(gemm_tier_name(GemmTier::Scalar), "scalar");
  EXPECT_STREQ(gemm_tier_name(GemmTier::Avx2Fma), "avx2");
}

TEST(GemmDispatch, ScalarTierAlwaysSupportedAndSettable) {
  TierGuard guard;
  EXPECT_TRUE(gemm_tier_supported(GemmTier::Scalar));
  set_gemm_tier(GemmTier::Scalar);
  EXPECT_EQ(gemm_tier(), GemmTier::Scalar);
}

TEST(GemmDispatch, UnsupportedRequestClampsToScalar) {
  TierGuard guard;
  set_gemm_tier(GemmTier::Avx2Fma);
  if (vector_tier_available()) {
    EXPECT_EQ(gemm_tier(), GemmTier::Avx2Fma);
  } else {
    EXPECT_EQ(gemm_tier(), GemmTier::Scalar);
  }
}

// Shape sweep deliberately heavy on ragged tails: the vector kernel tiles
// rows by 6/4/1 and columns by 16/8/1, so exercise every remainder class.
class GemmTierParity
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmTierParity, VectorMatchesScalar) {
  if (!vector_tier_available()) GTEST_SKIP() << "no AVX2+FMA on this CPU";
  const auto [m, n, k] = GetParam();
  TierGuard guard;
  Rng rng(m * 7919 + n * 101 + k);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor c_scalar = Tensor::randn({m, n}, rng);
  Tensor c_vector = c_scalar;

  set_gemm_tier(GemmTier::Scalar);
  sgemm(m, n, k, 0.9f, a.data(), b.data(), 0.2f, c_scalar.data());
  set_gemm_tier(GemmTier::Avx2Fma);
  sgemm(m, n, k, 0.9f, a.data(), b.data(), 0.2f, c_vector.data());

  // The tiers reassociate the k reduction, so agreement is to float
  // tolerance, not bitwise.
  EXPECT_TRUE(c_vector.allclose(c_scalar, 1e-3f))
      << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(GemmTierParity, SerialDriverMatchesPooledBitwisePerTier) {
  const auto [m, n, k] = GetParam();
  TierGuard guard;
  Rng rng(m + 31 * n + 997 * k);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);

  for (const GemmTier tier : {GemmTier::Scalar, GemmTier::Avx2Fma}) {
    if (!gemm_tier_supported(tier)) continue;
    set_gemm_tier(tier);
    Tensor c_pool({m, n});
    Tensor c_serial({m, n});
    set_num_threads(4);
    sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_pool.data());
    set_num_threads(1);
    sgemm_serial(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_serial.data());
    EXPECT_TRUE(c_pool.equals(c_serial)) << gemm_tier_name(tier);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmTierParity,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(6, 16, 32), std::make_tuple(7, 17, 33),
                      std::make_tuple(10, 3844, 50),
                      std::make_tuple(30, 750, 500),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 33, 129),
                      std::make_tuple(70, 90, 260),
                      std::make_tuple(128, 24, 300)));

TEST(GemmDispatch, VectorTierIsThreadCountInvariant) {
  if (!vector_tier_available()) GTEST_SKIP() << "no AVX2+FMA on this CPU";
  TierGuard guard;
  set_gemm_tier(GemmTier::Avx2Fma);
  const std::int64_t m = 130, n = 90, k = 260;
  Rng rng(42);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);

  Tensor c1({m, n});
  set_num_threads(1);
  sgemm(m, n, k, 1.3f, a.data(), b.data(), 0.0f, c1.data());
  Tensor c4({m, n});
  set_num_threads(4);
  sgemm(m, n, k, 1.3f, a.data(), b.data(), 0.0f, c4.data());
  set_num_threads(1);
  EXPECT_TRUE(c1.equals(c4));

  // And repeated runs reproduce the same bits: the vector tier has its own
  // determinism pin, independent of the scalar bit-reference.
  Tensor c_again({m, n});
  sgemm(m, n, k, 1.3f, a.data(), b.data(), 0.0f, c_again.data());
  EXPECT_TRUE(c1.equals(c_again));
}

TEST(GemmDispatch, EpilogueBiasPreluMatchesSeparatePassesBitwise) {
  const std::int64_t m = 21, n = 135, k = 77;
  Rng rng(7);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor bias = Tensor::randn({m}, rng);
  const Tensor slope = Tensor::rand_uniform({m}, rng, 0.01f, 0.5f);

  TierGuard guard;
  for (const GemmTier tier : {GemmTier::Scalar, GemmTier::Avx2Fma}) {
    if (!gemm_tier_supported(tier)) continue;
    set_gemm_tier(tier);

    Tensor c_ref({m, n});
    sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_ref.data());
    for (std::int64_t i = 0; i < m; ++i) {
      float* row = c_ref.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) row[j] += bias[i];
      for (std::int64_t j = 0; j < n; ++j) {
        row[j] = row[j] > 0.0f ? row[j] : slope[i] * row[j];
      }
    }

    Tensor c_fused({m, n});
    sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_fused.data(),
          GemmEpilogue{bias.data(), slope.data()});
    EXPECT_TRUE(c_fused.equals(c_ref)) << gemm_tier_name(tier);

    Tensor c_serial({m, n});
    sgemm_serial(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_serial.data(),
                 GemmEpilogue{bias.data(), slope.data()});
    EXPECT_TRUE(c_serial.equals(c_ref)) << gemm_tier_name(tier);
  }
}

TEST(GemmDispatch, EpilogueStillAppliesOnDegenerateCalls) {
  // alpha == 0 short-circuits the accumulation but the bias must still
  // land on the beta-scaled C.
  const Tensor bias({2}, {1.0f, -2.0f});
  Tensor c({2, 3}, 4.0f);
  sgemm(2, 3, 5, 0.0f, nullptr, nullptr, 0.5f, c.data(),
        GemmEpilogue{bias.data(), nullptr});
  for (std::int64_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(c.at(0, j), 3.0f);
    EXPECT_FLOAT_EQ(c.at(1, j), 0.0f);
  }
}

// ---- 1×1 convolution fast path ----

TEST(PointwiseConv, MatchesExplicitIm2colLoweringBitwise) {
  Rng rng(11);
  nn::Conv2d conv(6, 9, /*kernel=*/1, rng);
  const std::int64_t h = 13, w = 17;
  const Tensor x = Tensor::randn({3, 6, h, w}, rng);

  // Reference: the full im2col lowering the fast path skips. For 1×1 the
  // column matrix is a verbatim copy of the sample, so the results must
  // agree bit-for-bit, not just within tolerance.
  Tensor ref({3, 9, h, w});
  std::vector<float> cols(static_cast<std::size_t>(6 * h * w));
  for (std::int64_t i = 0; i < 3; ++i) {
    im2col(x.data() + i * 6 * h * w, 6, h, w, 1, 1, 0, 1, cols.data());
    sgemm_serial(9, h * w, 6, 1.0f, conv.weight().value.data(), cols.data(),
                 0.0f, ref.data() + i * 9 * h * w,
                 GemmEpilogue{conv.bias().value.data(), nullptr});
  }

  Tensor got;
  conv.infer_into(x, got);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.equals(ref));

  // The training forward shares the fast path (plus caching for backward).
  Tensor fwd = conv.forward(x);
  EXPECT_TRUE(fwd.equals(ref));
}

TEST(PointwiseConv, BackwardMatchesGeneralPath) {
  // A 1×1 conv built as kernel-size-1 must produce the same gradients as
  // the im2col path would: compare against a finite-difference-free
  // reference built from the same GEMM primitives.
  Rng rng(12);
  nn::Conv2d conv(4, 5, 1, rng);
  const Tensor x = Tensor::randn({2, 4, 6, 6}, rng);
  Tensor y = conv.forward(x);
  const Tensor gy = Tensor::randn(y.shape(), rng);
  conv.zero_grad();
  const Tensor gx = conv.backward(gy);
  ASSERT_EQ(gx.shape(), x.shape());

  // Reference input gradient: Wᵀ · gy per sample, scattered by the
  // identity col2im.
  Tensor gx_ref(x.shape());
  std::vector<float> grad_cols(static_cast<std::size_t>(4 * 36));
  for (std::int64_t i = 0; i < 2; ++i) {
    sgemm_at(4, 36, 5, 1.0f, conv.weight().value.data(),
             gy.data() + i * 5 * 36, 0.0f, grad_cols.data());
    col2im(grad_cols.data(), 4, 6, 6, 1, 1, 0, 1,
           gx_ref.data() + i * 4 * 36);
  }
  EXPECT_TRUE(gx.equals(gx_ref));
}

// ---- int8 GEMM tier (quantized serving path) ----

// Scalar reference for the full igemm contract: exact int32 accumulation,
// then the requant epilogue in its documented element order (scale, bias,
// PReLU). Everything is either exact integer arithmetic or a short fixed
// float sequence, so igemm at ANY tier must match this bit for bit.
Tensor igemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                       const std::int8_t* a, const std::int8_t* b,
                       const IgemmEpilogue& ep) {
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += std::int32_t{a[i * k + p]} * std::int32_t{b[p * n + j]};
      }
      // The requant contract is the FUSED multiply-add (fmaf in the
      // scalar epilogue, vfmaddps in the vector one — one rounding), so
      // the reference uses fmaf explicitly. A null bias still adds 0.0f,
      // as the library does.
      const float v0 = std::fmaf(static_cast<float>(acc), ep.scale[i],
                                 ep.bias != nullptr ? ep.bias[i] : 0.0f);
      float v = v0;
      if (ep.prelu != nullptr && !(v > 0.0f)) v *= ep.prelu[i];
      c.data()[i * n + j] = v;
    }
  }
  return c;
}

std::vector<std::int8_t> pattern_i8(std::int64_t count, int seed) {
  std::vector<std::int8_t> v(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    v[static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>((i * 31 + seed * 17) % 255 - 127);
  }
  return v;
}

// Ragged sweep: the AVX2 igemm tiles rows by 6 and columns by 16 with an
// odd-k scalar tail, so cover every remainder class. Unlike the f32
// parity, equality here is EXACT — integer accumulation plus a shared
// epilogue operation sequence leaves no reassociation slack.
class IgemmTierParity
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IgemmTierParity, TiersAgreeBitwise) {
  const auto [m, n, k] = GetParam();
  const auto a = pattern_i8(m * k, m + n);
  const auto b = pattern_i8(k * n, k);
  std::vector<float> scale(static_cast<std::size_t>(m));
  std::vector<float> bias(static_cast<std::size_t>(m));
  std::vector<float> prelu(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    scale[static_cast<std::size_t>(i)] = 0.003f + 0.001f * static_cast<float>(i);
    bias[static_cast<std::size_t>(i)] = 0.25f - 0.1f * static_cast<float>(i % 7);
    prelu[static_cast<std::size_t>(i)] = 0.05f + 0.01f * static_cast<float>(i % 3);
  }
  const IgemmEpilogue ep{scale.data(), bias.data(), prelu.data()};
  const Tensor ref = igemm_reference(m, n, k, a.data(), b.data(), ep);

  TierGuard guard;
  for (const GemmTier tier : {GemmTier::Scalar, GemmTier::Avx2Fma}) {
    if (!gemm_tier_supported(tier)) continue;
    set_gemm_tier(tier);
    Tensor c({m, n});
    igemm(m, n, k, a.data(), b.data(), c.data(), ep);
    EXPECT_TRUE(c.equals(ref))
        << gemm_tier_name(tier) << " m=" << m << " n=" << n << " k=" << k;
    Tensor c_serial({m, n});
    igemm_serial(m, n, k, a.data(), b.data(), c_serial.data(), ep);
    EXPECT_TRUE(c_serial.equals(ref)) << "serial " << gemm_tier_name(tier);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, IgemmTierParity,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(6, 16, 32), std::make_tuple(7, 17, 33),
                      std::make_tuple(10, 1600, 50),
                      std::make_tuple(20, 256, 250),
                      std::make_tuple(30, 16, 500),
                      std::make_tuple(13, 47, 129),
                      std::make_tuple(64, 64, 64)));

TEST(IgemmDispatch, SaturatedOperandsAccumulateExactly) {
  // All-(-127)·(+127) operands drive every k step to the magnitude
  // extreme: acc = -k·127² must come out exactly in int32 (the scheme
  // saturates only in quantize_into, never inside the GEMM).
  const std::int64_t m = 7, n = 19, k = 1000;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k), -127);
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n), 127);
  std::vector<float> scale(static_cast<std::size_t>(m), 1.0f);
  const IgemmEpilogue ep{scale.data(), nullptr, nullptr};
  const float want = static_cast<float>(-k * 127 * 127);

  TierGuard guard;
  for (const GemmTier tier : {GemmTier::Scalar, GemmTier::Avx2Fma}) {
    if (!gemm_tier_supported(tier)) continue;
    set_gemm_tier(tier);
    Tensor c({m, n});
    igemm(m, n, k, a.data(), b.data(), c.data(), ep);
    for (std::int64_t i = 0; i < m * n; ++i) {
      ASSERT_EQ(c.data()[i], want) << gemm_tier_name(tier);
    }
  }
}

TEST(IgemmDispatch, RejectsKBeyondAccumulatorBound) {
  std::vector<std::int8_t> dummy(1);
  std::vector<float> scale(1, 1.0f);
  Tensor c({1, 1});
  EXPECT_THROW(igemm(1, 1, kIgemmMaxK + 1, dummy.data(), dummy.data(),
                     c.data(), IgemmEpilogue{scale.data(), nullptr, nullptr}),
               std::invalid_argument);
}

TEST(IgemmDispatch, ThreadCountAndRerunInvariantBitwise) {
  const std::int64_t m = 70, n = 90, k = 260;
  const auto a = pattern_i8(m * k, 5);
  const auto b = pattern_i8(k * n, 9);
  std::vector<float> scale(static_cast<std::size_t>(m), 0.01f);
  std::vector<float> bias(static_cast<std::size_t>(m), -0.3f);
  const IgemmEpilogue ep{scale.data(), bias.data(), nullptr};

  TierGuard guard;
  for (const GemmTier tier : {GemmTier::Scalar, GemmTier::Avx2Fma}) {
    if (!gemm_tier_supported(tier)) continue;
    set_gemm_tier(tier);
    Tensor c1({m, n});
    set_num_threads(1);
    igemm(m, n, k, a.data(), b.data(), c1.data(), ep);
    Tensor c4({m, n});
    set_num_threads(4);
    igemm(m, n, k, a.data(), b.data(), c4.data(), ep);
    set_num_threads(1);
    EXPECT_TRUE(c1.equals(c4)) << gemm_tier_name(tier);
    Tensor c_again({m, n});
    igemm(m, n, k, a.data(), b.data(), c_again.data(), ep);
    EXPECT_TRUE(c1.equals(c_again)) << gemm_tier_name(tier);
  }
}

TEST(IgemmDispatch, SerialIsAllocationFreeAfterWarmup) {
  const std::int64_t m = 20, n = 256, k = 250;
  const auto a = pattern_i8(m * k, 1);
  const auto b = pattern_i8(k * n, 2);
  std::vector<float> scale(static_cast<std::size_t>(m), 0.01f);
  const IgemmEpilogue ep{scale.data(), nullptr, nullptr};
  Tensor c({m, n});
  igemm_serial(m, n, k, a.data(), b.data(), c.data(), ep);  // warm scratch

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  igemm_serial(m, n, k, a.data(), b.data(), c.data(), ep);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
}

// ---- MaxPool serving fast path ----

TEST(MaxPoolDispatch, VectorPlanePoolMatchesScalarWalkBitwise) {
  // The 2×2/stride-2 AVX2 plane pool in MaxPool2d::infer_into must be
  // bitwise equal to the scalar window walk, including the NaN rule (NaN
  // never beats a finite value, an all-NaN window stays NaN) and the
  // first-seen-zero tie between -0.0 and +0.0.
  nn::MaxPool2d pool(2);
  Rng rng(17);
  // ow = 11: the 8-wide vector loop runs once and leaves a 3-column tail.
  Tensor x = Tensor::randn({2, 3, 12, 22}, rng);
  // Poison specific windows: all-NaN, mixed NaN, and a -0/+0 tie.
  x.data()[0] = std::numeric_limits<float>::quiet_NaN();
  x.data()[1] = std::numeric_limits<float>::quiet_NaN();
  x.data()[22] = std::numeric_limits<float>::quiet_NaN();
  x.data()[23] = std::numeric_limits<float>::quiet_NaN();  // window all NaN
  x.data()[2] = std::numeric_limits<float>::quiet_NaN();   // window mixed
  x.data()[4] = -0.0f;
  x.data()[5] = 0.0f;
  x.data()[26] = -1.0f;
  x.data()[27] = -2.0f;  // window max is the tie between -0.0 and +0.0

  TierGuard guard;
  set_gemm_tier(GemmTier::Scalar);
  Tensor ref;
  pool.infer_into(x, ref);

  if (!vector_tier_available()) GTEST_SKIP() << "no AVX2+FMA on this CPU";
  set_gemm_tier(GemmTier::Avx2Fma);
  Tensor got;
  pool.infer_into(x, got);
  ASSERT_EQ(got.shape(), ref.shape());
  // memcmp, not equals(): the all-NaN window makes elementwise == false
  // even for identical bits, and identical bits is exactly the claim.
  EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                        sizeof(float) * static_cast<std::size_t>(ref.size())),
            0);

  // The all-NaN window must have stayed NaN on both paths.
  EXPECT_TRUE(std::isnan(ref.data()[0]));
  EXPECT_TRUE(std::isnan(got.data()[0]));
}

// ---- quantize helpers feeding igemm ----

TEST(QuantizeDispatch, VectorPathMatchesScalarContractBitwise) {
  // quantize_into dispatches to an AVX2 body on capable CPUs; its contract
  // (multiply, float-space clamp, round-to-nearest-even, NaN→0) is pinned
  // here against a literal scalar transcription, across the 32-lane main
  // loop and the tail, including NaN/Inf/half-way cases.
  const std::int64_t n = 131;  // 4 full 32-lane groups + a 3-element tail
  std::vector<float> x(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = 0.37f * static_cast<float>(i - 65);
  }
  x[0] = std::numeric_limits<float>::quiet_NaN();
  x[33] = std::numeric_limits<float>::infinity();
  x[66] = -std::numeric_limits<float>::infinity();
  x[99] = 0.5f;    // ties-to-even at the integer grid after scaling by 1
  x[100] = 1.5f;
  x[101] = -0.5f;
  const float inv_scale = 1.0f;

  std::vector<std::int8_t> got(static_cast<std::size_t>(n));
  quantize_into(x.data(), n, inv_scale, got.data());
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[static_cast<std::size_t>(i)] * inv_scale;
    const float clamped = v > 127.0f ? 127.0f : (v < -127.0f ? -127.0f : v);
    const std::int8_t want =
        std::isnan(clamped) ? std::int8_t{0}
                            : static_cast<std::int8_t>(std::lrintf(clamped));
    ASSERT_EQ(got[static_cast<std::size_t>(i)], want) << "i=" << i;
  }
  EXPECT_EQ(got[0], 0);     // NaN
  EXPECT_EQ(got[33], 127);  // +Inf saturates
  EXPECT_EQ(got[66], -127);
  EXPECT_EQ(got[99], 0);    // 0.5 rounds to even
  EXPECT_EQ(got[100], 2);   // 1.5 rounds to even
  EXPECT_EQ(got[101], 0);
}

TEST(Im2colDispatch, Int8FastPathMatchesGenericTraversal) {
  // The stride-1 fill/copy/fill fast path must write exactly the bytes the
  // bounds-checked per-element walk writes, for every kernel offset and
  // padding class.
  for (const std::int64_t pad : {std::int64_t{0}, std::int64_t{2}}) {
    const std::int64_t c = 3, h = 9, w = 11, kh = 5, kw = 5;
    const std::int64_t oh = conv_out_extent(h, kh, pad, 1);
    const std::int64_t ow = conv_out_extent(w, kw, pad, 1);
    const auto img = pattern_i8(c * h * w, 3);
    std::vector<std::int8_t> cols(
        static_cast<std::size_t>(c * kh * kw * oh * ow), 99);
    im2col_i8(img.data(), c, h, w, kh, kw, pad, 1, cols.data());

    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        for (std::int64_t kx = 0; kx < kw; ++kx) {
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const std::int64_t iy = oy + ky - pad;
              const std::int64_t ix = ox + kx - pad;
              const std::int8_t want =
                  (iy >= 0 && iy < h && ix >= 0 && ix < w)
                      ? img[static_cast<std::size_t>((ch * h + iy) * w + ix)]
                      : std::int8_t{0};
              const std::int64_t at =
                  (((ch * kh + ky) * kw + kx) * oh + oy) * ow + ox;
              ASSERT_EQ(cols[static_cast<std::size_t>(at)], want)
                  << "pad=" << pad << " ch=" << ch << " ky=" << ky
                  << " kx=" << kx << " oy=" << oy << " ox=" << ox;
            }
          }
        }
      }
    }
  }
}

TEST(PointwiseConv, InferAllocatesNoColumnBuffer) {
  Rng rng(13);
  nn::Conv2d conv(8, 12, 1, rng);
  const Tensor x = Tensor::randn({4, 8, 10, 10}, rng);
  Tensor out;
  conv.infer_into(x, out);  // warm up GEMM's per-thread scratch panel

  // Steady state: the 1×1 path feeds the input straight to GEMM, so no
  // column buffer exists to allocate or grow — zero allocations total.
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  conv.infer_into(x, out);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
}

}  // namespace
}  // namespace sne
