// gemm_dispatch_test.cpp — the runtime-dispatched GEMM kernel tiers. The
// scalar kernel is the determinism bit-reference; the AVX2+FMA tier must
// agree with it to float tolerance on arbitrary shapes (including ragged
// register-tile tails), be bitwise deterministic within itself (repeated
// runs, thread-count sweeps, serial-vs-pooled drivers), and the fused
// epilogue (bias + PReLU) must change no bits relative to the separate
// passes it replaces. Also pins the 1×1 conv fast path: bitwise equal to
// the im2col lowering and free of column-buffer allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <tuple>
#include <vector>

#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/thread_pool.h"

// Allocation counter for the no-column-buffer pin; armed only inside the
// measured window so gtest bookkeeping stays invisible.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sne {
namespace {

// Restores the process-wide tier on scope exit so test order cannot leak.
class TierGuard {
 public:
  TierGuard() : prev_(gemm_tier()) {}
  ~TierGuard() { set_gemm_tier(prev_); }

 private:
  GemmTier prev_;
};

bool vector_tier_available() {
  return gemm_tier_supported(GemmTier::Avx2Fma);
}

TEST(GemmDispatch, TierNamesAreStable) {
  EXPECT_STREQ(gemm_tier_name(GemmTier::Scalar), "scalar");
  EXPECT_STREQ(gemm_tier_name(GemmTier::Avx2Fma), "avx2");
}

TEST(GemmDispatch, ScalarTierAlwaysSupportedAndSettable) {
  TierGuard guard;
  EXPECT_TRUE(gemm_tier_supported(GemmTier::Scalar));
  set_gemm_tier(GemmTier::Scalar);
  EXPECT_EQ(gemm_tier(), GemmTier::Scalar);
}

TEST(GemmDispatch, UnsupportedRequestClampsToScalar) {
  TierGuard guard;
  set_gemm_tier(GemmTier::Avx2Fma);
  if (vector_tier_available()) {
    EXPECT_EQ(gemm_tier(), GemmTier::Avx2Fma);
  } else {
    EXPECT_EQ(gemm_tier(), GemmTier::Scalar);
  }
}

// Shape sweep deliberately heavy on ragged tails: the vector kernel tiles
// rows by 6/4/1 and columns by 16/8/1, so exercise every remainder class.
class GemmTierParity
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmTierParity, VectorMatchesScalar) {
  if (!vector_tier_available()) GTEST_SKIP() << "no AVX2+FMA on this CPU";
  const auto [m, n, k] = GetParam();
  TierGuard guard;
  Rng rng(m * 7919 + n * 101 + k);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor c_scalar = Tensor::randn({m, n}, rng);
  Tensor c_vector = c_scalar;

  set_gemm_tier(GemmTier::Scalar);
  sgemm(m, n, k, 0.9f, a.data(), b.data(), 0.2f, c_scalar.data());
  set_gemm_tier(GemmTier::Avx2Fma);
  sgemm(m, n, k, 0.9f, a.data(), b.data(), 0.2f, c_vector.data());

  // The tiers reassociate the k reduction, so agreement is to float
  // tolerance, not bitwise.
  EXPECT_TRUE(c_vector.allclose(c_scalar, 1e-3f))
      << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(GemmTierParity, SerialDriverMatchesPooledBitwisePerTier) {
  const auto [m, n, k] = GetParam();
  TierGuard guard;
  Rng rng(m + 31 * n + 997 * k);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);

  for (const GemmTier tier : {GemmTier::Scalar, GemmTier::Avx2Fma}) {
    if (!gemm_tier_supported(tier)) continue;
    set_gemm_tier(tier);
    Tensor c_pool({m, n});
    Tensor c_serial({m, n});
    set_num_threads(4);
    sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_pool.data());
    set_num_threads(1);
    sgemm_serial(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_serial.data());
    EXPECT_TRUE(c_pool.equals(c_serial)) << gemm_tier_name(tier);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmTierParity,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(6, 16, 32), std::make_tuple(7, 17, 33),
                      std::make_tuple(10, 3844, 50),
                      std::make_tuple(30, 750, 500),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 33, 129),
                      std::make_tuple(70, 90, 260),
                      std::make_tuple(128, 24, 300)));

TEST(GemmDispatch, VectorTierIsThreadCountInvariant) {
  if (!vector_tier_available()) GTEST_SKIP() << "no AVX2+FMA on this CPU";
  TierGuard guard;
  set_gemm_tier(GemmTier::Avx2Fma);
  const std::int64_t m = 130, n = 90, k = 260;
  Rng rng(42);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);

  Tensor c1({m, n});
  set_num_threads(1);
  sgemm(m, n, k, 1.3f, a.data(), b.data(), 0.0f, c1.data());
  Tensor c4({m, n});
  set_num_threads(4);
  sgemm(m, n, k, 1.3f, a.data(), b.data(), 0.0f, c4.data());
  set_num_threads(1);
  EXPECT_TRUE(c1.equals(c4));

  // And repeated runs reproduce the same bits: the vector tier has its own
  // determinism pin, independent of the scalar bit-reference.
  Tensor c_again({m, n});
  sgemm(m, n, k, 1.3f, a.data(), b.data(), 0.0f, c_again.data());
  EXPECT_TRUE(c1.equals(c_again));
}

TEST(GemmDispatch, EpilogueBiasPreluMatchesSeparatePassesBitwise) {
  const std::int64_t m = 21, n = 135, k = 77;
  Rng rng(7);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor bias = Tensor::randn({m}, rng);
  const Tensor slope = Tensor::rand_uniform({m}, rng, 0.01f, 0.5f);

  TierGuard guard;
  for (const GemmTier tier : {GemmTier::Scalar, GemmTier::Avx2Fma}) {
    if (!gemm_tier_supported(tier)) continue;
    set_gemm_tier(tier);

    Tensor c_ref({m, n});
    sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_ref.data());
    for (std::int64_t i = 0; i < m; ++i) {
      float* row = c_ref.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) row[j] += bias[i];
      for (std::int64_t j = 0; j < n; ++j) {
        row[j] = row[j] > 0.0f ? row[j] : slope[i] * row[j];
      }
    }

    Tensor c_fused({m, n});
    sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_fused.data(),
          GemmEpilogue{bias.data(), slope.data()});
    EXPECT_TRUE(c_fused.equals(c_ref)) << gemm_tier_name(tier);

    Tensor c_serial({m, n});
    sgemm_serial(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_serial.data(),
                 GemmEpilogue{bias.data(), slope.data()});
    EXPECT_TRUE(c_serial.equals(c_ref)) << gemm_tier_name(tier);
  }
}

TEST(GemmDispatch, EpilogueStillAppliesOnDegenerateCalls) {
  // alpha == 0 short-circuits the accumulation but the bias must still
  // land on the beta-scaled C.
  const Tensor bias({2}, {1.0f, -2.0f});
  Tensor c({2, 3}, 4.0f);
  sgemm(2, 3, 5, 0.0f, nullptr, nullptr, 0.5f, c.data(),
        GemmEpilogue{bias.data(), nullptr});
  for (std::int64_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(c.at(0, j), 3.0f);
    EXPECT_FLOAT_EQ(c.at(1, j), 0.0f);
  }
}

// ---- 1×1 convolution fast path ----

TEST(PointwiseConv, MatchesExplicitIm2colLoweringBitwise) {
  Rng rng(11);
  nn::Conv2d conv(6, 9, /*kernel=*/1, rng);
  const std::int64_t h = 13, w = 17;
  const Tensor x = Tensor::randn({3, 6, h, w}, rng);

  // Reference: the full im2col lowering the fast path skips. For 1×1 the
  // column matrix is a verbatim copy of the sample, so the results must
  // agree bit-for-bit, not just within tolerance.
  Tensor ref({3, 9, h, w});
  std::vector<float> cols(static_cast<std::size_t>(6 * h * w));
  for (std::int64_t i = 0; i < 3; ++i) {
    im2col(x.data() + i * 6 * h * w, 6, h, w, 1, 1, 0, 1, cols.data());
    sgemm_serial(9, h * w, 6, 1.0f, conv.weight().value.data(), cols.data(),
                 0.0f, ref.data() + i * 9 * h * w,
                 GemmEpilogue{conv.bias().value.data(), nullptr});
  }

  Tensor got;
  conv.infer_into(x, got);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.equals(ref));

  // The training forward shares the fast path (plus caching for backward).
  Tensor fwd = conv.forward(x);
  EXPECT_TRUE(fwd.equals(ref));
}

TEST(PointwiseConv, BackwardMatchesGeneralPath) {
  // A 1×1 conv built as kernel-size-1 must produce the same gradients as
  // the im2col path would: compare against a finite-difference-free
  // reference built from the same GEMM primitives.
  Rng rng(12);
  nn::Conv2d conv(4, 5, 1, rng);
  const Tensor x = Tensor::randn({2, 4, 6, 6}, rng);
  Tensor y = conv.forward(x);
  const Tensor gy = Tensor::randn(y.shape(), rng);
  conv.zero_grad();
  const Tensor gx = conv.backward(gy);
  ASSERT_EQ(gx.shape(), x.shape());

  // Reference input gradient: Wᵀ · gy per sample, scattered by the
  // identity col2im.
  Tensor gx_ref(x.shape());
  std::vector<float> grad_cols(static_cast<std::size_t>(4 * 36));
  for (std::int64_t i = 0; i < 2; ++i) {
    sgemm_at(4, 36, 5, 1.0f, conv.weight().value.data(),
             gy.data() + i * 5 * 36, 0.0f, grad_cols.data());
    col2im(grad_cols.data(), 4, 6, 6, 1, 1, 0, 1,
           gx_ref.data() + i * 4 * 36);
  }
  EXPECT_TRUE(gx.equals(gx_ref));
}

TEST(PointwiseConv, InferAllocatesNoColumnBuffer) {
  Rng rng(13);
  nn::Conv2d conv(8, 12, 1, rng);
  const Tensor x = Tensor::randn({4, 8, 10, 10}, rng);
  Tensor out;
  conv.infer_into(x, out);  // warm up GEMM's per-thread scratch panel

  // Steady state: the 1×1 path feeds the input straight to GEMM, so no
  // column buffer exists to allocate or grow — zero allocations total.
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  conv.infer_into(x, out);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
}

}  // namespace
}  // namespace sne
