// gemm_test.cpp — the GEMM kernels against a naive reference, and the
// im2col/col2im pair (correctness + adjointness), across shape sweeps.
#include <gtest/gtest.h>

#include <tuple>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sne {
namespace {

void naive_gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                const float* a, const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 1000 + n * 100 + k);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor c_fast = Tensor::randn({m, n}, rng);
  Tensor c_ref = c_fast;

  sgemm(m, n, k, 0.7f, a.data(), b.data(), 0.3f, c_fast.data());
  naive_gemm(m, n, k, 0.7f, a.data(), b.data(), 0.3f, c_ref.data());
  EXPECT_TRUE(c_fast.allclose(c_ref, 1e-3f))
      << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(GemmShapes, TransposedAMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m + n + k);
  const Tensor a_t = Tensor::randn({k, m}, rng);  // stored transposed
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor c_fast({m, n});
  Tensor c_ref({m, n});

  // Build the untransposed A for the reference.
  Tensor a({m, k});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) a.at(i, p) = a_t.at(p, i);
  }
  sgemm_at(m, n, k, 1.0f, a_t.data(), b.data(), 0.0f, c_fast.data());
  naive_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_ref.data());
  EXPECT_TRUE(c_fast.allclose(c_ref, 1e-3f));
}

TEST_P(GemmShapes, TransposedBMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(3 * m + 5 * n + 7 * k);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b_t = Tensor::randn({n, k}, rng);  // stored transposed
  Tensor c_fast({m, n});
  Tensor c_ref({m, n});

  Tensor b({k, n});
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t j = 0; j < n; ++j) b.at(p, j) = b_t.at(j, p);
  }
  sgemm_bt(m, n, k, 1.0f, a.data(), b_t.data(), 0.0f, c_fast.data());
  naive_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_ref.data());
  EXPECT_TRUE(c_fast.allclose(c_ref, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 33, 129), std::make_tuple(1, 128, 1),
                      std::make_tuple(100, 1, 300),
                      std::make_tuple(70, 90, 260)));

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Rng rng(1);
  const Tensor a = Tensor::randn({4, 4}, rng);
  const Tensor b = Tensor::randn({4, 4}, rng);
  Tensor c({4, 4}, std::numeric_limits<float>::quiet_NaN());
  sgemm(4, 4, 4, 1.0f, a.data(), b.data(), 0.0f, c.data());
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_FALSE(std::isnan(c[i]));
  }
}

TEST(Gemm, AlphaZeroLeavesScaledC) {
  Tensor c({2, 2}, 4.0f);
  sgemm(2, 2, 2, 0.0f, nullptr, nullptr, 0.5f, c.data());
  for (std::int64_t i = 0; i < c.size(); ++i) EXPECT_FLOAT_EQ(c[i], 2.0f);
}

// ---- im2col / col2im ----

TEST(Im2col, IdentityKernelReproducesImage) {
  Rng rng(2);
  const Tensor img = Tensor::randn({1, 4, 4}, rng);
  Tensor cols({1 * 1 * 1, 16});
  im2col(img.data(), 1, 4, 4, 1, 1, 0, 1, cols.data());
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Im2col, KnownPatch) {
  // 3×3 image, 2×2 kernel, no pad, stride 1 → 2×2 output, 4 columns.
  Tensor img({1, 3, 3}, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  Tensor cols({4, 4});
  im2col(img.data(), 1, 3, 3, 2, 2, 0, 1, cols.data());
  // Row 0 is kernel element (0,0) over the 4 output positions.
  EXPECT_EQ(cols.at(0, 0), 0.0f);
  EXPECT_EQ(cols.at(0, 1), 1.0f);
  EXPECT_EQ(cols.at(0, 2), 3.0f);
  EXPECT_EQ(cols.at(0, 3), 4.0f);
  // Row 3 is kernel element (1,1).
  EXPECT_EQ(cols.at(3, 0), 4.0f);
  EXPECT_EQ(cols.at(3, 3), 8.0f);
}

TEST(Im2col, ZeroPaddingFillsBorders) {
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  const std::int64_t out = conv_out_extent(2, 3, 1, 1);  // = 2
  Tensor cols({9, out * out});
  im2col(img.data(), 1, 2, 2, 3, 3, 1, 1, cols.data());
  // Kernel element (0,0) at output (0,0) reads image (-1,-1) → 0.
  EXPECT_EQ(cols.at(0, 0), 0.0f);
  // Kernel element (1,1) at output (0,0) reads image (0,0) → 1.
  EXPECT_EQ(cols.at(4, 0), 1.0f);
}

class Im2colAdjoint
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Im2colAdjoint, DotProductIdentity) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property that
  // makes the conv backward pass correct.
  const auto [channels, size, kernel, pad] = GetParam();
  Rng rng(size * 10 + kernel);
  const std::int64_t out = conv_out_extent(size, kernel, pad, 1);
  ASSERT_GT(out, 0);
  const std::int64_t rows = channels * kernel * kernel;

  const Tensor x = Tensor::randn({channels, size, size}, rng);
  const Tensor y = Tensor::randn({rows, out * out}, rng);

  Tensor cols({rows, out * out});
  im2col(x.data(), channels, size, size, kernel, kernel, pad, 1, cols.data());
  Tensor back({channels, size, size});
  col2im(y.data(), channels, size, size, kernel, kernel, pad, 1, back.data());

  double lhs = 0.0;
  for (std::int64_t i = 0; i < cols.size(); ++i) {
    lhs += static_cast<double>(cols[i]) * y[i];
  }
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    AdjointSweep, Im2colAdjoint,
    ::testing::Values(std::make_tuple(1, 5, 3, 0), std::make_tuple(2, 8, 5, 0),
                      std::make_tuple(3, 6, 3, 1),
                      std::make_tuple(1, 10, 5, 2)));

TEST(ConvOutExtent, Formula) {
  EXPECT_EQ(conv_out_extent(65, 5, 0, 1), 61);
  EXPECT_EQ(conv_out_extent(28, 5, 2, 1), 28);
  EXPECT_EQ(conv_out_extent(10, 3, 0, 2), 4);
}

}  // namespace
}  // namespace sne
